//! Offline shim for `criterion`.
//!
//! Keeps the upstream API shape the workspace's benches use —
//! [`Criterion`], [`Criterion::benchmark_group`], [`BenchmarkGroup`]
//! with `sample_size`/`bench_function`/`finish`, [`Bencher::iter`],
//! [`black_box`], [`criterion_group!`] and [`criterion_main!`] — but
//! measures with plain wall-clock timing: per benchmark it runs one
//! warm-up iteration plus `sample_size` timed iterations and prints
//! mean/min/max. No statistics, no HTML reports.

use std::time::{Duration, Instant};

/// Default timed iterations per benchmark (upstream defaults to 100
/// samples; the shim keeps runs short).
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Opaque hint preventing the optimizer from deleting a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Per-iteration timing collector handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn with_sample_size(sample_size: usize) -> Self {
        Self {
            sample_size,
            samples: Vec::with_capacity(sample_size),
        }
    }

    /// Times `routine`: one warm-up call, then `sample_size` measured
    /// calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_size.max(1) {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("bench {id:<40} (no samples collected)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("nonempty");
        let max = self.samples.iter().max().expect("nonempty");
        println!(
            "bench {id:<40} mean {mean:>12.3?}   min {min:>12.3?}   max {max:>12.3?}   ({} samples)",
            self.samples.len()
        );
    }
}

/// Top-level benchmark driver (mirrors `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Overrides the default sample count for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::with_sample_size(self.sample_size);
        f(&mut bencher);
        bencher.report(id.as_ref());
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Prints the closing summary (upstream compatibility; no-op).
    pub fn final_summary(&mut self) {}
}

/// A named set of benchmarks sharing configuration (mirrors
/// `criterion::BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::with_sample_size(self.sample_size);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.as_ref()));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function (mirrors
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main` (mirrors
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::with_sample_size(5);
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(calls, 6, "one warm-up plus five samples");
        assert_eq!(b.samples.len(), 5);
    }

    #[test]
    fn group_runs_and_respects_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 4);
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
    }
}
