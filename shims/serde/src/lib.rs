//! Offline shim for `serde`.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` today — nothing
//! serializes yet — so the traits here are blanket-implemented markers
//! and the derives (from the sibling `serde_derive` shim) expand to
//! nothing. Swap the root `[workspace.dependencies]` entry to the real
//! crate before writing code that serializes.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
