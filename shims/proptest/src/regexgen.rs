//! String generation for a small regex subset, enough for the patterns
//! property tests actually use as strategies.
//!
//! Supported: literal characters, `\\` escapes of metacharacters,
//! character classes `[...]` with ranges (no negation), the quantifiers
//! `{n}`, `{m,n}`, `{m,}`, `*`, `+`, `?`, and `.` (any printable ASCII).
//! Anything else — groups, alternation, anchors — panics with a clear
//! message so an unsupported pattern fails loudly rather than silently
//! generating garbage.

use crate::TestRng;

/// Cap applied to open-ended quantifiers (`*`, `+`, `{m,}`).
const UNBOUNDED_CAP: usize = 8;

#[derive(Debug, Clone)]
enum Atom {
    /// A fixed character.
    Literal(char),
    /// One choice from an explicit set.
    Class(Vec<char>),
}

impl Atom {
    fn emit(&self, rng: &mut TestRng, out: &mut String) {
        match self {
            Self::Literal(c) => out.push(*c),
            Self::Class(set) => out.push(set[rng.next_usize_in(0, set.len())]),
        }
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> Atom {
    let mut set = Vec::new();
    if chars.peek() == Some(&'^') {
        panic!("regex shim: negated classes are unsupported in {pattern:?}");
    }
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("regex shim: unterminated class in {pattern:?}"));
        match c {
            ']' => break,
            '\\' => {
                let escaped = chars
                    .next()
                    .unwrap_or_else(|| panic!("regex shim: dangling escape in {pattern:?}"));
                set.push(escaped);
            }
            lo => {
                if chars.peek() == Some(&'-') {
                    chars.next();
                    match chars.peek() {
                        Some(']') | None => set.extend([lo, '-']),
                        Some(&hi) => {
                            chars.next();
                            assert!(
                                lo <= hi,
                                "regex shim: inverted range {lo}-{hi} in {pattern:?}"
                            );
                            set.extend(lo..=hi);
                        }
                    }
                } else {
                    set.push(lo);
                }
            }
        }
    }
    assert!(!set.is_empty(), "regex shim: empty class in {pattern:?}");
    Atom::Class(set)
}

fn parse_counted(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> (usize, usize) {
    let mut spec = String::new();
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("regex shim: unterminated quantifier in {pattern:?}"));
        if c == '}' {
            break;
        }
        spec.push(c);
    }
    let parse = |s: &str| {
        s.parse::<usize>()
            .unwrap_or_else(|_| panic!("regex shim: bad quantifier {{{spec}}} in {pattern:?}"))
    };
    match spec.split_once(',') {
        None => {
            let n = parse(&spec);
            (n, n)
        }
        Some((lo, "")) => {
            let lo = parse(lo);
            (lo, lo + UNBOUNDED_CAP)
        }
        Some((lo, hi)) => (parse(lo), parse(hi)),
    }
}

/// Generates one string matching `pattern`.
///
/// # Panics
///
/// Panics on syntax outside the supported subset.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let mut chars = pattern.chars().peekable();
    let mut last: Option<Atom> = None;

    while let Some(c) = chars.next() {
        // Quantifiers apply to the immediately preceding atom, which has
        // already been emitted once; adjust by the extra repetitions.
        let (min, max) = match c {
            '{' => parse_counted(&mut chars, pattern),
            '*' => (0, UNBOUNDED_CAP),
            '+' => (1, 1 + UNBOUNDED_CAP),
            '?' => (0, 1),
            _ => {
                let atom =
                    match c {
                        '[' => parse_class(&mut chars, pattern),
                        '\\' => Atom::Literal(chars.next().unwrap_or_else(|| {
                            panic!("regex shim: dangling escape in {pattern:?}")
                        })),
                        '.' => Atom::Class((' '..='~').collect()),
                        '(' | ')' | '|' | '^' | '$' => {
                            panic!("regex shim: unsupported metacharacter {c:?} in {pattern:?}")
                        }
                        literal => Atom::Literal(literal),
                    };
                atom.emit(rng, &mut out);
                last = Some(atom);
                continue;
            }
        };

        let atom = last
            .take()
            .unwrap_or_else(|| panic!("regex shim: quantifier with no atom in {pattern:?}"));
        // The atom was already emitted once; remove it and re-emit the
        // sampled count.
        out.pop();
        let count = if min == max {
            min
        } else {
            rng.next_usize_in(min, max + 1)
        };
        for _ in 0..count {
            atom.emit(rng, &mut out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_passthrough() {
        let mut rng = TestRng::new(1);
        assert_eq!(generate("abc_1", &mut rng), "abc_1");
    }

    #[test]
    fn class_and_counted_repeat() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let s = generate("[ab]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.len()));
            assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }
    }

    #[test]
    fn question_star_plus() {
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let s = generate("x?y+z*", &mut rng);
            assert!(s.contains('y'));
            assert!(s.chars().all(|c| "xyz".contains(c)));
        }
    }

    #[test]
    fn exact_count() {
        let mut rng = TestRng::new(4);
        assert_eq!(generate("[0-9]{3}", &mut rng).len(), 3);
    }

    #[test]
    #[should_panic(expected = "unsupported metacharacter")]
    fn groups_rejected() {
        let mut rng = TestRng::new(5);
        let _ = generate("(ab)+", &mut rng);
    }
}
