//! The [`Strategy`] trait and the strategy combinators the workspace
//! uses: numeric ranges, tuples, [`Just`], regex-subset strings,
//! `collection::vec`, `prop_map` and `prop_filter`.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::regexgen;
use crate::TestRng;

/// How many times `prop_filter` retries before giving up on a case.
const FILTER_RETRIES: usize = 256;

/// A generator of test-case values (mirrors `proptest::strategy::Strategy`,
/// minus shrinking: there is no value tree, just direct generation).
pub trait Strategy {
    /// The type of value this strategy yields.
    type Value;

    /// Generates one value from the deterministic stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }

    /// Keeps only values for which `pred` holds, retrying generation a
    /// bounded number of times.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erases the strategy (mirrors `Strategy::boxed`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let value = self.inner.generate(rng);
            if (self.pred)(&value) {
                return value;
            }
        }
        panic!(
            "prop_filter({:?}) rejected {FILTER_RETRIES} consecutive values",
            self.whence
        );
    }
}

/// Output of [`Strategy::boxed`].
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

// NOTE: the range-sampling math here intentionally parallels the rand
// shim's `SampleRange` impls rather than depending on it — each shim
// stays a standalone drop-out when its upstream crate returns. Fixes to
// one copy belong in both.
macro_rules! impl_float_range_strategy {
    ($($t:ty => $unit:ident),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = $unit(rng);
                self.start + u * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                // Hit both endpoints occasionally: properties over closed
                // ranges usually care most about the boundary.
                match rng.next_u64() % 64 {
                    0 => lo,
                    1 => hi,
                    _ => lo + $unit(rng) * (hi - lo),
                }
            }
        }
    )*};
}

/// Uniform `f32` in `[0, 1)` built from 24 mantissa bits; casting
/// `next_f64()` down would round values near 1 up to exactly 1.0 and
/// leak the excluded endpoint of half-open ranges.
#[allow(clippy::cast_possible_truncation)]
fn unit_f32(rng: &mut TestRng) -> f32 {
    ((rng.next_u64() >> 40) as u32) as f32 * (1.0 / (1u32 << 24) as f32)
}

fn unit_f64(rng: &mut TestRng) -> f64 {
    rng.next_f64()
}

impl_float_range_strategy!(f32 => unit_f32, f64 => unit_f64);

macro_rules! impl_int_range_strategy {
    ($($t:ty => $ut:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_lossless)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Width the span in the type's unsigned domain first: a
                // direct `as u64` would sign-extend a wrapped signed
                // difference and explode the span.
                let span = self.end.wrapping_sub(self.start) as $ut as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_lossless)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi.wrapping_sub(lo) as $ut as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

/// `&str` strategies generate strings matching the pattern, a regex
/// subset: literals, `[...]` classes with ranges, `{n}`/`{m,n}`/`{m,}`,
/// `*`, `+`, `?` and `.`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        regexgen::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Element-count specification for [`vec()`] (mirrors
/// `proptest::collection::SizeRange`).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = (*r.start(), *r.end());
        assert!(lo <= hi, "empty size range");
        Self { lo, hi: hi + 1 }
    }
}

/// A strategy yielding `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 >= self.size.hi {
            self.size.lo
        } else {
            rng.next_usize_in(self.size.lo, self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Builds a [`VecStrategy`] (mirrors `proptest::collection::vec`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// A strategy yielding an arbitrary value of a primitive type, via the
/// type's full-range strategy (narrow mirror of `proptest::arbitrary`).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Returns the full-range strategy for `T` (mirrors `proptest::prelude::any`).
#[must_use]
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let magnitude = (rng.next_f64() * 600.0 - 300.0).exp2();
        if rng.next_u64() & 1 == 1 {
            -magnitude
        } else {
            magnitude
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..2_000 {
            let x = (10.0..20.0f64).generate(&mut rng);
            assert!((10.0..20.0).contains(&x));
            let y = (0.0..=1.0f64).generate(&mut rng);
            assert!((0.0..=1.0).contains(&y));
            let n = (5u64..9).generate(&mut rng);
            assert!((5..9).contains(&n));
            let m = (1usize..=3).generate(&mut rng);
            assert!((1..=3).contains(&m));
        }
    }

    #[test]
    fn narrow_signed_ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..5_000 {
            let a = (-100i8..100).generate(&mut rng);
            assert!((-100..100).contains(&a), "i8 out of range: {a}");
            let b = (-30_000i16..=30_000).generate(&mut rng);
            assert!((-30_000..=30_000).contains(&b), "i16 out of range: {b}");
        }
    }

    #[test]
    fn f32_half_open_range_excludes_end() {
        let mut rng = TestRng::new(8);
        for _ in 0..200_000 {
            let x = (0.0f32..1.0f32).generate(&mut rng);
            assert!((0.0..1.0).contains(&x), "f32 leaked range end: {x}");
        }
    }

    #[test]
    fn inclusive_float_hits_endpoints() {
        let mut rng = TestRng::new(2);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let x = (0.0..=1.0f64).generate(&mut rng);
            lo_seen |= x == 0.0;
            hi_seen |= x == 1.0;
        }
        assert!(lo_seen && hi_seen, "endpoints should appear occasionally");
    }

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::new(3);
        for _ in 0..500 {
            let v = vec(0.0..1.0f64, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
        let fixed = vec(0u64..10, 4).generate(&mut rng);
        assert_eq!(fixed.len(), 4);
    }

    #[test]
    fn map_filter_and_just_compose() {
        let mut rng = TestRng::new(4);
        let s = (0u64..100)
            .prop_map(|n| n * 2)
            .prop_filter("nonzero", |n| *n != 0);
        for _ in 0..200 {
            let n = s.generate(&mut rng);
            assert!(n % 2 == 0 && n != 0);
        }
        assert_eq!(Just(7u8).generate(&mut rng), 7);
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::new(5);
        let (a, b) = (0.0..1.0f64, 10u64..20).generate(&mut rng);
        assert!((0.0..1.0).contains(&a));
        assert!((10..20).contains(&b));
    }

    #[test]
    fn string_strategy_matches_pattern_shape() {
        let mut rng = TestRng::new(6);
        for _ in 0..500 {
            let s = "[a-z][a-z0-9_]{0,12}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 13, "bad length: {s:?}");
            let mut chars = s.chars();
            assert!(chars.next().unwrap().is_ascii_lowercase());
            assert!(chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }
}
