//! Offline shim for `proptest`.
//!
//! Generate-only property testing with the upstream macro surface:
//! [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`],
//! [`prop_assert_ne!`], [`prop_assume!`], strategies over numeric ranges,
//! tuples, [`Just`], `prop::collection::vec`, a regex-subset string
//! strategy, and the [`Strategy::prop_map`] / [`Strategy::prop_filter`]
//! adapters. Unlike upstream there is **no shrinking**: a failing case
//! reports its generated inputs and the deterministic seed instead.
//!
//! Case generation is deterministic per test name (FNV of the name mixed
//! with the case index), so failures reproduce across runs; set
//! `PROPTEST_SHIM_SEED` to explore a different stream.

use std::fmt;

mod regexgen;
pub mod strategy;

pub use strategy::{any, vec, Just, Map, Strategy, VecStrategy};

/// Namespace mirror of `proptest::prop`.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        pub use crate::strategy::{vec, SizeRange, VecStrategy};
    }
}

/// Deterministic SplitMix64 stream driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    pub fn next_usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// Why a test case did not pass (mirrors `proptest::test_runner`).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case asked to be discarded (`prop_assume!`).
    Reject(String),
}

impl TestCaseError {
    /// A failing case carrying `reason`.
    #[must_use]
    pub fn fail(reason: impl Into<String>) -> Self {
        Self::Fail(reason.into())
    }

    /// A discarded case carrying `reason`.
    #[must_use]
    pub fn reject(reason: impl Into<String>) -> Self {
        Self::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Fail(reason) => write!(f, "test case failed: {reason}"),
            Self::Reject(reason) => write!(f, "test case rejected: {reason}"),
        }
    }
}

/// Runner configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
    /// Maximum consecutive `prop_assume!`/`prop_filter` rejections
    /// tolerated before the property errors out.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 1024,
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Drives one property: `cases` deterministic cases, panicking with the
/// case number and seed on the first failure. Used by [`proptest!`]; not
/// part of the upstream API.
///
/// # Panics
///
/// Panics when a case fails or when too many cases are rejected.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = match std::env::var("PROPTEST_SHIM_SEED") {
        Ok(s) => s
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("PROPTEST_SHIM_SEED must be a u64, got {s:?}")),
        Err(_) => 0x5EED_1EAC_0C71_2013u64 ^ fnv1a(name.as_bytes()),
    };
    let mut rejects = 0u32;
    let mut index = 0u64;
    let mut passed = 0u32;
    while passed < config.cases {
        let seed = base.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        index += 1;
        let mut rng = TestRng::new(seed);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(reason)) => {
                rejects += 1;
                assert!(
                    rejects <= config.max_global_rejects,
                    "property {name}: too many rejected cases ({rejects}); last: {reason}"
                );
            }
            Err(TestCaseError::Fail(reason)) => {
                panic!(
                    "property {name} failed at case #{passed} (seed {seed:#x}): {reason}\n\
                     (re-run with PROPTEST_SHIM_SEED={base} to reproduce the stream)"
                );
            }
        }
    }
}

/// Defines property tests (mirrors `proptest::proptest!`).
///
/// Supports the upstream block form: an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions
/// whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_proptest(
                    &config,
                    stringify!($name),
                    |proptest_shim_rng: &mut $crate::TestRng| {
                        $(
                            let $arg = $crate::Strategy::generate(
                                &($strat),
                                proptest_shim_rng,
                            );
                        )+
                        $body
                        ::core::result::Result::<(), $crate::TestCaseError>::Ok(())
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Asserts two values differ inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left != right, $($fmt)+);
    }};
}

/// Discards the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Everything a property-test module needs (mirrors
/// `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}
