//! Offline shim for `serde_derive`: the derives accept the same input as
//! the real macros (including `#[serde(...)]` attributes) and expand to
//! nothing. The sibling `serde` shim blanket-implements the marker
//! traits, so `#[derive(serde::Serialize)]` stays a compile-time no-op
//! until the workspace actually serializes something.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
