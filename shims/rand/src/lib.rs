//! Offline shim for `rand 0.8`.
//!
//! Implements the subset of the `rand` API the workspace uses:
//! [`RngCore`], [`SeedableRng`], [`Error`], and the [`Rng`] extension
//! trait with `gen`, `gen_range` and `gen_bool`. The workspace brings its
//! own generator (`leakctl_sim::SimRng` implements [`RngCore`]); this
//! crate only supplies the traits and the distribution plumbing on top.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type reported by fallible generator methods (mirrors
/// `rand::Error`). The shim's implementations never actually fail.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error carrying a static message.
    #[must_use]
    pub fn new(msg: &'static str) -> Self {
        Self { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for Error {}

/// Core generator interface (mirrors `rand::RngCore`).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

/// Seedable construction (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed byte-array type.
    type Seed;

    /// Builds a generator from a fixed seed.
    fn from_seed(seed: Self::Seed) -> Self;
}

/// Values drawable from the "standard" distribution (the role of
/// `rand::distributions::Standard`): full-range integers, `[0, 1)`
/// floats, fair booleans.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform double in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from uniformly (the role of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as StandardSample>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

macro_rules! impl_sample_range_int {
    ($($t:ty => $ut:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_lossless)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Width the span in the type's unsigned domain first: a
                // direct `as u64` would sign-extend a wrapped signed
                // difference and explode the span.
                let span = self.end.wrapping_sub(self.start) as $ut as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_lossless)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi.wrapping_sub(lo) as $ut as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

/// Convenience extension over [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Self: Sized,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        <f64 as StandardSample>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 so the stream looks uniform enough for tests.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1_000 {
            let x: f64 = rng.gen_range(10.0..20.0);
            assert!((10.0..20.0).contains(&x));
            let n: u64 = rng.gen_range(5u64..8);
            assert!((5..8).contains(&n));
            let m: usize = rng.gen_range(0usize..=3);
            assert!(m <= 3);
        }
    }

    #[test]
    fn gen_range_narrow_signed_types_stay_in_bounds() {
        let mut rng = Counter(4);
        for _ in 0..5_000 {
            let a: i8 = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&a), "i8 out of range: {a}");
            let b: i16 = rng.gen_range(-30_000i16..=30_000);
            assert!((-30_000..=30_000).contains(&b), "i16 out of range: {b}");
            let c: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&c), "i64 out of range: {c}");
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn standard_floats_in_unit_interval() {
        let mut rng = Counter(3);
        for _ in 0..1_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
