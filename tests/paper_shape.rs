//! The "shape" assertions from DESIGN.md §4: the qualitative results
//! the reproduction must preserve even though absolute watts differ
//! from the authors' testbed. This is the closest thing to an automated
//! referee for the reproduction.

use leakctl::prelude::*;
use leakctl::{build_lut_from_characterization, fig2a, fig2b, RunOptions};

struct Pipeline {
    data: leakctl::CharacterizationData,
    fitted: leakctl::FittedModels,
    lut: LookupTable,
}

fn pipeline() -> Pipeline {
    let data = characterize(&CharacterizeOptions::quick(), 42).expect("characterize");
    let fitted = fit_models(&data).expect("fit");
    let lut = build_lut_from_characterization(&data, &fitted).expect("LUT");
    Pipeline { data, fitted, lut }
}

/// (i) `P_leak + P_fan` is convex-like with an interior minimum that
/// sits below 75 °C (Fig. 2a), and the per-utilization optima all sit
/// at or below ≈70 °C (Fig. 2b).
#[test]
fn shape_convex_controllable_power() {
    let p = pipeline();
    let fig_a = fig2a(&p.data, &p.fitted).expect("fig2a");
    let points = &fig_a.groups[0].1;
    let costs: Vec<f64> = points.iter().map(|q| q.fan_plus_leak()).collect();
    let min_idx = costs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    assert!(
        min_idx != 0 && min_idx != costs.len() - 1,
        "interior minimum expected: {costs:?}"
    );
    let optimum = fig_a.optimum_of("100%").expect("optimum");
    assert!(
        optimum.temp_c < 75.0,
        "optimum at {:.1} C violates the operational cap",
        optimum.temp_c
    );
    assert!(
        (60.0..=74.0).contains(&optimum.temp_c),
        "optimum {:.1} C should sit near the paper's ~70 C",
        optimum.temp_c
    );

    let fig_b = fig2b(&p.data, &p.fitted).expect("fig2b");
    for (label, _) in &fig_b.groups {
        let opt = fig_b.optimum_of(label).expect("optimum per level");
        assert!(
            opt.temp_c <= 74.0,
            "{label}: optimum at {:.1} C above the paper's ≤ ~70 C claim",
            opt.temp_c
        );
    }
}

/// (ii) Energy ordering LUT ≤ Bang ≤ Default with LUT net savings in a
/// mid-single-digit to low-double-digit percent band.
#[test]
fn shape_energy_ordering_and_savings() {
    let p = pipeline();
    let run = RunOptions {
        record: false,
        ..RunOptions::default()
    };
    let idle = leakctl::measure_idle_power(&run.config, 42).expect("idle");

    let profile = leakctl_workload::suite::test2();
    let duration = leakctl_workload::suite::TEST_DURATION;

    let mut default = FixedSpeedController::paper_default();
    let e_default = leakctl::run_experiment(&run, profile.clone(), &mut default, 42)
        .expect("run")
        .metrics
        .total_energy;
    let mut bang = BangBangController::paper_default();
    let e_bang = leakctl::run_experiment(&run, profile.clone(), &mut bang, 42)
        .expect("run")
        .metrics
        .total_energy;
    let mut lutc = LutController::paper_default(p.lut.clone());
    let e_lut = leakctl::run_experiment(&run, profile, &mut lutc, 42)
        .expect("run")
        .metrics
        .total_energy;

    assert!(e_lut <= e_bang && e_bang <= e_default, "ordering violated");

    let idle_energy = idle * duration;
    let net_base = e_default - idle_energy;
    let savings = (net_base - (e_lut - idle_energy)).value() / net_base.value() * 100.0;
    assert!(
        (3.0..=15.0).contains(&savings),
        "LUT net savings {savings:.1}% outside the paper-like band"
    );
}

/// (iii) Peak power: the LUT cuts peak power relative to the default.
#[test]
fn shape_peak_power_reduction() {
    let p = pipeline();
    let run = RunOptions {
        record: false,
        ..RunOptions::default()
    };
    let profile = leakctl_workload::suite::test2();

    let mut default = FixedSpeedController::paper_default();
    let peak_default = leakctl::run_experiment(&run, profile.clone(), &mut default, 42)
        .expect("run")
        .metrics
        .peak_power;
    let mut lutc = LutController::paper_default(p.lut.clone());
    let peak_lut = leakctl::run_experiment(&run, profile, &mut lutc, 42)
        .expect("run")
        .metrics
        .peak_power;
    let cut = peak_default.value() - peak_lut.value();
    assert!(
        (2.0..=40.0).contains(&cut),
        "peak power cut {cut:.1} W outside the paper-like 5-30 W band"
    );
}

/// (iv) Thermal time constants shrink several-fold from 1800 to
/// 4200 RPM (Fig. 1a).
#[test]
fn shape_time_constant_spread() {
    let tau = |rpm: f64| -> f64 {
        let mut server = Server::new(ServerConfig::default(), 1).expect("server");
        server.command_fan_speed(Rpm::new(rpm));
        for _ in 0..900 {
            server
                .step(SimDuration::from_secs(1), Utilization::IDLE)
                .expect("step");
        }
        let t0 = server.max_die_temperature().degrees();
        let (targets, _) = server
            .steady_state_preview(Utilization::FULL, Rpm::new(rpm))
            .expect("preview");
        let t_inf = targets
            .iter()
            .map(|t| t.degrees())
            .fold(f64::NEG_INFINITY, f64::max);
        let threshold = t0 + 0.632 * (t_inf - t0);
        let mut secs = 0.0;
        while server.max_die_temperature().degrees() < threshold && secs < 3600.0 {
            server
                .step(SimDuration::from_secs(1), Utilization::FULL)
                .expect("step");
            secs += 1.0;
        }
        secs
    };
    let slow = tau(1800.0);
    let fast = tau(4200.0);
    assert!(
        slow > 1.8 * fast,
        "τ(1800) = {slow}s vs τ(4200) = {fast}s: spread too small"
    );
}

/// (v) The fitted constants land near the paper's values — the plant is
/// calibrated to them, so the identification pipeline should recover
/// them through the noise.
#[test]
fn shape_fitted_constants_near_paper() {
    let p = pipeline();
    assert!(
        (p.fitted.k1 - leakctl::paper::K1).abs() < 0.12,
        "k1 = {:.4} vs paper {:.4}",
        p.fitted.k1,
        leakctl::paper::K1
    );
    assert!(
        (p.fitted.k3 - leakctl::paper::K3).abs() < 0.012,
        "k3 = {:.5} vs paper {:.5}",
        p.fitted.k3,
        leakctl::paper::K3
    );
    assert!(
        p.fitted.k2 > 0.05 && p.fitted.k2 < 2.0,
        "k2 = {:.4} implausible vs paper {:.4}",
        p.fitted.k2,
        leakctl::paper::K2
    );
    assert!(
        p.fitted.goodness.rmse < 8.0,
        "fit rmse {:.2} W too large (paper: 2.243 W)",
        p.fitted.goodness.rmse
    );
    assert!(p.fitted.goodness.accuracy_percent > 95.0);
}

/// The LUT keeps operating temperature at or below the paper's 75 °C
/// target on every suite workload.
#[test]
fn shape_lut_temperature_cap() {
    let p = pipeline();
    let run = RunOptions {
        record: false,
        ..RunOptions::default()
    };
    for (name, profile) in leakctl_workload::suite::all(42) {
        let mut ctl = LutController::paper_default(p.lut.clone());
        let m = leakctl::run_experiment(&run, profile, &mut ctl, 42)
            .expect("run")
            .metrics;
        assert!(
            m.max_temp.degrees() <= 76.0,
            "{name}: LUT max temp {:.1} C above the 75 C target",
            m.max_temp.degrees()
        );
    }
}
