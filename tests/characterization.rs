//! Integration tests of the characterization stage: the measured grids
//! must exhibit the physics the paper reports in §IV.

use leakctl::prelude::*;
use leakctl::{characterize, CharacterizeOptions};

fn data() -> leakctl::CharacterizationData {
    let options = CharacterizeOptions {
        utilizations: vec![
            Utilization::from_percent(25.0).unwrap(),
            Utilization::from_percent(50.0).unwrap(),
            Utilization::from_percent(75.0).unwrap(),
            Utilization::from_percent(100.0).unwrap(),
        ],
        fan_speeds: vec![
            Rpm::new(1800.0),
            Rpm::new(2400.0),
            Rpm::new(3000.0),
            Rpm::new(4200.0),
        ],
        warmup: SimDuration::from_mins(3),
        stabilize: SimDuration::from_mins(2),
        run: SimDuration::from_mins(20),
        measure_window: SimDuration::from_mins(5),
        ..CharacterizeOptions::paper()
    };
    characterize(&options, 5).expect("characterization succeeds")
}

#[test]
fn temperature_monotone_in_fan_speed_and_load() {
    let d = data();
    for u in d.utilization_axis() {
        let pts = d.at_utilization(u);
        for pair in pts.windows(2) {
            assert!(
                pair[1].avg_cpu_temp < pair[0].avg_cpu_temp,
                "at {u}: temp must fall as RPM rises"
            );
        }
    }
    for rpm in d.rpm_axis() {
        let mut prev: Option<f64> = None;
        for u in d.utilization_axis() {
            let t = d.point(u, rpm).unwrap().avg_cpu_temp.degrees();
            if let Some(p) = prev {
                assert!(t > p, "at {rpm}: temp must rise with load");
            }
            prev = Some(t);
        }
    }
}

#[test]
fn steady_temperatures_match_paper_anchor_points() {
    // Fig. 1(a) anchors at 100 % utilization (±5 °C tolerance: our
    // substrate is calibrated, not identical). Values are 4-sensor
    // averages, a couple of degrees below the hottest-die anchors in
    // DESIGN.md §5 because the cooler socket pulls the mean down.
    let d = data();
    let anchors = [
        (1800.0, 82.0),
        (2400.0, 70.0),
        (3000.0, 63.0),
        (4200.0, 55.0),
    ];
    for (rpm, expect) in anchors {
        let t = d
            .point(Utilization::FULL, Rpm::new(rpm))
            .unwrap()
            .avg_cpu_temp
            .degrees();
        assert!(
            (t - expect).abs() < 5.0,
            "at {rpm} RPM expected ~{expect} C, measured {t:.1} C"
        );
    }
}

#[test]
fn fan_power_cubic_in_speed() {
    let d = data();
    let at = |rpm: f64| {
        d.point(Utilization::FULL, Rpm::new(rpm))
            .unwrap()
            .fan_power
            .value()
    };
    let (slow, mid, fast) = (at(1800.0), at(3000.0), at(4200.0));
    assert!(slow < mid && mid < fast);
    // Cubic growth: P(4200)/P(1800) ≈ (4200/1800)³ ≈ 12.7 (floors and
    // sensor noise soften it slightly).
    let ratio = fast / slow;
    assert!(
        (7.0..=16.0).contains(&ratio),
        "fan power ratio {ratio:.1} not cubic-like"
    );
}

#[test]
fn controllable_power_convex_at_full_load() {
    // Fan + true-leakage cost across fan speeds has an interior
    // minimum at 100 % load — the existence argument behind the LUT.
    let d = data();
    let pts = d.at_utilization(Utilization::FULL);
    let costs: Vec<f64> = pts
        .iter()
        .map(|p| p.fan_power.value() + p.true_leakage.value())
        .collect();
    let min_idx = costs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    assert!(
        min_idx != 0 && min_idx != costs.len() - 1,
        "interior optimum expected, costs (ascending RPM): {costs:?}"
    );
}

#[test]
fn measurements_reproducible_for_fixed_seed() {
    let a = data();
    let b = data();
    assert_eq!(a, b, "characterization must be deterministic per seed");
}
