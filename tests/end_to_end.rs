//! End-to-end integration: the complete paper pipeline — characterize,
//! fit, build the LUT, evaluate a controller — on reduced grids that
//! keep the suite fast while crossing every crate boundary.

use leakctl::prelude::*;
use leakctl::{build_lut_from_characterization, RunOptions};

fn quick_data() -> (leakctl::CharacterizationData, leakctl::FittedModels) {
    let data = characterize(&CharacterizeOptions::quick(), 11).expect("characterize");
    let fitted = fit_models(&data).expect("fit");
    (data, fitted)
}

#[test]
fn pipeline_characterize_fit_build_run() {
    let (data, fitted) = quick_data();

    // The fit must resemble the paper's constants (same plant family).
    assert!(
        (0.3..0.7).contains(&fitted.k1),
        "k1 = {} far from paper 0.4452",
        fitted.k1
    );
    assert!(
        (0.02..0.09).contains(&fitted.k3),
        "k3 = {} far from paper 0.04749",
        fitted.k3
    );
    assert!(fitted.goodness.r_squared > 0.9, "fit quality degraded");

    let lut = build_lut_from_characterization(&data, &fitted).expect("LUT");
    // Full-load optimum is interior: the paper's central observation.
    let at_full = lut.lookup(Utilization::FULL);
    assert!(
        at_full > Rpm::new(1800.0) && at_full < Rpm::new(4200.0),
        "full-load optimum {at_full} should be interior"
    );
    // Low load never needs more cooling than high load.
    let at_low = lut.lookup(Utilization::from_percent(10.0).unwrap());
    assert!(at_low <= at_full);

    // Run the LUT controller end to end on a step profile.
    let profile = Profile::builder()
        .hold_percent(20.0, SimDuration::from_mins(10))
        .unwrap()
        .hold_percent(95.0, SimDuration::from_mins(10))
        .unwrap()
        .build();
    let mut run = RunOptions::fast();
    run.record = true;
    let mut ctl = LutController::paper_default(lut);
    let outcome = leakctl::run_experiment(&run, profile, &mut ctl, 11).expect("run");
    assert!(outcome.metrics.max_temp.degrees() < 80.0);
    assert!(outcome.metrics.total_energy.value() > 0.0);
    assert_eq!(outcome.metrics.failsafe_activations, 0);
    assert!(!outcome.samples.is_empty());
}

#[test]
fn telemetry_csv_round_trip_through_pipeline() {
    // A short run's telemetry exports to CSV and parses back intact.
    let mut server = Server::new(ServerConfig::default(), 3).expect("server");
    server.command_fan_speed(Rpm::new(2400.0));
    for _ in 0..120 {
        server
            .step(SimDuration::from_secs(1), Utilization::FULL)
            .expect("step");
    }
    let csv = server.csth().to_csv().expect("export");
    let parsed = leakctl_telemetry::Csth::from_csv(&csv, leakctl_telemetry::CSTH_POLL_PERIOD)
        .expect("parse");
    assert_eq!(parsed.channel_count(), server.csth().channel_count());
    assert_eq!(parsed.sample_count(), server.csth().sample_count());
    let ch = parsed.channel_by_name("system_power").expect("channel");
    assert!(parsed.series(ch).mean().expect("samples") > 400.0);
}

#[test]
fn fitted_leakage_tracks_ground_truth() {
    // The fitted k2·e^(k3·T) must track the twin's physical leakage
    // (up to the inseparable constant) across the measured range.
    let (data, fitted) = quick_data();
    let leak = fitted.leakage();
    for p in &data.points {
        let predicted = leak.power(p.avg_cpu_temp).value();
        let truth = p.true_leakage.value();
        let diff = truth - predicted;
        // The constant part of the physical model (9 W) is absorbed in
        // `base`; the *shape* must agree within a few watts.
        assert!(
            (5.0..=13.0).contains(&diff),
            "at {:.1} C: truth {truth:.1} W vs fitted {predicted:.1} W (diff {diff:.1})",
            p.avg_cpu_temp.degrees()
        );
    }
}
