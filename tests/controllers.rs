//! Integration tests of the three controllers against the live digital
//! twin (not against mocks): thermal caps, reactivity, and energy
//! ordering.

use leakctl::prelude::*;
use leakctl::RunOptions;
use leakctl_workload::suite;

fn lut() -> LookupTable {
    let data = characterize(&CharacterizeOptions::quick(), 21).expect("characterize");
    let fitted = fit_models(&data).expect("fit");
    leakctl::build_lut_from_characterization(&data, &fitted).expect("LUT")
}

fn run(controller: &mut dyn FanController, profile: Profile, seed: u64) -> leakctl::RunMetrics {
    let mut options = RunOptions::fast();
    options.record = false;
    leakctl::run_experiment(&options, profile, controller, seed)
        .expect("run succeeds")
        .metrics
}

fn spiky_profile() -> Profile {
    Profile::builder()
        .hold_percent(90.0, SimDuration::from_mins(8))
        .unwrap()
        .hold_percent(10.0, SimDuration::from_mins(8))
        .unwrap()
        .hold_percent(95.0, SimDuration::from_mins(8))
        .unwrap()
        .hold_percent(15.0, SimDuration::from_mins(8))
        .unwrap()
        .build()
}

#[test]
fn energy_ordering_holds_on_spiky_load() {
    let table = lut();
    let mut default = FixedSpeedController::paper_default();
    let mut bang = BangBangController::paper_default();
    let mut lutc = LutController::paper_default(table);

    let e_default = run(&mut default, spiky_profile(), 9).total_energy;
    let e_bang = run(&mut bang, spiky_profile(), 9).total_energy;
    let e_lut = run(&mut lutc, spiky_profile(), 9).total_energy;

    assert!(
        e_lut < e_default,
        "LUT {e_lut:?} must beat default {e_default:?}"
    );
    assert!(
        e_bang < e_default,
        "bang-bang {e_bang:?} must beat default {e_default:?}"
    );
    assert!(
        e_lut <= e_bang * 1.005,
        "LUT {e_lut:?} should not lose clearly to bang-bang {e_bang:?}"
    );
}

#[test]
fn all_controllers_respect_operational_temperature() {
    let table = lut();
    let mut controllers: Vec<Box<dyn FanController>> = vec![
        Box::new(FixedSpeedController::paper_default()),
        Box::new(BangBangController::paper_default()),
        Box::new(LutController::paper_default(table)),
        Box::new(PidController::paper_tuned()),
    ];
    for ctl in &mut controllers {
        let m = run(ctl.as_mut(), suite::test3(), 13);
        assert!(
            m.max_temp.degrees() < 82.0,
            "{}: max temp {:.1} C exceeds the safety margin",
            ctl.name(),
            m.max_temp.degrees()
        );
        assert_eq!(
            m.failsafe_activations,
            0,
            "{}: failsafe must never trip under paper workloads",
            ctl.name()
        );
    }
}

#[test]
fn lut_rate_limit_bounds_fan_changes() {
    let table = lut();
    let mut ctl = LutController::paper_default(table);
    let m = run(&mut ctl, suite::test3(), 17);
    // 80 minutes of profile with a 1-minute lockout bounds changes at
    // ~80; the paper reports ~12 and we expect the same order.
    assert!(
        m.fan_changes <= 25,
        "{} fan changes — rate limiting not effective",
        m.fan_changes
    );
}

#[test]
fn default_controller_overcools() {
    // The baseline's defining property: cold temperatures from
    // permanently high fan speed.
    let mut default = FixedSpeedController::paper_default();
    let m = run(&mut default, suite::test1(), 23);
    assert!(
        m.max_temp.degrees() < 65.0,
        "default max temp {:.1} C should stay low (over-cooling)",
        m.max_temp.degrees()
    );
    assert!((3250.0..=3350.0).contains(&m.avg_rpm.value()));
}

#[test]
fn bang_bang_lets_temperature_rise_into_band() {
    let mut bang = BangBangController::paper_default();
    let m = run(&mut bang, suite::test1(), 23);
    assert!(
        m.max_temp.degrees() > 65.0,
        "bang-bang should let temperature rise into the 65-75 C band, got {:.1} C",
        m.max_temp.degrees()
    );
    assert!(
        m.avg_rpm < Rpm::new(2600.0),
        "bang-bang should slow the fans"
    );
}

#[test]
fn pid_extension_regulates_near_setpoint() {
    let mut pid = PidController::paper_tuned();
    let profile = Profile::constant(Utilization::FULL, SimDuration::from_mins(40)).unwrap();
    let mut options = RunOptions::fast();
    options.record = true;
    let outcome = leakctl::run_experiment(&options, profile, &mut pid, 29).expect("run");
    // In the second half of the run, measured temperature should hover
    // near the 70 °C setpoint.
    let late: Vec<f64> = outcome
        .samples
        .iter()
        .filter(|s| s.minutes > 25.0 && s.minutes < 41.0)
        .map(|s| s.cpu_temp_measured)
        .collect();
    let mean = late.iter().sum::<f64>() / late.len().max(1) as f64;
    assert!(
        (66.0..=74.0).contains(&mean),
        "PID steady temperature {mean:.1} C not near the 70 C setpoint"
    );
}
