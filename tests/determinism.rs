//! Reproducibility: every pipeline stage is bit-identical for a fixed
//! seed and sensitive to seed changes only where randomness is
//! intended.

use leakctl::prelude::*;
use leakctl::RunOptions;
use leakctl_sim::SimRng;
use leakctl_workload::MmcQueue;

#[test]
fn characterization_is_deterministic() {
    let a = characterize(&CharacterizeOptions::quick(), 99).expect("run a");
    let b = characterize(&CharacterizeOptions::quick(), 99).expect("run b");
    assert_eq!(a, b);
    let c = characterize(&CharacterizeOptions::quick(), 100).expect("run c");
    assert_ne!(a, c, "different seeds must change sensor noise");
}

#[test]
fn experiment_runs_are_deterministic() {
    let run = |seed: u64| {
        let profile = Profile::constant(
            Utilization::from_percent(60.0).unwrap(),
            SimDuration::from_mins(8),
        )
        .unwrap();
        let mut ctl = BangBangController::paper_default();
        let mut options = RunOptions::fast();
        options.record = true;
        leakctl::run_experiment(&options, profile, &mut ctl, seed).expect("run")
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.samples, b.samples);
}

#[test]
fn ground_truth_independent_of_sensor_seed() {
    // Sensor noise must not feed back into the physics when the
    // controller ignores telemetry (fixed-speed default).
    let energy = |seed: u64| {
        let profile = Profile::constant(Utilization::FULL, SimDuration::from_mins(8)).unwrap();
        let mut ctl = FixedSpeedController::paper_default();
        let mut options = RunOptions::fast();
        options.record = false;
        leakctl::run_experiment(&options, profile, &mut ctl, seed)
            .expect("run")
            .metrics
            .total_energy
    };
    assert_eq!(energy(1), energy(2));
}

#[test]
fn sensor_seed_affects_closed_loop_only_marginally() {
    // With a temperature-feedback controller, different sensor noise
    // may shift decisions — but outcomes must stay in a narrow band
    // (robustness of the control scheme).
    let run = |seed: u64| {
        let mut ctl = BangBangController::paper_default();
        let mut options = RunOptions::fast();
        options.record = false;
        leakctl::run_experiment(&options, leakctl_workload::suite::test3(), &mut ctl, seed)
            .expect("run")
            .metrics
    };
    let a = run(1);
    let b = run(2);
    let rel = (a.total_energy.value() - b.total_energy.value()).abs() / a.total_energy.value();
    assert!(
        rel < 0.01,
        "energy varies {:.3}% across sensor seeds",
        rel * 100.0
    );
}

#[test]
fn queueing_workload_deterministic_per_seed() {
    let gen = |seed: u64| {
        let queue = MmcQueue::new(64, 28.8, 1.0).expect("queue");
        let mut rng = SimRng::seed(seed);
        queue
            .generate(
                SimDuration::from_mins(20),
                SimDuration::from_secs(1),
                &mut rng,
            )
            .expect("generate")
    };
    let (p1, s1) = gen(5);
    let (p2, s2) = gen(5);
    assert_eq!(p1, p2);
    assert_eq!(s1, s2);
    let (p3, _) = gen(6);
    assert_ne!(p1, p3);
}

#[test]
fn table_generation_deterministic() {
    // Two miniature "tables" (one test, two controllers) agree exactly.
    let build = || {
        let mut run = RunOptions::fast();
        run.record = false;
        let profile = Profile::builder()
            .hold_percent(80.0, SimDuration::from_mins(5))
            .unwrap()
            .hold_percent(20.0, SimDuration::from_mins(5))
            .unwrap()
            .build();
        let mut default = FixedSpeedController::paper_default();
        let a = leakctl::run_experiment(&run, profile.clone(), &mut default, 31)
            .expect("run")
            .metrics;
        let mut bang = BangBangController::paper_default();
        let b = leakctl::run_experiment(&run, profile, &mut bang, 31)
            .expect("run")
            .metrics;
        (a, b)
    };
    assert_eq!(build(), build());
}
