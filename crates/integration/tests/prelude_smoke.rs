//! Workspace smoke test: the public entry points of every crate resolve
//! from a downstream consumer.
//!
//! This exists to catch manifest and feature regressions — a dropped
//! re-export, a crate renamed out from under its dependents, a dependency
//! edge removed from a `Cargo.toml` — at `cargo test` time rather than
//! when some later PR happens to touch the symbol. The `use` lists mirror
//! each crate's root re-exports; the function bodies do just enough
//! construction to force linkage.

#![allow(clippy::float_cmp)]

use leakctl::prelude::*;

#[allow(unused_imports)]
mod resolves {
    //! Pure-resolution checks: each crate root's public surface imports.

    pub use leakctl::prelude::*;
    pub use leakctl::{fig1a, fig3, generate_table1, run_experiment, RunMetrics, Table1};
    pub use leakctl_control::{
        build_lut, BangBangController, ControlInputs, FanController, FixedSpeedController,
        LookupTable, LutController, PidController, RateLimiter,
    };
    pub use leakctl_platform::{
        CpuSocket, DimmBank, FanBank, PlatformError, Server, ServerConfig, ServiceProcessor,
    };
    pub use leakctl_power::{
        ActivePowerModel, EmpiricalLeakage, FanPowerModel, PhysicalLeakage, PsuModel,
        ServerPowerModel,
    };
    pub use leakctl_sim::{Clock, EventQueue, Periodic, SimRng, TraceRecorder};
    pub use leakctl_telemetry::{ChannelId, Csth, Sensor, SensorSpec, TimeSeries, VibrationTach};
    pub use leakctl_thermal::{ConvectionModel, Integrator, ThermalError};
    pub use leakctl_units::{
        AirFlow, Amps, Celsius, Joules, Kelvin, KilowattHours, QuantityError, Rpm, SimDuration,
        SimInstant, TempDelta, ThermalCapacitance, ThermalConductance, ThermalResistance,
        Utilization, Volts, Watts,
    };
    pub use leakctl_workload::{suite, LoadGen, MmcQueue, Profile, ProfileBuilder, PwmConfig};
}

#[test]
fn units_construct_and_convert() {
    let p = Watts::new(400.0);
    let e = p * SimDuration::from_mins(30);
    assert!(e.as_kwh().value() > 0.0);
    assert!(Celsius::new(70.0).as_kelvin().kelvin() > 343.0);
    let u = Utilization::from_percent(75.0).expect("valid utilization");
    assert!(u.as_fraction() > 0.7);
}

#[test]
fn sim_rng_links() {
    let mut rng = leakctl_sim::SimRng::seed(42);
    let x = rng.next_f64();
    assert!((0.0..1.0).contains(&x));
}

#[test]
fn power_model_links() {
    let model = leakctl_power::ServerPowerModel::paper_fit();
    let p = model.total(
        Utilization::from_percent(100.0).expect("valid"),
        Celsius::new(70.0),
        Rpm::new(2400.0),
    );
    assert!(p.value() > 0.0);
}

#[test]
fn controllers_link() {
    use leakctl_control::{ControlInputs, FanController};

    let mut ctl = BangBangController::paper_default();
    let decision = ctl.decide(&ControlInputs {
        now: SimInstant::from_millis(0),
        utilization: Utilization::saturating_from_fraction(0.5),
        max_cpu_temp: Some(Celsius::new(70.0)),
    });
    assert!(decision.is_none(), "70 C sits inside the comfort band");
}

#[test]
fn workload_suite_links() {
    let profile = suite::test3();
    assert!(profile.duration() > SimDuration::from_secs(0));
}

#[test]
fn bench_pipeline_links() {
    let pipeline = leakctl_bench::quick_pipeline(leakctl_bench::REPRO_SEED);
    assert!(!pipeline.lut.entries().is_empty());
}
