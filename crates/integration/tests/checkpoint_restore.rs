//! Checkpoint/restore properties: a scenario interrupted at any step
//! and restored into a fresh room and controller — under a *different*
//! worker-thread plan — finishes bit-identically to a run that was
//! never interrupted, for every controller kind and any mid-scenario
//! checkpoint point (including mid-fault).

use leakctl::control::{
    ControlAction, FixedSupplyController, LutSetPointController, MpcConfig, MpcSetPointController,
    RoomController, TileFlowBalancer,
};
use leakctl::prelude::FanFault;
use leakctl::room::{Room, RoomConfig};
use leakctl::scenario::{Scenario, ScenarioEvent, ScenarioRunner};
use leakctl::RoomError;
use leakctl_thermal::ShardPlan;
use leakctl_units::{Celsius, Rpm, SimDuration, Utilization};
use proptest::prelude::*;

/// Fingerprint of a room trajectory, exact to the bit.
fn fingerprint(room: &Room) -> (u64, u64, u64, Vec<u64>) {
    let aisles: Vec<u64> = (0..room.racks())
        .map(|r| room.cold_aisle_temperature(r).degrees().to_bits())
        .collect();
    (
        room.total_energy().value().to_bits(),
        room.max_die_temperature().degrees().to_bits(),
        room.cooling_energy().value().to_bits(),
        aisles,
    )
}

fn controller(kind: u8) -> Box<dyn RoomController> {
    match kind % 3 {
        0 => Box::new(FixedSupplyController::new(Celsius::new(20.0))),
        1 => Box::new(
            LutSetPointController::paper_default()
                .with_balancer(TileFlowBalancer::new(0.02))
                .with_period(SimDuration::from_secs(20)),
        ),
        _ => {
            let mut cfg = MpcConfig::paper_default();
            cfg.candidates = vec![Celsius::new(16.0), Celsius::new(20.0), Celsius::new(24.0)];
            cfg.period = SimDuration::from_secs(20);
            Box::new(MpcSetPointController::new(cfg).with_balancer(TileFlowBalancer::new(0.02)))
        }
    }
}

/// A script that keeps the room mid-fault for most of its span: a CRAH
/// derate, a degraded fan bank, a load spike, then a same-instant
/// repair of plant and fans.
fn script(steps: u64, spr: usize) -> Scenario {
    let dt = SimDuration::from_secs(1);
    Scenario::new("prop", dt * steps, dt)
        .with_initial_load(Utilization::saturating_from_fraction(0.6))
        .at(dt * (steps / 5), ScenarioEvent::CrahCapacity(0.6))
        .at(
            dt * (steps / 3),
            ScenarioEvent::FanFault {
                rack: 0,
                server: spr - 1,
                fault: FanFault::Degraded { flow_scale: 0.5 },
            },
        )
        .at(dt * (steps / 2), ScenarioEvent::Load(Utilization::FULL))
        .at(dt * (2 * steps / 3), ScenarioEvent::CrahCapacity(1.0))
        .at(
            dt * (2 * steps / 3),
            ScenarioEvent::FanFault {
                rack: 0,
                server: spr - 1,
                fault: FanFault::None,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For any geometry, recirculation fraction, controller kind and
    /// checkpoint point, interrupting at that point and restoring into
    /// a fresh room on a *different* shard plan resumes the exact
    /// trajectory of an uninterrupted single-threaded run.
    #[test]
    fn checkpoint_restore_resumes_bit_identically(
        rows in 1usize..3,
        cols in 1usize..3,
        spr in 2usize..5,
        recirc in 0.0..0.4f64,
        steps in 60u64..120,
        at in 0.1..0.9f64,
        seed in 0u64..1_000,
        kind in 0u8..3,
    ) {
        let make_room = |threads: usize| {
            let mut config = RoomConfig::new(rows, cols, spr);
            config.recirculation_fraction = recirc;
            config.seed = seed;
            let mut room = Room::with_plan(config, ShardPlan::new(threads)).unwrap();
            room.apply(&ControlAction::hold().with_fan_floor(Rpm::new(2400.0)))
                .unwrap();
            room
        };

        // Uninterrupted single-threaded reference.
        let mut room = make_room(1);
        let mut ctl = controller(kind);
        let mut runner = ScenarioRunner::new(script(steps, spr));
        runner.run(&mut room, ctl.as_mut()).unwrap();
        let reference = fingerprint(&room);

        let mid = ((steps as f64 * at) as u64).clamp(1, steps - 1);
        for (threads, resumed_threads) in [(1usize, 8usize), (2, 1), (8, 2)] {
            let mut room = make_room(threads);
            let mut ctl = controller(kind);
            let mut runner = ScenarioRunner::new(script(steps, spr));
            runner.run_steps(&mut room, ctl.as_mut(), mid).unwrap();
            let snap = runner.checkpoint(&mut room, ctl.as_ref());
            prop_assert_eq!(snap.step(), mid);

            let mut resumed_room = make_room(resumed_threads);
            let mut resumed_ctl = controller(kind);
            let mut resumed_runner = ScenarioRunner::new(script(steps, spr));
            resumed_runner
                .restore(&mut resumed_room, resumed_ctl.as_mut(), &snap)
                .unwrap();
            resumed_runner
                .run(&mut resumed_room, resumed_ctl.as_mut())
                .unwrap();
            prop_assert_eq!(
                fingerprint(&resumed_room),
                reference.clone(),
                "threads {} -> {}",
                threads,
                resumed_threads
            );
        }
    }
}

/// A checkpoint refuses to restore into a room of a different shape,
/// and the refusal mutates nothing — the mismatched room continues
/// exactly as if the restore was never attempted.
#[test]
fn restore_rejects_a_mismatched_room_without_mutating_it() {
    let mut room = Room::new(RoomConfig::new(1, 2, 3)).unwrap();
    let mut ctl = FixedSupplyController::new(Celsius::new(20.0));
    let mut runner = ScenarioRunner::new(script(60, 3));
    runner.run_steps(&mut room, &mut ctl, 30).unwrap();
    let snap = runner.checkpoint(&mut room, &ctl);

    let mut other = Room::new(RoomConfig::new(1, 2, 4)).unwrap();
    let mut other_ctl = FixedSupplyController::new(Celsius::new(20.0));
    let mut other_runner = ScenarioRunner::new(script(60, 4));
    other_runner
        .run_steps(&mut other, &mut other_ctl, 10)
        .unwrap();
    let before = fingerprint(&other);

    let err = other_runner
        .restore(&mut other, &mut other_ctl, &snap)
        .unwrap_err();
    assert!(matches!(err, RoomError::CheckpointMismatch { .. }));
    assert_eq!(fingerprint(&other), before);
    other_runner.run(&mut other, &mut other_ctl).unwrap();
    assert!(other_runner.finished());
}
