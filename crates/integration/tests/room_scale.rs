//! Room-scale acceptance properties: energy conservation through the
//! CRAH, equivalence of a degenerate room to the scalar fleet model,
//! and bit-identity of room stepping across thread counts.

use leakctl::control::ControlAction;
use leakctl::fleet::Fleet;
use leakctl::room::{Room, RoomConfig};
use leakctl_platform::ServerConfig;
use leakctl_thermal::ShardPlan;
use leakctl_units::{Celsius, Rpm, SimDuration, Utilization};
use proptest::prelude::*;

/// Pins every fan in the room through the typed action path.
fn pin_fans(room: &mut Room, rpm: f64) {
    room.apply(&ControlAction::hold().with_fan_floor(Rpm::new(rpm)))
        .unwrap();
}

/// At steady state the heat the CRAH extracts from the return stream
/// must equal the total fleet dissipation — the room model neither
/// creates nor loses energy, for a non-trivial recirculating floor
/// with an uneven tile split.
#[test]
fn steady_state_crah_heat_out_equals_fleet_power() {
    let mut config = RoomConfig::new(1, 2, 4);
    config.crah_units = 1;
    config.recirculation_fraction = 0.25;
    let mut room = Room::new(config).unwrap();
    pin_fans(&mut room, 3000.0);
    let dt = SimDuration::from_secs(1);
    for _ in 0..3_600 {
        room.step(dt, Utilization::FULL).unwrap();
    }
    let removed = room.air().crah_heat_removed().value();
    let it = room.total_power().value();
    assert!(
        ((removed - it) / it).abs() < 1e-6,
        "CRAH extraction {removed} W must match IT dissipation {it} W"
    );
}

/// A 1-rack room with zero recirculation and a fixed CRAH supply at
/// the servers' ambient degenerates to the scalar fleet model with
/// `r = 0`: the cold aisle never moves off the supply temperature, so
/// the trajectories must agree to 1e-9.
#[test]
fn one_rack_room_reproduces_scalar_fleet_trajectory() {
    let count = 3;
    let seed = 77;
    let server = ServerConfig::default();

    let mut config = RoomConfig::new(1, 1, count);
    config.server = server.clone();
    config.recirculation_fraction = 0.0;
    config.crah_supply = server.ambient;
    config.seed = seed;
    let mut room = Room::new(config).unwrap();
    pin_fans(&mut room, 2700.0);

    let mut fleet = Fleet::new(server, count, 0.0, seed).unwrap();
    fleet.command_all(Rpm::new(2700.0));

    let dt = SimDuration::from_secs(1);
    for step in 0..600 {
        let act = if step % 90 < 45 {
            Utilization::FULL
        } else {
            Utilization::IDLE
        };
        room.step(dt, act).unwrap();
        fleet.step(dt, act).unwrap();
    }
    // The degenerate cold aisle holds the supply temperature.
    let inlet = room.cold_aisle_temperature(0).degrees();
    assert!(
        (inlet - 24.0).abs() < 1e-9,
        "zero-recirculation cold aisle drifted to {inlet}"
    );
    // Ground truth matches the scalar T_room + r·P fleet (r = 0).
    let room_energy = room.it_energy().value();
    let fleet_energy = fleet.total_energy().value();
    assert!(
        ((room_energy - fleet_energy) / fleet_energy).abs() < 1e-9,
        "energy: room {room_energy} J vs fleet {fleet_energy} J"
    );
    let mut room_dies = Vec::new();
    room.fleet(0).die_temps_view(&mut room_dies);
    for (i, &t) in room_dies.iter().enumerate() {
        let want = fleet.server(i).unwrap().max_die_temperature().degrees();
        assert!(
            (t.degrees() - want).abs() < 1e-9,
            "server {i}: room {t} vs fleet {want}"
        );
    }
}

/// Fingerprint of a room trajectory, exact to the bit.
fn room_fingerprint(room: &Room) -> (u64, u64, u64, Vec<u64>) {
    let aisles: Vec<u64> = (0..room.racks())
        .map(|r| room.cold_aisle_temperature(r).degrees().to_bits())
        .collect();
    (
        room.total_energy().value().to_bits(),
        room.max_die_temperature().degrees().to_bits(),
        room.cooling_energy().value().to_bits(),
        aisles,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Cross-rack sharding is a pure performance knob: for any floor
    /// geometry, recirculation fraction, supply set-point and activity
    /// schedule, the room trajectory is bit-identical at 1, 2 and 8
    /// worker threads.
    #[test]
    fn room_stepping_bit_identical_across_thread_counts(
        rows in 1usize..3,
        cols in 1usize..3,
        spr in 2usize..5,
        recirc in 0.0..0.5f64,
        supply in 16.0..26.0f64,
        period in 20usize..60,
        steps in 40usize..90,
        seed in 0u64..1_000,
    ) {
        let run = |threads: usize| {
            let mut config = RoomConfig::new(rows, cols, spr);
            config.recirculation_fraction = recirc;
            config.crah_supply = Celsius::new(supply);
            config.seed = seed;
            let mut room = Room::with_plan(config, ShardPlan::new(threads)).unwrap();
            pin_fans(&mut room, 2700.0);
            let dt = SimDuration::from_secs(1);
            for step in 0..steps {
                let act = if step % period < period / 2 {
                    Utilization::FULL
                } else {
                    Utilization::IDLE
                };
                room.step(dt, act).unwrap();
            }
            room_fingerprint(&room)
        };
        let reference = run(1);
        for threads in [2usize, 8] {
            prop_assert_eq!(run(threads), reference.clone(), "threads {}", threads);
        }
    }
}
