//! Scheduled closed-loop properties: the scheduler + controller loop
//! is bit-identical across worker-thread counts, a rejected
//! [`PlacementAction`] mutates nothing, and the resident placement
//! (budgets included) rides checkpoint/restore.

use leakctl::control::{ControlAction, LutSetPointController, RoomController};
use leakctl::room::{Room, RoomConfig};
use leakctl::schedule::{
    JobStream, JobStreamConfig, LocalSearchScheduler, PlacementAction, RoomScheduler,
    ScheduledLoop, ThermalGreedyConfig, ThermalGreedyScheduler,
};
use leakctl::{CoreError, PlacementError};
use leakctl_thermal::ShardPlan;
use leakctl_units::{Rpm, SimDuration, Watts};
use proptest::prelude::*;

/// Fingerprint of a room trajectory, exact to the bit.
fn fingerprint(room: &Room) -> (u64, u64, u64, Vec<u64>) {
    let aisles: Vec<u64> = (0..room.racks())
        .map(|r| room.cold_aisle_temperature(r).degrees().to_bits())
        .collect();
    (
        room.total_energy().value().to_bits(),
        room.max_die_temperature().degrees().to_bits(),
        room.cooling_energy().value().to_bits(),
        aisles,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The scheduled closed loop — job arrivals, placement decisions,
    /// admission, cooling control and physics — is deterministic under
    /// cross-rack sharding: for any floor geometry, arrival rate and
    /// placement policy (thermal-greedy or local-search), the
    /// trajectory and every scheduling counter are bit-identical at 1,
    /// 2 and 8 worker threads.
    #[test]
    fn scheduled_loop_bit_identical_across_thread_counts(
        rows in 1usize..3,
        cols in 1usize..3,
        spr in 2usize..5,
        recirc in 0.0..0.4f64,
        rate in 0.05..0.5f64,
        steps in 40u64..90,
        seed in 0u64..1_000,
        refine in proptest::any::<bool>(),
    ) {
        let run = |threads: usize| {
            let mut config = RoomConfig::new(rows, cols, spr);
            config.recirculation_fraction = recirc;
            config.seed = seed;
            let mut room = Room::with_plan(config, ShardPlan::new(threads)).unwrap();
            room.apply(&ControlAction::hold().with_fan_floor(Rpm::new(1800.0)))
                .unwrap();
            let mut cfg = ThermalGreedyConfig::paper_default();
            cfg.period = SimDuration::from_secs(10);
            let mut scheduler: Box<dyn RoomScheduler> = if refine {
                Box::new(LocalSearchScheduler::new(cfg))
            } else {
                Box::new(ThermalGreedyScheduler::new(cfg))
            };
            let mut controller =
                LutSetPointController::paper_default().with_period(SimDuration::from_secs(30));
            controller.reset();
            let mut jobs = JobStreamConfig::new(rate, seed);
            jobs.mean_duration = SimDuration::from_secs(45);
            jobs.min_duration = SimDuration::from_secs(10);
            let mut the_loop = ScheduledLoop::new(JobStream::generate(jobs).unwrap());
            let stats = the_loop
                .run(
                    &mut room,
                    scheduler.as_mut(),
                    &mut controller,
                    SimDuration::from_secs(1),
                    steps,
                )
                .unwrap();
            (
                fingerprint(&room),
                stats.submitted,
                stats.placed,
                stats.rejected,
                stats.completed,
                stats.peak_die.degrees().to_bits(),
            )
        };
        let reference = run(1);
        for threads in [2usize, 8] {
            prop_assert_eq!(run(threads), reference.clone(), "threads {}", threads);
        }
    }
}

/// A rejected placement is atomic: after any malformed action errors
/// out, the room's resident placement, budgets and full forward
/// trajectory are indistinguishable from a room that never saw it.
#[test]
fn rejected_placements_mutate_nothing() {
    let mut config = RoomConfig::new(2, 2, 3);
    config.seed = 7;
    let mut room = Room::new(config.clone()).unwrap();
    let good = PlacementAction::from_fractions(vec![0.9, 0.2, 0.6, 0.4]).with_power_budgets(vec![
        Some(Watts::new(1500.0)),
        None,
        None,
        Some(Watts::new(1200.0)),
    ]);
    room.apply_placement(&good).unwrap();
    room.step_placed(SimDuration::from_secs(30)).unwrap();
    let before = room.checkpoint();
    let placement_before = room.placement().to_vec();
    let budgets_before = room.power_budgets().to_vec();

    let wrong_count = PlacementAction::from_fractions(vec![0.5; 3]);
    let nan = PlacementAction::from_fractions(vec![0.5, f64::NAN, 0.5, 0.5]);
    let out_of_range = PlacementAction::from_fractions(vec![0.5, 0.5, 1.5, 0.5]);
    let negative = PlacementAction::from_fractions(vec![0.5, 0.5, 0.5, -0.1]);
    let short_budgets =
        PlacementAction::uniform(4, 0.5).with_power_budgets(vec![Some(Watts::new(900.0)); 2]);
    let bad_budget = PlacementAction::uniform(4, 0.5).with_power_budgets(vec![
        Some(Watts::new(-5.0)),
        None,
        None,
        None,
    ]);
    for (action, check) in [
        (&wrong_count, "rack count" as &str),
        (&nan, "utilization"),
        (&out_of_range, "utilization"),
        (&negative, "utilization"),
        (&short_budgets, "budget count"),
        (&bad_budget, "budget value"),
    ] {
        let err = room.apply_placement(action).unwrap_err();
        assert!(
            matches!(err, CoreError::Placement(_)),
            "{check}: expected a placement error, got {err}"
        );
        assert_eq!(room.placement(), &placement_before[..], "{check}");
        assert_eq!(room.power_budgets(), &budgets_before[..], "{check}");
    }
    match room.apply_placement(&wrong_count).unwrap_err() {
        CoreError::Placement(PlacementError::RackCountMismatch { got, racks }) => {
            assert_eq!((got, racks), (3, 4));
        }
        other => panic!("unexpected error: {other}"),
    }

    // The forward trajectory is byte-for-byte that of a room that
    // never saw the rejected actions.
    room.step_placed(SimDuration::from_secs(60)).unwrap();
    let after_rejects = fingerprint(&room);
    let mut untouched = Room::new(config).unwrap();
    untouched.restore(&before).unwrap();
    untouched.step_placed(SimDuration::from_secs(60)).unwrap();
    assert_eq!(fingerprint(&untouched), after_rejects);
}

/// The resident placement and its power budgets ride
/// checkpoint/restore: a restored room resumes the exact budgeted
/// trajectory without the placement being re-applied.
#[test]
fn checkpoint_restore_preserves_placement_mid_run() {
    let mut config = RoomConfig::new(1, 3, 2);
    config.seed = 11;
    let mut room = Room::new(config.clone()).unwrap();
    let action = PlacementAction::from_fractions(vec![1.0, 0.3, 0.7]).with_power_budgets(vec![
        Some(Watts::new(950.0)),
        None,
        Some(Watts::new(980.0)),
    ]);
    room.apply_placement(&action).unwrap();
    for _ in 0..20 {
        room.step_placed(SimDuration::from_secs(1)).unwrap();
    }
    let snapshot = room.checkpoint();
    for _ in 0..40 {
        room.step_placed(SimDuration::from_secs(1)).unwrap();
    }
    let uninterrupted = fingerprint(&room);

    let mut resumed = Room::new(config).unwrap();
    resumed.restore(&snapshot).unwrap();
    assert_eq!(resumed.placement(), room.placement());
    assert_eq!(
        resumed.power_budgets(),
        &[Some(Watts::new(950.0)), None, Some(Watts::new(980.0))][..]
    );
    for _ in 0..40 {
        resumed.step_placed(SimDuration::from_secs(1)).unwrap();
    }
    assert_eq!(fingerprint(&resumed), uninterrupted);
}
