//! Pins the Test-3 Default 80-minute run's total energy to the exact
//! value the perf work inherited — the engine's "physics unchanged"
//! canary across stepping-engine rewrites.

use leakctl::prelude::*;
use leakctl_workload::suite;

#[test]
fn test3_default_energy_bit_stable() {
    let options = RunOptions::default();
    let (_, profile) = suite::all(42)
        .into_iter()
        .find(|(name, _)| *name == "Test-3")
        .expect("suite has Test-3");
    let mut controller = FixedSpeedController::paper_default();
    let outcome = run_experiment(&options, profile, &mut controller, 42).unwrap();
    let kwh = outcome.metrics.total_energy.as_kwh().value();
    assert_eq!(
        format!("{kwh:.12}"),
        "0.724237241408",
        "Test-3 Default energy drifted: {kwh:.15}"
    );
}
