//! Building-scale properties: supervised multi-room trajectories are
//! bit-identical for any thread plan, building checkpoints resume
//! exactly (including mid-fault, across plans), same-instant scenario
//! events fire in stable script order, and controller state restore is
//! junk-tolerant.

use leakctl::building::{Building, BuildingConfig};
use leakctl::control::{
    ControlAction, FixedSupplyController, LutSetPointController, MpcConfig, MpcSetPointController,
    RoomController, RoomObservation, TileFlowBalancer,
};
use leakctl::room::{Room, RoomConfig};
use leakctl::scenario::{
    BuildingEvent, BuildingScenario, BuildingScenarioRunner, Scenario, ScenarioEvent,
    ScenarioRunner,
};
use leakctl::supervise::{Supervisor, SupervisorConfig};
use leakctl::BuildingError;
use leakctl_thermal::{ChilledWaterSpec, ShardPlan};
use leakctl_units::{Celsius, Rpm, SimDuration, Utilization, Watts};
use proptest::any;
use proptest::prelude::*;

const DIE_CAP: f64 = 85.0;

/// A tight plant spec for a tiny test building: capacity pinned just
/// above the building's settled full-load demand so chiller faults
/// genuinely oversubscribe it.
fn tight_plant(room_config: &RoomConfig, rooms: usize) -> ChilledWaterSpec {
    let mut probe = Room::new(room_config.clone()).unwrap();
    for _ in 0..50 {
        probe
            .step(SimDuration::from_secs(1), Utilization::FULL)
            .unwrap();
    }
    ChilledWaterSpec {
        capacity: Watts::new(probe.total_power().value() * rooms as f64 * 1.1),
        ..ChilledWaterSpec::default()
    }
}

fn small_building(plan: ShardPlan, rooms: usize, seed: u64) -> Building {
    let mut room = RoomConfig::new(1, 2, 2);
    room.recirculation_fraction = 0.2;
    room.seed = seed;
    let plant = tight_plant(&room, rooms);
    let config = BuildingConfig::uniform(rooms, &room, plant);
    let mut building = Building::with_plan(&config, plan).unwrap();
    for r in 0..rooms {
        building
            .apply(r, &ControlAction::hold().with_fan_floor(Rpm::new(3_000.0)))
            .unwrap();
    }
    building
}

fn controller(kind: u8) -> Box<dyn RoomController> {
    match kind % 3 {
        0 => Box::new(FixedSupplyController::new(Celsius::new(20.0))),
        1 => Box::new(
            LutSetPointController::paper_default()
                .with_balancer(TileFlowBalancer::new(0.02))
                .with_period(SimDuration::from_secs(20)),
        ),
        _ => {
            let mut cfg = MpcConfig::paper_default();
            cfg.candidates = vec![Celsius::new(16.0), Celsius::new(20.0), Celsius::new(24.0)];
            cfg.period = SimDuration::from_secs(20);
            Box::new(MpcSetPointController::new(cfg).with_balancer(TileFlowBalancer::new(0.02)))
        }
    }
}

fn fleet(kind: u8, rooms: usize) -> Vec<Box<dyn RoomController>> {
    // Mixed fleet: room index rotates the controller kind so per-room
    // decision paths differ (a stronger plan-invariance pin than an
    // identical fleet).
    (0..rooms)
        .map(|r| controller(kind.wrapping_add(r as u8)))
        .collect()
}

fn supervisor(rooms: usize) -> Supervisor {
    Supervisor::new(rooms, SupervisorConfig::for_cap(Celsius::new(DIE_CAP)))
}

/// A script that keeps the building mid-fault for most of its span:
/// a deep chiller derate, a per-room CRAH derate, a correlated surge,
/// then repairs.
fn building_script(steps: u64) -> BuildingScenario {
    let dt = SimDuration::from_secs(1);
    BuildingScenario::new("prop", dt * steps, dt)
        .with_die_cap(Celsius::new(DIE_CAP))
        .with_initial_load(Utilization::saturating_from_fraction(0.6))
        .at(dt * (steps / 5), BuildingEvent::Chiller(0.4))
        .at(
            dt * (steps / 4),
            BuildingEvent::Room {
                room: 0,
                event: ScenarioEvent::CrahCapacity(0.7),
            },
        )
        .at(
            dt * (steps / 2),
            BuildingEvent::LoadSurge(Utilization::FULL),
        )
        .at(dt * (2 * steps / 3), BuildingEvent::Chiller(1.0))
        .at(
            dt * (2 * steps / 3),
            BuildingEvent::Room {
                room: 0,
                event: ScenarioEvent::CrahCapacity(1.0),
            },
        )
}

/// Fingerprint of a building trajectory, exact to the bit.
#[allow(clippy::type_complexity)]
fn fingerprint(building: &Building, supervisor: &Supervisor) -> (u64, u64, Vec<u64>, u64, u64) {
    let mut aisles = Vec::new();
    for r in 0..building.rooms() {
        let room = building.room(r).unwrap();
        for rack in 0..room.racks() {
            aisles.push(room.cold_aisle_temperature(rack).degrees().to_bits());
        }
        aisles.push(room.total_energy().value().to_bits());
    }
    (
        building.total_energy().value().to_bits(),
        building.max_die_temperature().degrees().to_bits(),
        aisles,
        supervisor.sheds(),
        supervisor.counts().invariant(),
    )
}

/// A supervised scripted run is bit-identical on thread plans {1, 2, 8}
/// — rooms are the unit of parallelism and couple only through the
/// serial plant phase.
#[test]
fn building_trajectory_is_plan_invariant() {
    let rooms = 3;
    let script = building_script(120);
    let mut reference = None;
    for plan in [1usize, 2, 8] {
        let mut building = small_building(ShardPlan::new(plan), rooms, 7);
        let mut controllers = fleet(0, rooms);
        let mut sup = supervisor(rooms);
        let mut runner = BuildingScenarioRunner::new(script.clone(), rooms);
        let outcome = runner
            .run(&mut building, &mut controllers, &mut sup)
            .unwrap();
        assert_eq!(
            outcome.trips.invariant(),
            0,
            "plan {plan} tripped a monitor"
        );
        let print = fingerprint(&building, &sup);
        match &reference {
            None => reference = Some(print),
            Some(expected) => assert_eq!(&print, expected, "plan {plan} diverged"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Interrupting a supervised building run mid-fault at any point
    /// and restoring into a fresh building on a *different* thread plan
    /// resumes the exact trajectory of an uninterrupted plan-1 run.
    #[test]
    fn building_checkpoint_resumes_bit_identically(
        rooms in 2usize..4,
        steps in 80u64..140,
        at in 0.15..0.85f64,
        seed in 0u64..1_000,
        kind in 0u8..3,
    ) {
        let script = building_script(steps);

        let mut building = small_building(ShardPlan::new(1), rooms, seed);
        let mut controllers = fleet(kind, rooms);
        let mut sup = supervisor(rooms);
        let mut runner = BuildingScenarioRunner::new(script.clone(), rooms);
        runner.run(&mut building, &mut controllers, &mut sup).unwrap();
        let reference = fingerprint(&building, &sup);

        let mid = ((steps as f64 * at) as u64).clamp(1, steps - 1);
        let mut building = small_building(ShardPlan::new(1), rooms, seed);
        let mut controllers = fleet(kind, rooms);
        let mut sup = supervisor(rooms);
        let mut runner = BuildingScenarioRunner::new(script.clone(), rooms);
        runner.run_steps(&mut building, &mut controllers, &mut sup, mid).unwrap();
        let snap = runner.checkpoint(&mut building, &controllers, &sup);
        prop_assert_eq!(snap.step(), mid);

        for plan in [1usize, 2, 8] {
            let mut resumed = small_building(ShardPlan::new(plan), rooms, seed);
            let mut resumed_ctl = fleet(kind, rooms);
            let mut resumed_sup = supervisor(rooms);
            let mut resumed_runner = BuildingScenarioRunner::new(script.clone(), rooms);
            resumed_runner
                .restore(&mut resumed, &mut resumed_ctl, &mut resumed_sup, &snap)
                .unwrap();
            resumed_runner
                .run(&mut resumed, &mut resumed_ctl, &mut resumed_sup)
                .unwrap();
            prop_assert_eq!(
                fingerprint(&resumed, &resumed_sup),
                reference.clone(),
                "resumed on plan {}",
                plan
            );
        }
    }

    /// Events sharing a timestamp fire in stable script (insertion)
    /// order, regardless of where unrelated events were inserted in the
    /// build sequence: the trajectory depends only on the per-instant
    /// insertion subsequence, and the last same-instant write wins.
    #[test]
    fn same_instant_events_fire_in_stable_script_order(
        caps in prop::collection::vec(0.3..=0.9f64, 2..5),
        steps in 40u64..80,
        t_frac in 0.3..0.7f64,
        seed in 0u64..1_000,
    ) {
        let dt = SimDuration::from_secs(1);
        let t_dup = dt * ((steps as f64 * t_frac) as u64).clamp(1, steps - 2);
        let t_load = dt * (steps / 5);
        let base = || Scenario::new("order", dt * steps, dt)
            .with_die_cap(Celsius::new(DIE_CAP))
            .with_initial_load(Utilization::saturating_from_fraction(0.5));

        // A: unrelated load event inserted *between* the same-instant
        // capacity writes. B: load event inserted first. The
        // same-instant subsequence (caps in order) is identical, so the
        // trajectories must be too.
        let mut a = base().at(t_dup, ScenarioEvent::CrahCapacity(caps[0]));
        a = a.at(t_load, ScenarioEvent::Load(Utilization::FULL));
        for &c in &caps[1..] {
            a = a.at(t_dup, ScenarioEvent::CrahCapacity(c));
        }
        let mut b = base().at(t_load, ScenarioEvent::Load(Utilization::FULL));
        for &c in &caps {
            b = b.at(t_dup, ScenarioEvent::CrahCapacity(c));
        }
        // C: the same-instant writes reversed — a *different* script
        // whose last write is caps[0].
        let mut c = base().at(t_load, ScenarioEvent::Load(Utilization::FULL));
        for &cap in caps.iter().rev() {
            c = c.at(t_dup, ScenarioEvent::CrahCapacity(cap));
        }

        let run = |scenario: Scenario| {
            let mut config = RoomConfig::new(1, 2, 2);
            config.seed = seed;
            let mut room = Room::new(config).unwrap();
            let mut ctl = FixedSupplyController::new(Celsius::new(20.0));
            let outcome = ScenarioRunner::new(scenario).run(&mut room, &mut ctl).unwrap();
            (
                room.crah_capacity(),
                room.total_energy().value().to_bits(),
                room.max_die_temperature().degrees().to_bits(),
                outcome.events_applied,
            )
        };

        let ra = run(a);
        let rb = run(b);
        let rc = run(c);
        // Insertion order of *other-instant* events is irrelevant.
        prop_assert_eq!(&ra, &rb);
        // The last same-instant write in script order is the one that
        // sticks.
        prop_assert_eq!(ra.0, *caps.last().unwrap());
        prop_assert_eq!(rc.0, caps[0]);
        prop_assert_eq!(ra.3, caps.len() + 1);
    }

    /// `RoomController::restore_state` fed truncated or garbage state
    /// (including NaN/∞ bit patterns) never panics and leaves the
    /// controller usable: it still produces decisions a room accepts,
    /// and a subsequent genuine checkpoint round-trips.
    #[test]
    fn controller_restore_survives_garbage_state(
        bits in prop::collection::vec(any::<u64>(), 0..32),
        truncate in 0usize..24,
        kind in 0u8..3,
        seed in 0u64..1_000,
    ) {
        let garbage: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();

        // A genuine mid-run checkpoint, then truncated.
        let mut config = RoomConfig::new(1, 2, 2);
        config.seed = seed;
        let mut room = Room::new(config).unwrap();
        let mut ctl = controller(kind);
        let mut obs = RoomObservation::new();
        for _ in 0..3 {
            let action = room.decide(ctl.as_mut(), &mut obs);
            room.apply(&action).unwrap();
            for _ in 0..20 {
                room.step(SimDuration::from_secs(1), Utilization::FULL).unwrap();
            }
        }
        let genuine = ctl.checkpoint_state();
        let truncated = &genuine[..truncate.min(genuine.len())];

        for state in [garbage.as_slice(), truncated] {
            let mut restored = controller(kind);
            restored.restore_state(state);
            // Usable: decides without panicking, the room accepts the
            // action, and checkpointing still works.
            let action = room.decide(restored.as_mut(), &mut obs);
            room.apply(&action).unwrap();
            room.step(SimDuration::from_secs(1), Utilization::FULL).unwrap();
            let after = restored.checkpoint_state();
            let mut again = controller(kind);
            again.restore_state(&after);
            prop_assert_eq!(again.checkpoint_state(), after);
        }
    }
}

/// A building checkpoint refuses a building with a different room
/// count, and the refusal mutates nothing.
#[test]
fn building_restore_rejects_mismatched_shape_without_mutating() {
    let rooms = 2;
    let script = building_script(60);
    let mut building = small_building(ShardPlan::new(1), rooms, 3);
    let mut controllers = fleet(0, rooms);
    let mut sup = supervisor(rooms);
    let mut runner = BuildingScenarioRunner::new(script.clone(), rooms);
    runner
        .run_steps(&mut building, &mut controllers, &mut sup, 30)
        .unwrap();
    let snap = runner.checkpoint(&mut building, &controllers, &sup);

    let other_rooms = 3;
    let mut other = small_building(ShardPlan::new(1), other_rooms, 3);
    let mut other_ctl = fleet(0, other_rooms);
    let mut other_sup = supervisor(other_rooms);
    let mut other_runner = BuildingScenarioRunner::new(building_script(60), other_rooms);
    other_runner
        .run_steps(&mut other, &mut other_ctl, &mut other_sup, 10)
        .unwrap();
    let before = fingerprint(&other, &other_sup);

    let err = other_runner
        .restore(&mut other, &mut other_ctl, &mut other_sup, &snap)
        .unwrap_err();
    assert!(matches!(err, BuildingError::CheckpointMismatch { .. }));
    assert_eq!(fingerprint(&other, &other_sup), before);
    other_runner
        .run(&mut other, &mut other_ctl, &mut other_sup)
        .unwrap();
    assert!(other_runner.finished());
}
