//! Closed-loop room control properties: bit-identical controlled
//! trajectories across worker-thread counts, and the set-point
//! acceptance claim (adaptive control never loses to the best fixed
//! supply) pinned on a reduced sweep that runs in debug-mode CI.

use leakctl::control::{
    ControlAction, LutSetPointController, MpcConfig, MpcSetPointController, RoomController,
    TileFlowBalancer,
};
use leakctl::room::{Room, RoomConfig};
use leakctl_bench::setpoint::{run_setpoint_sweep, SetPointScenario};
use leakctl_thermal::ShardPlan;
use leakctl_units::{Celsius, Rpm, SimDuration, Utilization};
use proptest::prelude::*;

/// Fingerprint of a controlled room trajectory, exact to the bit.
fn fingerprint(room: &Room) -> (u64, u64, u64, Vec<u64>) {
    let aisles: Vec<u64> = (0..room.racks())
        .map(|r| room.cold_aisle_temperature(r).degrees().to_bits())
        .collect();
    (
        room.total_energy().value().to_bits(),
        room.max_die_temperature().degrees().to_bits(),
        room.cooling_energy().value().to_bits(),
        aisles,
    )
}

fn controller(use_mpc: bool) -> Box<dyn RoomController> {
    if use_mpc {
        let mut cfg = MpcConfig::paper_default();
        cfg.candidates = vec![Celsius::new(18.0), Celsius::new(22.0), Celsius::new(26.0)];
        cfg.period = SimDuration::from_secs(30);
        Box::new(MpcSetPointController::new(cfg).with_balancer(TileFlowBalancer::new(0.02)))
    } else {
        Box::new(
            LutSetPointController::paper_default()
                .with_balancer(TileFlowBalancer::new(0.02))
                .with_period(SimDuration::from_secs(30)),
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The control loop is deterministic under cross-rack sharding:
    /// for any floor geometry, recirculation fraction and controller
    /// (LUT or preview-driven MPC), the controlled trajectory —
    /// decisions included — is bit-identical at 1, 2 and 8 worker
    /// threads.
    #[test]
    fn controlled_room_bit_identical_across_thread_counts(
        rows in 1usize..3,
        cols in 1usize..3,
        spr in 2usize..5,
        recirc in 0.0..0.4f64,
        period in 20u64..60,
        steps in 40u64..90,
        seed in 0u64..1_000,
        use_mpc in proptest::any::<bool>(),
    ) {
        let run = |threads: usize| {
            let mut config = RoomConfig::new(rows, cols, spr);
            config.recirculation_fraction = recirc;
            config.seed = seed;
            let mut room = Room::with_plan(config, ShardPlan::new(threads)).unwrap();
            room.apply(&ControlAction::hold().with_fan_floor(Rpm::new(2400.0)))
                .unwrap();
            let mut ctl = controller(use_mpc);
            ctl.reset();
            let dt = SimDuration::from_secs(1);
            room.run_controlled(ctl.as_mut(), dt, steps, |i| {
                if i % period < period / 2 {
                    Utilization::FULL
                } else {
                    Utilization::saturating_from_fraction(0.25)
                }
            })
            .unwrap();
            fingerprint(&room)
        };
        let reference = run(1);
        for threads in [2usize, 8] {
            prop_assert_eq!(run(threads), reference.clone(), "threads {}", threads);
        }
    }
}

/// The paper's room-scale claim, pinned where debug-mode CI can afford
/// it: on a reduced sweep (one recirculation fraction, a five-point
/// fixed grid) both adaptive controllers stay under the hot-spot cap
/// and spend no more total energy than the best feasible fixed supply.
/// The full 256-server figure with three β values runs in release via
/// the `repro-setpoint` bench gate.
#[test]
fn adaptive_control_never_loses_to_the_best_fixed_supply() {
    let mut scenario = SetPointScenario::quick();
    scenario.betas = vec![0.2];
    scenario.fixed_supplies = vec![22.0, 24.0, 26.0, 28.0, 30.0];

    let sweep = run_setpoint_sweep(&scenario);
    let result = &sweep.betas[0];
    let best = result
        .best_fixed()
        .expect("the grid straddles the feasibility edge");
    for run in [&result.lut, &result.mpc] {
        assert!(
            run.feasible,
            "{} violated the cap: max die {:.2} C",
            run.name, run.max_die_c
        );
        assert!(
            run.total_kwh <= best.total_kwh,
            "{} spent {:.4} kWh, best fixed ({}) only {:.4} kWh",
            run.name,
            run.total_kwh,
            best.name,
            best.total_kwh
        );
    }
}
