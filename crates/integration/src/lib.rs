//! Integration test anchor crate.
