//! Property-based tests for the quantity newtypes.

use leakctl_units::{
    AirFlow, Celsius, Joules, Rpm, SimDuration, SimInstant, TempDelta, ThermalCapacitance,
    ThermalResistance, Utilization, Watts,
};
use proptest::prelude::*;

fn finite() -> impl Strategy<Value = f64> {
    -1.0e6..1.0e6
}

fn positive() -> impl Strategy<Value = f64> {
    1.0e-3..1.0e6
}

proptest! {
    #[test]
    fn watts_addition_commutes(a in finite(), b in finite()) {
        let (x, y) = (Watts::new(a), Watts::new(b));
        prop_assert_eq!(x + y, y + x);
    }

    #[test]
    fn watts_addition_associates(a in finite(), b in finite(), c in finite()) {
        let (x, y, z) = (Watts::new(a), Watts::new(b), Watts::new(c));
        let lhs = ((x + y) + z).value();
        let rhs = (x + (y + z)).value();
        prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + lhs.abs()));
    }

    #[test]
    fn celsius_kelvin_round_trip(t in finite()) {
        let c = Celsius::new(t);
        let back = c.as_kelvin().as_celsius();
        prop_assert!((back.degrees() - t).abs() < 1e-9);
    }

    #[test]
    fn temp_delta_restores_difference(a in finite(), b in finite()) {
        let (x, y) = (Celsius::new(a), Celsius::new(b));
        let d: TempDelta = x - y;
        let restored = y + d;
        prop_assert!((restored.degrees() - a).abs() < 1e-9);
    }

    #[test]
    fn energy_scales_linearly_with_time(p in positive(), secs in 1u64..100_000) {
        let e1 = Watts::new(p) * SimDuration::from_secs(secs);
        let e2 = Watts::new(p) * SimDuration::from_secs(secs * 2);
        prop_assert!((e2.value() - 2.0 * e1.value()).abs() < 1e-6 * e2.value().abs().max(1.0));
    }

    #[test]
    fn kwh_round_trip(j in positive()) {
        let e = Joules::new(j);
        prop_assert!((e.as_kwh().as_joules().value() - j).abs() < 1e-9 * j.max(1.0));
    }

    #[test]
    fn utilization_fraction_percent_agree(f in 0.0..=1.0f64) {
        let u = Utilization::from_fraction(f).unwrap();
        prop_assert!((u.as_percent() - f * 100.0).abs() < 1e-12);
        let via_percent = Utilization::from_percent(u.as_percent()).unwrap();
        prop_assert!((via_percent.as_fraction() - f).abs() < 1e-12);
    }

    #[test]
    fn utilization_saturating_always_valid(f in -10.0..10.0f64) {
        let u = Utilization::saturating_from_fraction(f);
        prop_assert!((0.0..=1.0).contains(&u.as_fraction()));
    }

    #[test]
    fn instant_ordering_consistent_with_offsets(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let (ta, tb) = (SimInstant::from_millis(a), SimInstant::from_millis(b));
        prop_assert_eq!(ta < tb, a < b);
        prop_assert_eq!(ta.since(tb).as_millis(), a.saturating_sub(b));
    }

    #[test]
    fn duration_sum_matches_integer_sum(parts in prop::collection::vec(0u64..1_000_000, 0..20)) {
        let total: u64 = parts.iter().sum();
        let d = parts
            .iter()
            .fold(SimDuration::ZERO, |acc, &ms| acc + SimDuration::from_millis(ms));
        prop_assert_eq!(d.as_millis(), total);
    }

    #[test]
    fn time_constant_positive(r in positive(), c in positive()) {
        let tau = ThermalResistance::new(r) * ThermalCapacitance::new(c);
        // saturation to zero only when r*c is below 0.5 ms
        if r * c > 1.0e-3 {
            prop_assert!(tau > SimDuration::ZERO);
        }
    }

    #[test]
    fn conductance_inverts_resistance(r in positive()) {
        let g = ThermalResistance::new(r).as_conductance();
        prop_assert!((g.as_resistance().value() - r).abs() < 1e-9 * r.max(1.0));
    }

    #[test]
    fn airflow_cfm_round_trip(cfm in positive()) {
        let q = AirFlow::from_cfm(cfm);
        prop_assert!((q.as_cfm() - cfm).abs() < 1e-9 * cfm.max(1.0));
    }

    #[test]
    fn rpm_ratio_scales(r in positive(), k in 0.1..10.0f64) {
        let base = Rpm::new(r);
        let scaled = Rpm::new(r * k);
        prop_assert!((scaled.ratio_to(base) - k).abs() < 1e-9 * k.max(1.0));
    }
}
