//! Lumped thermal-network element values: [`ThermalResistance`],
//! [`ThermalConductance`] and [`ThermalCapacitance`].
//!
//! In the electro-thermal analogy used by the RC network simulator,
//! temperature difference plays the role of voltage and heat flow the
//! role of current: `ΔT = P · R_th`, `τ = R_th · C_th`.

use crate::{SimDuration, TempDelta, Watts};

quantity! {
    /// Thermal resistance in kelvin per watt (K/W).
    ///
    /// ```
    /// use leakctl_units::{ThermalResistance, Watts};
    ///
    /// let r = ThermalResistance::new(0.25);
    /// let dt = r * Watts::new(100.0);
    /// assert_eq!(dt.degrees(), 25.0);
    /// ```
    ThermalResistance, "K/W"
}

quantity! {
    /// Thermal conductance in watts per kelvin (W/K), the reciprocal of
    /// [`ThermalResistance`].
    ///
    /// ```
    /// use leakctl_units::{TempDelta, ThermalConductance};
    ///
    /// let g = ThermalConductance::new(4.0);
    /// let p = g * TempDelta::new(10.0);
    /// assert_eq!(p.value(), 40.0);
    /// ```
    ThermalConductance, "W/K"
}

quantity! {
    /// Thermal capacitance in joules per kelvin (J/K).
    ///
    /// ```
    /// use leakctl_units::{ThermalCapacitance, ThermalResistance};
    ///
    /// let tau = ThermalResistance::new(0.5) * ThermalCapacitance::new(600.0);
    /// assert_eq!(tau.as_secs_f64(), 300.0);
    /// ```
    ThermalCapacitance, "J/K"
}

impl ThermalResistance {
    /// The reciprocal conductance.
    ///
    /// Returns an infinite conductance for a zero resistance.
    #[inline]
    #[must_use]
    pub fn as_conductance(self) -> ThermalConductance {
        ThermalConductance::new(1.0 / self.value())
    }
}

impl ThermalConductance {
    /// The reciprocal resistance.
    ///
    /// Returns an infinite resistance for a zero conductance.
    #[inline]
    #[must_use]
    pub fn as_resistance(self) -> ThermalResistance {
        ThermalResistance::new(1.0 / self.value())
    }
}

impl core::ops::Mul<Watts> for ThermalResistance {
    type Output = TempDelta;
    #[inline]
    fn mul(self, rhs: Watts) -> TempDelta {
        TempDelta::new(self.value() * rhs.value())
    }
}

impl core::ops::Mul<ThermalResistance> for Watts {
    type Output = TempDelta;
    #[inline]
    fn mul(self, rhs: ThermalResistance) -> TempDelta {
        rhs * self
    }
}

impl core::ops::Mul<TempDelta> for ThermalConductance {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: TempDelta) -> Watts {
        Watts::new(self.value() * rhs.degrees())
    }
}

impl core::ops::Mul<ThermalCapacitance> for ThermalResistance {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: ThermalCapacitance) -> SimDuration {
        SimDuration::from_secs_f64(self.value() * rhs.value())
    }
}

impl core::ops::Mul<ThermalResistance> for ThermalCapacitance {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: ThermalResistance) -> SimDuration {
        rhs * self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resistance_conductance_reciprocal() {
        let r = ThermalResistance::new(0.2);
        let g = r.as_conductance();
        assert!((g.value() - 5.0).abs() < 1e-12);
        assert!((g.as_resistance().value() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn temperature_rise() {
        let dt = ThermalResistance::new(0.3) * Watts::new(150.0);
        assert!((dt.degrees() - 45.0).abs() < 1e-12);
        let dt2 = Watts::new(150.0) * ThermalResistance::new(0.3);
        assert_eq!(dt, dt2);
    }

    #[test]
    fn heat_flow_from_conductance() {
        let p = ThermalConductance::new(2.5) * TempDelta::new(8.0);
        assert!((p.value() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn time_constant() {
        let tau = ThermalResistance::new(0.5) * ThermalCapacitance::new(1200.0);
        assert_eq!(tau, SimDuration::from_mins(10));
        let tau2 = ThermalCapacitance::new(1200.0) * ThermalResistance::new(0.5);
        assert_eq!(tau, tau2);
    }
}
