//! CPU utilization level: [`Utilization`], a validated fraction in
//! `[0, 1]`.

use core::fmt;

use crate::QuantityError;

/// A CPU utilization level, stored as a fraction in `[0, 1]`.
///
/// The paper expresses utilization in percent (its `P_active = k1 · U`
/// model uses percent, as `k1 = 0.4452 W/%`); [`Utilization::as_percent`]
/// provides that view, while the internal representation stays a fraction
/// to keep duty-cycle math simple.
///
/// # Example
///
/// ```
/// use leakctl_units::Utilization;
///
/// # fn main() -> Result<(), leakctl_units::QuantityError> {
/// let u = Utilization::from_percent(75.0)?;
/// assert_eq!(u.as_fraction(), 0.75);
/// assert_eq!(u.as_percent(), 75.0);
/// assert!(u > Utilization::from_fraction(0.5)?);
/// # Ok(())
/// # }
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, PartialOrd, Default, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct Utilization(f64);

impl Utilization {
    /// The idle level (0 %).
    pub const IDLE: Self = Self(0.0);

    /// The fully loaded level (100 %).
    pub const FULL: Self = Self(1.0);

    /// Constructs a utilization from a fraction in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantityError::NonFinite`] for NaN/∞ and
    /// [`QuantityError::OutOfRange`] for values outside `[0, 1]`.
    pub fn from_fraction(fraction: f64) -> Result<Self, QuantityError> {
        if !fraction.is_finite() {
            return Err(QuantityError::NonFinite {
                quantity: "utilization",
            });
        }
        if !(0.0..=1.0).contains(&fraction) {
            return Err(QuantityError::OutOfRange {
                quantity: "utilization",
                value: fraction,
                min: 0.0,
                max: 1.0,
            });
        }
        Ok(Self(fraction))
    }

    /// Constructs a utilization from a percentage in `[0, 100]`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantityError::NonFinite`] for NaN/∞ and
    /// [`QuantityError::OutOfRange`] for values outside `[0, 100]`.
    pub fn from_percent(percent: f64) -> Result<Self, QuantityError> {
        if !percent.is_finite() {
            return Err(QuantityError::NonFinite {
                quantity: "utilization",
            });
        }
        if !(0.0..=100.0).contains(&percent) {
            return Err(QuantityError::OutOfRange {
                quantity: "utilization",
                value: percent,
                min: 0.0,
                max: 100.0,
            });
        }
        Ok(Self(percent / 100.0))
    }

    /// Constructs a utilization by clamping an arbitrary fraction into
    /// `[0, 1]`; NaN maps to idle.
    #[inline]
    #[must_use]
    pub fn saturating_from_fraction(fraction: f64) -> Self {
        if fraction.is_nan() {
            Self::IDLE
        } else {
            Self(fraction.clamp(0.0, 1.0))
        }
    }

    /// The level as a fraction in `[0, 1]`.
    #[inline]
    #[must_use]
    pub const fn as_fraction(self) -> f64 {
        self.0
    }

    /// The level as a percentage in `[0, 100]`.
    #[inline]
    #[must_use]
    pub fn as_percent(self) -> f64 {
        self.0 * 100.0
    }

    /// `true` when exactly idle.
    #[inline]
    #[must_use]
    pub fn is_idle(self) -> bool {
        self.0 == 0.0
    }

    /// `true` when exactly fully loaded.
    #[inline]
    #[must_use]
    pub fn is_full(self) -> bool {
        self.0 == 1.0
    }

    /// The smaller of two levels.
    #[inline]
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }

    /// The larger of two levels.
    #[inline]
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Linear interpolation between `self` and `other` at parameter
    /// `t ∈ [0, 1]` (clamped).
    #[inline]
    #[must_use]
    pub fn lerp(self, other: Self, t: f64) -> Self {
        let t = t.clamp(0.0, 1.0);
        Self(self.0 + (other.0 - self.0) * t)
    }
}

impl fmt::Display for Utilization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*}%", prec, self.as_percent())
        } else {
            write!(f, "{}%", self.as_percent())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_constructors() {
        assert_eq!(Utilization::from_fraction(0.5).unwrap().as_percent(), 50.0);
        assert_eq!(Utilization::from_percent(90.0).unwrap().as_fraction(), 0.90);
        assert!(Utilization::IDLE.is_idle());
        assert!(Utilization::FULL.is_full());
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(matches!(
            Utilization::from_fraction(1.5),
            Err(QuantityError::OutOfRange { .. })
        ));
        assert!(matches!(
            Utilization::from_fraction(-0.1),
            Err(QuantityError::OutOfRange { .. })
        ));
        assert!(matches!(
            Utilization::from_fraction(f64::NAN),
            Err(QuantityError::NonFinite { .. })
        ));
        assert!(matches!(
            Utilization::from_percent(101.0),
            Err(QuantityError::OutOfRange { .. })
        ));
        assert!(matches!(
            Utilization::from_percent(f64::INFINITY),
            Err(QuantityError::NonFinite { .. })
        ));
    }

    #[test]
    fn saturating_constructor() {
        assert_eq!(
            Utilization::saturating_from_fraction(2.0),
            Utilization::FULL
        );
        assert_eq!(
            Utilization::saturating_from_fraction(-1.0),
            Utilization::IDLE
        );
        assert_eq!(
            Utilization::saturating_from_fraction(f64::NAN),
            Utilization::IDLE
        );
        assert_eq!(
            Utilization::saturating_from_fraction(0.3).as_fraction(),
            0.3
        );
    }

    #[test]
    fn lerp_is_clamped() {
        let a = Utilization::IDLE;
        let b = Utilization::FULL;
        assert_eq!(a.lerp(b, 0.25).as_fraction(), 0.25);
        assert_eq!(a.lerp(b, -1.0), a);
        assert_eq!(a.lerp(b, 2.0), b);
    }

    #[test]
    fn display() {
        let u = Utilization::from_percent(62.5).unwrap();
        assert_eq!(format!("{u:.1}"), "62.5%");
    }

    #[test]
    fn error_display() {
        let err = Utilization::from_percent(150.0).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("150"));
        assert!(msg.contains("utilization"));
        let err = Utilization::from_fraction(f64::NAN).unwrap_err();
        assert!(err.to_string().contains("finite"));
    }
}
