//! Internal helper macro that generates the boilerplate shared by all
//! `f64`-backed quantity newtypes: constructors, accessors, arithmetic
//! with `f64` scalars, same-type addition/subtraction, and `Display`.

/// Generates an `f64`-backed quantity newtype.
///
/// The generated type supports:
/// - `new(f64)` and `value()`,
/// - `Add`/`Sub` with `Self`, `AddAssign`/`SubAssign`,
/// - `Mul<f64>`/`Div<f64>` (and `Mul<Ty> for f64`),
/// - `Neg`, `PartialOrd`, `Display` with the given suffix,
/// - `iter().sum()` via `Sum`,
/// - `serde` (transparent), `Default` (zero).
macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $suffix:literal
    ) => {
        $(#[$meta])*
        #[derive(
            Debug,
            Clone,
            Copy,
            PartialEq,
            PartialOrd,
            Default,
            serde::Serialize,
            serde::Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero value of this quantity.
            pub const ZERO: Self = Self(0.0);

            /// Wraps a raw `f64` value.
            #[inline]
            #[must_use]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw `f64` value.
            #[inline]
            #[must_use]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[inline]
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps `self` into `[lo, hi]`.
            #[inline]
            #[must_use]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// `true` when the underlying value is finite (not NaN/∞).
            #[inline]
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl core::ops::Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> core::iter::Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*}{}", prec, self.0, $suffix)
                } else {
                    write!(f, "{}{}", self.0, $suffix)
                }
            }
        }
    };
}
