//! Electrical quantities: [`Volts`] and [`Amps`].
//!
//! The paper's telemetry harness reports per-core voltage and current;
//! their product is dissipated power in [`Watts`](crate::Watts).

use crate::Watts;

quantity! {
    /// Electrical potential in volts.
    ///
    /// ```
    /// use leakctl_units::{Amps, Volts};
    ///
    /// let p = Volts::new(1.05) * Amps::new(10.0);
    /// assert!((p.value() - 10.5).abs() < 1e-12);
    /// ```
    Volts, "V"
}

quantity! {
    /// Electrical current in amperes.
    ///
    /// ```
    /// use leakctl_units::{Amps, Volts};
    ///
    /// let p = Amps::new(2.0) * Volts::new(12.0);
    /// assert_eq!(p.value(), 24.0);
    /// ```
    Amps, "A"
}

impl core::ops::Mul<Amps> for Volts {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Amps) -> Watts {
        Watts::new(self.value() * rhs.value())
    }
}

impl core::ops::Mul<Volts> for Amps {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Volts) -> Watts {
        rhs * self
    }
}

impl Watts {
    /// The current drawn at the given voltage to dissipate this power.
    ///
    /// Returns [`Amps::ZERO`] when the voltage is zero.
    #[inline]
    #[must_use]
    pub fn current_at(self, v: Volts) -> Amps {
        if v.value() == 0.0 {
            Amps::ZERO
        } else {
            Amps::new(self.value() / v.value())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ohms_law_products() {
        assert_eq!(Volts::new(12.0) * Amps::new(0.5), Watts::new(6.0));
        assert_eq!(Amps::new(0.5) * Volts::new(12.0), Watts::new(6.0));
    }

    #[test]
    fn current_back_out() {
        let p = Watts::new(54.0);
        let i = p.current_at(Volts::new(12.0));
        assert!((i.value() - 4.5).abs() < 1e-12);
        assert_eq!(p.current_at(Volts::ZERO), Amps::ZERO);
    }
}
