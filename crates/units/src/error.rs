//! Error type shared by validating constructors in this crate.

use core::fmt;

/// Error returned by validating quantity constructors.
///
/// # Example
///
/// ```
/// use leakctl_units::{QuantityError, Utilization};
///
/// let err = Utilization::from_fraction(1.5).unwrap_err();
/// assert!(matches!(err, QuantityError::OutOfRange { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum QuantityError {
    /// The supplied value was NaN or infinite.
    NonFinite {
        /// Human-readable name of the quantity being constructed.
        quantity: &'static str,
    },
    /// The supplied value fell outside the quantity's valid range.
    OutOfRange {
        /// Human-readable name of the quantity being constructed.
        quantity: &'static str,
        /// The offending value.
        value: f64,
        /// Inclusive lower bound of the valid range.
        min: f64,
        /// Inclusive upper bound of the valid range.
        max: f64,
    },
}

impl fmt::Display for QuantityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NonFinite { quantity } => {
                write!(f, "{quantity} must be finite")
            }
            Self::OutOfRange {
                quantity,
                value,
                min,
                max,
            } => write!(
                f,
                "{quantity} value {value} outside valid range [{min}, {max}]"
            ),
        }
    }
}

impl std::error::Error for QuantityError {}
