//! Electrical power: [`Watts`].

use crate::{Joules, SimDuration};

quantity! {
    /// Electrical power in watts.
    ///
    /// Multiplying power by a [`SimDuration`] yields energy in [`Joules`]:
    ///
    /// ```
    /// use leakctl_units::{SimDuration, Watts};
    ///
    /// let e = Watts::new(100.0) * SimDuration::from_mins(1);
    /// assert_eq!(e.value(), 6_000.0);
    /// ```
    Watts, "W"
}

impl core::ops::Mul<SimDuration> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: SimDuration) -> Joules {
        Joules::new(self.value() * rhs.as_secs_f64())
    }
}

impl core::ops::Mul<Watts> for SimDuration {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        rhs * self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Watts::new(30.0);
        let b = Watts::new(12.0);
        assert_eq!((a + b).value(), 42.0);
        assert_eq!((a - b).value(), 18.0);
        assert_eq!((a * 2.0).value(), 60.0);
        assert_eq!((2.0 * a).value(), 60.0);
        assert_eq!((a / 3.0).value(), 10.0);
        assert_eq!(a / b, 2.5);
        assert_eq!((-a).value(), -30.0);
    }

    #[test]
    fn sum_iterator() {
        let parts = [Watts::new(1.0), Watts::new(2.0), Watts::new(3.0)];
        let total: Watts = parts.iter().sum();
        assert_eq!(total, Watts::new(6.0));
        let owned: Watts = parts.into_iter().sum();
        assert_eq!(owned, Watts::new(6.0));
    }

    #[test]
    fn power_times_time_is_energy() {
        let e = Watts::new(710.0) * SimDuration::from_hours(1);
        assert!((e.as_kwh().value() - 0.710).abs() < 1e-12);
        let e2 = SimDuration::from_hours(1) * Watts::new(710.0);
        assert_eq!(e, e2);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{:.1}", Watts::new(30.25)), "30.2W");
        assert_eq!(format!("{}", Watts::new(5.0)), "5W");
    }

    #[test]
    fn helpers() {
        assert_eq!(Watts::new(-3.0).abs(), Watts::new(3.0));
        assert_eq!(Watts::new(5.0).min(Watts::new(2.0)), Watts::new(2.0));
        assert_eq!(Watts::new(5.0).max(Watts::new(2.0)), Watts::new(5.0));
        assert_eq!(
            Watts::new(9.0).clamp(Watts::ZERO, Watts::new(5.0)),
            Watts::new(5.0)
        );
        assert!(Watts::new(1.0).is_finite());
        assert!(!Watts::new(f64::INFINITY).is_finite());
    }
}
