//! Simulated time: [`SimInstant`] (a point on the simulation clock) and
//! [`SimDuration`] (a span between two points).
//!
//! Both are backed by integer **milliseconds** so that event ordering in
//! the discrete-event kernel is exact and runs are bit-reproducible; the
//! paper's dynamics (10 s telemetry polling, 1 s utilization polling,
//! minutes-long thermal time constants) are far coarser than 1 ms.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of simulated time with millisecond resolution.
///
/// # Example
///
/// ```
/// use leakctl_units::SimDuration;
///
/// let poll = SimDuration::from_secs(10);
/// let run = SimDuration::from_mins(80);
/// assert_eq!(run / poll, 480.0);
/// assert_eq!(poll * 3.0, SimDuration::from_secs(30));
/// ```
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: Self = Self(0);

    /// Constructs a duration from whole milliseconds.
    #[inline]
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms)
    }

    /// Constructs a duration from whole seconds.
    #[inline]
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        Self(secs * 1_000)
    }

    /// Constructs a duration from fractional seconds.
    ///
    /// Sub-millisecond parts are rounded to the nearest millisecond;
    /// negative and non-finite inputs saturate to zero.
    #[inline]
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return Self::ZERO;
        }
        Self((secs * 1_000.0).round() as u64)
    }

    /// Constructs a duration from whole minutes.
    #[inline]
    #[must_use]
    pub const fn from_mins(mins: u64) -> Self {
        Self(mins * 60_000)
    }

    /// Constructs a duration from whole hours.
    #[inline]
    #[must_use]
    pub const fn from_hours(hours: u64) -> Self {
        Self(hours * 3_600_000)
    }

    /// Milliseconds as an integer.
    #[inline]
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds as a float.
    #[inline]
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Minutes as a float.
    #[inline]
    #[must_use]
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60_000.0
    }

    /// Hours as a float.
    #[inline]
    #[must_use]
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600_000.0
    }

    /// `true` when the duration is zero.
    #[inline]
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    #[inline]
    #[must_use]
    pub const fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }

    /// Returns the smaller of two durations.
    #[inline]
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }

    /// Returns the larger of two durations.
    #[inline]
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }
}

impl Add for SimDuration {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = Self;
    /// # Panics
    ///
    /// Panics in debug builds when `rhs > self`; use
    /// [`SimDuration::saturating_sub`] when underflow is possible.
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for SimDuration {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        Self::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Mul<u64> for SimDuration {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: u64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Div for SimDuration {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Self) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl Div<u64> for SimDuration {
    type Output = Self;
    #[inline]
    fn div(self, rhs: u64) -> Self {
        Self(self.0 / rhs)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_ms = self.0;
        if total_ms < 1_000 {
            write!(f, "{total_ms}ms")
        } else if total_ms < 60_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else {
            let mins = total_ms / 60_000;
            let rem_s = (total_ms % 60_000) as f64 / 1_000.0;
            write!(f, "{mins}m{rem_s:.0}s")
        }
    }
}

/// A point on the simulation clock, measured from the start of the run.
///
/// # Example
///
/// ```
/// use leakctl_units::{SimDuration, SimInstant};
///
/// let t0 = SimInstant::ZERO;
/// let t1 = t0 + SimDuration::from_secs(30);
/// assert_eq!(t1 - t0, SimDuration::from_secs(30));
/// assert!(t1 > t0);
/// ```
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
#[serde(transparent)]
pub struct SimInstant(u64);

impl SimInstant {
    /// The start of simulated time.
    pub const ZERO: Self = Self(0);

    /// Constructs an instant at the given millisecond offset from zero.
    #[inline]
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms)
    }

    /// Milliseconds since the start of the run.
    #[inline]
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the run, as a float.
    #[inline]
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Minutes since the start of the run, as a float.
    #[inline]
    #[must_use]
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60_000.0
    }

    /// The duration elapsed since `earlier`.
    ///
    /// Returns [`SimDuration::ZERO`] when `earlier` is in the future.
    #[inline]
    #[must_use]
    pub const fn since(self, earlier: Self) -> SimDuration {
        SimDuration::from_millis(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = Self;
    #[inline]
    fn add(self, rhs: SimDuration) -> Self {
        Self(self.0 + rhs.as_millis())
    }
}

impl AddAssign<SimDuration> for SimInstant {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_millis();
    }
}

impl Sub for SimInstant {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds when `rhs` is later than `self`; use
    /// [`SimInstant::since`] when that is possible.
    #[inline]
    fn sub(self, rhs: Self) -> SimDuration {
        SimDuration::from_millis(self.0 - rhs.0)
    }
}

impl Sub<SimDuration> for SimInstant {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: SimDuration) -> Self {
        Self(self.0 - rhs.as_millis())
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration::from_millis(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_secs(60), SimDuration::from_mins(1));
        assert_eq!(SimDuration::from_mins(60), SimDuration::from_hours(1));
        assert_eq!(SimDuration::from_millis(1_500).as_secs_f64(), 1.5);
        assert_eq!(SimDuration::from_secs_f64(2.5).as_millis(), 2_500);
    }

    #[test]
    fn from_secs_f64_saturates() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_secs(10);
        let b = SimDuration::from_secs(4);
        assert_eq!(a + b, SimDuration::from_secs(14));
        assert_eq!(a - b, SimDuration::from_secs(6));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        assert_eq!(a * 2u64, SimDuration::from_secs(20));
        assert_eq!(a * 0.5, SimDuration::from_secs(5));
        assert_eq!(a / b, 2.5);
        assert_eq!(a / 2u64, SimDuration::from_secs(5));
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = SimInstant::ZERO;
        let t1 = t0 + SimDuration::from_mins(5);
        assert_eq!(t1.as_mins_f64(), 5.0);
        assert_eq!(t1 - t0, SimDuration::from_mins(5));
        assert_eq!(t0.since(t1), SimDuration::ZERO);
        assert_eq!(t1.since(t0), SimDuration::from_mins(5));
        assert_eq!(
            t1 - SimDuration::from_mins(1),
            t0 + SimDuration::from_mins(4)
        );
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimInstant::from_millis(5),
            SimInstant::from_millis(1),
            SimInstant::from_millis(3),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimInstant::from_millis(1),
                SimInstant::from_millis(3),
                SimInstant::from_millis(5)
            ]
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", SimDuration::from_millis(250)), "250ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_mins(80)), "80m0s");
        assert_eq!(format!("{}", SimInstant::from_millis(500)), "t+500ms");
    }
}
