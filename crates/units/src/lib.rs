//! Strongly typed physical quantities for the `leakctl` server energy
//! simulator.
//!
//! Every quantity that crosses a module boundary in the workspace —
//! temperatures, powers, energies, fan speeds, air flows, thermal network
//! elements, utilization levels and simulated time — is wrapped in a
//! dedicated newtype so the compiler rules out unit confusion (watts added
//! to joules, Celsius used as Kelvin, RPM used as a fraction, …).
//!
//! The types are thin `f64` (or `u64` for time) wrappers with the
//! arithmetic that is physically meaningful and nothing more: you can add
//! two [`Watts`], scale them by a plain number, and multiply them by a
//! [`SimDuration`] to obtain [`Joules`], but you cannot add [`Watts`] to
//! [`Celsius`].
//!
//! # Example
//!
//! ```
//! use leakctl_units::{Celsius, Rpm, SimDuration, Utilization, Watts};
//!
//! # fn main() -> Result<(), leakctl_units::QuantityError> {
//! let load = Utilization::from_percent(75.0)?;
//! let fan = Rpm::new(2400.0);
//! let power = Watts::new(0.4452) * load.as_percent();
//! let energy = power * SimDuration::from_mins(30);
//! assert!(energy.as_kwh().value() > 0.0);
//! let t = Celsius::new(70.0);
//! assert!(t.as_kelvin().kelvin() > 343.0);
//! # let _ = fan;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

#[macro_use]
mod macros;

mod electrical;
mod energy;
mod error;
mod flow;
mod power;
mod rpm;
mod temperature;
mod thermal;
mod time;
mod utilization;

pub use electrical::{Amps, Volts};
pub use energy::{Joules, KilowattHours};
pub use error::QuantityError;
pub use flow::AirFlow;
pub use power::Watts;
pub use rpm::Rpm;
pub use temperature::{Celsius, Kelvin, TempDelta};
pub use thermal::{ThermalCapacitance, ThermalConductance, ThermalResistance};
pub use time::{SimDuration, SimInstant};
pub use utilization::Utilization;
