//! Fan rotational speed: [`Rpm`].

quantity! {
    /// Fan rotational speed in revolutions per minute.
    ///
    /// Stored as `f64` because fans slew continuously between integer
    /// setpoints; controller outputs are typically multiples of 600 RPM
    /// as in the paper (1800, 2400, 3000, 3600, 4200).
    ///
    /// ```
    /// use leakctl_units::Rpm;
    ///
    /// let setpoint = Rpm::new(2400.0);
    /// assert!(setpoint > Rpm::new(1800.0));
    /// assert_eq!(setpoint.as_rps(), 40.0);
    /// ```
    Rpm, "RPM"
}

impl Rpm {
    /// Revolutions per second.
    #[inline]
    #[must_use]
    pub fn as_rps(self) -> f64 {
        self.value() / 60.0
    }

    /// The ratio `self / reference`, the form in which fan affinity laws
    /// are applied (flow ∝ ratio, power ∝ ratio³).
    ///
    /// Returns `0.0` when `reference` is zero.
    #[inline]
    #[must_use]
    pub fn ratio_to(self, reference: Rpm) -> f64 {
        if reference.value() == 0.0 {
            0.0
        } else {
            self.value() / reference.value()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let r = Rpm::new(3600.0);
        assert_eq!(r.as_rps(), 60.0);
        assert_eq!(r.ratio_to(Rpm::new(1800.0)), 2.0);
        assert_eq!(r.ratio_to(Rpm::ZERO), 0.0);
    }

    #[test]
    fn arithmetic_and_ordering() {
        assert_eq!(Rpm::new(1800.0) + Rpm::new(600.0), Rpm::new(2400.0));
        assert_eq!(Rpm::new(4200.0) - Rpm::new(600.0), Rpm::new(3600.0));
        assert!(Rpm::new(4200.0) > Rpm::new(3600.0));
        assert_eq!(
            Rpm::new(5000.0).clamp(Rpm::new(1800.0), Rpm::new(4200.0)),
            Rpm::new(4200.0)
        );
    }

    #[test]
    fn display() {
        assert_eq!(format!("{:.0}", Rpm::new(3300.4)), "3300RPM");
    }
}
