//! Temperature quantities: [`Celsius`], [`Kelvin`] and the difference type
//! [`TempDelta`].
//!
//! Absolute temperatures deliberately do **not** implement `Add<Self>` —
//! adding two absolute temperatures is physically meaningless. Subtracting
//! two absolute temperatures yields a [`TempDelta`], and a delta can be
//! added back to an absolute temperature.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Offset between the Celsius and Kelvin scales.
pub const KELVIN_OFFSET: f64 = 273.15;

/// An absolute temperature on the Celsius scale.
///
/// # Example
///
/// ```
/// use leakctl_units::{Celsius, TempDelta};
///
/// let die = Celsius::new(70.0);
/// let ambient = Celsius::new(24.0);
/// let rise: TempDelta = die - ambient;
/// assert_eq!(rise.degrees(), 46.0);
/// assert_eq!(ambient + rise, die);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, PartialOrd, Default, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct Celsius(f64);

impl Celsius {
    /// Constructs a temperature from degrees Celsius.
    #[inline]
    #[must_use]
    pub const fn new(degrees: f64) -> Self {
        Self(degrees)
    }

    /// Degrees Celsius as a raw `f64`.
    #[inline]
    #[must_use]
    pub const fn degrees(self) -> f64 {
        self.0
    }

    /// Converts to the Kelvin scale.
    #[inline]
    #[must_use]
    pub fn as_kelvin(self) -> Kelvin {
        Kelvin::new(self.0 + KELVIN_OFFSET)
    }

    /// Returns the smaller of two temperatures.
    #[inline]
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }

    /// Returns the larger of two temperatures.
    #[inline]
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Clamps into `[lo, hi]`.
    #[inline]
    #[must_use]
    pub fn clamp(self, lo: Self, hi: Self) -> Self {
        Self(self.0.clamp(lo.0, hi.0))
    }

    /// `true` when the underlying value is finite.
    #[inline]
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl Sub for Celsius {
    type Output = TempDelta;
    #[inline]
    fn sub(self, rhs: Self) -> TempDelta {
        TempDelta::new(self.0 - rhs.0)
    }
}

impl Add<TempDelta> for Celsius {
    type Output = Self;
    #[inline]
    fn add(self, rhs: TempDelta) -> Self {
        Self(self.0 + rhs.degrees())
    }
}

impl AddAssign<TempDelta> for Celsius {
    #[inline]
    fn add_assign(&mut self, rhs: TempDelta) {
        self.0 += rhs.degrees();
    }
}

impl Sub<TempDelta> for Celsius {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: TempDelta) -> Self {
        Self(self.0 - rhs.degrees())
    }
}

impl SubAssign<TempDelta> for Celsius {
    #[inline]
    fn sub_assign(&mut self, rhs: TempDelta) {
        self.0 -= rhs.degrees();
    }
}

impl From<Kelvin> for Celsius {
    #[inline]
    fn from(k: Kelvin) -> Self {
        k.as_celsius()
    }
}

impl fmt::Display for Celsius {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*}°C", prec, self.0)
        } else {
            write!(f, "{}°C", self.0)
        }
    }
}

/// An absolute temperature on the Kelvin scale.
///
/// Used by the physics-grounded leakage model, which needs absolute
/// temperatures for its exponential terms.
///
/// # Example
///
/// ```
/// use leakctl_units::{Celsius, Kelvin};
///
/// let t = Celsius::new(26.85).as_kelvin();
/// assert!((t.kelvin() - 300.0).abs() < 1e-9);
/// assert!((t.as_celsius().degrees() - 26.85).abs() < 1e-9);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, PartialOrd, Default, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct Kelvin(f64);

impl Kelvin {
    /// Constructs a temperature from kelvins.
    #[inline]
    #[must_use]
    pub const fn new(kelvin: f64) -> Self {
        Self(kelvin)
    }

    /// Kelvins as a raw `f64`.
    #[inline]
    #[must_use]
    pub const fn kelvin(self) -> f64 {
        self.0
    }

    /// Converts to the Celsius scale.
    #[inline]
    #[must_use]
    pub fn as_celsius(self) -> Celsius {
        Celsius::new(self.0 - KELVIN_OFFSET)
    }
}

impl From<Celsius> for Kelvin {
    #[inline]
    fn from(c: Celsius) -> Self {
        c.as_kelvin()
    }
}

impl fmt::Display for Kelvin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*}K", prec, self.0)
        } else {
            write!(f, "{}K", self.0)
        }
    }
}

/// A temperature *difference* in degrees (identical on the Celsius and
/// Kelvin scales).
///
/// Unlike absolute temperatures, deltas form a vector space: they can be
/// added, subtracted, negated and scaled.
///
/// # Example
///
/// ```
/// use leakctl_units::TempDelta;
///
/// let d = TempDelta::new(5.0) + TempDelta::new(3.0);
/// assert_eq!((d * 2.0).degrees(), 16.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, PartialOrd, Default, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct TempDelta(f64);

impl TempDelta {
    /// The zero difference.
    pub const ZERO: Self = Self(0.0);

    /// Constructs a difference from degrees.
    #[inline]
    #[must_use]
    pub const fn new(degrees: f64) -> Self {
        Self(degrees)
    }

    /// Degrees as a raw `f64`.
    #[inline]
    #[must_use]
    pub const fn degrees(self) -> f64 {
        self.0
    }

    /// Absolute value of the difference.
    #[inline]
    #[must_use]
    pub fn abs(self) -> Self {
        Self(self.0.abs())
    }
}

impl Add for TempDelta {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for TempDelta {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for TempDelta {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl Mul<f64> for TempDelta {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Mul<TempDelta> for f64 {
    type Output = TempDelta;
    #[inline]
    fn mul(self, rhs: TempDelta) -> TempDelta {
        TempDelta(self * rhs.0)
    }
}

impl Div<f64> for TempDelta {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Self(self.0 / rhs)
    }
}

impl Neg for TempDelta {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self(-self.0)
    }
}

impl fmt::Display for TempDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*}Δ°C", prec, self.0)
        } else {
            write!(f, "{}Δ°C", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn celsius_kelvin_round_trip() {
        let c = Celsius::new(70.0);
        let k = c.as_kelvin();
        assert!((k.kelvin() - 343.15).abs() < 1e-12);
        assert!((k.as_celsius().degrees() - 70.0).abs() < 1e-12);
    }

    #[test]
    fn from_impls_match_methods() {
        let c = Celsius::new(24.0);
        assert_eq!(Kelvin::from(c), c.as_kelvin());
        let k = Kelvin::new(300.0);
        assert_eq!(Celsius::from(k), k.as_celsius());
    }

    #[test]
    fn subtraction_yields_delta() {
        let d = Celsius::new(75.0) - Celsius::new(65.0);
        assert_eq!(d, TempDelta::new(10.0));
    }

    #[test]
    fn delta_add_back() {
        let mut t = Celsius::new(24.0);
        t += TempDelta::new(6.0);
        assert_eq!(t, Celsius::new(30.0));
        t -= TempDelta::new(1.0);
        assert_eq!(t, Celsius::new(29.0));
    }

    #[test]
    fn delta_arithmetic() {
        let d = TempDelta::new(5.0);
        assert_eq!((-d).degrees(), -5.0);
        assert_eq!((d * 3.0).degrees(), 15.0);
        assert_eq!((3.0 * d).degrees(), 15.0);
        assert_eq!((d / 2.0).degrees(), 2.5);
        assert_eq!((d - TempDelta::new(1.0)).degrees(), 4.0);
        assert_eq!(TempDelta::new(-2.0).abs().degrees(), 2.0);
    }

    #[test]
    fn ordering() {
        assert!(Celsius::new(75.0) > Celsius::new(65.0));
        assert_eq!(
            Celsius::new(80.0).clamp(Celsius::new(0.0), Celsius::new(75.0)),
            Celsius::new(75.0)
        );
        assert_eq!(
            Celsius::new(60.0).max(Celsius::new(70.0)),
            Celsius::new(70.0)
        );
        assert_eq!(
            Celsius::new(60.0).min(Celsius::new(70.0)),
            Celsius::new(60.0)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{:.1}", Celsius::new(70.25)), "70.2°C");
        assert_eq!(format!("{}", Kelvin::new(300.0)), "300K");
        assert_eq!(format!("{:.0}", TempDelta::new(5.4)), "5Δ°C");
    }

    #[test]
    fn finite_check() {
        assert!(Celsius::new(1.0).is_finite());
        assert!(!Celsius::new(f64::NAN).is_finite());
    }
}
