//! Volumetric air flow: [`AirFlow`].

quantity! {
    /// Volumetric air flow in cubic metres per second.
    ///
    /// Server and fan datasheets usually quote CFM (cubic feet per
    /// minute); conversions are provided both ways.
    ///
    /// ```
    /// use leakctl_units::AirFlow;
    ///
    /// let q = AirFlow::from_cfm(100.0);
    /// assert!((q.as_cfm() - 100.0).abs() < 1e-9);
    /// ```
    AirFlow, "m³/s"
}

/// Cubic metres per second in one CFM.
const M3S_PER_CFM: f64 = 0.000_471_947_443;

impl AirFlow {
    /// Constructs a flow from cubic feet per minute.
    #[inline]
    #[must_use]
    pub fn from_cfm(cfm: f64) -> Self {
        Self::new(cfm * M3S_PER_CFM)
    }

    /// Flow in cubic feet per minute.
    #[inline]
    #[must_use]
    pub fn as_cfm(self) -> f64 {
        self.value() / M3S_PER_CFM
    }

    /// Mass flow in kg/s, given air density in kg/m³.
    #[inline]
    #[must_use]
    pub fn mass_flow(self, density_kg_m3: f64) -> f64 {
        self.value() * density_kg_m3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfm_round_trip() {
        let q = AirFlow::from_cfm(250.0);
        assert!((q.as_cfm() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn mass_flow_at_standard_density() {
        let q = AirFlow::new(0.1);
        assert!((q.mass_flow(1.184) - 0.1184).abs() < 1e-12);
    }

    #[test]
    fn addition_across_parallel_fans() {
        let one = AirFlow::from_cfm(60.0);
        let total: AirFlow = std::iter::repeat_n(one, 6).sum();
        assert!((total.as_cfm() - 360.0).abs() < 1e-9);
    }
}
