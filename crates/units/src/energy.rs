//! Electrical energy: [`Joules`] and the display-oriented
//! [`KilowattHours`] wrapper used when reporting Table I rows.

use crate::{SimDuration, Watts};

quantity! {
    /// Energy in joules.
    ///
    /// ```
    /// use leakctl_units::Joules;
    ///
    /// let e = Joules::new(3_600_000.0);
    /// assert_eq!(e.as_kwh().value(), 1.0);
    /// ```
    Joules, "J"
}

quantity! {
    /// Energy in kilowatt-hours, the unit the paper's Table I reports.
    ///
    /// ```
    /// use leakctl_units::KilowattHours;
    ///
    /// let e = KilowattHours::new(0.6695);
    /// assert_eq!(e.as_joules().value(), 0.6695 * 3.6e6);
    /// ```
    KilowattHours, "kWh"
}

/// Joules per kilowatt-hour.
const JOULES_PER_KWH: f64 = 3.6e6;

impl Joules {
    /// Converts to kilowatt-hours.
    #[inline]
    #[must_use]
    pub fn as_kwh(self) -> KilowattHours {
        KilowattHours::new(self.value() / JOULES_PER_KWH)
    }

    /// The constant average power that delivers this energy over `dt`.
    ///
    /// Returns [`Watts::ZERO`] for a zero-length interval.
    #[inline]
    #[must_use]
    pub fn average_power(self, dt: SimDuration) -> Watts {
        if dt.is_zero() {
            Watts::ZERO
        } else {
            Watts::new(self.value() / dt.as_secs_f64())
        }
    }
}

impl KilowattHours {
    /// Converts to joules.
    #[inline]
    #[must_use]
    pub fn as_joules(self) -> Joules {
        Joules::new(self.value() * JOULES_PER_KWH)
    }
}

impl From<Joules> for KilowattHours {
    #[inline]
    fn from(j: Joules) -> Self {
        j.as_kwh()
    }
}

impl From<KilowattHours> for Joules {
    #[inline]
    fn from(k: KilowattHours) -> Self {
        k.as_joules()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kwh_round_trip() {
        let e = Joules::new(1.23e7);
        let k = e.as_kwh();
        assert!((k.as_joules().value() - 1.23e7).abs() < 1e-6);
        assert_eq!(KilowattHours::from(e), k);
        assert_eq!(Joules::from(k), k.as_joules());
    }

    #[test]
    fn average_power() {
        let e = Watts::new(500.0) * SimDuration::from_mins(10);
        let p = e.average_power(SimDuration::from_mins(10));
        assert!((p.value() - 500.0).abs() < 1e-9);
        assert_eq!(
            Joules::new(42.0).average_power(SimDuration::ZERO),
            Watts::ZERO
        );
    }

    #[test]
    fn accumulation() {
        let mut total = Joules::ZERO;
        for _ in 0..60 {
            total += Watts::new(700.0) * SimDuration::from_secs(60);
        }
        assert!((total.as_kwh().value() - 0.7).abs() < 1e-12);
    }
}
