//! Property-based tests for the digital-twin server.

use leakctl_platform::{Server, ServerConfig};
use leakctl_units::{Celsius, Rpm, SimDuration, Utilization, Watts};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Steady-state die temperature is monotone decreasing in fan speed
    /// at any load.
    #[test]
    fn steady_preview_monotone_in_rpm(
        util in 0.0..=1.0f64,
        rpm_lo in 1800.0..3000.0f64,
        extra in 300.0..1200.0f64,
    ) {
        let server = Server::new(ServerConfig::default(), 1).expect("server");
        let u = Utilization::from_fraction(util).expect("valid");
        let hot = server
            .steady_state_preview(u, Rpm::new(rpm_lo))
            .expect("preview");
        let cold = server
            .steady_state_preview(u, Rpm::new(rpm_lo + extra))
            .expect("preview");
        let max = |temps: &[Celsius]| {
            temps.iter().map(|t| t.degrees()).fold(f64::NEG_INFINITY, f64::max)
        };
        prop_assert!(max(&cold.0) <= max(&hot.0) + 1e-9);
    }

    /// Steady-state die temperature is monotone increasing in load at
    /// any fan speed.
    #[test]
    fn steady_preview_monotone_in_load(
        rpm in 1800.0..4200.0f64,
        u_lo in 0.0..0.6f64,
        du in 0.1..0.4f64,
    ) {
        let server = Server::new(ServerConfig::default(), 1).expect("server");
        let cool = server
            .steady_state_preview(
                Utilization::from_fraction(u_lo).expect("valid"),
                Rpm::new(rpm),
            )
            .expect("preview");
        let warm = server
            .steady_state_preview(
                Utilization::from_fraction(u_lo + du).expect("valid"),
                Rpm::new(rpm),
            )
            .expect("preview");
        let max = |temps: &[Celsius]| {
            temps.iter().map(|t| t.degrees()).fold(f64::NEG_INFINITY, f64::max)
        };
        prop_assert!(max(&warm.0) >= max(&cool.0) - 1e-9);
    }

    /// Energy accounting: total = system + fan, and average power lies
    /// between the observed instantaneous extremes.
    #[test]
    fn energy_accounting_consistent(
        util in 0.0..=1.0f64,
        rpm in 1800.0..4200.0f64,
        minutes in 2u64..8,
    ) {
        let mut server = Server::new(ServerConfig::default(), 2).expect("server");
        server.command_fan_speed(Rpm::new(rpm));
        let u = Utilization::from_fraction(util).expect("valid");
        let mut p_min = f64::INFINITY;
        let mut p_max = f64::NEG_INFINITY;
        for _ in 0..(minutes * 60) {
            server.step(SimDuration::from_secs(1), u).expect("step");
            // Sample after stepping: accounting uses post-slew fan
            // speeds, so pre-step samples can exceed the recorded peak.
            let p = server.total_power().value();
            p_min = p_min.min(p);
            p_max = p_max.max(p);
        }
        let total = server.total_energy().value();
        let parts = server.system_energy().value() + server.fan_energy().value();
        prop_assert!((total - parts).abs() < 1e-6);
        // Accounting uses start-of-step powers while the samples above
        // are end-of-step; allow a watt of skew for the one-step lag.
        let avg = server
            .total_energy()
            .average_power(server.accounted_time())
            .value();
        prop_assert!(avg >= p_min - 1.0 && avg <= p_max + 1.0);
        prop_assert!(server.peak_power() >= Watts::new(p_max - 1.0));
    }

    /// Commanded fan speeds are always reached (within the supported
    /// range) after latency + slew time.
    #[test]
    fn fan_commands_converge(target in 1000.0..5000.0f64) {
        let mut server = Server::new(ServerConfig::default(), 3).expect("server");
        server.command_fan_speed(Rpm::new(target));
        for _ in 0..30 {
            server
                .step(SimDuration::from_secs(1), Utilization::IDLE)
                .expect("step");
        }
        let expect = target.clamp(1800.0, 4200.0);
        prop_assert!(
            (server.actual_rpm().value() - expect).abs() < 1e-6,
            "commanded {target}, settled at {}",
            server.actual_rpm()
        );
    }

    /// Die temperatures stay finite and above ambient under any
    /// constant operating point.
    #[test]
    fn temperatures_physical(
        util in 0.0..=1.0f64,
        rpm in 1800.0..4200.0f64,
    ) {
        let mut server = Server::new(ServerConfig::default(), 4).expect("server");
        server.command_fan_speed(Rpm::new(rpm));
        let u = Utilization::from_fraction(util).expect("valid");
        for _ in 0..600 {
            server.step(SimDuration::from_secs(1), u).expect("step");
        }
        let t = server.max_die_temperature();
        prop_assert!(t.is_finite());
        prop_assert!(t.degrees() >= 24.0 - 1e-6, "below ambient: {t}");
        prop_assert!(t.degrees() < 100.0, "implausibly hot: {t}");
    }
}
