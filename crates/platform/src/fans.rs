//! Fan units, the fan bank, and the external programmable supplies.

use leakctl_units::{AirFlow, Rpm, SimDuration, SimInstant, Watts};

use leakctl_power::FanPowerModel;

/// One physical fan: tracks its setpoint and its actual speed, which
/// slews toward the setpoint at a finite rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FanUnit {
    setpoint: Rpm,
    actual: Rpm,
    slew_rpm_per_s: f64,
}

impl FanUnit {
    /// Creates a fan spinning at `initial`, already at its setpoint.
    ///
    /// # Panics
    ///
    /// Panics for a non-positive slew rate.
    #[must_use]
    pub fn new(initial: Rpm, slew_rpm_per_s: f64) -> Self {
        assert!(slew_rpm_per_s > 0.0, "slew rate must be positive");
        Self {
            setpoint: initial,
            actual: initial,
            slew_rpm_per_s,
        }
    }

    /// Requests a new speed; the fan slews toward it over subsequent
    /// [`FanUnit::advance`] calls.
    pub fn set_target(&mut self, rpm: Rpm) {
        self.setpoint = rpm;
    }

    /// Moves the actual speed toward the setpoint by up to
    /// `slew · dt`.
    pub fn advance(&mut self, dt: SimDuration) {
        let max_delta = self.slew_rpm_per_s * dt.as_secs_f64();
        let diff = self.setpoint.value() - self.actual.value();
        let step = diff.clamp(-max_delta, max_delta);
        self.actual = Rpm::new(self.actual.value() + step);
    }

    /// The commanded speed.
    #[must_use]
    pub fn setpoint(&self) -> Rpm {
        self.setpoint
    }

    /// The present rotational speed.
    #[must_use]
    pub fn actual(&self) -> Rpm {
        self.actual
    }

    /// `true` once the fan has reached its setpoint.
    #[must_use]
    pub fn is_settled(&self) -> bool {
        (self.actual.value() - self.setpoint.value()).abs() < 1e-9
    }
}

/// An external programmable power supply (the paper's Agilent E3644A)
/// driving one *pair* of fans over RS-232.
///
/// Commands arrive after a fixed latency — the script on the DLC-PC
/// writes the new current setting and the supply settles — after which
/// the pair's fans start slewing.
#[derive(Debug, Clone, PartialEq)]
pub struct FanSupply {
    pending: Option<(SimInstant, Rpm)>,
    latency: SimDuration,
    last_applied: Rpm,
}

impl FanSupply {
    /// Creates a supply with the given command latency, initially
    /// holding `initial`.
    #[must_use]
    pub fn new(initial: Rpm, latency: SimDuration) -> Self {
        Self {
            pending: None,
            latency,
            last_applied: initial,
        }
    }

    /// Queues a speed command issued at `now`. A newer command replaces
    /// an unapplied older one (the serial link processes the latest
    /// setting).
    pub fn command(&mut self, now: SimInstant, rpm: Rpm) {
        self.pending = Some((now + self.latency, rpm));
    }

    /// Returns the setting the supply presents at `now`, applying any
    /// due command.
    pub fn poll(&mut self, now: SimInstant) -> Rpm {
        if let Some((due, rpm)) = self.pending {
            if now >= due {
                self.last_applied = rpm;
                self.pending = None;
            }
        }
        self.last_applied
    }

    /// The most recently applied setting (ignores pending commands).
    #[must_use]
    pub fn applied(&self) -> Rpm {
        self.last_applied
    }

    /// The setting the supply is heading for: the pending command if one
    /// is in flight, otherwise the applied setting.
    #[must_use]
    pub fn target(&self) -> Rpm {
        self.pending.map_or(self.last_applied, |(_, rpm)| rpm)
    }

    /// `true` while a command is still in flight.
    #[must_use]
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }
}

/// A fault injected into a chassis fan bank.
///
/// Faults act at the bank level — where a seized controller board or a
/// clogged chassis filter acts on the real server — and propagate into
/// the thermal network automatically because every step re-derives the
/// chassis flow from [`FanBank::flow`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FanFault {
    /// Fans healthy.
    #[default]
    None,
    /// Seized fan controller: the bank ignores every new speed command
    /// (including the service processor's emergency max-cooling) and
    /// holds whatever the supplies last applied.
    Stuck,
    /// Worn bearings / clogged filters: the fans spin and draw power as
    /// commanded but deliver only `flow_scale ∈ [0, 1]` of the healthy
    /// airflow.
    Degraded {
        /// Fraction of the healthy airflow still delivered.
        flow_scale: f64,
    },
}

/// The chassis fan bank: three supplies, each driving a pair of fans,
/// as in the paper's "6 fans, distributed in 3 rows of 2".
#[derive(Debug, Clone, PartialEq)]
pub struct FanBank {
    supplies: Vec<FanSupply>,
    fans: Vec<FanUnit>,
    model: FanPowerModel,
    min_rpm: Rpm,
    max_rpm: Rpm,
    speed_changes: u64,
    fault: FanFault,
}

impl FanBank {
    /// Number of supply-driven pairs.
    pub const PAIRS: usize = 3;

    /// Creates the bank with all fans at `initial`.
    ///
    /// # Panics
    ///
    /// Panics when the model's fan count is not `2 × PAIRS` or limits
    /// are inconsistent.
    #[must_use]
    pub fn new(
        model: FanPowerModel,
        initial: Rpm,
        slew_rpm_per_s: f64,
        latency: SimDuration,
        min_rpm: Rpm,
        max_rpm: Rpm,
    ) -> Self {
        assert_eq!(
            model.count() as usize,
            2 * Self::PAIRS,
            "fan model must describe 6 fans (3 pairs)"
        );
        assert!(min_rpm < max_rpm, "min_rpm must be below max_rpm");
        Self {
            supplies: (0..Self::PAIRS)
                .map(|_| FanSupply::new(initial, latency))
                .collect(),
            fans: (0..2 * Self::PAIRS)
                .map(|_| FanUnit::new(initial, slew_rpm_per_s))
                .collect(),
            model,
            min_rpm,
            max_rpm,
            speed_changes: 0,
            fault: FanFault::None,
        }
    }

    /// Injects (or clears, with [`FanFault::None`]) a bank-level fault.
    ///
    /// # Panics
    ///
    /// Panics for a [`FanFault::Degraded`] flow scale outside `[0, 1]`.
    pub fn inject_fault(&mut self, fault: FanFault) {
        if let FanFault::Degraded { flow_scale } = fault {
            assert!(
                flow_scale.is_finite() && (0.0..=1.0).contains(&flow_scale),
                "degraded fan flow scale must be in [0, 1]"
            );
        }
        self.fault = fault;
    }

    /// The currently injected fault ([`FanFault::None`] when healthy).
    #[must_use]
    pub fn fault(&self) -> FanFault {
        self.fault
    }

    /// Commands every pair to `rpm` (clamped to the supported range).
    /// Counts as one speed change when the clamped value differs from
    /// the last applied command of any supply. A [`FanFault::Stuck`]
    /// bank silently drops the command.
    pub fn command_all(&mut self, now: SimInstant, rpm: Rpm) {
        if self.fault == FanFault::Stuck {
            return;
        }
        let rpm = rpm.clamp(self.min_rpm, self.max_rpm);
        let changed = self.supplies.iter().any(|s| s.target() != rpm);
        for supply in &mut self.supplies {
            if supply.target() != rpm {
                supply.command(now, rpm);
            }
        }
        if changed {
            self.speed_changes += 1;
        }
    }

    /// Commands a single pair (0-based).
    ///
    /// # Panics
    ///
    /// Panics for a pair index ≥ [`FanBank::PAIRS`].
    pub fn command_pair(&mut self, now: SimInstant, pair: usize, rpm: Rpm) {
        assert!(pair < Self::PAIRS, "pair index out of range");
        if self.fault == FanFault::Stuck {
            return;
        }
        let rpm = rpm.clamp(self.min_rpm, self.max_rpm);
        if self.supplies[pair].target() != rpm {
            self.speed_changes += 1;
            self.supplies[pair].command(now, rpm);
        }
    }

    /// Advances supplies (apply due commands) and fan slewing by `dt`
    /// ending at `now`.
    pub fn advance(&mut self, now: SimInstant, dt: SimDuration) {
        for (pair, supply) in self.supplies.iter_mut().enumerate() {
            let setting = supply.poll(now);
            for fan in &mut self.fans[2 * pair..2 * pair + 2] {
                fan.set_target(setting);
            }
        }
        for fan in &mut self.fans {
            fan.advance(dt);
        }
    }

    /// Total electrical power drawn by the bank right now (sum of the
    /// per-fan cubic law at each fan's actual speed).
    #[must_use]
    pub fn power(&self) -> Watts {
        // The model describes the whole bank at a uniform speed; sum
        // per-fan contributions by evaluating at each fan's speed and
        // dividing by the count.
        self.fans
            .iter()
            .map(|f| self.model.power(f.actual()) / f64::from(self.model.count()))
            .sum()
    }

    /// Total air flow delivered right now ([`FanFault::Degraded`]
    /// scales it; power draw is unaffected — worn fans spin at full
    /// speed and full wattage for less air).
    #[must_use]
    pub fn flow(&self) -> AirFlow {
        let scale = match self.fault {
            FanFault::Degraded { flow_scale } => flow_scale,
            FanFault::None | FanFault::Stuck => 1.0,
        };
        let healthy: AirFlow = self
            .fans
            .iter()
            .map(|f| self.model.flow(f.actual()) / f64::from(self.model.count()))
            .sum();
        AirFlow::new(healthy.value() * scale)
    }

    /// Mean actual speed across the six fans.
    #[must_use]
    pub fn mean_rpm(&self) -> Rpm {
        let sum: f64 = self.fans.iter().map(|f| f.actual().value()).sum();
        Rpm::new(sum / self.fans.len() as f64)
    }

    /// The most recent command applied to pair 0 (all-pair commands keep
    /// pairs in lockstep).
    #[must_use]
    pub fn commanded(&self) -> Rpm {
        self.supplies[0].applied()
    }

    /// Number of distinct speed-change commands accepted.
    #[must_use]
    pub fn speed_changes(&self) -> u64 {
        self.speed_changes
    }

    /// `true` when every fan has reached its setpoint and no command is
    /// pending.
    #[must_use]
    pub fn is_settled(&self) -> bool {
        self.fans.iter().all(FanUnit::is_settled) && self.supplies.iter().all(|s| !s.has_pending())
    }

    /// The supported speed range.
    #[must_use]
    pub fn rpm_range(&self) -> (Rpm, Rpm) {
        (self.min_rpm, self.max_rpm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> FanBank {
        FanBank::new(
            FanPowerModel::paper_server(),
            Rpm::new(3300.0),
            600.0,
            SimDuration::from_millis(100),
            Rpm::new(1800.0),
            Rpm::new(4200.0),
        )
    }

    fn at(ms: u64) -> SimInstant {
        SimInstant::from_millis(ms)
    }

    #[test]
    fn fan_slews_at_configured_rate() {
        let mut fan = FanUnit::new(Rpm::new(1800.0), 600.0);
        fan.set_target(Rpm::new(3000.0));
        fan.advance(SimDuration::from_secs(1));
        assert_eq!(fan.actual(), Rpm::new(2400.0));
        assert!(!fan.is_settled());
        fan.advance(SimDuration::from_secs(1));
        assert_eq!(fan.actual(), Rpm::new(3000.0));
        assert!(fan.is_settled());
        // Downward slew too.
        fan.set_target(Rpm::new(2400.0));
        fan.advance(SimDuration::from_millis(500));
        assert_eq!(fan.actual(), Rpm::new(2700.0));
        assert_eq!(fan.setpoint(), Rpm::new(2400.0));
    }

    #[test]
    fn supply_applies_after_latency() {
        let mut s = FanSupply::new(Rpm::new(3300.0), SimDuration::from_millis(100));
        s.command(at(0), Rpm::new(2400.0));
        assert!(s.has_pending());
        assert_eq!(s.poll(at(50)), Rpm::new(3300.0));
        assert_eq!(s.poll(at(100)), Rpm::new(2400.0));
        assert!(!s.has_pending());
        assert_eq!(s.applied(), Rpm::new(2400.0));
    }

    #[test]
    fn newer_command_replaces_pending() {
        let mut s = FanSupply::new(Rpm::new(3300.0), SimDuration::from_millis(100));
        s.command(at(0), Rpm::new(2400.0));
        s.command(at(50), Rpm::new(4200.0));
        assert_eq!(s.poll(at(120)), Rpm::new(3300.0), "first command dropped");
        assert_eq!(s.poll(at(150)), Rpm::new(4200.0));
    }

    #[test]
    fn bank_commands_propagate_to_all_fans() {
        let mut b = bank();
        b.command_all(at(0), Rpm::new(2400.0));
        // Latency then slew: 3300 → 2400 at 600 RPM/s takes 1.5 s.
        for step in 1..=20 {
            b.advance(at(step * 100), SimDuration::from_millis(100));
        }
        assert!(b.is_settled());
        assert_eq!(b.mean_rpm(), Rpm::new(2400.0));
        assert_eq!(b.commanded(), Rpm::new(2400.0));
    }

    #[test]
    fn commands_clamped_to_range() {
        let mut b = bank();
        b.command_all(at(0), Rpm::new(9000.0));
        for step in 1..=40 {
            b.advance(at(step * 100), SimDuration::from_millis(100));
        }
        assert_eq!(b.mean_rpm(), Rpm::new(4200.0));
        b.command_all(at(5_000), Rpm::new(100.0));
        for step in 51..=120 {
            b.advance(at(step * 100), SimDuration::from_millis(100));
        }
        assert_eq!(b.mean_rpm(), Rpm::new(1800.0));
    }

    #[test]
    fn speed_change_counting() {
        let mut b = bank();
        assert_eq!(b.speed_changes(), 0);
        b.command_all(at(0), Rpm::new(2400.0));
        assert_eq!(b.speed_changes(), 1);
        // Re-commanding the same value is not a change.
        b.command_all(at(1_000), Rpm::new(2400.0));
        assert_eq!(b.speed_changes(), 1);
        b.command_all(at(2_000), Rpm::new(3000.0));
        assert_eq!(b.speed_changes(), 2);
        b.command_pair(at(3_000), 1, Rpm::new(1800.0));
        assert_eq!(b.speed_changes(), 3);
    }

    #[test]
    fn power_and_flow_track_actual_speed() {
        let mut b = bank();
        let p_before = b.power();
        let q_before = b.flow();
        b.command_all(at(0), Rpm::new(4200.0));
        for step in 1..=30 {
            b.advance(at(step * 100), SimDuration::from_millis(100));
        }
        assert!(b.power() > p_before);
        assert!(b.flow() > q_before);
        // At a uniform speed the bank matches the model exactly.
        let model = FanPowerModel::paper_server();
        assert!((b.power().value() - model.power(Rpm::new(4200.0)).value()).abs() < 1e-9);
        assert!((b.flow().value() - model.flow(Rpm::new(4200.0)).value()).abs() < 1e-9);
    }

    #[test]
    fn per_pair_speeds_mix() {
        let mut b = bank();
        b.command_pair(at(0), 0, Rpm::new(1800.0));
        b.command_pair(at(0), 2, Rpm::new(4200.0));
        for step in 1..=60 {
            b.advance(at(step * 100), SimDuration::from_millis(100));
        }
        let (lo, hi) = b.rpm_range();
        assert_eq!((lo, hi), (Rpm::new(1800.0), Rpm::new(4200.0)));
        // Mean of 1800, 1800, 3300, 3300, 4200, 4200.
        assert!((b.mean_rpm().value() - 3100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "pair index")]
    fn bad_pair_rejected() {
        let mut b = bank();
        b.command_pair(at(0), 3, Rpm::new(2000.0));
    }

    #[test]
    fn stuck_bank_ignores_commands_until_cleared() {
        let mut b = bank();
        b.inject_fault(FanFault::Stuck);
        assert_eq!(b.fault(), FanFault::Stuck);
        b.command_all(at(0), Rpm::new(4200.0));
        b.command_pair(at(0), 1, Rpm::new(4200.0));
        for step in 1..=30 {
            b.advance(at(step * 100), SimDuration::from_millis(100));
        }
        assert_eq!(b.mean_rpm(), Rpm::new(3300.0), "stuck fans hold speed");
        assert_eq!(b.speed_changes(), 0);
        // Clearing the fault restores command authority.
        b.inject_fault(FanFault::None);
        b.command_all(at(4_000), Rpm::new(4200.0));
        for step in 41..=80 {
            b.advance(at(step * 100), SimDuration::from_millis(100));
        }
        assert_eq!(b.mean_rpm(), Rpm::new(4200.0));
        assert_eq!(b.speed_changes(), 1);
    }

    #[test]
    fn degraded_bank_moves_less_air_at_full_power() {
        let mut b = bank();
        let healthy_flow = b.flow();
        let healthy_power = b.power();
        b.inject_fault(FanFault::Degraded { flow_scale: 0.4 });
        assert!((b.flow().value() - healthy_flow.value() * 0.4).abs() < 1e-12);
        assert_eq!(b.power(), healthy_power, "worn fans still draw full power");
        // Degraded fans still take commands.
        b.command_all(at(0), Rpm::new(4200.0));
        assert_eq!(b.speed_changes(), 1);
        b.inject_fault(FanFault::None);
        assert_eq!(b.flow(), healthy_flow);
    }

    #[test]
    #[should_panic(expected = "flow scale")]
    fn bad_flow_scale_rejected() {
        let mut b = bank();
        b.inject_fault(FanFault::Degraded { flow_scale: 1.5 });
    }
}
