//! Per-socket CPU power model.

use leakctl_power::PhysicalLeakage;
use leakctl_units::{Amps, Celsius, Utilization, Volts, Watts};

/// One processor socket's power behaviour: idle baseline, linear dynamic
/// component, and physics-grounded leakage with per-die process
/// variation.
///
/// The socket exposes the quantities the paper's telemetry reports —
/// total socket power and per-core voltage/current — while keeping the
/// leakage/dynamic split internal (the paper's authors had to *infer*
/// that split from measurements; so does our characterization pipeline).
///
/// # Example
///
/// ```
/// use leakctl_platform::CpuSocket;
/// use leakctl_units::{Celsius, Utilization, Watts};
///
/// let socket = CpuSocket::new(0, 16, Watts::new(55.0), 0.1558, 4.5, 4.5, 1.0, 1.05);
/// let idle = socket.power(Utilization::IDLE, Celsius::new(45.0));
/// let busy = socket.power(Utilization::FULL, Celsius::new(70.0));
/// assert!(busy > idle);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSocket {
    id: usize,
    cores: usize,
    idle: Watts,
    dynamic_slope_w_per_pct: f64,
    const_leak: Watts,
    leakage: PhysicalLeakage,
    voltage: Volts,
}

impl CpuSocket {
    /// Creates a socket model.
    ///
    /// `dynamic_slope_w_per_pct` is this socket's share of the server
    /// dynamic slope; `const_leak_w` and `leak_ref_w` set the
    /// temperature-independent and 70 °C-reference leakage; `sigma` is
    /// the die's process-variation multiplier.
    ///
    /// # Panics
    ///
    /// Panics for zero cores or non-positive voltage (leakage parameter
    /// validation happens inside [`PhysicalLeakage`]).
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: usize,
        cores: usize,
        idle: Watts,
        dynamic_slope_w_per_pct: f64,
        const_leak_w: f64,
        leak_ref_w: f64,
        sigma: f64,
        voltage: f64,
    ) -> Self {
        assert!(cores > 0, "socket must have cores");
        assert!(voltage > 0.0, "core voltage must be positive");
        Self {
            id,
            cores,
            idle,
            dynamic_slope_w_per_pct,
            const_leak: Watts::new(const_leak_w),
            leakage: PhysicalLeakage::calibrated(leak_ref_w).with_process_sigma(sigma),
            voltage: Volts::new(voltage),
        }
    }

    /// The socket index.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Core count.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Total socket power at the given activity and die temperature.
    #[must_use]
    pub fn power(&self, activity: Utilization, die_temp: Celsius) -> Watts {
        self.idle + self.dynamic_power(activity) + self.leakage_power(die_temp)
    }

    /// The dynamic (switching) component only.
    #[must_use]
    pub fn dynamic_power(&self, activity: Utilization) -> Watts {
        Watts::new(self.dynamic_slope_w_per_pct * activity.as_percent())
    }

    /// The leakage component only (constant + temperature-dependent).
    #[must_use]
    pub fn leakage_power(&self, die_temp: Celsius) -> Watts {
        self.const_leak + self.leakage.power(die_temp)
    }

    /// Core supply voltage (what the per-core V channels report).
    #[must_use]
    pub fn core_voltage(&self) -> Volts {
        self.voltage
    }

    /// Current drawn by one core, assuming the even spread LoadGen
    /// guarantees (what the per-core I channels report).
    #[must_use]
    pub fn core_current(&self, activity: Utilization, die_temp: Celsius) -> Amps {
        let per_core = self.power(activity, die_temp) / self.cores as f64;
        per_core.current_at(self.voltage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn socket() -> CpuSocket {
        CpuSocket::new(0, 16, Watts::new(55.0), 0.1558, 4.5, 4.5, 1.0, 1.05)
    }

    #[test]
    fn power_decomposition_sums() {
        let s = socket();
        let u = Utilization::from_percent(60.0).unwrap();
        let t = Celsius::new(65.0);
        let total = s.power(u, t);
        let parts = Watts::new(55.0) + s.dynamic_power(u) + s.leakage_power(t);
        assert!((total.value() - parts.value()).abs() < 1e-12);
    }

    #[test]
    fn dynamic_is_linear() {
        let s = socket();
        let p50 = s.dynamic_power(Utilization::from_percent(50.0).unwrap());
        let p100 = s.dynamic_power(Utilization::FULL);
        assert!((p100.value() - 2.0 * p50.value()).abs() < 1e-12);
        assert!((p100.value() - 15.58).abs() < 1e-9);
    }

    #[test]
    fn leakage_has_constant_floor() {
        let s = socket();
        // Even very cold, leakage ≥ the constant part.
        let cold = s.leakage_power(Celsius::new(0.0));
        assert!(cold.value() >= 4.5);
        let hot = s.leakage_power(Celsius::new(85.0));
        assert!(hot > cold);
    }

    #[test]
    fn reference_leakage_at_70c() {
        let s = socket();
        let leak = s.leakage_power(Celsius::new(70.0));
        assert!((leak.value() - 9.0).abs() < 1e-9, "4.5 const + 4.5 ref");
    }

    #[test]
    fn core_current_scales_with_load() {
        let s = socket();
        let i_idle = s.core_current(Utilization::IDLE, Celsius::new(45.0));
        let i_busy = s.core_current(Utilization::FULL, Celsius::new(70.0));
        assert!(i_busy > i_idle);
        // Socket power / (cores · V) round-trips.
        let p = s.power(Utilization::FULL, Celsius::new(70.0));
        let expect = p.value() / (16.0 * 1.05);
        assert!((i_busy.value() - expect).abs() < 1e-9);
        assert_eq!(s.core_voltage(), Volts::new(1.05));
        assert_eq!(s.cores(), 16);
        assert_eq!(s.id(), 0);
    }

    #[test]
    fn process_variation_affects_leakage_only() {
        let nominal = socket();
        let leaky = CpuSocket::new(0, 16, Watts::new(55.0), 0.1558, 4.5, 4.5, 1.2, 1.05);
        let t = Celsius::new(75.0);
        let u = Utilization::FULL;
        assert_eq!(nominal.dynamic_power(u), leaky.dynamic_power(u));
        assert!(leaky.leakage_power(t) > nominal.leakage_power(t));
    }
}
