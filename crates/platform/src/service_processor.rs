//! Thermal-failsafe watchdog (the service processor's protection role).

use leakctl_units::{Celsius, Rpm};

/// Action requested by the service processor after a temperature check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpAction {
    /// Temperatures are acceptable; external control may proceed.
    None,
    /// A die crossed the critical threshold: force maximum cooling and
    /// lock out external fan control.
    ForceMaxCooling,
    /// Temperatures receded below the release threshold: return control.
    Release,
}

/// The server's thermal watchdog.
///
/// While the paper's experiments rewire fan power, the service
/// processor's protection logic stays armed: if any CPU reaches the
/// critical temperature (90 °C on the paper's machine), cooling is
/// forced to maximum regardless of what the external controller asks,
/// until temperatures recede below the release threshold.
///
/// # Example
///
/// ```
/// use leakctl_platform::{ServiceProcessor, SpAction};
/// use leakctl_units::{Celsius, Rpm};
///
/// let mut sp = ServiceProcessor::new(Celsius::new(90.0), Celsius::new(80.0), Rpm::new(4200.0));
/// assert_eq!(sp.check(Celsius::new(75.0)), SpAction::None);
/// assert_eq!(sp.check(Celsius::new(91.0)), SpAction::ForceMaxCooling);
/// assert!(sp.is_engaged());
/// assert_eq!(sp.check(Celsius::new(79.0)), SpAction::Release);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceProcessor {
    critical: Celsius,
    release: Celsius,
    max_rpm: Rpm,
    engaged: bool,
    activations: u32,
}

impl ServiceProcessor {
    /// Creates a watchdog.
    ///
    /// # Panics
    ///
    /// Panics when `critical <= release`.
    #[must_use]
    pub fn new(critical: Celsius, release: Celsius, max_rpm: Rpm) -> Self {
        assert!(
            critical > release,
            "critical threshold must exceed release threshold"
        );
        Self {
            critical,
            release,
            max_rpm,
            engaged: false,
            activations: 0,
        }
    }

    /// Evaluates the hottest die temperature and returns the required
    /// action. Engagement is latched: once tripped, it persists until
    /// temperatures recede below the release threshold.
    pub fn check(&mut self, max_die: Celsius) -> SpAction {
        if self.engaged {
            if max_die < self.release {
                self.engaged = false;
                SpAction::Release
            } else {
                SpAction::ForceMaxCooling
            }
        } else if max_die >= self.critical {
            self.engaged = true;
            self.activations += 1;
            SpAction::ForceMaxCooling
        } else {
            SpAction::None
        }
    }

    /// `true` while the failsafe is holding the fans at maximum.
    #[must_use]
    pub fn is_engaged(&self) -> bool {
        self.engaged
    }

    /// How many times the failsafe has tripped.
    #[must_use]
    pub fn activations(&self) -> u32 {
        self.activations
    }

    /// The speed the failsafe forces.
    #[must_use]
    pub fn forced_rpm(&self) -> Rpm {
        self.max_rpm
    }

    /// The critical threshold.
    #[must_use]
    pub fn critical(&self) -> Celsius {
        self.critical
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> ServiceProcessor {
        ServiceProcessor::new(Celsius::new(90.0), Celsius::new(80.0), Rpm::new(4200.0))
    }

    #[test]
    fn stays_quiet_in_normal_range() {
        let mut s = sp();
        for t in [40.0, 60.0, 75.0, 89.9] {
            assert_eq!(s.check(Celsius::new(t)), SpAction::None);
        }
        assert!(!s.is_engaged());
        assert_eq!(s.activations(), 0);
    }

    #[test]
    fn trips_latches_and_releases() {
        let mut s = sp();
        assert_eq!(s.check(Celsius::new(90.0)), SpAction::ForceMaxCooling);
        assert!(s.is_engaged());
        assert_eq!(s.activations(), 1);
        // Still hot, still forced — and no double-count.
        assert_eq!(s.check(Celsius::new(85.0)), SpAction::ForceMaxCooling);
        assert_eq!(s.activations(), 1);
        // Recedes below release.
        assert_eq!(s.check(Celsius::new(79.9)), SpAction::Release);
        assert!(!s.is_engaged());
        // Second trip counts again.
        assert_eq!(s.check(Celsius::new(95.0)), SpAction::ForceMaxCooling);
        assert_eq!(s.activations(), 2);
        assert_eq!(s.forced_rpm(), Rpm::new(4200.0));
        assert_eq!(s.critical(), Celsius::new(90.0));
    }

    #[test]
    #[should_panic(expected = "critical threshold")]
    fn rejects_inverted_thresholds() {
        let _ = ServiceProcessor::new(Celsius::new(80.0), Celsius::new(85.0), Rpm::new(4200.0));
    }
}
