//! The server's stepping core: physics, power models and accounting,
//! with no telemetry or tracing attached.
//!
//! [`ServerCore`] is everything [`Server`](crate::Server) needs to
//! advance the machine state — fans, failsafe, component power models,
//! the thermal RC network with its cached stepper, and energy/peak
//! accounting — extracted so the thermal integration can be lifted out
//! of the per-server loop and batched across a fleet:
//!
//! 1. [`ServerCore::begin_step`] applies fan dynamics, the thermal
//!    failsafe and component powers, and accounts energy;
//! 2. the thermal network is integrated — either in place through
//!    [`ServerCore::integrate`], or externally by a
//!    [`BatchSolver`](leakctl_thermal::BatchSolver) operating on
//!    [`ServerCore::split_thermal`] lanes from many cores at once;
//! 3. [`ServerCore::finish_step`] advances the simulation clock.
//!
//! [`ServerCore::step`] runs the three phases back to back for headless
//! (telemetry-free) stepping. `Server` wraps the same phases and adds
//! CSTH polling and event tracing on top, so both paths advance the
//! physics identically.

use leakctl_sim::Clock;
use leakctl_thermal::{
    ConvectionModel, Coupling, NodeId, ThermalNetwork, ThermalNetworkBuilder, ThermalState,
    TransientSolver,
};
use leakctl_units::{
    Celsius, Joules, Rpm, SimDuration, SimInstant, ThermalConductance, Utilization, Watts,
};

use crate::config::ServerConfig;
use crate::cpu::CpuSocket;
use crate::dimm::DimmBank;
use crate::error::PlatformError;
use crate::fans::{FanBank, FanFault};
use crate::service_processor::{ServiceProcessor, SpAction};

/// Thermal-network handles for one socket.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SocketNodes {
    pub(crate) die: NodeId,
    pub(crate) sink: NodeId,
    pub(crate) air: NodeId,
}

/// Service-processor activity observed during a step, for the caller to
/// trace (the core itself records nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpTransition {
    /// No failsafe state change.
    None,
    /// The failsafe tripped and forced maximum cooling.
    ForcedMaxCooling,
    /// The failsafe released back to external control.
    Released,
}

/// The digital-twin server minus telemetry: components, thermal model,
/// failsafe, clock and accounting.
///
/// Use it directly for headless fleet simulation (no sensor noise, no
/// CSTH history), or through [`Server`](crate::Server) for the full
/// telemetry-observed machine. See the module docs for the
/// begin/integrate/finish phase protocol.
#[derive(Debug, Clone)]
pub struct ServerCore {
    pub(crate) config: ServerConfig,
    // Components.
    pub(crate) sockets: Vec<CpuSocket>,
    pub(crate) dimm_banks: Vec<DimmBank>,
    pub(crate) fans: FanBank,
    pub(crate) sp: ServiceProcessor,
    // Thermal model.
    pub(crate) net: ThermalNetwork,
    pub(crate) state: ThermalState,
    /// Cached stepping engine: reuses assembly and the `(C + h·G)`
    /// factorization across the (very common) constant-flow,
    /// constant-dt stretches of a run.
    pub(crate) stepper: TransientSolver,
    pub(crate) socket_nodes: Vec<SocketNodes>,
    pub(crate) dimm_nodes: Vec<NodeId>,
    pub(crate) air_dimm: NodeId,
    pub(crate) ambient_node: NodeId,
    pub(crate) chassis_flow: leakctl_thermal::FlowChannelId,
    // Time & accounting.
    pub(crate) clock: Clock,
    pub(crate) last_activity: Utilization,
    pub(crate) system_energy: Joules,
    pub(crate) fan_energy: Joules,
    pub(crate) peak_power: Watts,
    pub(crate) accounted: SimDuration,
}

impl ServerCore {
    /// Builds the stepping core from `config`.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::Config`] for inconsistent configuration
    /// or a thermal-construction failure.
    pub fn new(config: ServerConfig) -> Result<Self, PlatformError> {
        config.validate()?;

        // ---- components ------------------------------------------
        let cpu_slope = config.cpu_dynamic_slope_per_socket();
        let sockets: Vec<CpuSocket> = (0..config.sockets)
            .map(|s| {
                CpuSocket::new(
                    s,
                    config.cores_per_socket,
                    config.cpu_idle_per_socket,
                    cpu_slope,
                    config.cpu_const_leak_per_socket.value(),
                    config.cpu_leak_ref_per_socket.value(),
                    config.process_sigma[s],
                    config.core_voltage,
                )
            })
            .collect();
        let dimms_per_bank = config.dimm_count / 2;
        let dimm_slope_per_bank = config.dimm_dynamic_slope() / 2.0;
        let dimm_banks: Vec<DimmBank> = (0..2)
            .map(|b| {
                DimmBank::new(
                    b,
                    dimms_per_bank,
                    config.dimm_idle_each,
                    dimm_slope_per_bank,
                )
            })
            .collect();
        let fans = FanBank::new(
            config.fans,
            config.default_rpm,
            config.fan_slew_rpm_per_s,
            SimDuration::from_millis(config.supply_latency_ms),
            config.min_rpm,
            config.max_rpm,
        );
        let sp = ServiceProcessor::new(
            config.critical_temp,
            config.failsafe_release_temp,
            config.max_rpm,
        );

        // ---- thermal network --------------------------------------
        let mut b = ThermalNetworkBuilder::new();
        let ambient = b.add_boundary("ambient", config.ambient);
        let chassis_flow = b.add_flow_channel("chassis");
        let q_ref = config.fans.flow(config.max_rpm);
        let sink_conv = ConvectionModel::new(
            config.sink_conv_g_ref,
            q_ref,
            config.sink_conv_exponent,
            config.sink_conv_g_min,
        );
        let dimm_conv = ConvectionModel::new(
            config.dimm_conv_g_ref,
            q_ref,
            config.sink_conv_exponent,
            config.sink_conv_g_min,
        );

        let air_dimm = b.add_node("air_dimm", config.air_capacitance);
        b.connect_directed(
            ambient,
            air_dimm,
            Coupling::Advective {
                channel: chassis_flow,
                fraction: 1.0,
            },
        )?;
        // Natural-convection leak so the network stays solvable at zero
        // flow.
        b.connect(
            air_dimm,
            ambient,
            Coupling::Conductance(ThermalConductance::new(0.5)),
        )?;

        let mut dimm_nodes = Vec::new();
        for bank in 0..2 {
            let node = b.add_node(&format!("dimm_bank{bank}"), config.dimm_bank_capacitance);
            b.connect(
                node,
                air_dimm,
                Coupling::Convective {
                    channel: chassis_flow,
                    model: dimm_conv,
                },
            )?;
            dimm_nodes.push(node);
        }

        let per_socket_fraction = 1.0 / config.sockets as f64;
        let mut socket_nodes = Vec::new();
        for s in 0..config.sockets {
            let die = b.add_node(&format!("cpu{s}_die"), config.die_capacitance);
            let sink = b.add_node(&format!("cpu{s}_sink"), config.sink_capacitance);
            let air = b.add_node(&format!("cpu{s}_air"), config.air_capacitance);
            b.connect(
                die,
                sink,
                Coupling::Conductance(config.die_sink_conductance),
            )?;
            b.connect(
                sink,
                air,
                Coupling::Convective {
                    channel: chassis_flow,
                    model: sink_conv,
                },
            )?;
            b.connect_directed(
                air_dimm,
                air,
                Coupling::Advective {
                    channel: chassis_flow,
                    fraction: per_socket_fraction,
                },
            )?;
            b.connect(
                air,
                ambient,
                Coupling::Conductance(ThermalConductance::new(0.5)),
            )?;
            socket_nodes.push(SocketNodes { die, sink, air });
        }
        let mut net = b.build()?;
        net.set_flow(chassis_flow, fans.flow())?;
        let state = net.uniform_state(config.ambient);
        let stepper = TransientSolver::new(&net);

        Ok(Self {
            config,
            sockets,
            dimm_banks,
            fans,
            sp,
            net,
            state,
            stepper,
            socket_nodes,
            dimm_nodes,
            air_dimm,
            ambient_node: ambient,
            chassis_flow,
            clock: Clock::new(),
            last_activity: Utilization::IDLE,
            system_energy: Joules::ZERO,
            fan_energy: Joules::ZERO,
            peak_power: Watts::ZERO,
            accounted: SimDuration::ZERO,
        })
    }

    // ---- observation ----------------------------------------------

    /// The simulation clock.
    #[must_use]
    pub fn now(&self) -> SimInstant {
        self.clock.now()
    }

    /// The machine configuration.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The thermal network (read side) — e.g. for building a
    /// [`BatchSolver`](leakctl_thermal::BatchSolver) over a fleet of
    /// identically configured cores.
    #[must_use]
    pub fn thermal_network(&self) -> &ThermalNetwork {
        &self.net
    }

    /// The state-vector slots of the CPU die nodes, in socket order —
    /// the slots per-step dynamics read (failsafe, power models,
    /// leakage). A fleet engine keeping thermal state resident in
    /// packed batch storage syncs exactly these slots back into the
    /// core each step and defers full unpacks to telemetry reads.
    #[must_use]
    pub fn die_state_slots(&self) -> Vec<usize> {
        self.socket_nodes
            .iter()
            .map(|n| {
                self.net
                    .state_slot(n.die)
                    .expect("die nodes are capacitive")
            })
            .collect()
    }

    /// Ground-truth die temperature of `socket`.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::BadIndex`] for an out-of-range socket.
    pub fn die_temperature(&self, socket: usize) -> Result<Celsius, PlatformError> {
        let nodes = self
            .socket_nodes
            .get(socket)
            .ok_or(PlatformError::BadIndex {
                kind: "socket",
                index: socket,
            })?;
        Ok(self.net.temperature(&self.state, nodes.die))
    }

    /// Ground-truth heat-sink temperature of `socket`.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::BadIndex`] for an out-of-range socket.
    pub fn sink_temperature(&self, socket: usize) -> Result<Celsius, PlatformError> {
        let nodes = self
            .socket_nodes
            .get(socket)
            .ok_or(PlatformError::BadIndex {
                kind: "socket",
                index: socket,
            })?;
        Ok(self.net.temperature(&self.state, nodes.sink))
    }

    /// Ground-truth local air temperature at `socket`'s heat sink.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::BadIndex`] for an out-of-range socket.
    pub fn air_temperature(&self, socket: usize) -> Result<Celsius, PlatformError> {
        let nodes = self
            .socket_nodes
            .get(socket)
            .ok_or(PlatformError::BadIndex {
                kind: "socket",
                index: socket,
            })?;
        Ok(self.net.temperature(&self.state, nodes.air))
    }

    /// Ground-truth hottest die temperature.
    #[must_use]
    pub fn max_die_temperature(&self) -> Celsius {
        self.socket_nodes
            .iter()
            .map(|n| self.net.temperature(&self.state, n.die))
            .fold(Celsius::new(f64::NEG_INFINITY), Celsius::max)
    }

    /// Ground-truth wall (AC) power of the system side — everything
    /// behind the PSU; fans are powered externally.
    #[must_use]
    pub fn system_power(&self) -> Watts {
        self.config.psu.input_power(self.dc_power())
    }

    /// Ground-truth DC power of all system components.
    #[must_use]
    pub fn dc_power(&self) -> Watts {
        let cpu: Watts = self
            .sockets
            .iter()
            .zip(&self.socket_nodes)
            .map(|(s, n)| s.power(self.last_activity, self.net.temperature(&self.state, n.die)))
            .sum();
        let dimm: Watts = self
            .dimm_banks
            .iter()
            .map(|b| b.power(self.last_activity))
            .sum();
        cpu + dimm + self.config.board_power
    }

    /// Ground-truth total CPU leakage right now (for analysis and
    /// EXPERIMENTS.md ground-truth columns; controllers never see this).
    #[must_use]
    pub fn leakage_power(&self) -> Watts {
        self.sockets
            .iter()
            .zip(&self.socket_nodes)
            .map(|(s, n)| s.leakage_power(self.net.temperature(&self.state, n.die)))
            .sum()
    }

    /// Ground-truth fan power (drawn from the external supplies).
    #[must_use]
    pub fn fan_power(&self) -> Watts {
        self.fans.power()
    }

    /// Ground-truth total power: system wall power plus fan power.
    #[must_use]
    pub fn total_power(&self) -> Watts {
        self.system_power() + self.fan_power()
    }

    /// Accumulated system + fan energy since construction or the last
    /// [`ServerCore::reset_accounting`].
    #[must_use]
    pub fn total_energy(&self) -> Joules {
        self.system_energy + self.fan_energy
    }

    /// Accumulated fan energy.
    #[must_use]
    pub fn fan_energy(&self) -> Joules {
        self.fan_energy
    }

    /// Accumulated system (wall) energy.
    #[must_use]
    pub fn system_energy(&self) -> Joules {
        self.system_energy
    }

    /// Highest instantaneous total power observed.
    #[must_use]
    pub fn peak_power(&self) -> Watts {
        self.peak_power
    }

    /// Time over which energy has been accumulated.
    #[must_use]
    pub fn accounted_time(&self) -> SimDuration {
        self.accounted
    }

    /// Mean actual fan speed.
    #[must_use]
    pub fn actual_rpm(&self) -> Rpm {
        self.fans.mean_rpm()
    }

    /// Last applied fan command.
    #[must_use]
    pub fn commanded_rpm(&self) -> Rpm {
        self.fans.commanded()
    }

    /// Number of accepted fan speed changes.
    #[must_use]
    pub fn fan_speed_changes(&self) -> u64 {
        self.fans.speed_changes()
    }

    /// How many times the thermal failsafe tripped.
    #[must_use]
    pub fn failsafe_activations(&self) -> u32 {
        self.sp.activations()
    }

    /// The activity level applied in the most recent step.
    #[must_use]
    pub fn current_activity(&self) -> Utilization {
        self.last_activity
    }

    // ---- control ----------------------------------------------------

    /// Commands all fan pairs to `rpm` through the external supplies
    /// (applies after the configured command latency, then slews).
    /// Returns `false` when the thermal failsafe is engaged and the
    /// command was overridden (callers may want to trace that).
    pub fn command_fan_speed(&mut self, rpm: Rpm) -> bool {
        if self.sp.is_engaged() {
            return false;
        }
        self.fans.command_all(self.clock.now(), rpm);
        true
    }

    /// Injects (or clears, with [`FanFault::None`]) a fan-bank fault.
    /// The fault changes the delivered chassis flow, which the next
    /// step's [`begin_step`](Self::begin_step) re-derives and feeds
    /// into the thermal network — so cached factorizations invalidate
    /// through the ordinary flow-generation counters.
    ///
    /// # Panics
    ///
    /// Panics for a [`FanFault::Degraded`] flow scale outside `[0, 1]`.
    pub fn inject_fan_fault(&mut self, fault: FanFault) {
        self.fans.inject_fault(fault);
    }

    /// The fan bank's currently injected fault.
    #[must_use]
    pub fn fan_fault(&self) -> FanFault {
        self.fans.fault()
    }

    /// Re-pins the ambient (inlet) temperature — used for ambient-
    /// derating sweeps and rack scenarios where exhaust recirculation
    /// warms the inlet.
    ///
    /// # Errors
    ///
    /// Propagates thermal-network errors (never expected for the
    /// built-in ambient node).
    pub fn set_ambient(&mut self, ambient: Celsius) -> Result<(), PlatformError> {
        self.net.set_boundary(self.ambient_node, ambient)?;
        Ok(())
    }

    /// The current ambient (inlet) temperature.
    #[must_use]
    pub fn ambient(&self) -> Celsius {
        self.net.temperature(&self.state, self.ambient_node)
    }

    /// Resets energy, peak-power and timing accumulators (used between
    /// experiment phases).
    pub fn reset_accounting(&mut self) {
        self.system_energy = Joules::ZERO;
        self.fan_energy = Joules::ZERO;
        self.peak_power = Watts::ZERO;
        self.accounted = SimDuration::ZERO;
    }

    // ---- dynamics ---------------------------------------------------

    /// Phase 1 of a step: fan supplies apply due commands and fans
    /// slew, the thermal failsafe runs on ground-truth die temperature,
    /// component powers are evaluated at start-of-step temperatures and
    /// injected into the network, and energy/peak accounting runs.
    ///
    /// After this, integrate the thermal network (either
    /// [`ServerCore::integrate`] or an external batch solve over
    /// [`ServerCore::split_thermal`]) and call
    /// [`ServerCore::finish_step`].
    ///
    /// # Errors
    ///
    /// Propagates thermal-network failures.
    pub fn begin_step(
        &mut self,
        dt: SimDuration,
        activity: Utilization,
    ) -> Result<SpTransition, PlatformError> {
        if dt.is_zero() {
            return Ok(SpTransition::None);
        }
        let end = self.clock.now() + dt;
        self.last_activity = activity;

        // Fan supplies apply due commands; fans slew.
        self.fans.advance(end, dt);
        self.net.set_flow(self.chassis_flow, self.fans.flow())?;

        // Thermal failsafe on ground-truth die temperature.
        let transition = match self.sp.check(self.max_die_temperature()) {
            SpAction::ForceMaxCooling => {
                self.fans.command_all(self.clock.now(), self.config.max_rpm);
                SpTransition::ForcedMaxCooling
            }
            SpAction::Release => SpTransition::Released,
            SpAction::None => SpTransition::None,
        };

        // Component powers from start-of-step temperatures. Each model
        // is evaluated once and reused for both the thermal injection
        // and the energy accounting (the leakage exponential is the
        // single most expensive power-model term).
        let mut cpu_p = Watts::ZERO;
        for (socket, nodes) in self.sockets.iter().zip(&self.socket_nodes) {
            let die_t = self.net.temperature(&self.state, nodes.die);
            let p = socket.power(activity, die_t);
            cpu_p += p;
            self.net.set_power(nodes.die, p)?;
        }
        let mut dimm_p = Watts::ZERO;
        for (bank, &node) in self.dimm_banks.iter().zip(&self.dimm_nodes) {
            let p = bank.power(activity);
            dimm_p += p;
            self.net.set_power(node, p)?;
        }
        self.net.set_power(self.air_dimm, self.config.board_power)?;

        // Energy accounting with start-of-step powers.
        let dc = cpu_p + dimm_p + self.config.board_power;
        let wall = self.config.psu.input_power(dc);
        let fan_p = self.fan_power();
        self.system_energy += wall * dt;
        self.fan_energy += fan_p * dt;
        self.peak_power = self.peak_power.max(wall + fan_p);
        self.accounted += dt;

        Ok(transition)
    }

    /// As [`ServerCore::begin_step`], first re-pinning the inlet
    /// (ambient) boundary to an externally computed temperature — the
    /// coupling hook room-scale air models drive: a fleet engine reads
    /// its rack's cold-aisle volume and feeds it here every step,
    /// replacing the scalar `T_inlet = T_room + r·P` approximation.
    ///
    /// # Errors
    ///
    /// Propagates thermal-network failures.
    pub fn begin_step_with_inlet(
        &mut self,
        dt: SimDuration,
        activity: Utilization,
        inlet: Celsius,
    ) -> Result<SpTransition, PlatformError> {
        self.set_ambient(inlet)?;
        self.begin_step(dt, activity)
    }

    /// Phase 2 of a step: integrates the thermal network by `dt`
    /// through the core's cached stepper.
    ///
    /// # Errors
    ///
    /// Propagates thermal-solver failures.
    pub fn integrate(&mut self, dt: SimDuration) -> Result<(), PlatformError> {
        self.stepper
            .step(&self.net, &mut self.state, dt, self.config.integrator)?;
        Ok(())
    }

    /// The thermal network and mutable state as a batch lane — phase 2
    /// when an external [`BatchSolver`](leakctl_thermal::BatchSolver)
    /// integrates many cores through one shared factorization.
    #[must_use]
    pub fn split_thermal(&mut self) -> (&ThermalNetwork, &mut ThermalState) {
        (&self.net, &mut self.state)
    }

    /// The thermal state (read side) — e.g. for packing a fleet's
    /// states into batch storage.
    #[must_use]
    pub fn thermal_state(&self) -> &ThermalState {
        &self.state
    }

    /// Phase 3 of a step: advances the simulation clock by `dt`.
    pub fn finish_step(&mut self, dt: SimDuration) {
        if dt.is_zero() {
            return;
        }
        let end = self.clock.now() + dt;
        self.clock.advance_to(end).expect("time moves forward");
    }

    /// Advances the core by `dt` with the given switching activity:
    /// [`ServerCore::begin_step`] + [`ServerCore::integrate`] +
    /// [`ServerCore::finish_step`] — the headless (telemetry-free)
    /// counterpart of [`Server::step`](crate::Server::step), advancing
    /// the physics identically.
    ///
    /// # Errors
    ///
    /// Propagates thermal-solver failures.
    pub fn step(
        &mut self,
        dt: SimDuration,
        activity: Utilization,
    ) -> Result<SpTransition, PlatformError> {
        if dt.is_zero() {
            return Ok(SpTransition::None);
        }
        let transition = self.begin_step(dt, activity)?;
        self.integrate(dt)?;
        self.finish_step(dt);
        Ok(transition)
    }

    // ---- analysis helpers -------------------------------------------

    /// Predicts the steady-state die temperatures and system DC power
    /// for a hypothetical operating point, solving the
    /// leakage–temperature fixed point. Does not disturb the live
    /// state.
    ///
    /// # Errors
    ///
    /// Returns a thermal error when the network cannot be solved.
    pub fn steady_state_preview(
        &self,
        activity: Utilization,
        rpm: Rpm,
    ) -> Result<(Vec<Celsius>, Watts), PlatformError> {
        let mut net = self.net.clone();
        let rpm = rpm.clamp(self.config.min_rpm, self.config.max_rpm);
        net.set_flow(self.chassis_flow, self.config.fans.flow(rpm))?;
        for (bank, &node) in self.dimm_banks.iter().zip(&self.dimm_nodes) {
            net.set_power(node, bank.power(activity))?;
        }
        net.set_power(self.air_dimm, self.config.board_power)?;

        let mut temps: Vec<Celsius> = vec![self.config.ambient; self.sockets.len()];
        let mut state = net.uniform_state(self.config.ambient);
        // One solver for the whole fixed-point loop: flows are constant
        // across iterations, so `G` is factored once and every
        // iteration is a single back-substitution.
        let mut solver = TransientSolver::new(&net);
        for _ in 0..60 {
            for (socket, nodes) in self.sockets.iter().zip(&self.socket_nodes) {
                let idx = socket.id();
                net.set_power(nodes.die, socket.power(activity, temps[idx]))?;
            }
            solver.steady_state_into(&net, &mut state)?;
            let new_temps: Vec<Celsius> = self
                .socket_nodes
                .iter()
                .map(|n| net.temperature(&state, n.die))
                .collect();
            // Leakage–temperature thermal runaway: the fixed point has
            // no finite solution at this operating point.
            if new_temps.iter().any(|t| !t.is_finite()) {
                return Err(PlatformError::Thermal(
                    leakctl_thermal::ThermalError::Diverged {
                        name: "leakage-temperature fixed point".to_owned(),
                    },
                ));
            }
            let delta = new_temps
                .iter()
                .zip(&temps)
                .map(|(a, b)| (a.degrees() - b.degrees()).abs())
                .fold(0.0, f64::max);
            temps = new_temps;
            if delta < 1e-6 {
                break;
            }
        }
        let dc: Watts = self
            .sockets
            .iter()
            .map(|s| s.power(activity, temps[s.id()]))
            .sum::<Watts>()
            + self
                .dimm_banks
                .iter()
                .map(|b| b.power(activity))
                .sum::<Watts>()
            + self.config.board_power;
        let _ = &state;
        Ok((temps, dc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phased_step_equals_one_shot_step() {
        let mut phased = ServerCore::new(ServerConfig::default()).unwrap();
        let mut oneshot = ServerCore::new(ServerConfig::default()).unwrap();
        let dt = SimDuration::from_secs(1);
        for i in 0..300 {
            let act = if i % 30 < 15 {
                Utilization::FULL
            } else {
                Utilization::IDLE
            };
            phased.begin_step(dt, act).unwrap();
            phased.integrate(dt).unwrap();
            phased.finish_step(dt);
            oneshot.step(dt, act).unwrap();
        }
        assert_eq!(phased.max_die_temperature(), oneshot.max_die_temperature());
        assert_eq!(phased.total_energy(), oneshot.total_energy());
        assert_eq!(phased.now(), oneshot.now());
    }

    #[test]
    fn zero_dt_phases_are_noops() {
        let mut core = ServerCore::new(ServerConfig::default()).unwrap();
        let t = core.now();
        let e = core.total_energy();
        assert_eq!(
            core.begin_step(SimDuration::ZERO, Utilization::FULL)
                .unwrap(),
            SpTransition::None
        );
        core.finish_step(SimDuration::ZERO);
        assert_eq!(core.now(), t);
        assert_eq!(core.total_energy(), e);
    }

    #[test]
    fn split_thermal_exposes_live_state() {
        let mut core = ServerCore::new(ServerConfig::default()).unwrap();
        core.step(SimDuration::from_secs(60), Utilization::FULL)
            .unwrap();
        let (net, state) = core.split_thermal();
        assert_eq!(state.len(), net.state_count());
        assert!(state.is_finite());
    }
}
