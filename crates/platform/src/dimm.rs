//! Memory-subsystem power model.

use leakctl_units::{Utilization, Watts};

/// One bank of DIMMs (the airflow crosses two banks of 16 before
/// reaching the CPUs).
///
/// Memory power is mostly activity-independent (refresh + standby) with
/// a modest activity term — the bank receives a share of the server's
/// fitted dynamic slope.
///
/// # Example
///
/// ```
/// use leakctl_platform::DimmBank;
/// use leakctl_units::{Utilization, Watts};
///
/// let bank = DimmBank::new(0, 16, Watts::new(3.0), 0.0668);
/// assert!(bank.power(Utilization::FULL) > bank.power(Utilization::IDLE));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DimmBank {
    id: usize,
    dimms: usize,
    idle_each: Watts,
    dynamic_slope_w_per_pct: f64,
}

impl DimmBank {
    /// Creates a bank of `dimms` modules; `dynamic_slope_w_per_pct` is
    /// the bank's share of the server dynamic slope.
    ///
    /// # Panics
    ///
    /// Panics for an empty bank.
    #[must_use]
    pub fn new(id: usize, dimms: usize, idle_each: Watts, dynamic_slope_w_per_pct: f64) -> Self {
        assert!(dimms > 0, "bank must contain DIMMs");
        Self {
            id,
            dimms,
            idle_each,
            dynamic_slope_w_per_pct,
        }
    }

    /// The bank index.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of modules in the bank.
    #[must_use]
    pub fn dimms(&self) -> usize {
        self.dimms
    }

    /// Bank power at the given activity level.
    #[must_use]
    pub fn power(&self, activity: Utilization) -> Watts {
        self.idle_each * self.dimms as f64
            + Watts::new(self.dynamic_slope_w_per_pct * activity.as_percent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_power_scales_with_count() {
        let bank = DimmBank::new(0, 16, Watts::new(3.0), 0.0668);
        assert!((bank.power(Utilization::IDLE).value() - 48.0).abs() < 1e-12);
        assert_eq!(bank.dimms(), 16);
        assert_eq!(bank.id(), 0);
    }

    #[test]
    fn activity_adds_linear_term() {
        let bank = DimmBank::new(1, 16, Watts::new(3.0), 0.0668);
        let p = bank.power(Utilization::FULL);
        assert!((p.value() - (48.0 + 6.68)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must contain")]
    fn empty_bank_rejected() {
        let _ = DimmBank::new(0, 0, Watts::new(3.0), 0.0);
    }
}
