//! The assembled digital-twin server.

use leakctl_sim::{Periodic, SimRng, TraceRecorder};
use leakctl_telemetry::{ChannelId, Csth, Sensor, SensorSpec, CSTH_POLL_PERIOD};
use leakctl_thermal::{ThermalNetwork, ThermalState};
use leakctl_units::{Celsius, Joules, Rpm, SimDuration, SimInstant, Utilization, Watts};

use crate::config::ServerConfig;
use crate::engine::{ServerCore, SpTransition};
use crate::error::PlatformError;
use crate::fans::FanFault;

/// Telemetry channel handles.
#[derive(Debug, Clone)]
struct Channels {
    cpu_temps: Vec<ChannelId>, // 2 per socket
    dimm_temps: Vec<ChannelId>,
    core_currents: Vec<ChannelId>,
    socket_voltages: Vec<ChannelId>,
    system_power: ChannelId,
    fan_power: ChannelId,
    fan_rpm: ChannelId,
}

/// Sensor instances matching [`Channels`].
#[derive(Debug, Clone)]
struct Sensors {
    cpu_temps: Vec<Sensor>,
    dimm_temps: Vec<Sensor>,
    dimm_offsets: Vec<f64>,
    core_currents: Vec<Sensor>,
    system_power: Sensor,
    fan_power: Sensor,
    fan_rpm: Sensor,
}

/// The digital-twin enterprise server.
///
/// Owns the stepping core ([`ServerCore`]: thermal RC network,
/// per-component power models, the fan bank with its external supplies,
/// the service-processor failsafe, energy/peak accounting) plus the
/// CSTH telemetry harness and the event trace. Drive it with
/// [`Server::step`], command cooling with [`Server::command_fan_speed`],
/// and observe it the way the paper's DLC-PC does — through telemetry.
///
/// For rack-scale fleets, the per-step thermal integration can be
/// lifted out and batched: [`Server::begin_step`] applies fan/power
/// dynamics, [`Server::split_thermal`] exposes the network/state lane
/// for a shared-factorization
/// [`BatchSolver`](leakctl_thermal::BatchSolver) solve, and
/// [`Server::finish_step`] advances the clock and polls telemetry —
/// producing bit-identical trajectories to per-server stepping.
///
/// See the [crate-level example](crate) for basic use.
#[derive(Debug, Clone)]
pub struct Server {
    core: ServerCore,
    // Telemetry.
    csth: Csth,
    channels: Channels,
    sensors: Sensors,
    poll: Periodic,
    trace: TraceRecorder,
}

impl Server {
    /// Builds a server from `config`, seeding all sensor-noise streams
    /// from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::Config`] for inconsistent configuration
    /// or a thermal-construction failure.
    pub fn new(config: ServerConfig, seed: u64) -> Result<Self, PlatformError> {
        let core = ServerCore::new(config)?;
        let config = core.config();
        let mut rng = SimRng::seed(seed);

        // ---- telemetry --------------------------------------------
        let mut csth = Csth::new(CSTH_POLL_PERIOD);
        let mut cpu_temp_ch = Vec::new();
        let mut cpu_temp_sensors = Vec::new();
        for s in 0..config.sockets {
            for d in 0..2 {
                cpu_temp_ch.push(csth.add_channel(&format!("cpu{s}_temp{d}"), "C"));
                cpu_temp_sensors.push(Sensor::new(
                    SensorSpec::cpu_thermal_diode(),
                    rng.fork(&format!("cpu{s}_temp{d}")),
                ));
            }
        }
        let mut dimm_ch = Vec::new();
        let mut dimm_sensors = Vec::new();
        let mut dimm_offsets = Vec::new();
        for i in 0..config.dimm_count {
            dimm_ch.push(csth.add_channel(&format!("dimm{i:02}_temp"), "C"));
            dimm_sensors.push(Sensor::new(
                SensorSpec::dimm_thermal(),
                rng.fork(&format!("dimm{i:02}")),
            ));
            dimm_offsets.push(0.8 * rng.next_gaussian());
        }
        let mut core_i_ch = Vec::new();
        let mut core_i_sensors = Vec::new();
        for s in 0..config.sockets {
            for c in 0..config.cores_per_socket {
                core_i_ch.push(csth.add_channel(&format!("cpu{s}_core{c:02}_i"), "A"));
                core_i_sensors.push(Sensor::new(
                    SensorSpec {
                        gain: 1.0,
                        offset: 0.0,
                        noise_sigma: 0.02,
                        quantization: 0.001,
                    },
                    rng.fork(&format!("cpu{s}_core{c:02}_i")),
                ));
            }
        }
        let socket_v_ch: Vec<ChannelId> = (0..config.sockets)
            .map(|s| csth.add_channel(&format!("cpu{s}_vdd"), "V"))
            .collect();
        let system_power_ch = csth.add_channel("system_power", "W");
        let fan_power_ch = csth.add_channel("fan_power", "W");
        let fan_rpm_ch = csth.add_channel("fan_rpm", "RPM");

        let channels = Channels {
            cpu_temps: cpu_temp_ch,
            dimm_temps: dimm_ch,
            core_currents: core_i_ch,
            socket_voltages: socket_v_ch,
            system_power: system_power_ch,
            fan_power: fan_power_ch,
            fan_rpm: fan_rpm_ch,
        };
        let sensors = Sensors {
            cpu_temps: cpu_temp_sensors,
            dimm_temps: dimm_sensors,
            dimm_offsets,
            core_currents: core_i_sensors,
            system_power: Sensor::new(SensorSpec::system_power_meter(), rng.fork("system_power")),
            fan_power: Sensor::new(
                SensorSpec {
                    gain: 1.0,
                    offset: 0.0,
                    noise_sigma: 0.2,
                    quantization: 0.1,
                },
                rng.fork("fan_power"),
            ),
            fan_rpm: Sensor::new(
                SensorSpec {
                    gain: 1.0,
                    offset: 0.0,
                    noise_sigma: 3.0,
                    quantization: 1.0,
                },
                rng.fork("fan_rpm"),
            ),
        };

        let mut server = Self {
            core,
            csth,
            channels,
            sensors,
            poll: Periodic::new(SimInstant::ZERO, CSTH_POLL_PERIOD),
            trace: TraceRecorder::with_capacity(10_000),
        };
        // Initial telemetry sample at t = 0.
        server.poll_telemetry()?;
        server.poll.catch_up(SimInstant::ZERO);
        Ok(server)
    }

    // ---- observation ----------------------------------------------

    /// The simulation clock.
    #[must_use]
    pub fn now(&self) -> SimInstant {
        self.core.now()
    }

    /// The machine configuration.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        self.core.config()
    }

    /// The stepping core (physics + accounting, no telemetry).
    #[must_use]
    pub fn core(&self) -> &ServerCore {
        &self.core
    }

    /// The thermal network (read side).
    #[must_use]
    pub fn thermal_network(&self) -> &ThermalNetwork {
        self.core.thermal_network()
    }

    /// The thermal state (read side) — e.g. for packing a fleet's
    /// states into batch storage.
    #[must_use]
    pub fn thermal_state(&self) -> &ThermalState {
        self.core.thermal_state()
    }

    /// Ground-truth die temperature of `socket`.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::BadIndex`] for an out-of-range socket.
    pub fn die_temperature(&self, socket: usize) -> Result<Celsius, PlatformError> {
        self.core.die_temperature(socket)
    }

    /// Ground-truth heat-sink temperature of `socket`.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::BadIndex`] for an out-of-range socket.
    pub fn sink_temperature(&self, socket: usize) -> Result<Celsius, PlatformError> {
        self.core.sink_temperature(socket)
    }

    /// Ground-truth local air temperature at `socket`'s heat sink.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::BadIndex`] for an out-of-range socket.
    pub fn air_temperature(&self, socket: usize) -> Result<Celsius, PlatformError> {
        self.core.air_temperature(socket)
    }

    /// Ground-truth hottest die temperature.
    #[must_use]
    pub fn max_die_temperature(&self) -> Celsius {
        self.core.max_die_temperature()
    }

    /// Latest measured value of each CPU temperature channel (2 per
    /// socket), in channel order, as a controller polling CSTH would
    /// see them — the allocation-free single source for every "as a
    /// controller sees it" temperature read.
    pub fn measured_cpu_temps_iter(&self) -> impl Iterator<Item = Celsius> + '_ {
        self.channels
            .cpu_temps
            .iter()
            .filter_map(|&ch| self.csth.series(ch).last())
            .map(|(_, v)| Celsius::new(v))
    }

    /// Latest *measured* CPU temperatures collected into a fresh `Vec`.
    ///
    /// Convenience wrapper over [`Server::measured_cpu_temps_iter`];
    /// per-decision control paths should prefer the iterator (or
    /// [`Server::measured_cpu_temps_into`]) to avoid the allocation.
    #[must_use]
    pub fn measured_cpu_temps(&self) -> Vec<Celsius> {
        self.measured_cpu_temps_iter().collect()
    }

    /// Latest *measured* CPU temperatures appended into `out` (cleared
    /// first) — the allocation-free variant for callers that poll every
    /// control period and can reuse a buffer.
    pub fn measured_cpu_temps_into(&self, out: &mut Vec<Celsius>) {
        out.clear();
        out.extend(self.measured_cpu_temps_iter());
    }

    /// Hottest measured CPU temperature, if any sample exists.
    ///
    /// Reads the channel tails directly (no intermediate vector) — this
    /// sits on the per-decision path of every controller.
    #[must_use]
    pub fn max_measured_cpu_temp(&self) -> Option<Celsius> {
        self.measured_cpu_temps_iter()
            .fold(None, |acc, t| Some(acc.map_or(t, |a: Celsius| a.max(t))))
    }

    /// Ground-truth wall (AC) power of the system side — everything
    /// behind the PSU; fans are powered externally.
    #[must_use]
    pub fn system_power(&self) -> Watts {
        self.core.system_power()
    }

    /// Ground-truth DC power of all system components.
    #[must_use]
    pub fn dc_power(&self) -> Watts {
        self.core.dc_power()
    }

    /// Ground-truth total CPU leakage right now (for analysis and
    /// EXPERIMENTS.md ground-truth columns; controllers never see this).
    #[must_use]
    pub fn leakage_power(&self) -> Watts {
        self.core.leakage_power()
    }

    /// Ground-truth fan power (drawn from the external supplies).
    #[must_use]
    pub fn fan_power(&self) -> Watts {
        self.core.fan_power()
    }

    /// Ground-truth total power: system wall power plus fan power.
    #[must_use]
    pub fn total_power(&self) -> Watts {
        self.core.total_power()
    }

    /// Accumulated system + fan energy since construction or the last
    /// [`Server::reset_accounting`].
    #[must_use]
    pub fn total_energy(&self) -> Joules {
        self.core.total_energy()
    }

    /// Accumulated fan energy.
    #[must_use]
    pub fn fan_energy(&self) -> Joules {
        self.core.fan_energy()
    }

    /// Accumulated system (wall) energy.
    #[must_use]
    pub fn system_energy(&self) -> Joules {
        self.core.system_energy()
    }

    /// Highest instantaneous total power observed.
    #[must_use]
    pub fn peak_power(&self) -> Watts {
        self.core.peak_power()
    }

    /// Time over which energy has been accumulated.
    #[must_use]
    pub fn accounted_time(&self) -> SimDuration {
        self.core.accounted_time()
    }

    /// The telemetry harness (read side).
    #[must_use]
    pub fn csth(&self) -> &Csth {
        &self.csth
    }

    /// The event trace.
    #[must_use]
    pub fn trace(&self) -> &TraceRecorder {
        &self.trace
    }

    /// Mean actual fan speed.
    #[must_use]
    pub fn actual_rpm(&self) -> Rpm {
        self.core.actual_rpm()
    }

    /// Last applied fan command.
    #[must_use]
    pub fn commanded_rpm(&self) -> Rpm {
        self.core.commanded_rpm()
    }

    /// Number of accepted fan speed changes.
    #[must_use]
    pub fn fan_speed_changes(&self) -> u64 {
        self.core.fan_speed_changes()
    }

    /// How many times the thermal failsafe tripped.
    #[must_use]
    pub fn failsafe_activations(&self) -> u32 {
        self.core.failsafe_activations()
    }

    /// The activity level applied in the most recent step.
    #[must_use]
    pub fn current_activity(&self) -> Utilization {
        self.core.current_activity()
    }

    // ---- control ----------------------------------------------------

    /// Commands all fan pairs to `rpm` through the external supplies
    /// (applies after the configured command latency, then slews).
    /// While the thermal failsafe is engaged the command is recorded but
    /// overridden.
    pub fn command_fan_speed(&mut self, rpm: Rpm) {
        if !self.core.command_fan_speed(rpm) {
            self.trace.record(
                self.core.now(),
                "server",
                format!("fan command {rpm:.0} ignored: failsafe engaged"),
            );
        }
    }

    /// Injects (or clears, with [`FanFault::None`]) a fan-bank fault:
    /// a stuck fan controller or degraded (reduced-airflow) fans. The
    /// fault takes effect from the next step, when the chassis flow is
    /// re-derived from the bank.
    ///
    /// # Panics
    ///
    /// Panics for a [`FanFault::Degraded`] flow scale outside `[0, 1]`.
    pub fn inject_fan_fault(&mut self, fault: FanFault) {
        let label = match fault {
            FanFault::None => "fan fault cleared".to_owned(),
            FanFault::Stuck => "fan controller stuck".to_owned(),
            FanFault::Degraded { flow_scale } => {
                format!("fans degraded to {:.0}% flow", flow_scale * 100.0)
            }
        };
        self.core.inject_fan_fault(fault);
        self.trace.record(self.core.now(), "server", label);
    }

    /// The fan bank's currently injected fault.
    #[must_use]
    pub fn fan_fault(&self) -> FanFault {
        self.core.fan_fault()
    }

    /// Re-pins the ambient (inlet) temperature — used for ambient-
    /// derating sweeps and rack scenarios where exhaust recirculation
    /// warms the inlet.
    ///
    /// # Errors
    ///
    /// Propagates thermal-network errors (never expected for the
    /// built-in ambient node).
    pub fn set_ambient(&mut self, ambient: Celsius) -> Result<(), PlatformError> {
        self.core.set_ambient(ambient)
    }

    /// The current ambient (inlet) temperature.
    #[must_use]
    pub fn ambient(&self) -> Celsius {
        self.core.ambient()
    }

    /// Resets energy, peak-power and timing accumulators (used between
    /// experiment phases; telemetry history is preserved).
    pub fn reset_accounting(&mut self) {
        self.core.reset_accounting();
    }

    // ---- dynamics ---------------------------------------------------

    /// Advances the machine by `dt` with the given switching activity
    /// (the duty-cycle-averaged instantaneous load over the step, from
    /// `LoadGen`).
    ///
    /// # Errors
    ///
    /// Propagates thermal-solver and telemetry failures.
    pub fn step(&mut self, dt: SimDuration, activity: Utilization) -> Result<(), PlatformError> {
        if dt.is_zero() {
            return Ok(());
        }
        self.begin_step(dt, activity)?;
        self.core.integrate(dt)?;
        self.finish_step(dt)
    }

    /// Phase 1 of a batch-integrated step: fan dynamics, failsafe,
    /// component powers and accounting — everything up to (but not
    /// including) the thermal integration, with failsafe transitions
    /// traced. Follow with an external solve over
    /// [`Server::split_thermal`] (or [`ServerCore::integrate`] through
    /// [`Server::step`]) and then [`Server::finish_step`].
    ///
    /// # Errors
    ///
    /// Propagates thermal-network failures.
    pub fn begin_step(
        &mut self,
        dt: SimDuration,
        activity: Utilization,
    ) -> Result<(), PlatformError> {
        match self.core.begin_step(dt, activity)? {
            SpTransition::ForcedMaxCooling => {
                self.trace.record(
                    self.core.now(),
                    "service-processor",
                    "failsafe: forcing maximum cooling",
                );
            }
            SpTransition::Released => {
                self.trace
                    .record(self.core.now(), "service-processor", "failsafe released");
            }
            SpTransition::None => {}
        }
        Ok(())
    }

    /// As [`Server::begin_step`], first re-pinning the inlet (ambient)
    /// boundary to an externally computed temperature — the per-step
    /// coupling hook for room-scale air models, where a cold-aisle
    /// volume (not the scalar `T_room + r·P` drift) supplies each
    /// rack's inlet.
    ///
    /// # Errors
    ///
    /// Propagates thermal-network failures.
    pub fn begin_step_with_inlet(
        &mut self,
        dt: SimDuration,
        activity: Utilization,
        inlet: Celsius,
    ) -> Result<(), PlatformError> {
        self.core.set_ambient(inlet)?;
        self.begin_step(dt, activity)
    }

    /// The thermal network and mutable state as a batch lane — see
    /// [`BatchSolver`](leakctl_thermal::BatchSolver). Valid between
    /// [`Server::begin_step`] and [`Server::finish_step`].
    #[must_use]
    pub fn split_thermal(&mut self) -> (&ThermalNetwork, &mut ThermalState) {
        self.core.split_thermal()
    }

    /// `true` when a step ending at `end` will poll CSTH telemetry —
    /// i.e. when [`Server::finish_step`] will read the full thermal
    /// state (die *and* DIMM nodes). Fleet engines that keep state
    /// resident in packed batch storage use this to unpack a lane only
    /// on the steps whose telemetry actually looks at it.
    #[must_use]
    pub fn telemetry_poll_pending(&self, end: SimInstant) -> bool {
        self.poll.is_due(end)
    }

    /// Phase 3 of a batch-integrated step: advances the clock and polls
    /// CSTH telemetry on its cadence.
    ///
    /// # Errors
    ///
    /// Propagates telemetry failures.
    pub fn finish_step(&mut self, dt: SimDuration) -> Result<(), PlatformError> {
        if dt.is_zero() {
            return Ok(());
        }
        self.core.finish_step(dt);
        let end = self.core.now();
        // CSTH polling.
        while self.poll.is_due(end) {
            self.poll_telemetry()?;
            self.poll.advance();
        }
        Ok(())
    }

    /// Records one full telemetry sample at the current instant.
    fn poll_telemetry(&mut self) -> Result<(), PlatformError> {
        let at = self.core.now();
        let core = &self.core;
        // CPU temperatures: two diodes per die.
        for (s, nodes) in core.socket_nodes.iter().enumerate() {
            let true_t = core.net.temperature(&core.state, nodes.die).degrees();
            for d in 0..2 {
                let idx = 2 * s + d;
                let measured = self.sensors.cpu_temps[idx].measure(true_t);
                self.csth
                    .record(self.channels.cpu_temps[idx], at, measured)?;
            }
        }
        // DIMM temperatures: per-module offset around the bank node.
        let per_bank = core.config.dimm_count / 2;
        for i in 0..core.config.dimm_count {
            let bank = i / per_bank;
            let true_t = core
                .net
                .temperature(&core.state, core.dimm_nodes[bank])
                .degrees()
                + self.sensors.dimm_offsets[i];
            let measured = self.sensors.dimm_temps[i].measure(true_t);
            self.csth
                .record(self.channels.dimm_temps[i], at, measured)?;
        }
        // Per-core currents and per-socket voltages.
        for (s, (socket, nodes)) in core.sockets.iter().zip(&core.socket_nodes).enumerate() {
            let die_t = core.net.temperature(&core.state, nodes.die);
            let i_true = socket.core_current(core.last_activity, die_t).value();
            for c in 0..core.config.cores_per_socket {
                let idx = s * core.config.cores_per_socket + c;
                let measured = self.sensors.core_currents[idx].measure(i_true);
                self.csth
                    .record(self.channels.core_currents[idx], at, measured)?;
            }
            self.csth.record(
                self.channels.socket_voltages[s],
                at,
                socket.core_voltage().value(),
            )?;
        }
        // System power, fan power, fan RPM.
        let wall = core.system_power().value();
        let wall_measured = self.sensors.system_power.measure(wall);
        self.csth
            .record(self.channels.system_power, at, wall_measured)?;
        let fan_measured = self.sensors.fan_power.measure(core.fan_power().value());
        self.csth
            .record(self.channels.fan_power, at, fan_measured)?;
        let rpm_measured = self.sensors.fan_rpm.measure(core.actual_rpm().value());
        self.csth.record(self.channels.fan_rpm, at, rpm_measured)?;
        Ok(())
    }

    // ---- analysis helpers -------------------------------------------

    /// Predicts the steady-state die temperatures and system DC power
    /// for a hypothetical operating point, solving the
    /// leakage–temperature fixed point. Does not disturb the live
    /// state.
    ///
    /// # Errors
    ///
    /// Returns a thermal error when the network cannot be solved.
    pub fn steady_state_preview(
        &self,
        activity: Utilization,
        rpm: Rpm,
    ) -> Result<(Vec<Celsius>, Watts), PlatformError> {
        self.core.steady_state_preview(activity, rpm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> Server {
        Server::new(ServerConfig::default(), 42).unwrap()
    }

    /// Run to (approximate) thermal steady state at a fixed activity and
    /// fan speed.
    fn settle(server: &mut Server, activity: Utilization, rpm: Rpm, mins: u64) {
        server.command_fan_speed(rpm);
        for _ in 0..(mins * 60) {
            server.step(SimDuration::from_secs(1), activity).unwrap();
        }
    }

    #[test]
    fn calibration_steady_temperatures_at_full_load() {
        // DESIGN.md §5 anchors, reproducing Fig. 1a's steady states.
        let cases = [
            (1800.0, 80.0, 90.0),
            (2400.0, 67.0, 75.0),
            (3000.0, 60.0, 68.0),
            (3600.0, 56.0, 63.0),
            (4200.0, 52.0, 59.0),
        ];
        for (rpm, lo, hi) in cases {
            let mut s = server();
            settle(&mut s, Utilization::FULL, Rpm::new(rpm), 45);
            let t = s.max_die_temperature().degrees();
            assert!(
                (lo..=hi).contains(&t),
                "at {rpm} RPM: die {t:.1} °C outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn calibration_power_draw() {
        let mut s = server();
        settle(&mut s, Utilization::IDLE, Rpm::new(3300.0), 30);
        let idle = s.total_power().value();
        assert!(
            (440.0..=500.0).contains(&idle),
            "idle total power {idle:.0} W"
        );
        settle(&mut s, Utilization::FULL, Rpm::new(3300.0), 30);
        let busy = s.total_power().value();
        assert!(
            (490.0..=560.0).contains(&busy),
            "full-load total power {busy:.0} W"
        );
        let swing = busy - idle;
        assert!(
            (35.0..=70.0).contains(&swing),
            "idle→full swing {swing:.0} W should reflect k1·100 plus leakage growth"
        );
    }

    #[test]
    fn faster_fans_cool_the_dies() {
        let mut slow = server();
        settle(&mut slow, Utilization::FULL, Rpm::new(1800.0), 40);
        let mut fast = server();
        settle(&mut fast, Utilization::FULL, Rpm::new(4200.0), 40);
        assert!(
            slow.max_die_temperature().degrees() - fast.max_die_temperature().degrees() > 15.0,
            "1800 vs 4200 RPM should differ by tens of °C"
        );
        assert!(fast.fan_power() > slow.fan_power());
    }

    #[test]
    fn thermal_time_constant_depends_on_fan_speed() {
        // Fig. 1a: the 1800 RPM transient is several times slower than
        // the 4200 RPM one. Measure time to cover 63 % of the rise.
        let tau_at = |rpm: f64| {
            let mut s = server();
            s.command_fan_speed(Rpm::new(rpm));
            // Let fans settle and machine idle-stabilize first.
            for _ in 0..600 {
                s.step(SimDuration::from_secs(1), Utilization::IDLE)
                    .unwrap();
            }
            let t0 = s.max_die_temperature().degrees();
            let (target, _) = s
                .steady_state_preview(Utilization::FULL, Rpm::new(rpm))
                .unwrap();
            let t_inf = target
                .iter()
                .map(|t| t.degrees())
                .fold(f64::NEG_INFINITY, f64::max);
            let threshold = t0 + 0.632 * (t_inf - t0);
            let mut secs = 0u64;
            while s.max_die_temperature().degrees() < threshold && secs < 3_600 {
                s.step(SimDuration::from_secs(1), Utilization::FULL)
                    .unwrap();
                secs += 1;
            }
            secs as f64
        };
        let tau_slow = tau_at(1800.0);
        let tau_fast = tau_at(4200.0);
        assert!(
            tau_slow > 1.5 * tau_fast,
            "τ(1800)={tau_slow}s should clearly exceed τ(4200)={tau_fast}s"
        );
        assert!(
            (60.0..=600.0).contains(&tau_fast),
            "τ(4200)={tau_fast}s out of plausible band"
        );
        assert!(
            (120.0..=900.0).contains(&tau_slow),
            "τ(1800)={tau_slow}s out of plausible band"
        );
    }

    #[test]
    fn energy_accounting_consistent() {
        let mut s = server();
        settle(&mut s, Utilization::FULL, Rpm::new(3000.0), 10);
        let total = s.total_energy().value();
        let parts = s.system_energy().value() + s.fan_energy().value();
        assert!((total - parts).abs() < 1e-6);
        assert_eq!(s.accounted_time(), SimDuration::from_mins(10));
        // Average power implied by energy is within the instantaneous
        // power band.
        let avg = s.total_energy().average_power(s.accounted_time()).value();
        assert!((400.0..=600.0).contains(&avg), "average power {avg:.0} W");
        s.reset_accounting();
        assert_eq!(s.total_energy(), Joules::ZERO);
        assert_eq!(s.peak_power(), Watts::ZERO);
    }

    #[test]
    fn telemetry_polls_every_ten_seconds() {
        let mut s = server();
        for _ in 0..95 {
            s.step(SimDuration::from_secs(1), Utilization::FULL)
                .unwrap();
        }
        let ch = s.csth().channel_by_name("cpu0_temp0").unwrap();
        // t = 0 initial + polls at 10..90 = 10 samples.
        assert_eq!(s.csth().series(ch).len(), 10);
        let temps = s.measured_cpu_temps();
        assert_eq!(temps.len(), 4);
        let mut reused = Vec::new();
        s.measured_cpu_temps_into(&mut reused);
        assert_eq!(temps, reused);
        assert_eq!(s.measured_cpu_temps_iter().count(), 4);
        assert!(s.max_measured_cpu_temp().is_some());
        // Measured temps track the truth within sensor error.
        let truth = s.max_die_temperature().degrees();
        let measured = s.max_measured_cpu_temp().unwrap().degrees();
        assert!((truth - measured).abs() < 3.0);
    }

    #[test]
    fn telemetry_channel_inventory_matches_paper() {
        let s = server();
        // 4 CPU temps, 32 DIMM temps, 32 core currents, 2 Vdd, system
        // power, fan power, fan RPM.
        assert_eq!(s.csth().channel_count(), 4 + 32 + 32 + 2 + 3);
    }

    #[test]
    fn failsafe_trips_under_impossible_cooling() {
        // Cripple convection so the die overheats at min fan speed.
        let config = ServerConfig {
            sink_conv_g_ref: leakctl_units::ThermalConductance::new(0.8),
            sink_conv_g_min: leakctl_units::ThermalConductance::new(0.01),
            ..ServerConfig::default()
        };
        let mut s = Server::new(config, 1).unwrap();
        s.command_fan_speed(Rpm::new(1800.0));
        for _ in 0..3_600 {
            s.step(SimDuration::from_secs(1), Utilization::FULL)
                .unwrap();
            if s.failsafe_activations() > 0 {
                break;
            }
        }
        assert!(s.failsafe_activations() > 0, "failsafe should trip");
        // Let the forced command propagate through the supply latency.
        for _ in 0..10 {
            s.step(SimDuration::from_secs(1), Utilization::FULL)
                .unwrap();
        }
        // While engaged, external commands are ignored.
        s.command_fan_speed(Rpm::new(1800.0));
        assert!(s.commanded_rpm() > Rpm::new(4000.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut s = Server::new(ServerConfig::default(), seed).unwrap();
            s.command_fan_speed(Rpm::new(2400.0));
            for i in 0..300 {
                let act = if i % 40 < 20 {
                    Utilization::FULL
                } else {
                    Utilization::IDLE
                };
                s.step(SimDuration::from_secs(1), act).unwrap();
            }
            (
                s.max_die_temperature(),
                s.total_energy(),
                s.measured_cpu_temps(),
            )
        };
        assert_eq!(run(7), run(7));
        let (t1, e1, m1) = run(7);
        let (t2, e2, m2) = run(8);
        // Ground truth identical (same physics), measurements differ.
        assert_eq!(t1, t2);
        assert_eq!(e1, e2);
        assert_ne!(m1, m2);
    }

    #[test]
    fn steady_state_preview_matches_transient_settling() {
        let mut s = server();
        let (preview, _) = s
            .steady_state_preview(Utilization::FULL, Rpm::new(3000.0))
            .unwrap();
        settle(&mut s, Utilization::FULL, Rpm::new(3000.0), 60);
        for (socket, want) in preview.iter().enumerate() {
            let got = s.die_temperature(socket).unwrap().degrees();
            assert!(
                (got - want.degrees()).abs() < 1.0,
                "socket {socket}: transient {got:.1} vs preview {want:.1}"
            );
        }
    }

    #[test]
    fn process_variation_shows_in_die_temperatures() {
        let mut s = server();
        settle(&mut s, Utilization::FULL, Rpm::new(2400.0), 45);
        let t0 = s.die_temperature(0).unwrap().degrees();
        let t1 = s.die_temperature(1).unwrap().degrees();
        assert!(
            (t1 - t0).abs() > 0.1,
            "sigma 0.96 vs 1.04 should separate die temps, got {t0:.2} vs {t1:.2}"
        );
    }

    #[test]
    fn bad_socket_index_rejected() {
        let s = server();
        assert!(matches!(
            s.die_temperature(5),
            Err(PlatformError::BadIndex { .. })
        ));
    }

    #[test]
    fn preview_reports_thermal_runaway() {
        // At extreme ambient with minimum airflow the exponential
        // leakage has no finite fixed point.
        let config = ServerConfig {
            ambient: Celsius::new(55.0),
            ..ServerConfig::default()
        };
        let s = Server::new(config, 1).unwrap();
        let result = s.steady_state_preview(Utilization::FULL, Rpm::new(1800.0));
        assert!(
            matches!(
                result,
                Err(PlatformError::Thermal(
                    leakctl_thermal::ThermalError::Diverged { .. }
                ))
            ),
            "expected divergence, got {result:?}"
        );
    }

    #[test]
    fn ambient_setter_round_trips() {
        let mut s = server();
        assert_eq!(s.ambient(), Celsius::new(24.0));
        s.set_ambient(Celsius::new(30.0)).unwrap();
        assert_eq!(s.ambient(), Celsius::new(30.0));
        // Hotter inlet warms the dies at steady state.
        let (hot, _) = s
            .steady_state_preview(Utilization::FULL, Rpm::new(3000.0))
            .unwrap();
        s.set_ambient(Celsius::new(24.0)).unwrap();
        let (cool, _) = s
            .steady_state_preview(Utilization::FULL, Rpm::new(3000.0))
            .unwrap();
        assert!(hot[0] > cool[0]);
    }

    #[test]
    fn zero_step_is_noop() {
        let mut s = server();
        let t = s.now();
        s.step(SimDuration::ZERO, Utilization::FULL).unwrap();
        assert_eq!(s.now(), t);
    }

    #[test]
    fn phased_step_bit_identical_to_plain_step() {
        // The batch-integration protocol (begin / external-style
        // integrate / finish) must reproduce Server::step exactly,
        // telemetry included.
        let mut phased = server();
        let mut plain = server();
        let dt = SimDuration::from_secs(1);
        for i in 0..240 {
            let act = if i % 50 < 25 {
                Utilization::FULL
            } else {
                Utilization::IDLE
            };
            phased.begin_step(dt, act).unwrap();
            {
                let mut solver = leakctl_thermal::BatchSolver::new(phased.thermal_network());
                let (net, state) = phased.split_thermal();
                let mut lanes = [leakctl_thermal::BatchLane { net, state }];
                solver.step(&mut lanes, dt).unwrap();
            }
            phased.finish_step(dt).unwrap();
            plain.step(dt, act).unwrap();
        }
        assert_eq!(phased.max_die_temperature(), plain.max_die_temperature());
        assert_eq!(phased.total_energy(), plain.total_energy());
        assert_eq!(phased.measured_cpu_temps(), plain.measured_cpu_temps());
    }
}
