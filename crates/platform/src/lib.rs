//! Digital-twin enterprise server for the `leakctl` reproduction.
//!
//! The paper experiments on a presently-shipping (2013) enterprise
//! server: two 16-core SPARC T3 processors, 32 DDR3 DIMMs, and six
//! chassis fans in three rows of two, rewired to external programmable
//! power supplies so fan power can be measured and controlled separately
//! from system power. This crate rebuilds that machine as a simulation:
//!
//! - [`ServerConfig`] — the calibrated machine description (topology,
//!   power-model parameters, thermal-network element values),
//! - [`CpuSocket`] / [`DimmBank`] — component power models with
//!   physics-grounded leakage,
//! - [`FanBank`] + [`FanSupply`] — fan units with finite slew served by
//!   external supplies with command latency (the Agilent E3644A rig),
//! - [`ServiceProcessor`] — the thermal failsafe watchdog,
//! - [`Server`] — the assembled machine: thermal RC network, component
//!   powers with leakage-temperature feedback, PSU losses, CSTH
//!   telemetry polling, and energy/peak accounting.
//!
//! # Example
//!
//! ```
//! use leakctl_platform::{Server, ServerConfig};
//! use leakctl_units::{Rpm, SimDuration, Utilization};
//!
//! # fn main() -> Result<(), leakctl_platform::PlatformError> {
//! let mut server = Server::new(ServerConfig::default(), 42)?;
//! server.command_fan_speed(Rpm::new(3300.0));
//! for _ in 0..60 {
//!     server.step(SimDuration::from_secs(1), Utilization::FULL)?;
//! }
//! assert!(server.system_power().value() > 400.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod cpu;
mod dimm;
mod engine;
mod error;
mod fans;
mod server;
mod service_processor;

pub use config::ServerConfig;
pub use cpu::CpuSocket;
pub use dimm::DimmBank;
pub use engine::{ServerCore, SpTransition};
pub use error::PlatformError;
pub use fans::{FanBank, FanFault, FanSupply, FanUnit};
pub use server::Server;
pub use service_processor::{ServiceProcessor, SpAction};
