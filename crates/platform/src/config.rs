//! Calibrated machine description.
//!
//! Defaults reproduce the observable behaviour of the paper's server —
//! see `DESIGN.md` §5 for the calibration derivation. The headline
//! anchors: 100 %-utilization steady die temperatures of ≈86/70/63/59/56 °C
//! at 1800/2400/3000/3600/4200 RPM, thermal settle times of ≈12 min at
//! 1800 RPM vs ≈6 min at 4200 RPM, server-level dynamic slope
//! `k1 ≈ 0.445 W/%`, and a leakage curve matching
//! `C + 0.3231·e^(0.04749·T)`.

use leakctl_power::{FanPowerModel, PsuModel};
use leakctl_thermal::Integrator;
use leakctl_units::{Celsius, Rpm, ThermalCapacitance, ThermalConductance, Watts};

use crate::error::PlatformError;

/// Full configuration of the digital-twin server.
///
/// Construct with [`ServerConfig::default`] for the calibrated paper
/// twin and adjust individual fields for ablations;
/// [`Server::new`](crate::Server::new) validates the result.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServerConfig {
    // ---- topology -------------------------------------------------
    /// Processor sockets (the T3 machine has 2).
    pub sockets: usize,
    /// Cores per socket (16).
    pub cores_per_socket: usize,
    /// Hardware threads per core (8).
    pub threads_per_core: usize,
    /// Memory DIMMs (32, split across two banks in the airflow path).
    pub dimm_count: usize,

    // ---- power ----------------------------------------------------
    /// Per-socket idle (uncontrollable, clock-tree + uncore) power.
    pub cpu_idle_per_socket: Watts,
    /// Whole-server dynamic slope, watts per percent utilization
    /// (the paper's `k1`). Split evenly across sockets and the DIMM
    /// subsystem by `dimm_dynamic_share`.
    pub dynamic_slope_w_per_pct: f64,
    /// Fraction of the dynamic slope attributed to memory activity.
    pub dimm_dynamic_share: f64,
    /// Per-socket temperature-independent leakage (contributes to the
    /// paper's fitted constant `C`).
    pub cpu_const_leak_per_socket: Watts,
    /// Per-socket temperature-dependent leakage at the 70 °C reference
    /// (the `T²·exp` physical model scales from here).
    pub cpu_leak_ref_per_socket: Watts,
    /// Per-socket process-variation multipliers (length must equal
    /// `sockets`).
    pub process_sigma: Vec<f64>,
    /// Per-DIMM idle power.
    pub dimm_idle_each: Watts,
    /// Board/disks/service-processor constant power.
    pub board_power: Watts,
    /// Core supply voltage (reported on the per-core telemetry
    /// channels).
    pub core_voltage: f64,
    /// PSU efficiency model (applies to system power, not fans — fans
    /// are powered externally in the paper's rig).
    pub psu: PsuModel,
    /// Fan bank electrical/flow model.
    pub fans: FanPowerModel,

    // ---- thermal network -----------------------------------------
    /// Ambient temperature (the paper's isolated room sits at 24 °C).
    pub ambient: Celsius,
    /// Die thermal capacitance (per socket).
    pub die_capacitance: ThermalCapacitance,
    /// Heat-sink thermal capacitance (per socket).
    pub sink_capacitance: ThermalCapacitance,
    /// Die→sink conduction (junction-to-case+TIM).
    pub die_sink_conductance: ThermalConductance,
    /// Sink→air convection at the reference flow (per socket).
    pub sink_conv_g_ref: ThermalConductance,
    /// Convection floor at zero flow (per socket).
    pub sink_conv_g_min: ThermalConductance,
    /// Convection flow exponent.
    pub sink_conv_exponent: f64,
    /// DIMM-bank thermal capacitance (per bank of `dimm_count/2`).
    pub dimm_bank_capacitance: ThermalCapacitance,
    /// DIMM-bank→air convection at the reference flow.
    pub dimm_conv_g_ref: ThermalConductance,
    /// Air-volume thermal capacitance (per air node).
    pub air_capacitance: ThermalCapacitance,
    /// Time-integration method for the thermal transient (default
    /// backward Euler — the network is stiff at 1-second steps).
    pub integrator: Integrator,

    // ---- fan subsystem -------------------------------------------
    /// Fan slew rate, RPM per second.
    pub fan_slew_rpm_per_s: f64,
    /// Supply command latency (RS-232 + supply settling).
    pub supply_latency_ms: u64,
    /// Lowest supported fan speed.
    pub min_rpm: Rpm,
    /// Highest supported fan speed.
    pub max_rpm: Rpm,
    /// Fan speed the machine boots with (the vendor default observed in
    /// Table I's baseline rows).
    pub default_rpm: Rpm,

    // ---- protection ----------------------------------------------
    /// Critical die temperature: the service processor forces maximum
    /// cooling above this (the paper's server trips at 90 °C).
    pub critical_temp: Celsius,
    /// Temperature at which a failsafe releases back to external
    /// control.
    pub failsafe_release_temp: Celsius,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            sockets: 2,
            cores_per_socket: 16,
            threads_per_core: 8,
            dimm_count: 32,

            cpu_idle_per_socket: Watts::new(55.0),
            dynamic_slope_w_per_pct: 0.4452,
            dimm_dynamic_share: 0.30,
            cpu_const_leak_per_socket: Watts::new(4.5),
            cpu_leak_ref_per_socket: Watts::new(4.5),
            process_sigma: vec![0.96, 1.04],
            dimm_idle_each: Watts::new(3.0),
            board_power: Watts::new(180.0),
            core_voltage: 1.05,
            psu: PsuModel::paper_server(),
            fans: FanPowerModel::paper_server(),

            ambient: Celsius::new(24.0),
            die_capacitance: ThermalCapacitance::new(80.0),
            sink_capacitance: ThermalCapacitance::new(400.0),
            die_sink_conductance: ThermalConductance::new(10.0),
            sink_conv_g_ref: ThermalConductance::new(3.4),
            sink_conv_g_min: ThermalConductance::new(0.05),
            sink_conv_exponent: 0.8,
            dimm_bank_capacitance: ThermalCapacitance::new(900.0),
            dimm_conv_g_ref: ThermalConductance::new(12.0),
            air_capacitance: ThermalCapacitance::new(15.0),
            integrator: Integrator::BackwardEuler,

            fan_slew_rpm_per_s: 600.0,
            supply_latency_ms: 100,
            min_rpm: Rpm::new(1800.0),
            max_rpm: Rpm::new(4200.0),
            default_rpm: Rpm::new(3300.0),

            critical_temp: Celsius::new(90.0),
            failsafe_release_temp: Celsius::new(80.0),
        }
    }
}

impl ServerConfig {
    /// Total hardware threads (the T3 machine exposes 256).
    #[must_use]
    pub fn total_threads(&self) -> usize {
        self.sockets * self.cores_per_socket * self.threads_per_core
    }

    /// Per-socket dynamic slope after removing the DIMM share, W/%.
    #[must_use]
    pub fn cpu_dynamic_slope_per_socket(&self) -> f64 {
        self.dynamic_slope_w_per_pct * (1.0 - self.dimm_dynamic_share) / self.sockets as f64
    }

    /// Whole-memory dynamic slope, W/%.
    #[must_use]
    pub fn dimm_dynamic_slope(&self) -> f64 {
        self.dynamic_slope_w_per_pct * self.dimm_dynamic_share
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::Config`] describing the first problem
    /// found.
    pub fn validate(&self) -> Result<(), PlatformError> {
        let fail = |what: &str| {
            Err(PlatformError::Config {
                what: what.to_owned(),
            })
        };
        if self.sockets == 0 {
            return fail("sockets must be positive");
        }
        if self.process_sigma.len() != self.sockets {
            return fail("process_sigma length must equal socket count");
        }
        if self
            .process_sigma
            .iter()
            .any(|s| *s <= 0.0 || !s.is_finite())
        {
            return fail("process sigma values must be positive");
        }
        if self.dimm_count == 0 || !self.dimm_count.is_multiple_of(2) {
            return fail("dimm_count must be positive and even (two banks)");
        }
        if !(0.0..=1.0).contains(&self.dimm_dynamic_share) {
            return fail("dimm_dynamic_share must be in [0, 1]");
        }
        if self.dynamic_slope_w_per_pct < 0.0 {
            return fail("dynamic slope must be non-negative");
        }
        if !(self.min_rpm.value() > 0.0 && self.max_rpm > self.min_rpm) {
            return fail("require 0 < min_rpm < max_rpm");
        }
        if !(self.default_rpm >= self.min_rpm && self.default_rpm <= self.max_rpm) {
            return fail("default_rpm must lie within [min_rpm, max_rpm]");
        }
        if self.fan_slew_rpm_per_s <= 0.0 {
            return fail("fan slew rate must be positive");
        }
        if self.critical_temp <= self.failsafe_release_temp {
            return fail("critical_temp must exceed failsafe_release_temp");
        }
        if self.core_voltage <= 0.0 || self.core_voltage.is_nan() {
            return fail("core voltage must be positive");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper_topology() {
        let c = ServerConfig::default();
        c.validate().unwrap();
        assert_eq!(c.sockets, 2);
        assert_eq!(c.total_threads(), 256);
        assert_eq!(c.dimm_count, 32);
        assert_eq!(c.fans.count(), 6);
    }

    #[test]
    fn dynamic_slope_split_sums_back() {
        let c = ServerConfig::default();
        let total = c.cpu_dynamic_slope_per_socket() * c.sockets as f64 + c.dimm_dynamic_slope();
        assert!((total - c.dynamic_slope_w_per_pct).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_each_problem() {
        let base = ServerConfig::default;

        let mut c = base();
        c.sockets = 0;
        assert!(c.validate().is_err());

        let mut c = base();
        c.process_sigma = vec![1.0];
        assert!(c.validate().is_err());

        let mut c = base();
        c.process_sigma = vec![1.0, -0.5];
        assert!(c.validate().is_err());

        let mut c = base();
        c.dimm_count = 31;
        assert!(c.validate().is_err());

        let mut c = base();
        c.dimm_dynamic_share = 1.5;
        assert!(c.validate().is_err());

        let mut c = base();
        c.min_rpm = Rpm::new(5000.0);
        assert!(c.validate().is_err());

        let mut c = base();
        c.default_rpm = Rpm::new(100.0);
        assert!(c.validate().is_err());

        let mut c = base();
        c.fan_slew_rpm_per_s = 0.0;
        assert!(c.validate().is_err());

        let mut c = base();
        c.critical_temp = Celsius::new(70.0);
        assert!(c.validate().is_err());

        let mut c = base();
        c.core_voltage = 0.0;
        assert!(c.validate().is_err());
    }
}
