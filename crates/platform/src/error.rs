//! Platform error type.

use core::fmt;

use leakctl_telemetry::TelemetryError;
use leakctl_thermal::ThermalError;

/// Errors produced by the digital-twin server.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// The thermal solver failed.
    Thermal(ThermalError),
    /// Telemetry recording failed.
    Telemetry(TelemetryError),
    /// A configuration value was invalid.
    Config {
        /// Description of the problem.
        what: String,
    },
    /// A socket or fan index was out of range.
    BadIndex {
        /// What was being indexed.
        kind: &'static str,
        /// The offending index.
        index: usize,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Thermal(e) => write!(f, "thermal model: {e}"),
            Self::Telemetry(e) => write!(f, "telemetry: {e}"),
            Self::Config { what } => write!(f, "invalid configuration: {what}"),
            Self::BadIndex { kind, index } => write!(f, "{kind} index {index} out of range"),
        }
    }
}

impl std::error::Error for PlatformError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Thermal(e) => Some(e),
            Self::Telemetry(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ThermalError> for PlatformError {
    fn from(e: ThermalError) -> Self {
        Self::Thermal(e)
    }
}

impl From<TelemetryError> for PlatformError {
    fn from(e: TelemetryError) -> Self {
        Self::Telemetry(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = PlatformError::Config {
            what: "bad thing".into(),
        };
        assert!(e.to_string().contains("bad thing"));
        let e = PlatformError::BadIndex {
            kind: "socket",
            index: 7,
        };
        assert!(e.to_string().contains("socket"));
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn from_thermal() {
        let e: PlatformError = ThermalError::NoCapacitiveNodes.into();
        assert!(matches!(e, PlatformError::Thermal(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
