//! Measurement-channel sensor model.

use leakctl_sim::SimRng;

/// Static error characteristics of a measurement channel.
///
/// Applied as `measured = quantize(gain·true + offset + noise)`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SensorSpec {
    /// Multiplicative gain error (1.0 = ideal).
    pub gain: f64,
    /// Additive offset, in the channel's unit.
    pub offset: f64,
    /// Standard deviation of Gaussian read noise, in the channel's unit.
    pub noise_sigma: f64,
    /// Quantization step (0 disables quantization). Thermal diodes
    /// typically report in 0.5 °C or 1 °C steps.
    pub quantization: f64,
}

impl SensorSpec {
    /// An ideal, noise-free channel.
    #[must_use]
    pub fn ideal() -> Self {
        Self {
            gain: 1.0,
            offset: 0.0,
            noise_sigma: 0.0,
            quantization: 0.0,
        }
    }

    /// A CPU thermal-diode channel: ±0.25 °C noise, 0.5 °C steps.
    #[must_use]
    pub fn cpu_thermal_diode() -> Self {
        Self {
            gain: 1.0,
            offset: 0.0,
            noise_sigma: 0.25,
            quantization: 0.5,
        }
    }

    /// A DIMM SPD thermal sensor: 1 °C steps, slightly noisier.
    #[must_use]
    pub fn dimm_thermal() -> Self {
        Self {
            gain: 1.0,
            offset: 0.0,
            noise_sigma: 0.4,
            quantization: 1.0,
        }
    }

    /// A system power meter: 0.5 % gain error band represented as ±0.2 %
    /// noise, 1 W steps.
    #[must_use]
    pub fn system_power_meter() -> Self {
        Self {
            gain: 1.0,
            offset: 0.0,
            noise_sigma: 1.0,
            quantization: 1.0,
        }
    }
}

impl Default for SensorSpec {
    /// The ideal channel.
    fn default() -> Self {
        Self::ideal()
    }
}

/// Gaussian draws precomputed per refill — one block serves that many
/// polls of the channel, amortizing the Box–Muller transform (the
/// dominant cost of a telemetry poll) without touching the per-sensor
/// stream: the buffered values are exactly the next draws of this
/// sensor's RNG, in order.
const NOISE_BLOCK: usize = 16;

/// A stateful sensor combining a [`SensorSpec`] with its own noise
/// stream.
///
/// Each sensor owns a forked RNG so adding or removing one sensor never
/// changes the noise another sensor sees — a requirement for
/// reproducible experiments. Noise is generated in blocks
/// ([`SimRng::fill_gaussian`]) and consumed per measurement; the
/// sequence of measurements is byte-identical to per-call draws.
///
/// # Example
///
/// ```
/// use leakctl_sim::SimRng;
/// use leakctl_telemetry::{Sensor, SensorSpec};
///
/// let mut rng = SimRng::seed(1);
/// let mut sensor = Sensor::new(SensorSpec::cpu_thermal_diode(), rng.fork("cpu0"));
/// let reading = sensor.measure(70.0);
/// assert!((reading - 70.0).abs() < 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct Sensor {
    spec: SensorSpec,
    rng: SimRng,
    noise_buf: [f64; NOISE_BLOCK],
    noise_pos: usize,
}

impl Sensor {
    /// Creates a sensor with its own noise stream.
    #[must_use]
    pub fn new(spec: SensorSpec, rng: SimRng) -> Self {
        Self {
            spec,
            rng,
            noise_buf: [0.0; NOISE_BLOCK],
            noise_pos: NOISE_BLOCK,
        }
    }

    /// An ideal pass-through sensor.
    #[must_use]
    pub fn ideal() -> Self {
        Self::new(SensorSpec::ideal(), SimRng::seed(0))
    }

    /// The next standard-normal draw from this sensor's stream, served
    /// from the precomputed block.
    #[inline]
    fn next_noise(&mut self) -> f64 {
        if self.noise_pos == NOISE_BLOCK {
            self.rng.fill_gaussian(&mut self.noise_buf);
            self.noise_pos = 0;
        }
        let z = self.noise_buf[self.noise_pos];
        self.noise_pos += 1;
        z
    }

    /// Produces a measurement of `true_value`.
    pub fn measure(&mut self, true_value: f64) -> f64 {
        let spec = self.spec;
        let mut v = spec.gain * true_value + spec.offset;
        if spec.noise_sigma > 0.0 {
            v += spec.noise_sigma * self.next_noise();
        }
        if spec.quantization > 0.0 {
            v = (v / spec.quantization).round() * spec.quantization;
        }
        v
    }

    /// The sensor's error characteristics.
    #[must_use]
    pub fn spec(&self) -> SensorSpec {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_sensor_is_identity() {
        let mut s = Sensor::ideal();
        for v in [-10.0, 0.0, 55.5, 100.0] {
            assert_eq!(s.measure(v), v);
        }
    }

    #[test]
    fn gain_and_offset_applied() {
        let spec = SensorSpec {
            gain: 1.02,
            offset: -0.5,
            noise_sigma: 0.0,
            quantization: 0.0,
        };
        let mut s = Sensor::new(spec, SimRng::seed(0));
        assert!((s.measure(100.0) - 101.5).abs() < 1e-12);
        assert_eq!(s.spec(), spec);
    }

    #[test]
    fn quantization_steps() {
        let spec = SensorSpec {
            quantization: 0.5,
            ..SensorSpec::ideal()
        };
        let mut s = Sensor::new(spec, SimRng::seed(0));
        assert_eq!(s.measure(70.26), 70.5);
        assert_eq!(s.measure(70.24), 70.0);
    }

    #[test]
    fn block_buffered_noise_matches_per_call_draws() {
        // The buffered stream must be byte-identical to drawing one
        // gaussian per measurement from the same forked RNG.
        let mut rng = SimRng::seed(77);
        let spec = SensorSpec::cpu_thermal_diode();
        let child = rng.fork("cpu0");
        let mut sensor = Sensor::new(spec, child.clone());
        let mut reference_rng = child;
        for i in 0..100 {
            let true_t = 50.0 + (i as f64) * 0.1;
            let got = sensor.measure(true_t);
            let mut want =
                spec.gain * true_t + spec.offset + spec.noise_sigma * reference_rng.next_gaussian();
            want = (want / spec.quantization).round() * spec.quantization;
            assert_eq!(got.to_bits(), want.to_bits(), "sample {i}");
        }
    }

    #[test]
    fn noise_statistics() {
        let spec = SensorSpec {
            noise_sigma: 0.25,
            ..SensorSpec::ideal()
        };
        let mut s = Sensor::new(spec, SimRng::seed(42));
        let n = 20_000;
        let readings: Vec<f64> = (0..n).map(|_| s.measure(50.0)).collect();
        let mean = readings.iter().sum::<f64>() / f64::from(n);
        let var = readings.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / f64::from(n);
        assert!((mean - 50.0).abs() < 0.01, "mean {mean}");
        assert!((var.sqrt() - 0.25).abs() < 0.01, "sigma {}", var.sqrt());
    }

    #[test]
    fn independent_noise_streams() {
        let mut rng = SimRng::seed(9);
        let mut a = Sensor::new(SensorSpec::cpu_thermal_diode(), rng.fork("a"));
        let mut b = Sensor::new(SensorSpec::cpu_thermal_diode(), rng.fork("b"));
        let ra: Vec<f64> = (0..32).map(|_| a.measure(60.0)).collect();
        let rb: Vec<f64> = (0..32).map(|_| b.measure(60.0)).collect();
        assert_ne!(ra, rb, "distinct sensors must have distinct noise");
    }

    #[test]
    fn preset_specs_are_sane() {
        for spec in [
            SensorSpec::cpu_thermal_diode(),
            SensorSpec::dimm_thermal(),
            SensorSpec::system_power_meter(),
        ] {
            assert!(spec.gain > 0.9 && spec.gain < 1.1);
            assert!(spec.noise_sigma >= 0.0);
            assert!(spec.quantization >= 0.0);
        }
        assert_eq!(SensorSpec::default(), SensorSpec::ideal());
    }
}
