//! CSV export/import for [`Csth`] captures.
//!
//! Long format, one sample per row:
//!
//! ```csv
//! time_s,channel,unit,value
//! 0.000,cpu0_temp,C,55.0
//! ```
//!
//! Implemented in-repo (no external CSV crate): channel names are
//! identifier-like and values numeric, so no quoting is required; the
//! writer rejects names containing commas rather than quoting them.

use core::fmt;

use leakctl_units::{SimDuration, SimInstant};

use crate::harness::Csth;
use crate::series::TimeSeries;

/// Errors produced by CSV import/export.
#[derive(Debug, Clone, PartialEq)]
pub enum CsvError {
    /// A channel name or unit contains a character the simple writer
    /// cannot represent (comma or newline).
    UnrepresentableName {
        /// The offending name.
        name: String,
    },
    /// The input did not start with the expected header.
    BadHeader,
    /// A data row could not be parsed.
    BadRow {
        /// 1-based line number.
        line: usize,
        /// Parse problem description.
        reason: String,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnrepresentableName { name } => {
                write!(f, "channel name {name:?} contains ',' or a newline")
            }
            Self::BadHeader => write!(f, "missing or malformed CSV header"),
            Self::BadRow { line, reason } => write!(f, "line {line}: {reason}"),
        }
    }
}

impl std::error::Error for CsvError {}

const HEADER: &str = "time_s,channel,unit,value";

impl Csth {
    /// Serializes every channel to long-format CSV.
    ///
    /// # Errors
    ///
    /// Returns [`CsvError::UnrepresentableName`] when a channel name or
    /// unit contains a comma or newline.
    pub fn to_csv(&self) -> Result<String, CsvError> {
        let mut out = String::from(HEADER);
        out.push('\n');
        for ch in self.channel_data() {
            for field in [&ch.name, &ch.unit] {
                if field.contains(',') || field.contains('\n') {
                    return Err(CsvError::UnrepresentableName {
                        name: field.clone(),
                    });
                }
            }
            for (t, v) in ch.series.iter() {
                out.push_str(&format!(
                    "{:.3},{},{},{}\n",
                    t.as_secs_f64(),
                    ch.name,
                    ch.unit,
                    v
                ));
            }
        }
        Ok(out)
    }

    /// Parses a capture previously produced by [`Csth::to_csv`].
    ///
    /// Channels appear in first-encounter order; `poll_period` is
    /// attached as metadata.
    ///
    /// # Errors
    ///
    /// Returns [`CsvError::BadHeader`] or [`CsvError::BadRow`] for
    /// malformed input.
    pub fn from_csv(input: &str, poll_period: SimDuration) -> Result<Self, CsvError> {
        let mut lines = input.lines().enumerate();
        match lines.next() {
            Some((_, h)) if h.trim() == HEADER => {}
            _ => return Err(CsvError::BadHeader),
        }
        let mut csth = Csth::new(poll_period);
        let mut order: Vec<String> = Vec::new();
        let mut data: Vec<(String, TimeSeries)> = Vec::new();
        for (idx, line) in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let line_no = idx + 1;
            let parts: Vec<&str> = line.split(',').collect();
            if parts.len() != 4 {
                return Err(CsvError::BadRow {
                    line: line_no,
                    reason: format!("expected 4 fields, got {}", parts.len()),
                });
            }
            let secs: f64 = parts[0].parse().map_err(|e| CsvError::BadRow {
                line: line_no,
                reason: format!("bad time: {e}"),
            })?;
            let value: f64 = parts[3].parse().map_err(|e| CsvError::BadRow {
                line: line_no,
                reason: format!("bad value: {e}"),
            })?;
            let name = parts[1];
            let unit = parts[2];
            let slot = match order.iter().position(|n| n == name) {
                Some(i) => i,
                None => {
                    order.push(name.to_owned());
                    data.push(((*unit).to_owned(), TimeSeries::new()));
                    order.len() - 1
                }
            };
            data[slot]
                .1
                .push(
                    SimInstant::from_millis((secs * 1_000.0).round() as u64),
                    value,
                )
                .map_err(|reason| CsvError::BadRow {
                    line: line_no,
                    reason,
                })?;
        }
        for (name, (unit, series)) in order.into_iter().zip(data) {
            csth.push_channel_data(name, unit, series);
        }
        Ok(csth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CSTH_POLL_PERIOD;

    fn capture() -> Csth {
        let mut csth = Csth::new(CSTH_POLL_PERIOD);
        let t = csth.add_channel("cpu0_temp", "C");
        let p = csth.add_channel("system_power", "W");
        for i in 0u64..5 {
            let at = SimInstant::from_millis(i * 10_000);
            csth.record(t, at, 50.0 + i as f64).unwrap();
            csth.record(p, at, 500.0 + 2.0 * i as f64).unwrap();
        }
        csth
    }

    #[test]
    fn round_trip_preserves_everything() {
        let original = capture();
        let csv = original.to_csv().unwrap();
        let parsed = Csth::from_csv(&csv, CSTH_POLL_PERIOD).unwrap();
        assert_eq!(parsed.channel_count(), 2);
        let t = parsed.channel_by_name("cpu0_temp").unwrap();
        let p = parsed.channel_by_name("system_power").unwrap();
        assert_eq!(parsed.unit(t), "C");
        assert_eq!(parsed.unit(p), "W");
        assert_eq!(
            parsed.series(t).values(),
            original
                .series(original.channel_by_name("cpu0_temp").unwrap())
                .values()
        );
        assert_eq!(
            parsed.series(p).times(),
            original
                .series(original.channel_by_name("system_power").unwrap())
                .times()
        );
    }

    #[test]
    fn header_written_once() {
        let csv = capture().to_csv().unwrap();
        assert!(csv.starts_with("time_s,channel,unit,value\n"));
        assert_eq!(csv.matches("time_s").count(), 1);
        assert_eq!(csv.lines().count(), 11); // header + 10 samples
    }

    #[test]
    fn rejects_comma_in_name() {
        let mut csth = Csth::new(CSTH_POLL_PERIOD);
        let ch = csth.add_channel("bad,name", "C");
        csth.record(ch, SimInstant::ZERO, 1.0).unwrap();
        assert!(matches!(
            csth.to_csv(),
            Err(CsvError::UnrepresentableName { .. })
        ));
    }

    #[test]
    fn rejects_bad_header() {
        assert_eq!(
            Csth::from_csv("nope\n1,2,3,4", CSTH_POLL_PERIOD).unwrap_err(),
            CsvError::BadHeader
        );
        assert_eq!(
            Csth::from_csv("", CSTH_POLL_PERIOD).unwrap_err(),
            CsvError::BadHeader
        );
    }

    #[test]
    fn rejects_malformed_rows() {
        let base = "time_s,channel,unit,value\n";
        let wrong_fields = format!("{base}1.0,cpu,C\n");
        assert!(matches!(
            Csth::from_csv(&wrong_fields, CSTH_POLL_PERIOD),
            Err(CsvError::BadRow { line: 2, .. })
        ));
        let bad_value = format!("{base}1.0,cpu,C,abc\n");
        assert!(matches!(
            Csth::from_csv(&bad_value, CSTH_POLL_PERIOD),
            Err(CsvError::BadRow { .. })
        ));
        let bad_time = format!("{base}xyz,cpu,C,1.0\n");
        assert!(matches!(
            Csth::from_csv(&bad_time, CSTH_POLL_PERIOD),
            Err(CsvError::BadRow { .. })
        ));
    }

    #[test]
    fn empty_lines_skipped() {
        let csv = "time_s,channel,unit,value\n\n1.0,cpu,C,50.0\n\n";
        let parsed = Csth::from_csv(csv, CSTH_POLL_PERIOD).unwrap();
        assert_eq!(parsed.sample_count(), 1);
    }

    #[test]
    fn error_display() {
        let e = CsvError::BadRow {
            line: 3,
            reason: "x".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(CsvError::BadHeader.to_string().contains("header"));
    }
}
