//! Append-only timestamped sample series.

use leakctl_units::{SimDuration, SimInstant};

/// An append-only series of `(time, value)` samples with summary
/// statistics — the storage behind every CSTH channel.
///
/// Samples must be appended in non-decreasing time order, which is how
/// pollers operate and keeps windowed queries `O(log n)`.
///
/// # Example
///
/// ```
/// use leakctl_telemetry::TimeSeries;
/// use leakctl_units::SimInstant;
///
/// let mut s = TimeSeries::new();
/// s.push(SimInstant::from_millis(0), 50.0).unwrap();
/// s.push(SimInstant::from_millis(10_000), 60.0).unwrap();
/// assert_eq!(s.mean(), Some(55.0));
/// assert_eq!(s.max(), Some(60.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TimeSeries {
    times: Vec<SimInstant>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample.
    ///
    /// # Errors
    ///
    /// Returns a description when `at` precedes the last sample or the
    /// value is non-finite.
    pub fn push(&mut self, at: SimInstant, value: f64) -> Result<(), String> {
        if let Some(&last) = self.times.last() {
            if at < last {
                return Err(format!("sample at {at} precedes last sample at {last}"));
            }
        }
        if !value.is_finite() {
            return Err(format!("sample value at {at} is not finite"));
        }
        self.times.push(at);
        self.values.push(value);
        Ok(())
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Sample timestamps.
    #[must_use]
    pub fn times(&self) -> &[SimInstant] {
        &self.times
    }

    /// Sample values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterates `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimInstant, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// The most recent sample.
    #[must_use]
    pub fn last(&self) -> Option<(SimInstant, f64)> {
        Some((*self.times.last()?, *self.values.last()?))
    }

    /// Arithmetic mean of all values.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Largest value.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.values
            .iter()
            .copied()
            .fold(None, |m, v| Some(m.map_or(v, |m: f64| m.max(v))))
    }

    /// Smallest value.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.values
            .iter()
            .copied()
            .fold(None, |m, v| Some(m.map_or(v, |m: f64| m.min(v))))
    }

    /// Linear-interpolation percentile (`p ∈ [0, 100]`) of the values.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0, 100]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        if self.values.is_empty() {
            return None;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("values are finite"));
        let rank = p / 100.0 * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }

    /// Samples with `from <= time < to`.
    #[must_use]
    pub fn window(&self, from: SimInstant, to: SimInstant) -> TimeSeries {
        let start = self.times.partition_point(|&t| t < from);
        let end = self.times.partition_point(|&t| t < to);
        TimeSeries {
            times: self.times[start..end].to_vec(),
            values: self.values[start..end].to_vec(),
        }
    }

    /// The value at or immediately before `at` (sample-and-hold read).
    #[must_use]
    pub fn at_or_before(&self, at: SimInstant) -> Option<f64> {
        let idx = self.times.partition_point(|&t| t <= at);
        if idx == 0 {
            None
        } else {
            Some(self.values[idx - 1])
        }
    }

    /// Time-weighted average over the sampled span (trapezoidal), or the
    /// plain mean when fewer than two samples exist.
    #[must_use]
    pub fn time_weighted_mean(&self) -> Option<f64> {
        if self.values.len() < 2 {
            return self.mean();
        }
        let mut area = 0.0;
        let mut span = 0.0;
        for i in 1..self.values.len() {
            let dt = (self.times[i] - self.times[i - 1]).as_secs_f64();
            area += 0.5 * (self.values[i] + self.values[i - 1]) * dt;
            span += dt;
        }
        if span > 0.0 {
            Some(area / span)
        } else {
            self.mean()
        }
    }

    /// Resamples onto a regular grid (`period` apart, starting at the
    /// first sample) using sample-and-hold semantics.
    ///
    /// # Panics
    ///
    /// Panics for a zero period.
    #[must_use]
    pub fn resample(&self, period: SimDuration) -> TimeSeries {
        assert!(!period.is_zero(), "resample period must be non-zero");
        let mut out = TimeSeries::new();
        let (Some(&first), Some(&last)) = (self.times.first(), self.times.last()) else {
            return out;
        };
        let mut t = first;
        while t <= last {
            if let Some(v) = self.at_or_before(t) {
                out.push(t, v).expect("grid times are monotone");
            }
            t += period;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(s: u64) -> SimInstant {
        SimInstant::from_millis(s * 1_000)
    }

    fn series(values: &[(u64, f64)]) -> TimeSeries {
        let mut s = TimeSeries::new();
        for &(t, v) in values {
            s.push(at(t), v).unwrap();
        }
        s
    }

    #[test]
    fn push_and_stats() {
        let s = series(&[(0, 50.0), (10, 70.0), (20, 60.0)]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.mean(), Some(60.0));
        assert_eq!(s.max(), Some(70.0));
        assert_eq!(s.min(), Some(50.0));
        assert_eq!(s.last(), Some((at(20), 60.0)));
        assert_eq!(s.times().len(), 3);
        assert_eq!(s.values(), &[50.0, 70.0, 60.0]);
    }

    #[test]
    fn empty_series_stats() {
        let s = TimeSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.last(), None);
        assert_eq!(s.percentile(50.0), None);
        assert_eq!(s.time_weighted_mean(), None);
        assert_eq!(s.at_or_before(at(5)), None);
    }

    #[test]
    fn rejects_time_regression_and_nan() {
        let mut s = series(&[(10, 1.0)]);
        assert!(s.push(at(5), 2.0).is_err());
        assert!(s.push(at(10), 2.0).is_ok(), "equal timestamps allowed");
        assert!(s.push(at(11), f64::NAN).is_err());
    }

    #[test]
    fn percentiles() {
        let s = series(&[(0, 10.0), (1, 20.0), (2, 30.0), (3, 40.0), (4, 50.0)]);
        assert_eq!(s.percentile(0.0), Some(10.0));
        assert_eq!(s.percentile(50.0), Some(30.0));
        assert_eq!(s.percentile(100.0), Some(50.0));
        assert_eq!(s.percentile(25.0), Some(20.0));
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_range_checked() {
        let _ = series(&[(0, 1.0)]).percentile(150.0);
    }

    #[test]
    fn window_is_half_open() {
        let s = series(&[(0, 1.0), (10, 2.0), (20, 3.0), (30, 4.0)]);
        let w = s.window(at(10), at(30));
        assert_eq!(w.values(), &[2.0, 3.0]);
        assert!(s.window(at(31), at(40)).is_empty());
    }

    #[test]
    fn sample_and_hold_read() {
        let s = series(&[(10, 1.0), (20, 2.0)]);
        assert_eq!(s.at_or_before(at(9)), None);
        assert_eq!(s.at_or_before(at(10)), Some(1.0));
        assert_eq!(s.at_or_before(at(15)), Some(1.0));
        assert_eq!(s.at_or_before(at(25)), Some(2.0));
    }

    #[test]
    fn time_weighted_mean_weights_long_holds() {
        // 0 °C for 90 s then 10 °C for 10 s: TW mean must sit near the
        // long-held value, the plain mean at the midpoint.
        let s = series(&[(0, 0.0), (90, 0.0), (90, 10.0), (100, 10.0)]);
        let tw = s.time_weighted_mean().unwrap();
        assert!((tw - 1.0).abs() < 1e-9, "expected 1.0, got {tw}");
        assert_eq!(s.mean(), Some(5.0));
    }

    #[test]
    fn resample_holds_values() {
        let s = series(&[(0, 1.0), (25, 2.0), (50, 3.0)]);
        let r = s.resample(SimDuration::from_secs(10));
        assert_eq!(r.len(), 6); // t = 0, 10, 20, 30, 40, 50.
        assert_eq!(r.values(), &[1.0, 1.0, 1.0, 2.0, 2.0, 3.0]);
    }

    #[test]
    fn iter_yields_pairs() {
        let s = series(&[(0, 1.0), (10, 2.0)]);
        let pairs: Vec<_> = s.iter().collect();
        assert_eq!(pairs, vec![(at(0), 1.0), (at(10), 2.0)]);
    }
}
