//! Continuous System Telemetry Harness (CSTH) reproduction.
//!
//! The paper collects runtime dynamics through Oracle's CSTH running on
//! the server's service processor: 4 CPU temperatures (2 per die), 32
//! DIMM temperatures, per-core voltage/current, and whole-system power,
//! polled every 10 seconds. This crate reproduces that information
//! structure for the digital twin:
//!
//! - [`Sensor`] — measurement-channel model (gain/offset error, Gaussian
//!   noise, quantization) so controllers see realistic telemetry, not
//!   the simulator's exact state,
//! - [`TimeSeries`] — an append-only timestamped series with summary
//!   statistics and windowed queries,
//! - [`Csth`] — the harness: named channels with units, a fixed polling
//!   period, CSV export/import,
//! - [`VibrationTach`] — the fan-speed verification path (the paper
//!   validated RPM settings with high-accuracy vibration sensors).
//!
//! # Example
//!
//! ```
//! use leakctl_sim::SimRng;
//! use leakctl_telemetry::{Csth, SensorSpec};
//! use leakctl_units::SimInstant;
//!
//! let mut csth = Csth::new(leakctl_telemetry::CSTH_POLL_PERIOD);
//! let cpu0 = csth.add_channel("cpu0_temp", "C");
//! csth.record(cpu0, SimInstant::ZERO, 55.2).unwrap();
//! assert_eq!(csth.series(cpu0).len(), 1);
//! # let _ = SensorSpec::default();
//! # let _ = SimRng::seed(0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod csv;
mod harness;
mod sensor;
mod series;
mod vibration;

pub use csv::CsvError;
pub use harness::{ChannelId, Csth, TelemetryError};
pub use sensor::{Sensor, SensorSpec};
pub use series::TimeSeries;
pub use vibration::VibrationTach;

use leakctl_units::SimDuration;

/// The paper's CSTH polling period: "these data are polled every 10
/// seconds".
pub const CSTH_POLL_PERIOD: SimDuration = SimDuration::from_secs(10);

/// The paper's utilization polling period on the DLC-PC: "utilization is
/// polled every second".
pub const UTILIZATION_POLL_PERIOD: SimDuration = SimDuration::from_secs(1);
