//! Vibration-based fan-speed verification.
//!
//! The paper "characterize[s] the fans by verifying their speed with
//! highly accurate vibration sensors". This module reproduces that
//! verification channel: a tachometer estimate derived from the blade-
//! pass vibration signature, with small Gaussian estimation error.

use leakctl_sim::SimRng;
use leakctl_units::Rpm;

/// A vibration-signature tachometer for verifying commanded fan speeds.
///
/// # Example
///
/// ```
/// use leakctl_sim::SimRng;
/// use leakctl_telemetry::VibrationTach;
/// use leakctl_units::Rpm;
///
/// let mut tach = VibrationTach::new(SimRng::seed(3));
/// let est = tach.estimate(Rpm::new(2400.0));
/// assert!(tach.verify(Rpm::new(2400.0), est));
/// ```
#[derive(Debug, Clone)]
pub struct VibrationTach {
    sigma_rpm: f64,
    tolerance_rpm: f64,
    rng: SimRng,
}

impl VibrationTach {
    /// Default estimation noise, RPM (the sensors are "highly
    /// accurate").
    pub const DEFAULT_SIGMA: f64 = 3.0;

    /// Default verification tolerance, RPM.
    pub const DEFAULT_TOLERANCE: f64 = 25.0;

    /// Creates a tachometer with default accuracy.
    #[must_use]
    pub fn new(rng: SimRng) -> Self {
        Self::with_accuracy(Self::DEFAULT_SIGMA, Self::DEFAULT_TOLERANCE, rng)
    }

    /// Creates a tachometer with explicit noise and tolerance.
    ///
    /// # Panics
    ///
    /// Panics for negative noise or non-positive tolerance.
    #[must_use]
    pub fn with_accuracy(sigma_rpm: f64, tolerance_rpm: f64, rng: SimRng) -> Self {
        assert!(sigma_rpm >= 0.0, "noise must be non-negative");
        assert!(tolerance_rpm > 0.0, "tolerance must be positive");
        Self {
            sigma_rpm,
            tolerance_rpm,
            rng,
        }
    }

    /// Estimates the actual rotational speed from the vibration
    /// signature of a fan spinning at `actual`.
    pub fn estimate(&mut self, actual: Rpm) -> Rpm {
        Rpm::new((actual.value() + self.sigma_rpm * self.rng.next_gaussian()).max(0.0))
    }

    /// Checks an estimate against a commanded setpoint.
    #[must_use]
    pub fn verify(&self, commanded: Rpm, estimate: Rpm) -> bool {
        (estimate.value() - commanded.value()).abs() <= self.tolerance_rpm
    }

    /// The verification tolerance.
    #[must_use]
    pub fn tolerance(&self) -> Rpm {
        Rpm::new(self.tolerance_rpm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_cluster_near_actual() {
        let mut tach = VibrationTach::new(SimRng::seed(5));
        let actual = Rpm::new(3600.0);
        for _ in 0..100 {
            let est = tach.estimate(actual);
            assert!((est.value() - 3600.0).abs() < 5.0 * VibrationTach::DEFAULT_SIGMA);
        }
    }

    #[test]
    fn verify_accepts_within_tolerance() {
        let tach = VibrationTach::new(SimRng::seed(5));
        assert!(tach.verify(Rpm::new(2400.0), Rpm::new(2420.0)));
        assert!(!tach.verify(Rpm::new(2400.0), Rpm::new(2500.0)));
        assert_eq!(tach.tolerance(), Rpm::new(25.0));
    }

    #[test]
    fn zero_noise_is_exact() {
        let mut tach = VibrationTach::with_accuracy(0.0, 10.0, SimRng::seed(0));
        assert_eq!(tach.estimate(Rpm::new(1800.0)), Rpm::new(1800.0));
    }

    #[test]
    fn estimates_never_negative() {
        let mut tach = VibrationTach::with_accuracy(500.0, 10.0, SimRng::seed(1));
        for _ in 0..200 {
            assert!(tach.estimate(Rpm::new(10.0)).value() >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "tolerance must be positive")]
    fn rejects_bad_tolerance() {
        let _ = VibrationTach::with_accuracy(1.0, 0.0, SimRng::seed(0));
    }
}
