//! The telemetry harness: named channels over [`TimeSeries`] storage.

use core::fmt;

use leakctl_units::{SimDuration, SimInstant};

use crate::series::TimeSeries;

/// Identifier of a channel registered with a [`Csth`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct ChannelId(pub(crate) usize);

/// Errors produced by the telemetry harness.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryError {
    /// A channel id referred to a different harness.
    UnknownChannel {
        /// The offending index.
        index: usize,
    },
    /// A sample was rejected by the underlying series.
    BadSample {
        /// Channel name.
        channel: String,
        /// Rejection reason.
        reason: String,
    },
}

impl fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownChannel { index } => write!(f, "unknown channel id {index}"),
            Self::BadSample { channel, reason } => {
                write!(f, "bad sample on channel {channel}: {reason}")
            }
        }
    }
}

impl std::error::Error for TelemetryError {}

#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub(crate) struct Channel {
    pub(crate) name: String,
    pub(crate) unit: String,
    pub(crate) series: TimeSeries,
}

/// The Continuous System Telemetry Harness: a registry of named,
/// unit-annotated channels, each backed by a [`TimeSeries`].
///
/// The platform registers one channel per physical sensor (4 CPU
/// temperatures, 32 DIMM temperatures, per-core V/I, system power) and
/// records into them from its 10-second poller; controllers and the
/// characterization pipeline read from here, never from simulator
/// internals.
///
/// # Example
///
/// ```
/// use leakctl_telemetry::{Csth, CSTH_POLL_PERIOD};
/// use leakctl_units::SimInstant;
///
/// let mut csth = Csth::new(CSTH_POLL_PERIOD);
/// let ch = csth.add_channel("system_power", "W");
/// csth.record(ch, SimInstant::ZERO, 502.0).unwrap();
/// assert_eq!(csth.series(ch).last().unwrap().1, 502.0);
/// ```
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Csth {
    channels: Vec<Channel>,
    poll_period: SimDuration,
}

impl Csth {
    /// Creates an empty harness that nominally polls every
    /// `poll_period` (recorded for documentation/CSV metadata; actual
    /// polling cadence is driven by the platform).
    #[must_use]
    pub fn new(poll_period: SimDuration) -> Self {
        Self {
            channels: Vec::new(),
            poll_period,
        }
    }

    /// Registers a channel and returns its id.
    pub fn add_channel(&mut self, name: &str, unit: &str) -> ChannelId {
        self.channels.push(Channel {
            name: name.to_owned(),
            unit: unit.to_owned(),
            series: TimeSeries::new(),
        });
        ChannelId(self.channels.len() - 1)
    }

    /// Records a sample on a channel.
    ///
    /// # Errors
    ///
    /// Returns [`TelemetryError::UnknownChannel`] for foreign ids and
    /// [`TelemetryError::BadSample`] for out-of-order or non-finite
    /// samples.
    pub fn record(
        &mut self,
        channel: ChannelId,
        at: SimInstant,
        value: f64,
    ) -> Result<(), TelemetryError> {
        let ch = self
            .channels
            .get_mut(channel.0)
            .ok_or(TelemetryError::UnknownChannel { index: channel.0 })?;
        ch.series
            .push(at, value)
            .map_err(|reason| TelemetryError::BadSample {
                channel: ch.name.clone(),
                reason,
            })
    }

    /// The series recorded on `channel`.
    ///
    /// # Panics
    ///
    /// Panics for a foreign channel id.
    #[must_use]
    pub fn series(&self, channel: ChannelId) -> &TimeSeries {
        &self.channels[channel.0].series
    }

    /// The channel's name.
    ///
    /// # Panics
    ///
    /// Panics for a foreign channel id.
    #[must_use]
    pub fn name(&self, channel: ChannelId) -> &str {
        &self.channels[channel.0].name
    }

    /// The channel's unit string.
    ///
    /// # Panics
    ///
    /// Panics for a foreign channel id.
    #[must_use]
    pub fn unit(&self, channel: ChannelId) -> &str {
        &self.channels[channel.0].unit
    }

    /// Looks up a channel by name.
    #[must_use]
    pub fn channel_by_name(&self, name: &str) -> Option<ChannelId> {
        self.channels
            .iter()
            .position(|c| c.name == name)
            .map(ChannelId)
    }

    /// Ids of all channels, in registration order.
    pub fn channels(&self) -> impl Iterator<Item = ChannelId> {
        (0..self.channels.len()).map(ChannelId)
    }

    /// Number of registered channels.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// The nominal polling period.
    #[must_use]
    pub fn poll_period(&self) -> SimDuration {
        self.poll_period
    }

    /// Total samples across all channels.
    #[must_use]
    pub fn sample_count(&self) -> usize {
        self.channels.iter().map(|c| c.series.len()).sum()
    }

    pub(crate) fn channel_data(&self) -> &[Channel] {
        &self.channels
    }

    pub(crate) fn push_channel_data(&mut self, name: String, unit: String, series: TimeSeries) {
        self.channels.push(Channel { name, unit, series });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CSTH_POLL_PERIOD;

    fn at(s: u64) -> SimInstant {
        SimInstant::from_millis(s * 1_000)
    }

    #[test]
    fn register_and_record() {
        let mut csth = Csth::new(CSTH_POLL_PERIOD);
        let cpu0 = csth.add_channel("cpu0_temp", "C");
        let cpu1 = csth.add_channel("cpu1_temp", "C");
        csth.record(cpu0, at(0), 55.0).unwrap();
        csth.record(cpu0, at(10), 57.0).unwrap();
        csth.record(cpu1, at(10), 54.0).unwrap();
        assert_eq!(csth.series(cpu0).len(), 2);
        assert_eq!(csth.series(cpu1).len(), 1);
        assert_eq!(csth.channel_count(), 2);
        assert_eq!(csth.sample_count(), 3);
        assert_eq!(csth.poll_period(), CSTH_POLL_PERIOD);
    }

    #[test]
    fn lookup_by_name() {
        let mut csth = Csth::new(CSTH_POLL_PERIOD);
        let p = csth.add_channel("system_power", "W");
        assert_eq!(csth.channel_by_name("system_power"), Some(p));
        assert_eq!(csth.channel_by_name("nope"), None);
        assert_eq!(csth.name(p), "system_power");
        assert_eq!(csth.unit(p), "W");
    }

    #[test]
    fn unknown_channel_rejected() {
        let mut csth = Csth::new(CSTH_POLL_PERIOD);
        let err = csth.record(ChannelId(3), at(0), 1.0).unwrap_err();
        assert!(matches!(err, TelemetryError::UnknownChannel { index: 3 }));
        assert!(err.to_string().contains('3'));
    }

    #[test]
    fn bad_sample_reported_with_channel_name() {
        let mut csth = Csth::new(CSTH_POLL_PERIOD);
        let ch = csth.add_channel("cpu0_temp", "C");
        csth.record(ch, at(10), 50.0).unwrap();
        let err = csth.record(ch, at(5), 51.0).unwrap_err();
        match err {
            TelemetryError::BadSample { channel, .. } => assert_eq!(channel, "cpu0_temp"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn channels_iterator_in_order() {
        let mut csth = Csth::new(CSTH_POLL_PERIOD);
        let a = csth.add_channel("a", "x");
        let b = csth.add_channel("b", "y");
        let ids: Vec<ChannelId> = csth.channels().collect();
        assert_eq!(ids, vec![a, b]);
    }
}
