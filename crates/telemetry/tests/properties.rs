//! Property-based tests for telemetry storage and sensors.

use leakctl_sim::SimRng;
use leakctl_telemetry::{Csth, Sensor, SensorSpec, TimeSeries, CSTH_POLL_PERIOD};
use leakctl_units::SimInstant;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Series statistics are consistent: min ≤ mean ≤ max, percentiles
    /// ordered.
    #[test]
    fn series_statistics_consistent(
        values in prop::collection::vec(-100.0..1000.0f64, 1..50),
    ) {
        let mut s = TimeSeries::new();
        for (i, v) in values.iter().enumerate() {
            s.push(SimInstant::from_millis(i as u64 * 1_000), *v).expect("push");
        }
        let (min, mean, max) = (
            s.min().expect("non-empty"),
            s.mean().expect("non-empty"),
            s.max().expect("non-empty"),
        );
        prop_assert!(min <= mean + 1e-12 && mean <= max + 1e-12);
        let p25 = s.percentile(25.0).expect("non-empty");
        let p75 = s.percentile(75.0).expect("non-empty");
        prop_assert!(p25 <= p75);
        prop_assert!(min <= p25 && p75 <= max);
    }

    /// Windowing partitions the series: every sample lands in exactly
    /// one of two adjacent windows.
    #[test]
    fn windows_partition(
        n in 1usize..60,
        split_ms in 0u64..60_000,
    ) {
        let mut s = TimeSeries::new();
        for i in 0..n {
            s.push(SimInstant::from_millis(i as u64 * 1_000), i as f64).expect("push");
        }
        let end = SimInstant::from_millis(10_000_000);
        let mid = SimInstant::from_millis(split_ms);
        let left = s.window(SimInstant::ZERO, mid);
        let right = s.window(mid, end);
        prop_assert_eq!(left.len() + right.len(), n);
    }

    /// Quantized sensors always report multiples of the step.
    #[test]
    fn sensor_quantization_exact(
        value in -50.0..150.0f64,
        quant in 0.1..2.0f64,
        seed in 0u64..100,
    ) {
        let spec = SensorSpec {
            gain: 1.0,
            offset: 0.0,
            noise_sigma: 0.3,
            quantization: quant,
        };
        let mut sensor = Sensor::new(spec, SimRng::seed(seed));
        let reading = sensor.measure(value);
        let steps = reading / quant;
        prop_assert!((steps - steps.round()).abs() < 1e-9, "reading {reading} not on the {quant} grid");
    }

    /// CSV round trip preserves any harness content with clean names.
    #[test]
    fn csv_round_trip(
        channels in prop::collection::vec("[a-z][a-z0-9_]{0,12}", 1..5),
        samples in 1usize..20,
    ) {
        let mut names = channels;
        names.dedup();
        let mut csth = Csth::new(CSTH_POLL_PERIOD);
        for (c, name) in names.iter().enumerate() {
            let ch = csth.add_channel(name, "W");
            for i in 0..samples {
                csth.record(
                    ch,
                    SimInstant::from_millis(i as u64 * 10_000),
                    (c * 100 + i) as f64,
                )
                .expect("record");
            }
        }
        let csv = csth.to_csv().expect("export");
        let parsed = Csth::from_csv(&csv, CSTH_POLL_PERIOD).expect("parse");
        prop_assert_eq!(parsed.channel_count(), csth.channel_count());
        prop_assert_eq!(parsed.sample_count(), csth.sample_count());
        for name in &names {
            let a = csth.channel_by_name(name).expect("channel");
            let b = parsed.channel_by_name(name).expect("channel");
            prop_assert_eq!(csth.series(a).values(), parsed.series(b).values());
        }
    }
}
