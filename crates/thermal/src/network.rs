//! Thermal network construction and state.

use std::sync::atomic::{AtomicU64, Ordering};

use leakctl_units::{AirFlow, Celsius, ThermalCapacitance, ThermalConductance, Watts};

use crate::convection::ConvectionModel;
use crate::error::ThermalError;
use crate::linalg::Matrix;
use crate::{AIR_DENSITY, AIR_SPECIFIC_HEAT};

/// Identifier of a node inside a [`ThermalNetwork`].
///
/// Only meaningful for the network whose builder produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct NodeId(pub(crate) usize);

/// Identifier of an air-flow channel inside a [`ThermalNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct FlowChannelId(pub(crate) usize);

/// A heat-exchange path between two nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Coupling {
    /// Fixed conduction path with the given conductance (W/K).
    Conductance(ThermalConductance),
    /// Surface-to-air convection whose conductance follows the flow in
    /// `channel` through `model`.
    Convective {
        /// The air-flow channel whose flow drives the conductance.
        channel: FlowChannelId,
        /// Flow-to-conductance correlation.
        model: ConvectionModel,
    },
    /// Bulk air transport (directed only): conductance `fraction·ṁ·c_p`
    /// where `ṁ` is the mass flow in `channel`. The downstream node is
    /// pulled toward the upstream temperature; the upstream node is
    /// unaffected, as the air it lost is replaced from further upstream.
    Advective {
        /// The air-flow channel carrying the stream.
        channel: FlowChannelId,
        /// Fraction of the channel's flow passing through this edge.
        fraction: f64,
    },
}

#[derive(Debug, Clone)]
enum NodeKind {
    Capacitive { capacitance: f64, slot: usize },
    Boundary { temp: f64 },
}

#[derive(Debug, Clone)]
struct NodeData {
    name: String,
    kind: NodeKind,
}

#[derive(Debug, Clone)]
struct Edge {
    a: usize,
    b: usize,
    coupling: Coupling,
    directed: bool,
}

#[derive(Debug, Clone)]
struct Channel {
    #[allow(dead_code)] // retained for diagnostics / future reporting
    name: String,
    flow: f64, // m³/s
}

/// Process-wide generation source for cache invalidation.
///
/// Every mutation of any network draws a fresh value, so two networks
/// (e.g. a network and its clone, mutated independently) can never
/// reuse the same generation number — a [`TransientSolver`]
/// (crate::TransientSolver) keyed on stale generations therefore cannot
/// collide with a different input set.
///
/// To keep per-mutation cost off the atomic (a fleet refreshing
/// hundreds of die powers per step would otherwise serialize on it),
/// each network leases a private *block* of generations at a time
/// ([`GenLease`]) and mints from it locally; the atomic is touched once
/// per [`GEN_BLOCK`] mutations. Uniqueness is preserved because blocks
/// are disjoint and a lease is never shared: cloning a network
/// explicitly drops the lease, forcing the clone onto a fresh block.
static GENERATION: AtomicU64 = AtomicU64::new(1);

/// Generations leased from [`GENERATION`] per refill.
const GEN_BLOCK: u64 = 1024;

fn next_generation() -> u64 {
    GENERATION.fetch_add(1, Ordering::Relaxed)
}

/// A network's private allotment of generation numbers.
#[derive(Debug)]
struct GenLease {
    next: u64,
    remaining: u64,
}

impl GenLease {
    const fn empty() -> Self {
        Self {
            next: 0,
            remaining: 0,
        }
    }

    /// Mints a process-unique, per-network-monotone generation.
    fn mint(&mut self) -> u64 {
        if self.remaining == 0 {
            self.next = GENERATION.fetch_add(GEN_BLOCK, Ordering::Relaxed);
            self.remaining = GEN_BLOCK;
        }
        let g = self.next;
        self.next += 1;
        self.remaining -= 1;
        g
    }
}

impl Clone for GenLease {
    /// A lease is exclusive: the clone starts empty and refills from
    /// its own block, so a network and its clone can never mint the
    /// same generation.
    fn clone(&self) -> Self {
        Self::empty()
    }
}

/// Incrementally builds a [`ThermalNetwork`].
///
/// See the [crate-level example](crate) for typical use.
#[derive(Debug, Default)]
pub struct ThermalNetworkBuilder {
    nodes: Vec<NodeData>,
    edges: Vec<Edge>,
    channels: Vec<Channel>,
    slots: usize,
}

impl ThermalNetworkBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a capacitive (state-carrying) node.
    pub fn add_node(&mut self, name: &str, capacitance: ThermalCapacitance) -> NodeId {
        let slot = self.slots;
        self.slots += 1;
        self.nodes.push(NodeData {
            name: name.to_owned(),
            kind: NodeKind::Capacitive {
                capacitance: capacitance.value(),
                slot,
            },
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a fixed-temperature boundary node (e.g. the ambient).
    pub fn add_boundary(&mut self, name: &str, temp: Celsius) -> NodeId {
        self.nodes.push(NodeData {
            name: name.to_owned(),
            kind: NodeKind::Boundary {
                temp: temp.degrees(),
            },
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Declares an air-flow channel; its flow is set at runtime through
    /// [`ThermalNetwork::set_flow`].
    pub fn add_flow_channel(&mut self, name: &str) -> FlowChannelId {
        self.channels.push(Channel {
            name: name.to_owned(),
            flow: 0.0,
        });
        FlowChannelId(self.channels.len() - 1)
    }

    /// Connects two nodes with a *symmetric* coupling (heat lost by one
    /// side is gained by the other).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidCoupling`] for an [`Coupling::Advective`]
    /// coupling (inherently directed — use [`Self::connect_directed`]),
    /// for non-positive conductances, and for node/channel ids that do
    /// not belong to this builder.
    pub fn connect(
        &mut self,
        a: NodeId,
        b: NodeId,
        coupling: Coupling,
    ) -> Result<(), ThermalError> {
        if matches!(coupling, Coupling::Advective { .. }) {
            return Err(ThermalError::InvalidCoupling {
                what: "advective couplings are directed; use connect_directed",
            });
        }
        self.validate_edge(a, b, &coupling)?;
        self.edges.push(Edge {
            a: a.0,
            b: b.0,
            coupling,
            directed: false,
        });
        Ok(())
    }

    /// Connects `from → to` with a *directed* coupling: only `to` is
    /// affected. Intended for [`Coupling::Advective`] air-transport
    /// edges.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidCoupling`] when `to` is a boundary
    /// node (a directed edge into a boundary does nothing) or for invalid
    /// parameters, and [`ThermalError::UnknownNode`]/[`ThermalError::UnknownChannel`]
    /// for foreign ids.
    pub fn connect_directed(
        &mut self,
        from: NodeId,
        to: NodeId,
        coupling: Coupling,
    ) -> Result<(), ThermalError> {
        self.validate_edge(from, to, &coupling)?;
        let to_node = &self.nodes[to.0];
        if matches!(to_node.kind, NodeKind::Boundary { .. }) {
            return Err(ThermalError::InvalidCoupling {
                what: "directed edge into a boundary node has no effect",
            });
        }
        self.edges.push(Edge {
            a: from.0,
            b: to.0,
            coupling,
            directed: true,
        });
        Ok(())
    }

    fn validate_edge(&self, a: NodeId, b: NodeId, coupling: &Coupling) -> Result<(), ThermalError> {
        for id in [a, b] {
            if id.0 >= self.nodes.len() {
                return Err(ThermalError::UnknownNode { index: id.0 });
            }
        }
        if a.0 == b.0 {
            return Err(ThermalError::InvalidCoupling {
                what: "self-loop edges are not allowed",
            });
        }
        match coupling {
            Coupling::Conductance(g) => {
                if !(g.value() > 0.0 && g.is_finite()) {
                    return Err(ThermalError::InvalidCoupling {
                        what: "conductance must be positive and finite",
                    });
                }
            }
            Coupling::Convective { channel, .. } => {
                if channel.0 >= self.channels.len() {
                    return Err(ThermalError::UnknownChannel { index: channel.0 });
                }
            }
            Coupling::Advective { channel, fraction } => {
                if channel.0 >= self.channels.len() {
                    return Err(ThermalError::UnknownChannel { index: channel.0 });
                }
                if !(*fraction > 0.0 && fraction.is_finite() && *fraction <= 1.0) {
                    return Err(ThermalError::InvalidCoupling {
                        what: "advective fraction must be in (0, 1]",
                    });
                }
            }
        }
        Ok(())
    }

    /// Finalizes the network.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::NoCapacitiveNodes`] when the network holds
    /// no state, or [`ThermalError::InvalidCapacitance`] when a node has
    /// a non-positive heat capacity.
    pub fn build(self) -> Result<ThermalNetwork, ThermalError> {
        if self.slots == 0 {
            return Err(ThermalError::NoCapacitiveNodes);
        }
        let mut slot_to_node = vec![0usize; self.slots];
        for (idx, node) in self.nodes.iter().enumerate() {
            if let NodeKind::Capacitive { capacitance, slot } = node.kind {
                if !(capacitance > 0.0 && capacitance.is_finite()) {
                    return Err(ThermalError::InvalidCapacitance {
                        name: node.name.clone(),
                    });
                }
                slot_to_node[slot] = idx;
            }
        }
        let powers = vec![0.0; self.nodes.len()];
        let structure_hash = structure_hash(&self.nodes, &self.edges, self.channels.len());
        Ok(ThermalNetwork {
            nodes: self.nodes,
            edges: self.edges,
            channels: self.channels,
            powers,
            slot_to_node,
            flow_gen: next_generation(),
            power_gen: next_generation(),
            boundary_gen: next_generation(),
            topology_id: next_generation(),
            structure_hash,
            gen_lease: GenLease::empty(),
        })
    }
}

/// Deterministic fingerprint of a network's *structural constants*:
/// node kinds and capacitances, edge endpoints/direction/coupling
/// parameters, and the channel count. Runtime-mutable inputs (powers,
/// flows, boundary temperatures) and cosmetic data (names) are
/// excluded, so two networks built through the same sequence of builder
/// calls share the hash even when their runtime inputs have diverged —
/// the property the batch solver needs to share one factorization
/// across a fleet of independently built, identically configured
/// servers.
fn structure_hash(nodes: &[NodeData], edges: &[Edge], channel_count: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        // FNV-1a over 64-bit words.
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    mix(nodes.len() as u64);
    mix(channel_count as u64);
    for node in nodes {
        match node.kind {
            NodeKind::Capacitive { capacitance, slot } => {
                mix(1);
                mix(capacitance.to_bits());
                mix(slot as u64);
            }
            NodeKind::Boundary { .. } => mix(2),
        }
    }
    mix(edges.len() as u64);
    for edge in edges {
        mix(edge.a as u64);
        mix(edge.b as u64);
        mix(u64::from(edge.directed));
        match edge.coupling {
            Coupling::Conductance(g) => {
                mix(3);
                mix(g.value().to_bits());
            }
            Coupling::Convective { channel, model } => {
                mix(4);
                mix(channel.0 as u64);
                for bits in model.param_bits() {
                    mix(bits);
                }
            }
            Coupling::Advective { channel, fraction } => {
                mix(5);
                mix(channel.0 as u64);
                mix(fraction.to_bits());
            }
        }
    }
    h
}

/// The temperature state of a network's capacitive nodes.
///
/// Obtained from [`ThermalNetwork::uniform_state`] or
/// [`ThermalNetwork::steady_state`]; read through
/// [`ThermalNetwork::temperature`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ThermalState {
    pub(crate) temps: Vec<f64>,
}

impl ThermalState {
    /// Number of capacitive nodes in the state.
    #[must_use]
    pub fn len(&self) -> usize {
        self.temps.len()
    }

    /// `true` when the state is empty (never the case for a built
    /// network).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.temps.is_empty()
    }

    /// The hottest capacitive node temperature.
    #[must_use]
    pub fn max_temperature(&self) -> Celsius {
        Celsius::new(self.temps.iter().copied().fold(f64::NEG_INFINITY, f64::max))
    }

    /// `true` when every temperature is finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.temps.iter().all(|t| t.is_finite())
    }

    /// The raw per-slot temperatures, in slot order (°C) — read slots
    /// through [`ThermalNetwork::temperature`] for node-id access;
    /// batch consumers and equivalence tests use this direct view.
    #[must_use]
    pub fn temperatures(&self) -> &[f64] {
        &self.temps
    }
}

/// A lumped RC thermal network with runtime-settable power injections,
/// boundary temperatures and channel air flows.
#[derive(Debug, Clone)]
pub struct ThermalNetwork {
    nodes: Vec<NodeData>,
    edges: Vec<Edge>,
    channels: Vec<Channel>,
    powers: Vec<f64>,
    slot_to_node: Vec<usize>,
    // Cache-invalidation generations (see `GENERATION`): bumped only
    // when the corresponding input actually changes value, so constant
    // stretches keep cached assemblies and factorizations alive.
    flow_gen: u64,
    power_gen: u64,
    boundary_gen: u64,
    // Structural identity: assigned once at build, shared by clones
    // (their topology is identical), never bumped — lets a solver
    // reject networks it was not built for.
    topology_id: u64,
    // Structural fingerprint shared by *identically built* networks
    // (see `structure_hash`); unlike `topology_id` it does not
    // distinguish separate builds of the same topology, which is what
    // lets a batch solver pool independently constructed servers.
    structure_hash: u64,
    // Private generation allotment (see `GENERATION`); intentionally
    // reset by `Clone`.
    gen_lease: GenLease,
}

impl ThermalNetwork {
    /// Number of nodes (capacitive + boundary).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of capacitive (state-carrying) nodes.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.slot_to_node.len()
    }

    /// The name given to `node` at construction.
    ///
    /// # Panics
    ///
    /// Panics for a foreign node id.
    #[must_use]
    pub fn name(&self, node: NodeId) -> &str {
        &self.nodes[node.0].name
    }

    /// `true` when `node` is a fixed-temperature boundary.
    ///
    /// # Panics
    ///
    /// Panics for a foreign node id.
    #[must_use]
    pub fn is_boundary(&self, node: NodeId) -> bool {
        matches!(self.nodes[node.0].kind, NodeKind::Boundary { .. })
    }

    /// Sets the heat injected into a capacitive node.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::UnknownNode`] for foreign ids and
    /// [`ThermalError::InvalidCoupling`] when targeting a boundary node.
    pub fn set_power(&mut self, node: NodeId, power: Watts) -> Result<(), ThermalError> {
        let data = self
            .nodes
            .get(node.0)
            .ok_or(ThermalError::UnknownNode { index: node.0 })?;
        if matches!(data.kind, NodeKind::Boundary { .. }) {
            return Err(ThermalError::InvalidCoupling {
                what: "cannot inject power into a boundary node",
            });
        }
        let value = power.value();
        if self.powers[node.0].to_bits() != value.to_bits() {
            self.powers[node.0] = value;
            self.power_gen = self.gen_lease.mint();
        }
        Ok(())
    }

    /// The heat currently injected into `node`.
    ///
    /// # Panics
    ///
    /// Panics for a foreign node id.
    #[must_use]
    pub fn power(&self, node: NodeId) -> Watts {
        Watts::new(self.powers[node.0])
    }

    /// Total heat injected across all nodes.
    #[must_use]
    pub fn total_power(&self) -> Watts {
        Watts::new(self.powers.iter().sum())
    }

    /// Re-pins a boundary node's temperature (e.g. ambient drift).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::UnknownNode`] for foreign ids and
    /// [`ThermalError::InvalidCoupling`] when `node` is capacitive.
    pub fn set_boundary(&mut self, node: NodeId, temp: Celsius) -> Result<(), ThermalError> {
        let data = self
            .nodes
            .get_mut(node.0)
            .ok_or(ThermalError::UnknownNode { index: node.0 })?;
        match &mut data.kind {
            NodeKind::Boundary { temp: t } => {
                let value = temp.degrees();
                if t.to_bits() != value.to_bits() {
                    *t = value;
                    self.boundary_gen = self.gen_lease.mint();
                }
                Ok(())
            }
            NodeKind::Capacitive { .. } => Err(ThermalError::InvalidCoupling {
                what: "cannot pin the temperature of a capacitive node",
            }),
        }
    }

    /// Sets the volumetric flow of an air channel; negative flows clamp
    /// to zero.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::UnknownChannel`] for foreign ids.
    pub fn set_flow(&mut self, channel: FlowChannelId, flow: AirFlow) -> Result<(), ThermalError> {
        let ch = self
            .channels
            .get_mut(channel.0)
            .ok_or(ThermalError::UnknownChannel { index: channel.0 })?;
        let value = flow.value().max(0.0);
        if ch.flow.to_bits() != value.to_bits() {
            ch.flow = value;
            self.flow_gen = self.gen_lease.mint();
        }
        Ok(())
    }

    /// The current flow of `channel`.
    ///
    /// # Panics
    ///
    /// Panics for a foreign channel id.
    #[must_use]
    pub fn flow(&self, channel: FlowChannelId) -> AirFlow {
        AirFlow::new(self.channels[channel.0].flow)
    }

    /// A state with every capacitive node at `temp` — the paper's
    /// "cold start after a long idle soak".
    #[must_use]
    pub fn uniform_state(&self, temp: Celsius) -> ThermalState {
        ThermalState {
            temps: vec![temp.degrees(); self.slot_to_node.len()],
        }
    }

    /// Reads the temperature of `node` (state value for capacitive
    /// nodes, pinned value for boundaries).
    ///
    /// # Panics
    ///
    /// Panics for a foreign node id or a state from another network.
    #[must_use]
    pub fn temperature(&self, state: &ThermalState, node: NodeId) -> Celsius {
        match self.nodes[node.0].kind {
            NodeKind::Capacitive { slot, .. } => Celsius::new(state.temps[slot]),
            NodeKind::Boundary { temp } => Celsius::new(temp),
        }
    }

    /// The state-vector slot of a capacitive node (`None` for boundary
    /// nodes, which carry no state). Slots index
    /// [`ThermalState::temperatures`] and the packed batch layouts —
    /// fleet engines use this to read a few slots (e.g. CPU dies) out
    /// of packed storage without unpacking whole states.
    ///
    /// # Panics
    ///
    /// Panics for a foreign node id.
    #[must_use]
    pub fn state_slot(&self, node: NodeId) -> Option<usize> {
        match self.nodes[node.0].kind {
            NodeKind::Capacitive { slot, .. } => Some(slot),
            NodeKind::Boundary { .. } => None,
        }
    }

    /// The effective conductance of an edge given current channel flows.
    fn edge_conductance(&self, edge: &Edge) -> f64 {
        match edge.coupling {
            Coupling::Conductance(g) => g.value(),
            Coupling::Convective { channel, model } => model
                .conductance(AirFlow::new(self.channels[channel.0].flow))
                .value(),
            Coupling::Advective { channel, fraction } => {
                let q = self.channels[channel.0].flow;
                fraction * q * AIR_DENSITY * AIR_SPECIFIC_HEAT
            }
        }
    }

    /// Structural identity assigned at build; clones share it, separate
    /// builds never do.
    pub(crate) fn topology_id(&self) -> u64 {
        self.topology_id
    }

    /// Structural fingerprint over node kinds/capacitances, edges and
    /// coupling parameters (runtime inputs and names excluded).
    /// Identically built networks share it even across separate builds —
    /// the compatibility key for [`BatchSolver`](crate::BatchSolver).
    #[must_use]
    pub fn structure_hash(&self) -> u64 {
        self.structure_hash
    }

    /// Appends the bit pattern of every channel flow, in channel order —
    /// the value-level part of a shared-factorization key: two
    /// structurally identical networks with equal flow signatures
    /// assemble the exact same conductance matrix.
    pub(crate) fn flow_signature_into(&self, out: &mut Vec<u64>) {
        out.extend(self.channels.iter().map(|ch| ch.flow.to_bits()));
    }

    /// Generation of the last real flow change (conductance matrix `G`
    /// and the boundary source both depend on flows).
    pub(crate) fn flow_generation(&self) -> u64 {
        self.flow_gen
    }

    /// Generation of the last real power change (affects the source
    /// vector only).
    pub(crate) fn power_generation(&self) -> u64 {
        self.power_gen
    }

    /// Generation of the last real boundary-temperature change (affects
    /// the source vector only).
    pub(crate) fn boundary_generation(&self) -> u64 {
        self.boundary_gen
    }

    /// The per-node power injections, indexed by node (not slot) — with
    /// [`Self::slot_to_node`] this lets a batch refresh read a lane's
    /// powers without the per-call indirection of
    /// [`Self::assemble_power_into`].
    pub(crate) fn powers_raw(&self) -> &[f64] {
        &self.powers
    }

    /// The slot → node index map (fixed after build; identical across
    /// identically built networks).
    pub(crate) fn slot_to_node(&self) -> &[usize] {
        &self.slot_to_node
    }

    /// Writes the per-slot capacitances into `c` (fixed after build).
    pub(crate) fn capacitances_into(&self, c: &mut [f64]) {
        for (&node_idx, cs) in self.slot_to_node.iter().zip(c.iter_mut()) {
            if let NodeKind::Capacitive { capacitance, .. } = self.nodes[node_idx].kind {
                *cs = capacitance;
            }
        }
    }

    /// Writes the power-injection part of the source vector into
    /// `s_power` (invalidated by [`Self::set_power`]).
    pub(crate) fn assemble_power_into(&self, s_power: &mut [f64]) {
        for (&node_idx, sp) in self.slot_to_node.iter().zip(s_power.iter_mut()) {
            *sp = self.powers[node_idx];
        }
    }

    /// Writes the flow-dependent conductance matrix `G` and the
    /// boundary-coupling part of the source vector into the given
    /// buffers (invalidated by [`Self::set_flow`] and
    /// [`Self::set_boundary`]).
    ///
    /// # Panics
    ///
    /// Panics when the buffers are not sized `state_count()`.
    pub(crate) fn assemble_conductance_into(&self, g_mat: &mut Matrix, s_bound: &mut [f64]) {
        assert!(
            g_mat.rows() == s_bound.len() && g_mat.cols() == s_bound.len(),
            "assembly buffers must match the network dimension"
        );
        g_mat.fill(0.0);
        self.assemble_conductance_with(&mut |r, c, v| g_mat.add_to(r, c, v), s_bound);
    }

    /// Generic-sink counterpart of [`Self::assemble_conductance_into`]:
    /// streams the conductance-matrix contributions `(row, col, +=v)` to
    /// `add` (the caller provides storage — dense or CSR) and writes the
    /// boundary-coupling source into `s_bound`. Both the edge order and
    /// the accumulation order are identical to the dense path, so any
    /// storage that accumulates exactly reproduces its values.
    pub(crate) fn assemble_conductance_with(
        &self,
        add: &mut impl FnMut(usize, usize, f64),
        s_bound: &mut [f64],
    ) {
        s_bound.fill(0.0);
        for edge in &self.edges {
            let g = self.edge_conductance(edge);
            if g <= 0.0 {
                continue;
            }
            let ends = [(edge.a, edge.b), (edge.b, edge.a)];
            // For a directed edge only the second endpoint (edge.b)
            // receives heat, i.e. only the (b, a) orientation applies.
            let orientations: &[(usize, usize)] =
                if edge.directed { &ends[1..] } else { &ends[..] };
            for &(receiver, other) in orientations {
                if let NodeKind::Capacitive { slot: rs, .. } = self.nodes[receiver].kind {
                    add(rs, rs, g);
                    match self.nodes[other].kind {
                        NodeKind::Capacitive { slot: os, .. } => {
                            add(rs, os, -g);
                        }
                        NodeKind::Boundary { temp } => {
                            s_bound[rs] += g * temp;
                        }
                    }
                }
            }
        }
    }

    /// Writes only the boundary-coupling source vector into `s_bound`,
    /// skipping matrix assembly. Iterates edges in the same order with
    /// the same accumulation as [`Self::assemble_conductance_with`], so
    /// the result is bit-identical to the `s_bound` that a full assembly
    /// would produce — the batch solver uses this to refresh per-server
    /// sources while sharing one conductance matrix across the fleet.
    pub(crate) fn assemble_boundary_source_into(&self, s_bound: &mut [f64]) {
        s_bound.fill(0.0);
        for edge in &self.edges {
            let g = self.edge_conductance(edge);
            if g <= 0.0 {
                continue;
            }
            let ends = [(edge.a, edge.b), (edge.b, edge.a)];
            let orientations: &[(usize, usize)] =
                if edge.directed { &ends[1..] } else { &ends[..] };
            for &(receiver, other) in orientations {
                if let NodeKind::Capacitive { slot: rs, .. } = self.nodes[receiver].kind {
                    if let NodeKind::Boundary { temp } = self.nodes[other].kind {
                        s_bound[rs] += g * temp;
                    }
                }
            }
        }
    }

    /// Per-slot capacitive neighbour lists (sorted, deduplicated): the
    /// structural sparsity of `G`'s off-diagonal, fixed at build time.
    /// Lets integrators skip structurally-zero couplings instead of
    /// scanning dense rows.
    pub(crate) fn slot_adjacency(&self) -> Vec<Vec<usize>> {
        let n = self.slot_to_node.len();
        let mut nbrs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for edge in &self.edges {
            let ends = [(edge.a, edge.b), (edge.b, edge.a)];
            let orientations: &[(usize, usize)] =
                if edge.directed { &ends[1..] } else { &ends[..] };
            for &(receiver, other) in orientations {
                if let (
                    NodeKind::Capacitive { slot: rs, .. },
                    NodeKind::Capacitive { slot: os, .. },
                ) = (&self.nodes[receiver].kind, &self.nodes[other].kind)
                {
                    nbrs[*rs].push(*os);
                }
            }
        }
        for row in &mut nbrs {
            row.sort_unstable();
            row.dedup();
        }
        nbrs
    }

    /// Assembles the linear system `C·dT/dt = −G·T + s` for the current
    /// inputs. Returns `(G, s, c)` with `c` the per-slot capacitances.
    ///
    /// One-shot allocating variant kept for direct solves
    /// ([`Self::steady_state`]); the stepping hot path caches the split
    /// pieces in a [`TransientSolver`](crate::TransientSolver) instead.
    pub(crate) fn assemble(&self) -> (Matrix, Vec<f64>, Vec<f64>) {
        let n = self.slot_to_node.len();
        let mut g_mat = Matrix::zeros(n, n);
        let mut s = vec![0.0; n];
        let mut s_bound = vec![0.0; n];
        let mut c = vec![0.0; n];
        self.capacitances_into(&mut c);
        self.assemble_power_into(&mut s);
        self.assemble_conductance_into(&mut g_mat, &mut s_bound);
        for (si, sb) in s.iter_mut().zip(&s_bound) {
            *si += *sb;
        }
        (g_mat, s, c)
    }

    /// Directly solves for the steady-state temperatures under the
    /// current powers, boundary temperatures and flows.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::SingularSystem`] when some capacitive node
    /// has no path to a boundary.
    pub fn steady_state(&self) -> Result<ThermalState, ThermalError> {
        let (g_mat, s, _) = self.assemble();
        let temps = g_mat.solve(&s).map_err(|_| ThermalError::SingularSystem)?;
        Ok(ThermalState { temps })
    }

    /// Looks up the slot-to-node mapping (used by the solver for error
    /// reporting).
    pub(crate) fn slot_name(&self, slot: usize) -> &str {
        &self.nodes[self.slot_to_node[slot]].name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> (ThermalNetwork, NodeId, NodeId) {
        let mut b = ThermalNetworkBuilder::new();
        let die = b.add_node("die", ThermalCapacitance::new(100.0));
        let amb = b.add_boundary("ambient", Celsius::new(24.0));
        b.connect(
            die,
            amb,
            Coupling::Conductance(ThermalConductance::new(2.0)),
        )
        .unwrap();
        (b.build().unwrap(), die, amb)
    }

    #[test]
    fn steady_state_single_rc() {
        let (mut net, die, _) = simple();
        net.set_power(die, Watts::new(100.0)).unwrap();
        let ss = net.steady_state().unwrap();
        assert!((net.temperature(&ss, die).degrees() - 74.0).abs() < 1e-9);
    }

    #[test]
    fn boundary_temperature_shifts_steady_state() {
        let (mut net, die, amb) = simple();
        net.set_power(die, Watts::new(50.0)).unwrap();
        net.set_boundary(amb, Celsius::new(30.0)).unwrap();
        let ss = net.steady_state().unwrap();
        assert!((net.temperature(&ss, die).degrees() - 55.0).abs() < 1e-9);
    }

    #[test]
    fn two_node_chain_analytic() {
        // die --g1=4-- sink --g2=2-- ambient(20), P=40 W into die.
        // T_sink = 20 + 40/2 = 40; T_die = 40 + 40/4 = 50.
        let mut b = ThermalNetworkBuilder::new();
        let die = b.add_node("die", ThermalCapacitance::new(50.0));
        let sink = b.add_node("sink", ThermalCapacitance::new(400.0));
        let amb = b.add_boundary("ambient", Celsius::new(20.0));
        b.connect(
            die,
            sink,
            Coupling::Conductance(ThermalConductance::new(4.0)),
        )
        .unwrap();
        b.connect(
            sink,
            amb,
            Coupling::Conductance(ThermalConductance::new(2.0)),
        )
        .unwrap();
        let mut net = b.build().unwrap();
        net.set_power(die, Watts::new(40.0)).unwrap();
        let ss = net.steady_state().unwrap();
        assert!((net.temperature(&ss, sink).degrees() - 40.0).abs() < 1e-9);
        assert!((net.temperature(&ss, die).degrees() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn convective_edge_responds_to_flow() {
        let mut b = ThermalNetworkBuilder::new();
        let die = b.add_node("die", ThermalCapacitance::new(100.0));
        let amb = b.add_boundary("ambient", Celsius::new(24.0));
        let ch = b.add_flow_channel("main");
        let model =
            ConvectionModel::turbulent(ThermalConductance::new(4.0), AirFlow::from_cfm(300.0));
        b.connect(die, amb, Coupling::Convective { channel: ch, model })
            .unwrap();
        let mut net = b.build().unwrap();
        net.set_power(die, Watts::new(80.0)).unwrap();

        net.set_flow(ch, AirFlow::from_cfm(150.0)).unwrap();
        let slow = net.steady_state().unwrap();
        net.set_flow(ch, AirFlow::from_cfm(600.0)).unwrap();
        let fast = net.steady_state().unwrap();
        assert!(
            net.temperature(&fast, die) < net.temperature(&slow, die),
            "more flow must cool the die"
        );
    }

    #[test]
    fn advection_heats_downstream_node() {
        // ambient →(adv) air1 →(adv) air2 ; heater convects into air1.
        let mut b = ThermalNetworkBuilder::new();
        let air1 = b.add_node("air1", ThermalCapacitance::new(10.0));
        let air2 = b.add_node("air2", ThermalCapacitance::new(10.0));
        let amb = b.add_boundary("ambient", Celsius::new(24.0));
        let ch = b.add_flow_channel("duct");
        b.connect_directed(
            amb,
            air1,
            Coupling::Advective {
                channel: ch,
                fraction: 1.0,
            },
        )
        .unwrap();
        b.connect_directed(
            air1,
            air2,
            Coupling::Advective {
                channel: ch,
                fraction: 1.0,
            },
        )
        .unwrap();
        let mut net = b.build().unwrap();
        net.set_flow(ch, AirFlow::new(0.05)).unwrap();
        net.set_power(air1, Watts::new(200.0)).unwrap();
        let ss = net.steady_state().unwrap();
        let t1 = net.temperature(&ss, air1);
        let t2 = net.temperature(&ss, air2);
        // air1 rise = P / (ṁ·cp) = 200 / (0.05·1.184·1006) ≈ 3.36 °C.
        assert!((t1.degrees() - 24.0 - 200.0 / (0.05 * 1.184 * 1006.0)).abs() < 1e-6);
        // Downstream air arrives at air1 temperature and gains nothing.
        assert!((t2.degrees() - t1.degrees()).abs() < 1e-9);
    }

    #[test]
    fn builder_rejects_symmetric_advection() {
        let mut b = ThermalNetworkBuilder::new();
        let a = b.add_node("a", ThermalCapacitance::new(1.0));
        let c = b.add_node("c", ThermalCapacitance::new(1.0));
        let ch = b.add_flow_channel("x");
        let err = b
            .connect(
                a,
                c,
                Coupling::Advective {
                    channel: ch,
                    fraction: 1.0,
                },
            )
            .unwrap_err();
        assert!(matches!(err, ThermalError::InvalidCoupling { .. }));
    }

    #[test]
    fn builder_rejects_self_loops_and_bad_values() {
        let mut b = ThermalNetworkBuilder::new();
        let a = b.add_node("a", ThermalCapacitance::new(1.0));
        let amb = b.add_boundary("amb", Celsius::new(24.0));
        assert!(b
            .connect(a, a, Coupling::Conductance(ThermalConductance::new(1.0)))
            .is_err());
        assert!(b
            .connect(a, amb, Coupling::Conductance(ThermalConductance::ZERO))
            .is_err());
        let ch = b.add_flow_channel("x");
        assert!(
            b.connect_directed(
                a,
                amb,
                Coupling::Advective {
                    channel: ch,
                    fraction: 1.0
                }
            )
            .is_err(),
            "directed into boundary is rejected"
        );
        assert!(
            b.connect_directed(
                amb,
                a,
                Coupling::Advective {
                    channel: ch,
                    fraction: 0.0
                }
            )
            .is_err(),
            "zero fraction rejected"
        );
        assert!(
            b.connect_directed(
                amb,
                a,
                Coupling::Advective {
                    channel: ch,
                    fraction: 1.5
                }
            )
            .is_err(),
            "fraction > 1 rejected"
        );
    }

    #[test]
    fn builder_rejects_foreign_ids() {
        let mut other = ThermalNetworkBuilder::new();
        let foreign = other.add_node("x", ThermalCapacitance::new(1.0));
        let foreign_far = {
            let mut big = ThermalNetworkBuilder::new();
            for i in 0..10 {
                big.add_node(&format!("n{i}"), ThermalCapacitance::new(1.0));
            }
            NodeId(9)
        };
        let mut b = ThermalNetworkBuilder::new();
        let a = b.add_node("a", ThermalCapacitance::new(1.0));
        assert!(b
            .connect(
                a,
                foreign_far,
                Coupling::Conductance(ThermalConductance::new(1.0))
            )
            .is_err());
        let _ = foreign;
    }

    #[test]
    fn build_requires_capacitive_node() {
        let mut b = ThermalNetworkBuilder::new();
        b.add_boundary("amb", Celsius::new(24.0));
        assert!(matches!(b.build(), Err(ThermalError::NoCapacitiveNodes)));
    }

    #[test]
    fn build_rejects_nonpositive_capacitance() {
        let mut b = ThermalNetworkBuilder::new();
        b.add_node("bad", ThermalCapacitance::ZERO);
        assert!(matches!(
            b.build(),
            Err(ThermalError::InvalidCapacitance { .. })
        ));
    }

    #[test]
    fn isolated_node_is_singular() {
        let mut b = ThermalNetworkBuilder::new();
        b.add_node("floating", ThermalCapacitance::new(1.0));
        let net = b.build().unwrap();
        assert!(matches!(
            net.steady_state(),
            Err(ThermalError::SingularSystem)
        ));
    }

    #[test]
    fn power_bookkeeping() {
        let (mut net, die, amb) = simple();
        assert_eq!(net.power(die), Watts::ZERO);
        net.set_power(die, Watts::new(55.0)).unwrap();
        assert_eq!(net.power(die), Watts::new(55.0));
        assert_eq!(net.total_power(), Watts::new(55.0));
        assert!(net.set_power(amb, Watts::new(1.0)).is_err());
        assert!(net.set_power(NodeId(99), Watts::new(1.0)).is_err());
    }

    #[test]
    fn node_metadata() {
        let (net, die, amb) = simple();
        assert_eq!(net.name(die), "die");
        assert!(!net.is_boundary(die));
        assert!(net.is_boundary(amb));
        assert_eq!(net.node_count(), 2);
        assert_eq!(net.state_count(), 1);
    }

    #[test]
    fn uniform_state_reads_back() {
        let (net, die, _) = simple();
        let st = net.uniform_state(Celsius::new(24.0));
        assert_eq!(net.temperature(&st, die), Celsius::new(24.0));
        assert_eq!(st.len(), 1);
        assert!(!st.is_empty());
        assert!(st.is_finite());
        assert_eq!(st.max_temperature(), Celsius::new(24.0));
    }

    #[test]
    fn set_boundary_rejects_capacitive() {
        let (mut net, die, _) = simple();
        assert!(net.set_boundary(die, Celsius::new(30.0)).is_err());
    }

    #[test]
    fn negative_flow_clamps_to_zero() {
        let mut b = ThermalNetworkBuilder::new();
        let _ = b.add_node("n", ThermalCapacitance::new(1.0));
        let ch = b.add_flow_channel("duct");
        let mut net = b.build().unwrap();
        net.set_flow(ch, AirFlow::new(-5.0)).unwrap();
        assert_eq!(net.flow(ch), AirFlow::ZERO);
        assert!(net.set_flow(FlowChannelId(4), AirFlow::ZERO).is_err());
    }
}
