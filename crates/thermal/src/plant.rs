//! Building-scale chilled-water plant: finite chiller capacity, an
//! outdoor-temperature-dependent COP, and a waterside-economizer
//! (free-cooling) mode.
//!
//! The plant sits above the per-room CRAH units: every room rejects its
//! heat into one shared chilled-water loop, and the loop's state decides
//! (a) how much cooling capacity each room actually receives — the
//! *delivered fraction* derates every CRAH uniformly when the plant is
//! oversubscribed — and (b) the coldest air the CRAHs can supply, as the
//! chilled-water temperature plus an air-side approach.
//!
//! The model is deliberately algebraic (no plant-side thermal mass):
//! [`ChilledWaterLoop::update`] is called once per simulation step from
//! the building's *serial* phase, so trajectories stay bit-identical for
//! any room-sharding thread plan.
//!
//! Faults are explicit knobs rather than hidden state: chiller
//! availability (derate/outage), a chilled-water supply-temperature
//! excursion, and the outdoor temperature itself (heat wave), which both
//! derates the mechanical chiller and locks out the economizer.

use crate::error::ThermalError;
use leakctl_units::{Celsius, Joules, SimDuration, Watts};

/// Design parameters for a [`ChilledWaterLoop`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChilledWaterSpec {
    /// Rated heat-rejection capacity of the mechanical chiller, in watts.
    pub capacity: Watts,
    /// Design chilled-water supply temperature (typ. ~7 °C).
    pub supply_setpoint: Celsius,
    /// Outdoor temperature at which `design_cop` is quoted.
    pub design_outdoor: Celsius,
    /// Chiller COP at `design_outdoor` (heat removed per unit electricity).
    pub design_cop: f64,
    /// Fractional COP loss per °C of outdoor temperature above
    /// `design_outdoor` (condenser lift penalty). Outdoor temperatures
    /// *below* design improve the COP by the same slope.
    pub cop_outdoor_slope: f64,
    /// Fractional capacity loss per °C of outdoor temperature above
    /// `design_outdoor` (hot condensers also shrink capacity).
    pub capacity_outdoor_slope: f64,
    /// Outdoor temperature at or below which the waterside economizer
    /// carries the load instead of the mechanical chiller.
    pub economizer_threshold: Celsius,
    /// Effective COP in economizer mode (pumps and dry-cooler fans only;
    /// much higher than any mechanical COP).
    pub economizer_cop: f64,
}

impl Default for ChilledWaterSpec {
    fn default() -> Self {
        Self {
            capacity: Watts::new(250e3),
            supply_setpoint: Celsius::new(7.0),
            design_outdoor: Celsius::new(20.0),
            design_cop: 4.5,
            cop_outdoor_slope: 0.02,
            capacity_outdoor_slope: 0.008,
            economizer_threshold: Celsius::new(10.0),
            economizer_cop: 12.0,
        }
    }
}

impl ChilledWaterSpec {
    /// Validates the spec.
    pub fn validate(&self) -> Result<(), ThermalError> {
        let bad = |what| Err(ThermalError::InvalidPlant { what });
        if !(self.capacity.value().is_finite() && self.capacity.value() > 0.0) {
            return bad("capacity must be finite and positive");
        }
        if !self.supply_setpoint.is_finite() {
            return bad("supply setpoint must be finite");
        }
        if !self.design_outdoor.is_finite() {
            return bad("design outdoor temperature must be finite");
        }
        if !(self.design_cop.is_finite() && self.design_cop > 0.0) {
            return bad("design COP must be finite and positive");
        }
        if !(self.cop_outdoor_slope.is_finite() && self.cop_outdoor_slope >= 0.0) {
            return bad("COP outdoor slope must be finite and non-negative");
        }
        if !(self.capacity_outdoor_slope.is_finite() && self.capacity_outdoor_slope >= 0.0) {
            return bad("capacity outdoor slope must be finite and non-negative");
        }
        if !self.economizer_threshold.is_finite() {
            return bad("economizer threshold must be finite");
        }
        if !(self.economizer_cop.is_finite() && self.economizer_cop > 0.0) {
            return bad("economizer COP must be finite and positive");
        }
        Ok(())
    }
}

/// Minimum COP the mechanical chiller degrades to under extreme outdoor
/// temperatures (keeps the electricity accounting finite).
const MIN_MECHANICAL_COP: f64 = 0.5;

/// Minimum capacity fraction the outdoor derate can impose; a heat wave
/// shrinks the chiller, it does not switch it off.
const MIN_OUTDOOR_CAPACITY_FACTOR: f64 = 0.2;

/// A shared chilled-water plant feeding many rooms.
///
/// Call [`set_outdoor`](Self::set_outdoor) /
/// [`set_chiller_availability`](Self::set_chiller_availability) /
/// [`set_supply_excursion`](Self::set_supply_excursion) to script faults,
/// then [`update`](Self::update) once per step with the building's heat
/// load. The derived state — [`delivered_fraction`](Self::delivered_fraction),
/// [`cop`](Self::cop), [`chw_supply`](Self::chw_supply),
/// [`economizer_active`](Self::economizer_active) — is what the building
/// propagates back into its rooms.
#[derive(Debug, Clone, PartialEq)]
pub struct ChilledWaterLoop {
    spec: ChilledWaterSpec,
    outdoor: Celsius,
    /// Fault knob: fraction of the mechanical chiller still available
    /// (1 = healthy, 0 = outage).
    chiller_availability: f64,
    /// Fault knob: °C added to the delivered chilled-water temperature.
    supply_excursion: f64,
    // Derived per update().
    demand: Watts,
    available: Watts,
    delivered_fraction: f64,
    economizer_active: bool,
    cop: f64,
    energy: Joules,
    peak_demand: Watts,
    overload_time: SimDuration,
    accounted: SimDuration,
}

impl ChilledWaterLoop {
    /// Builds a plant from a validated spec, starting at the design
    /// outdoor temperature with a healthy chiller.
    pub fn new(spec: ChilledWaterSpec) -> Result<Self, ThermalError> {
        spec.validate()?;
        let mut plant = Self {
            spec,
            outdoor: spec.design_outdoor,
            chiller_availability: 1.0,
            supply_excursion: 0.0,
            demand: Watts::ZERO,
            available: spec.capacity,
            delivered_fraction: 1.0,
            economizer_active: false,
            cop: spec.design_cop,
            energy: Joules::ZERO,
            peak_demand: Watts::ZERO,
            overload_time: SimDuration::ZERO,
            accounted: SimDuration::ZERO,
        };
        plant.refresh(Watts::ZERO);
        Ok(plant)
    }

    /// The design parameters this plant was built from.
    pub fn spec(&self) -> &ChilledWaterSpec {
        &self.spec
    }

    /// Sets the outdoor (condenser / economizer inlet) temperature.
    pub fn set_outdoor(&mut self, outdoor: Celsius) -> Result<(), ThermalError> {
        if !outdoor.is_finite() {
            return Err(ThermalError::InvalidPlant {
                what: "outdoor temperature must be finite",
            });
        }
        self.outdoor = outdoor;
        self.refresh(self.demand);
        Ok(())
    }

    /// Sets the fraction of the mechanical chiller that is available
    /// (1 = healthy, 0 = outage). Values must lie in `[0, 1]`.
    pub fn set_chiller_availability(&mut self, fraction: f64) -> Result<(), ThermalError> {
        if !(fraction.is_finite() && (0.0..=1.0).contains(&fraction)) {
            return Err(ThermalError::InvalidPlant {
                what: "chiller availability must lie in [0, 1]",
            });
        }
        self.chiller_availability = fraction;
        self.refresh(self.demand);
        Ok(())
    }

    /// Sets a chilled-water supply-temperature excursion in °C above the
    /// design setpoint (0 = nominal). Must be finite and non-negative.
    pub fn set_supply_excursion(&mut self, excursion: f64) -> Result<(), ThermalError> {
        if !(excursion.is_finite() && excursion >= 0.0) {
            return Err(ThermalError::InvalidPlant {
                what: "supply excursion must be finite and non-negative",
            });
        }
        self.supply_excursion = excursion;
        Ok(())
    }

    /// Recomputes the derived operating point for `demand`.
    fn refresh(&mut self, demand: Watts) {
        self.demand = demand;
        self.economizer_active = self.outdoor.degrees() <= self.spec.economizer_threshold.degrees();
        let lift = (self.outdoor.degrees() - self.spec.design_outdoor.degrees()).max(0.0);
        if self.economizer_active {
            // Free cooling: the dry coolers are sized for the full rated
            // load and do not depend on the chiller.
            self.cop = self.spec.economizer_cop;
            self.available = self.spec.capacity;
        } else {
            self.cop = (self.spec.design_cop * (1.0 - self.spec.cop_outdoor_slope * lift))
                .max(MIN_MECHANICAL_COP);
            let derate =
                (1.0 - self.spec.capacity_outdoor_slope * lift).max(MIN_OUTDOOR_CAPACITY_FACTOR);
            self.available =
                Watts::new(self.spec.capacity.value() * self.chiller_availability * derate);
        }
        self.delivered_fraction = Self::fraction(demand, self.available);
    }

    fn fraction(demand: Watts, available: Watts) -> f64 {
        if demand.value() <= available.value() || demand.value() <= 0.0 {
            1.0
        } else {
            (available.value() / demand.value()).max(0.0)
        }
    }

    /// Advances the plant one step: `demand` is the heat the building
    /// needs rejected (its IT power), `removed` the heat the room CRAHs
    /// actually extracted this step (what the loop must lift outdoors).
    /// Electricity use accrues as `removed / cop`.
    pub fn update(&mut self, demand: Watts, removed: Watts, dt: SimDuration) {
        self.refresh(demand);
        self.peak_demand = self.peak_demand.max(demand);
        if self.delivered_fraction < 1.0 {
            self.overload_time += dt;
        }
        let electricity = Watts::new((removed.value() / self.cop).max(0.0));
        self.energy += electricity * dt;
        self.accounted += dt;
    }

    /// Current outdoor temperature.
    pub fn outdoor(&self) -> Celsius {
        self.outdoor
    }

    /// Current chiller availability fraction.
    pub fn chiller_availability(&self) -> f64 {
        self.chiller_availability
    }

    /// Current chilled-water supply excursion in °C above design.
    pub fn supply_excursion(&self) -> f64 {
        self.supply_excursion
    }

    /// Delivered chilled-water supply temperature (design setpoint plus
    /// any scripted excursion).
    pub fn chw_supply(&self) -> Celsius {
        Celsius::new(self.spec.supply_setpoint.degrees() + self.supply_excursion)
    }

    /// Heat load the building asked to reject at the last update.
    pub fn demand(&self) -> Watts {
        self.demand
    }

    /// Fraction of the demanded cooling the plant can deliver
    /// (1 = fully served; < 1 = oversubscribed, every room's CRAH
    /// capacity is derated by this factor).
    pub fn delivered_fraction(&self) -> f64 {
        self.delivered_fraction
    }

    /// Demand over available capacity at the last update (> 1 when the
    /// plant is oversubscribed; 0 when idle).
    pub fn oversubscription(&self) -> f64 {
        if self.delivered_fraction > 0.0 {
            1.0 / self.delivered_fraction
        } else {
            f64::INFINITY
        }
    }

    /// Cooling capacity currently available (rated capacity after
    /// chiller availability and outdoor derate; full rated capacity in
    /// economizer mode).
    pub fn available_capacity(&self) -> Watts {
        self.available
    }

    /// Demand over available capacity, *not* saturated at 1 — shows
    /// headroom (< 1) as well as oversubscription (> 1). Infinite when
    /// there is demand against zero capacity, zero when idle.
    pub fn utilization(&self) -> f64 {
        if self.demand.value() <= 0.0 {
            0.0
        } else if self.available.value() > 0.0 {
            self.demand.value() / self.available.value()
        } else {
            f64::INFINITY
        }
    }

    /// Whether the waterside economizer is carrying the load.
    pub fn economizer_active(&self) -> bool {
        self.economizer_active
    }

    /// Current coefficient of performance (heat removed per unit
    /// electricity) including outdoor derate or economizer mode.
    pub fn cop(&self) -> f64 {
        self.cop
    }

    /// Cumulative plant electricity since construction (or the last
    /// [`reset_accounting`](Self::reset_accounting)).
    pub fn energy(&self) -> Joules {
        self.energy
    }

    /// Highest demand seen by [`update`](Self::update).
    pub fn peak_demand(&self) -> Watts {
        self.peak_demand
    }

    /// Total time the plant spent oversubscribed.
    pub fn overload_time(&self) -> SimDuration {
        self.overload_time
    }

    /// Simulated time accounted by [`update`](Self::update).
    pub fn accounted_time(&self) -> SimDuration {
        self.accounted
    }

    /// Clears the energy / peak / overload accumulators (keeps the
    /// operating point and fault knobs).
    pub fn reset_accounting(&mut self) {
        self.energy = Joules::ZERO;
        self.peak_demand = Watts::ZERO;
        self.overload_time = SimDuration::ZERO;
        self.accounted = SimDuration::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plant() -> ChilledWaterLoop {
        ChilledWaterLoop::new(ChilledWaterSpec::default()).expect("default spec is valid")
    }

    #[test]
    fn healthy_plant_serves_full_demand() {
        let mut p = plant();
        p.update(
            Watts::new(100e3),
            Watts::new(100e3),
            SimDuration::from_secs(1),
        );
        assert_eq!(p.delivered_fraction(), 1.0);
        assert!(!p.economizer_active());
        assert!((p.cop() - 4.5).abs() < 1e-12);
        assert!(p.energy().value() > 0.0);
    }

    #[test]
    fn chiller_outage_derates_delivery() {
        let mut p = plant();
        p.set_chiller_availability(0.25).expect("valid fraction");
        p.update(
            Watts::new(200e3),
            Watts::new(200e3),
            SimDuration::from_secs(1),
        );
        // Available: 250 kW * 0.25 = 62.5 kW against 200 kW demand.
        assert!((p.delivered_fraction() - 0.3125).abs() < 1e-12);
        assert!(p.oversubscription() > 3.0);
        assert_eq!(p.overload_time(), SimDuration::from_secs(1));
    }

    #[test]
    fn economizer_engages_below_threshold_and_ignores_chiller() {
        let mut p = plant();
        p.set_outdoor(Celsius::new(5.0)).expect("finite");
        p.set_chiller_availability(0.0).expect("valid fraction");
        p.update(
            Watts::new(100e3),
            Watts::new(100e3),
            SimDuration::from_secs(1),
        );
        assert!(p.economizer_active());
        assert_eq!(p.delivered_fraction(), 1.0);
        assert!((p.cop() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn heat_wave_locks_out_economizer_and_derates() {
        let mut p = plant();
        p.set_outdoor(Celsius::new(38.0)).expect("finite");
        p.update(
            Watts::new(240e3),
            Watts::new(240e3),
            SimDuration::from_secs(1),
        );
        assert!(!p.economizer_active());
        // COP: 4.5 * (1 - 0.02*18) = 2.88; capacity: 250 kW * (1 - 0.008*18).
        assert!((p.cop() - 2.88).abs() < 1e-12);
        assert!(p.delivered_fraction() < 1.0);
    }

    #[test]
    fn excursion_raises_chw_supply() {
        let mut p = plant();
        assert!((p.chw_supply().degrees() - 7.0).abs() < 1e-12);
        p.set_supply_excursion(8.0).expect("valid excursion");
        assert!((p.chw_supply().degrees() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn fault_knobs_reject_junk() {
        let mut p = plant();
        assert!(p.set_chiller_availability(f64::NAN).is_err());
        assert!(p.set_chiller_availability(1.5).is_err());
        assert!(p.set_supply_excursion(-1.0).is_err());
        assert!(p.set_outdoor(Celsius::new(f64::INFINITY)).is_err());
        let bad = ChilledWaterSpec {
            capacity: Watts::new(0.0),
            ..ChilledWaterSpec::default()
        };
        assert!(ChilledWaterLoop::new(bad).is_err());
    }

    #[test]
    fn checkpoint_clone_round_trips() {
        let mut p = plant();
        p.set_outdoor(Celsius::new(30.0)).expect("finite");
        p.update(
            Watts::new(150e3),
            Watts::new(140e3),
            SimDuration::from_secs(5),
        );
        let snap = p.clone();
        p.update(
            Watts::new(150e3),
            Watts::new(140e3),
            SimDuration::from_secs(5),
        );
        assert_ne!(p, snap);
        p = snap.clone();
        assert_eq!(p, snap);
    }
}
