//! Pluggable linear-algebra backends for the transient stepping engine.
//!
//! [`TransientSolver`](crate::TransientSolver) is generic over a
//! [`SolverBackend`] that owns the conductance-matrix storage and the
//! factorizations of `(C + h·G)` (backward Euler) and `G` (steady
//! state). Two concrete backends cover the scale range:
//!
//! - [`DenseBackend`] — the original dense-`Matrix` + partial-pivoting
//!   LU path, bit-for-bit identical to the pre-backend solver. Right
//!   for single-server networks (tens of nodes).
//! - [`CsrBackend`] — CSR storage with a no-pivot sparse LU whose
//!   symbolic analysis is computed once per topology and cached; numeric
//!   refactorization is keyed on `(dt, flow)` by the solver exactly like
//!   the dense cache. Right for rack- and room-scale networks (hundreds
//!   of nodes), where dense factorization and even dense
//!   back-substitution are dominated by structural zeros.
//! - [`AutoBackend`] — picks between them at construction from the
//!   network's node count ([`CSR_NODE_THRESHOLD`]).
//!
//! The backend only owns *matrix-shaped* state. Assembly inputs, cache
//! keys and source vectors stay in the solver, so every backend sees
//! the identical invalidation protocol.

use crate::error::ThermalError;
use crate::linalg::{LuFactors, Matrix};
use crate::network::ThermalNetwork;
use crate::sparse::{CsrLu, CsrLuSymbolic, CsrMatrix};

/// Node count at and above which [`AutoBackend`] switches from dense to
/// CSR storage. Single-server networks (9–15 nodes) stay dense — and
/// therefore bit-identical to the historical solver — while rack-scale
/// coupled networks go sparse.
pub const CSR_NODE_THRESHOLD: usize = 64;

/// Matrix storage + factorization engine behind a
/// [`TransientSolver`](crate::TransientSolver).
///
/// Implementations hold the flow-dependent conductance matrix `G`, the
/// backward-Euler operator `(C + h·G)` with its factorization, and the
/// steady-state factorization of `G`. The solver drives assembly and
/// decides *when* to (re)factor; backends only compute.
pub trait SolverBackend {
    /// Builds backend storage sized and patterned for `net`.
    fn build(net: &ThermalNetwork) -> Self;

    /// Reassembles `G` and the boundary source from the network's
    /// current flows and boundary temperatures.
    fn assemble_conductance(&mut self, net: &ThermalNetwork, s_bound: &mut [f64]);

    /// Dense or sparse product `y = G·x`.
    fn mul_g_into(&self, x: &[f64], y: &mut [f64]);

    /// Diagonal entry `G[i][i]`.
    fn g_diag(&self, i: usize) -> f64;

    /// Visits the structural off-diagonal entries of row `i` of `G` in
    /// ascending column order.
    fn g_offdiag_row<F: FnMut(usize, f64)>(&self, i: usize, visit: F);

    /// Factors the backward-Euler operator `(C + h·G)` from the current
    /// `G` assembly.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::SingularSystem`] when the factorization
    /// fails; the backend then holds no valid BE factors.
    fn factor_be(&mut self, c: &[f64], h: f64) -> Result<(), ThermalError>;

    /// Solves `(C + h·G)·x = rhs` with the cached BE factors.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::SingularSystem`] when no valid factors
    /// are held.
    fn solve_be_into(&self, rhs: &[f64], x: &mut [f64]) -> Result<(), ThermalError>;

    /// Solves `(C + h·G)·X = B` for a slot-major block of `batch`
    /// right-hand sides (`rhs[slot * batch + lane]`, likewise `x`),
    /// using `acc` (length ≥ `batch`) as the accumulation workspace.
    /// Each lane's arithmetic order matches [`Self::solve_be_into`]
    /// exactly, so a one-lane block is bit-identical to the scalar
    /// solve.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::SingularSystem`] when no valid factors
    /// are held.
    fn solve_be_block_into(
        &self,
        rhs: &[f64],
        x: &mut [f64],
        batch: usize,
        acc: &mut [f64],
    ) -> Result<(), ThermalError>;

    /// Factors `G` itself for direct steady-state solves.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::SingularSystem`] when `G` is singular
    /// (some capacitive node has no path to a boundary).
    fn factor_steady(&mut self) -> Result<(), ThermalError>;

    /// Solves `G·x = s` with the cached steady-state factors.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::SingularSystem`] when no valid factors
    /// are held.
    fn solve_steady_into(&self, s: &[f64], x: &mut [f64]) -> Result<(), ThermalError>;

    /// `true` when the backend uses sparse storage (diagnostics only).
    fn is_sparse(&self) -> bool;
}

/// The dense path: row-major [`Matrix`] storage with partial-pivoting
/// LU — bit-identical to the solver before backends existed.
#[derive(Debug, Clone)]
pub struct DenseBackend {
    g: Matrix,
    /// Backward-Euler operator build workspace.
    be_m: Matrix,
    be_lu: Option<LuFactors>,
    ss_lu: Option<LuFactors>,
    /// Structural off-diagonal sparsity (per-slot neighbour lists),
    /// fixed at build — lets the exponential integrator skip
    /// structurally-zero couplings in dense storage.
    nbr_offsets: Vec<usize>,
    nbr_cols: Vec<usize>,
}

impl SolverBackend for DenseBackend {
    fn build(net: &ThermalNetwork) -> Self {
        let n = net.state_count();
        let nbrs = net.slot_adjacency();
        let mut nbr_offsets = Vec::with_capacity(n + 1);
        let mut nbr_cols = Vec::new();
        nbr_offsets.push(0);
        for row in &nbrs {
            nbr_cols.extend_from_slice(row);
            nbr_offsets.push(nbr_cols.len());
        }
        Self {
            g: Matrix::zeros(n, n),
            be_m: Matrix::zeros(n, n),
            be_lu: None,
            ss_lu: None,
            nbr_offsets,
            nbr_cols,
        }
    }

    fn assemble_conductance(&mut self, net: &ThermalNetwork, s_bound: &mut [f64]) {
        net.assemble_conductance_into(&mut self.g, s_bound);
    }

    fn mul_g_into(&self, x: &[f64], y: &mut [f64]) {
        if let Err(e) = self.g.mul_vec_into(x, y) {
            unreachable!("assembly produces consistent dimensions: {e}");
        }
    }

    fn g_diag(&self, i: usize) -> f64 {
        self.g.get(i, i)
    }

    fn g_offdiag_row<F: FnMut(usize, f64)>(&self, i: usize, mut visit: F) {
        for &j in &self.nbr_cols[self.nbr_offsets[i]..self.nbr_offsets[i + 1]] {
            visit(j, self.g.get(i, j));
        }
    }

    fn factor_be(&mut self, c: &[f64], h: f64) -> Result<(), ThermalError> {
        let n = c.len();
        for (r, &cr) in c.iter().enumerate() {
            for col in 0..n {
                let mut v = h * self.g.get(r, col);
                if r == col {
                    v += cr;
                }
                self.be_m.set(r, col, v);
            }
        }
        let factored = if let Some(factors) = self.be_lu.as_mut() {
            self.be_m.lu_into(factors)
        } else {
            self.be_m.lu().map(|factors| {
                self.be_lu = Some(factors);
            })
        };
        if factored.is_err() {
            self.be_lu = None;
            return Err(ThermalError::SingularSystem);
        }
        Ok(())
    }

    fn solve_be_into(&self, rhs: &[f64], x: &mut [f64]) -> Result<(), ThermalError> {
        self.be_lu
            .as_ref()
            .ok_or(ThermalError::SingularSystem)?
            .solve_into(rhs, x)
            .map_err(|_| ThermalError::SingularSystem)
    }

    fn solve_be_block_into(
        &self,
        rhs: &[f64],
        x: &mut [f64],
        batch: usize,
        acc: &mut [f64],
    ) -> Result<(), ThermalError> {
        self.be_lu
            .as_ref()
            .ok_or(ThermalError::SingularSystem)?
            .solve_block_into(rhs, x, batch, acc)
            .map_err(|_| ThermalError::SingularSystem)
    }

    fn factor_steady(&mut self) -> Result<(), ThermalError> {
        let factored = if let Some(factors) = self.ss_lu.as_mut() {
            self.g.lu_into(factors)
        } else {
            self.g.lu().map(|factors| {
                self.ss_lu = Some(factors);
            })
        };
        if factored.is_err() {
            self.ss_lu = None;
            return Err(ThermalError::SingularSystem);
        }
        Ok(())
    }

    fn solve_steady_into(&self, s: &[f64], x: &mut [f64]) -> Result<(), ThermalError> {
        self.ss_lu
            .as_ref()
            .ok_or(ThermalError::SingularSystem)?
            .solve_into(s, x)
            .map_err(|_| ThermalError::SingularSystem)
    }

    fn is_sparse(&self) -> bool {
        false
    }
}

/// The sparse path: [`CsrMatrix`] storage for `G` and `(C + h·G)` with a
/// shared cached symbolic analysis and no-pivot numeric LU
/// refactorizations.
#[derive(Debug, Clone)]
pub struct CsrBackend {
    g: CsrMatrix,
    be_m: CsrMatrix,
    be_lu: CsrLu,
    ss_lu: CsrLu,
}

impl SolverBackend for CsrBackend {
    fn build(net: &ThermalNetwork) -> Self {
        let n = net.state_count();
        let g = CsrMatrix::from_adjacency(n, &net.slot_adjacency());
        // `(C + h·G)` shares G's pattern (the diagonal is structural in
        // both), so one symbolic analysis serves both factorizations.
        let symbolic = CsrLuSymbolic::analyze(&g);
        let be_m = g.clone();
        Self {
            g,
            be_m,
            be_lu: CsrLu::new(symbolic.clone()),
            ss_lu: CsrLu::new(symbolic),
        }
    }

    fn assemble_conductance(&mut self, net: &ThermalNetwork, s_bound: &mut [f64]) {
        self.g.fill_zero();
        let g = &mut self.g;
        net.assemble_conductance_with(&mut |r, c, v| g.add_to(r, c, v), s_bound);
    }

    fn mul_g_into(&self, x: &[f64], y: &mut [f64]) {
        self.g.mul_vec_into(x, y);
    }

    fn g_diag(&self, i: usize) -> f64 {
        self.g.get(i, i)
    }

    fn g_offdiag_row<F: FnMut(usize, f64)>(&self, i: usize, mut visit: F) {
        for (&j, &v) in self.g.row_cols(i).iter().zip(self.g.row_vals(i)) {
            if j != i {
                visit(j, v);
            }
        }
    }

    fn factor_be(&mut self, c: &[f64], h: f64) -> Result<(), ThermalError> {
        self.be_m.assign_be_operator(&self.g, h, c);
        self.be_lu
            .refactor(&self.be_m)
            .map_err(|_| ThermalError::SingularSystem)
    }

    fn solve_be_into(&self, rhs: &[f64], x: &mut [f64]) -> Result<(), ThermalError> {
        self.be_lu
            .solve_into(rhs, x)
            .map_err(|_| ThermalError::SingularSystem)
    }

    fn solve_be_block_into(
        &self,
        rhs: &[f64],
        x: &mut [f64],
        batch: usize,
        acc: &mut [f64],
    ) -> Result<(), ThermalError> {
        self.be_lu
            .solve_block_into(rhs, x, batch, acc)
            .map_err(|_| ThermalError::SingularSystem)
    }

    fn factor_steady(&mut self) -> Result<(), ThermalError> {
        self.ss_lu
            .refactor(&self.g)
            .map_err(|_| ThermalError::SingularSystem)
    }

    fn solve_steady_into(&self, s: &[f64], x: &mut [f64]) -> Result<(), ThermalError> {
        self.ss_lu
            .solve_into(s, x)
            .map_err(|_| ThermalError::SingularSystem)
    }

    fn is_sparse(&self) -> bool {
        true
    }
}

/// Size-dispatching backend: dense below [`CSR_NODE_THRESHOLD`] state
/// nodes, CSR at or above it. The default backend of
/// [`TransientSolver`](crate::TransientSolver) — single-server networks
/// keep the historical bit-exact dense path while rack-scale networks
/// transparently go sparse.
#[derive(Debug, Clone)]
pub enum AutoBackend {
    /// Dense storage (small networks).
    Dense(DenseBackend),
    /// CSR storage (rack/room-scale networks).
    Csr(CsrBackend),
}

macro_rules! auto_dispatch {
    ($self:ident, $b:ident => $body:expr) => {
        match $self {
            AutoBackend::Dense($b) => $body,
            AutoBackend::Csr($b) => $body,
        }
    };
}

impl SolverBackend for AutoBackend {
    fn build(net: &ThermalNetwork) -> Self {
        if net.state_count() >= CSR_NODE_THRESHOLD {
            Self::Csr(CsrBackend::build(net))
        } else {
            Self::Dense(DenseBackend::build(net))
        }
    }

    fn assemble_conductance(&mut self, net: &ThermalNetwork, s_bound: &mut [f64]) {
        auto_dispatch!(self, b => b.assemble_conductance(net, s_bound));
    }

    fn mul_g_into(&self, x: &[f64], y: &mut [f64]) {
        auto_dispatch!(self, b => b.mul_g_into(x, y));
    }

    fn g_diag(&self, i: usize) -> f64 {
        auto_dispatch!(self, b => b.g_diag(i))
    }

    fn g_offdiag_row<F: FnMut(usize, f64)>(&self, i: usize, visit: F) {
        auto_dispatch!(self, b => b.g_offdiag_row(i, visit));
    }

    fn factor_be(&mut self, c: &[f64], h: f64) -> Result<(), ThermalError> {
        auto_dispatch!(self, b => b.factor_be(c, h))
    }

    fn solve_be_into(&self, rhs: &[f64], x: &mut [f64]) -> Result<(), ThermalError> {
        auto_dispatch!(self, b => b.solve_be_into(rhs, x))
    }

    fn solve_be_block_into(
        &self,
        rhs: &[f64],
        x: &mut [f64],
        batch: usize,
        acc: &mut [f64],
    ) -> Result<(), ThermalError> {
        auto_dispatch!(self, b => b.solve_be_block_into(rhs, x, batch, acc))
    }

    fn factor_steady(&mut self) -> Result<(), ThermalError> {
        auto_dispatch!(self, b => b.factor_steady())
    }

    fn solve_steady_into(&self, s: &[f64], x: &mut [f64]) -> Result<(), ThermalError> {
        auto_dispatch!(self, b => b.solve_steady_into(s, x))
    }

    fn is_sparse(&self) -> bool {
        auto_dispatch!(self, b => b.is_sparse())
    }
}
