//! Room-scale CFD-lite: a machine room as a coarse network of coupled
//! air volumes.
//!
//! [`RoomAirModel`] assembles CRAH supply, an under-floor plenum, per-
//! rack cold/hot aisle volumes and a hot-aisle return into one sparse
//! [`ThermalNetwork`] solved by the existing solver backends (the
//! [`AutoBackend`](crate::AutoBackend) picks the CSR path once the room
//! crosses [`CSR_NODE_THRESHOLD`](crate::CSR_NODE_THRESHOLD) nodes).
//! The airflow bookkeeping follows the coarse air-volume room models of
//! the thermal-aware data-center control literature (Van Damme et al.;
//! Ogura et al.): per rack `r` with through-flow `q_r` and
//! recirculation fraction `β`,
//!
//! ```text
//!            (1−β)·Σq        (1−β)·q_r
//!  CRAH ────────────► plenum ──────────► cold_r ──q_r──► hot_r
//!   ▲                                      ▲               │
//!   │            β·q_r (hot-aisle recirculation)           │
//!   │                                      └───────────────┤
//!   └───────────────── return ◄────────────(1−β)·q_r ──────┘
//! ```
//!
//! so the cold aisle mixes `(1−β)` supply air with `β` hot-aisle air,
//! the rack heats its full through-flow, and `(1−β)·Σq` returns to the
//! CRAH. The scheme conserves energy *exactly* at steady state: the
//! CRAH heat extraction `(1−β)·Σq·ρ·c_p·(T_return − T_supply)` equals
//! the total rack power for any recirculation fraction and any tile
//! split (pinned by this module's tests).
//!
//! Rack servers couple through two runtime inputs: rack power is
//! injected into the hot-aisle node
//! ([`RoomAirModel::set_rack_power`]) and the cold-aisle temperature
//! ([`RoomAirModel::cold_aisle_temperature`]) becomes the rack's inlet
//! boundary — replacing the scalar `T_inlet = T_room + r·P`
//! approximation. Tile flows are per-rack runtime channels
//! ([`RoomAirModel::set_tile_flow`]), so tile-flow balancing and CRAH
//! set-point control ([`RoomAirModel::set_supply`]) are both live
//! control surfaces, not rebuild parameters.

use leakctl_units::{AirFlow, Celsius, SimDuration, ThermalCapacitance, Watts};

use crate::error::ThermalError;
use crate::network::{Coupling, FlowChannelId, NodeId, ThermalNetwork, ThermalNetworkBuilder};
use crate::solver::Integrator;
use crate::stepper::TransientSolver;
use crate::{ThermalState, AIR_DENSITY, AIR_SPECIFIC_HEAT};

/// Specification of a room air network: rack count, CRAH supply
/// set-point, hot-aisle recirculation fraction and per-rack tile
/// flows.
///
/// Capacitances default to plausible coarse-volume values (a ~40 m³
/// plenum, ~2 m³ aisle segments); they set the air-side time constants
/// only and drop out of every steady-state balance.
#[derive(Debug, Clone)]
pub struct RoomAirSpec {
    /// Number of racks (one cold/hot aisle segment pair each).
    pub racks: usize,
    /// CRAH supply (set-point) temperature.
    pub supply: Celsius,
    /// Fraction `β ∈ [0, 1)` of each rack's exhaust that recirculates
    /// into its cold aisle instead of returning to the CRAH.
    pub recirculation: f64,
    /// Per-rack through-flow `q_r` (one entry per rack, all positive).
    pub tile_flows: Vec<AirFlow>,
    /// Heat capacity of the under-floor plenum air volume.
    pub plenum_capacitance: ThermalCapacitance,
    /// Heat capacity of each cold/hot aisle segment.
    pub aisle_capacitance: ThermalCapacitance,
    /// Heat capacity of the hot-aisle return volume.
    pub return_capacitance: ThermalCapacitance,
}

impl RoomAirSpec {
    /// A spec with `racks` equal tile flows summing to `total_flow`.
    #[must_use]
    pub fn uniform(racks: usize, supply: Celsius, total_flow: AirFlow, recirculation: f64) -> Self {
        let per_rack = AirFlow::new(total_flow.value() / racks.max(1) as f64);
        Self::with_tile_flows(supply, vec![per_rack; racks], recirculation)
    }

    /// A spec with explicit per-rack tile flows.
    #[must_use]
    pub fn with_tile_flows(supply: Celsius, tile_flows: Vec<AirFlow>, recirculation: f64) -> Self {
        Self {
            racks: tile_flows.len(),
            supply,
            recirculation,
            tile_flows,
            plenum_capacitance: ThermalCapacitance::new(40.0 * AIR_DENSITY * AIR_SPECIFIC_HEAT),
            aisle_capacitance: ThermalCapacitance::new(2.0 * AIR_DENSITY * AIR_SPECIFIC_HEAT),
            return_capacitance: ThermalCapacitance::new(20.0 * AIR_DENSITY * AIR_SPECIFIC_HEAT),
        }
    }

    fn validate(&self) -> Result<(), ThermalError> {
        if self.racks == 0 {
            return Err(ThermalError::InvalidRoom {
                what: "room needs at least one rack",
            });
        }
        if self.tile_flows.len() != self.racks {
            return Err(ThermalError::InvalidRoom {
                what: "one tile flow per rack required",
            });
        }
        if !(self.recirculation >= 0.0 && self.recirculation < 1.0) {
            return Err(ThermalError::InvalidRoom {
                what: "recirculation fraction must be in [0, 1)",
            });
        }
        if self
            .tile_flows
            .iter()
            .any(|q| !(q.value() > 0.0 && q.value().is_finite()))
        {
            return Err(ThermalError::InvalidRoom {
                what: "tile flows must be positive and finite",
            });
        }
        if !self.supply.degrees().is_finite() {
            return Err(ThermalError::InvalidRoom {
                what: "supply temperature must be finite",
            });
        }
        Ok(())
    }
}

/// Per-rack node handles inside a [`RoomAirModel`].
#[derive(Debug, Clone, Copy)]
struct RackNodes {
    cold: NodeId,
    hot: NodeId,
    channel: FlowChannelId,
}

/// A machine room as a stepped air-volume network — CRAH supply,
/// plenum, per-rack cold/hot aisles, recirculation and return, with
/// exact steady-state energy conservation (see the module-level
/// discussion at the top of this file for the airflow graph).
///
/// # Example
///
/// ```
/// use leakctl_thermal::{RoomAirModel, RoomAirSpec};
/// use leakctl_units::{AirFlow, Celsius, SimDuration, Watts};
///
/// # fn main() -> Result<(), leakctl_thermal::ThermalError> {
/// let spec = RoomAirSpec::uniform(4, Celsius::new(18.0), AirFlow::new(12.0), 0.2);
/// let mut room = RoomAirModel::new(spec)?;
/// for rack in 0..4 {
///     room.set_rack_power(rack, Watts::new(12_000.0))?;
/// }
/// for _ in 0..600 {
///     room.step(SimDuration::from_secs(1))?;
/// }
/// // The cold aisle sits above the 18 °C supply (recirculation) and
/// // the CRAH extracts what the racks dissipate.
/// assert!(room.cold_aisle_temperature(0).degrees() > 18.0);
/// assert!((room.crah_heat_removed().value() - 48_000.0).abs() < 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RoomAirModel {
    net: ThermalNetwork,
    state: ThermalState,
    solver: TransientSolver,
    supply_node: NodeId,
    supply_channel: FlowChannelId,
    /// Return → plenum bypass carrying the share of the return stream
    /// the CRAH can no longer condition (zero flow at full capacity).
    outage_channel: FlowChannelId,
    plenum: NodeId,
    ret: NodeId,
    racks: Vec<RackNodes>,
    recirculation: f64,
    /// CRAH capacity fraction `c ∈ [0, 1]`: the share of the return
    /// stream that passes through the (boundary-pinned) supply; the
    /// rest bypasses uncooled through `outage_channel`.
    crah_capacity: f64,
    /// Per-rack *commanded* tile flows; the live channel carries
    /// `commanded · (1 − blockage)`.
    commanded_flows: Vec<AirFlow>,
    /// Per-rack tile blockage fraction `b ∈ [0, 1]`.
    blockage: Vec<f64>,
    /// Scratch state for [`RoomAirModel::preview_supply`] (kept so
    /// repeated previews never allocate).
    preview: ThermalState,
}

impl RoomAirModel {
    /// Builds the room network from `spec`, starting every air volume
    /// at the supply temperature.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidRoom`] for an inconsistent spec.
    pub fn new(spec: RoomAirSpec) -> Result<Self, ThermalError> {
        spec.validate()?;
        let beta = spec.recirculation;
        let mut b = ThermalNetworkBuilder::new();
        let supply_node = b.add_boundary("crah_supply", spec.supply);
        let supply_channel = b.add_flow_channel("crah_supply");
        let outage_channel = b.add_flow_channel("crah_bypass");
        let plenum = b.add_node("plenum", spec.plenum_capacitance);
        b.connect_directed(
            supply_node,
            plenum,
            Coupling::Advective {
                channel: supply_channel,
                fraction: 1.0,
            },
        )?;
        let ret = b.add_node("return", spec.return_capacitance);
        // Built with zero flow: it only carries air when the CRAH is
        // derated, so nominal rooms assemble the exact same system as
        // before the fault surface existed (zero-flow edges are
        // skipped).
        b.connect_directed(
            ret,
            plenum,
            Coupling::Advective {
                channel: outage_channel,
                fraction: 1.0,
            },
        )?;
        let mut racks = Vec::with_capacity(spec.racks);
        for r in 0..spec.racks {
            let cold = b.add_node(&format!("cold{r}"), spec.aisle_capacitance);
            let hot = b.add_node(&format!("hot{r}"), spec.aisle_capacitance);
            let channel = b.add_flow_channel(&format!("tile{r}"));
            b.connect_directed(
                plenum,
                cold,
                Coupling::Advective {
                    channel,
                    fraction: 1.0 - beta,
                },
            )?;
            if beta > 0.0 {
                b.connect_directed(
                    hot,
                    cold,
                    Coupling::Advective {
                        channel,
                        fraction: beta,
                    },
                )?;
            }
            b.connect_directed(
                cold,
                hot,
                Coupling::Advective {
                    channel,
                    fraction: 1.0,
                },
            )?;
            b.connect_directed(
                hot,
                ret,
                Coupling::Advective {
                    channel,
                    fraction: 1.0 - beta,
                },
            )?;
            racks.push(RackNodes { cold, hot, channel });
        }
        let mut net = b.build()?;
        for (nodes, q) in racks.iter().zip(&spec.tile_flows) {
            net.set_flow(nodes.channel, *q)?;
        }
        let total: f64 = spec.tile_flows.iter().map(|q| q.value()).sum();
        net.set_flow(supply_channel, AirFlow::new((1.0 - beta) * total))?;
        let state = net.uniform_state(spec.supply);
        let preview = state.clone();
        let solver = TransientSolver::new(&net);
        let commanded_flows = spec.tile_flows.clone();
        let blockage = vec![0.0; spec.racks];
        Ok(Self {
            net,
            state,
            solver,
            supply_node,
            supply_channel,
            outage_channel,
            plenum,
            ret,
            racks,
            recirculation: beta,
            crah_capacity: 1.0,
            commanded_flows,
            blockage,
            preview,
        })
    }

    /// Number of racks.
    #[must_use]
    pub fn racks(&self) -> usize {
        self.racks.len()
    }

    /// The underlying network (read side).
    #[must_use]
    pub fn network(&self) -> &ThermalNetwork {
        &self.net
    }

    /// The air-volume temperature state (read side).
    #[must_use]
    pub fn state(&self) -> &ThermalState {
        &self.state
    }

    /// `true` when the room is large enough that the solver picked the
    /// CSR sparse backend.
    #[must_use]
    pub fn is_sparse(&self) -> bool {
        self.solver.is_sparse()
    }

    /// The recirculation fraction the room was built with (structural:
    /// advective split fractions are part of the network structure).
    #[must_use]
    pub fn recirculation(&self) -> f64 {
        self.recirculation
    }

    /// Injects rack `rack`'s dissipated power into its hot-aisle
    /// volume.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidRoom`] for an out-of-range rack.
    pub fn set_rack_power(&mut self, rack: usize, power: Watts) -> Result<(), ThermalError> {
        let nodes = self.rack_nodes(rack)?;
        self.net.set_power(nodes.hot, power)
    }

    /// Re-pins the CRAH supply set-point (the set-point-control
    /// surface the paper's cooling/leakage trade-off turns on).
    ///
    /// # Errors
    ///
    /// Propagates network errors (never expected for the built-in
    /// supply boundary).
    pub fn set_supply(&mut self, supply: Celsius) -> Result<(), ThermalError> {
        self.net.set_boundary(self.supply_node, supply)
    }

    /// Re-balances rack `rack`'s tile flow and updates the CRAH supply
    /// flow to match the new total (the tile-flow-optimization control
    /// surface).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidRoom`] for an out-of-range rack
    /// or non-positive flow.
    pub fn set_tile_flow(&mut self, rack: usize, flow: AirFlow) -> Result<(), ThermalError> {
        if !(flow.value() > 0.0 && flow.value().is_finite()) {
            return Err(ThermalError::InvalidRoom {
                what: "tile flows must be positive and finite",
            });
        }
        let channel = self.rack_nodes(rack)?.channel;
        self.commanded_flows[rack] = flow;
        let effective = AirFlow::new(flow.value() * (1.0 - self.blockage[rack]));
        self.net.set_flow(channel, effective)?;
        self.refresh_crah_flows()
    }

    /// Derates the CRAH to capacity fraction `c ∈ [0, 1]`: only a
    /// `c`-share of the return stream passes through the conditioned
    /// supply; the rest bypasses uncooled into the plenum, so the
    /// plenum's mass balance (and hence the steady-state energy
    /// balance) is preserved at every capacity. `c = 0` is a full
    /// outage: the supply boundary detaches from the airflow graph and
    /// the room has no steady state (see [`Self::solve_steady`]) while
    /// transient stepping keeps integrating the heat-up.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidRoom`] for a capacity outside
    /// `[0, 1]`.
    pub fn set_crah_capacity(&mut self, capacity: f64) -> Result<(), ThermalError> {
        if !(capacity.is_finite() && (0.0..=1.0).contains(&capacity)) {
            return Err(ThermalError::InvalidRoom {
                what: "CRAH capacity must be in [0, 1]",
            });
        }
        self.crah_capacity = capacity;
        self.refresh_crah_flows()
    }

    /// The current CRAH capacity fraction (1.0 when healthy).
    #[must_use]
    pub fn crah_capacity(&self) -> f64 {
        self.crah_capacity
    }

    /// Blocks fraction `b ∈ [0, 1]` of rack `rack`'s perforated tile:
    /// the live through-flow becomes `commanded · (1 − b)` while the
    /// commanded value is retained, so clearing the blockage restores
    /// the exact pre-fault flows.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidRoom`] for an out-of-range rack
    /// or a blockage outside `[0, 1]`.
    pub fn set_tile_blockage(&mut self, rack: usize, blockage: f64) -> Result<(), ThermalError> {
        if !(blockage.is_finite() && (0.0..=1.0).contains(&blockage)) {
            return Err(ThermalError::InvalidRoom {
                what: "tile blockage must be in [0, 1]",
            });
        }
        let channel = self.rack_nodes(rack)?.channel;
        self.blockage[rack] = blockage;
        let effective = AirFlow::new(self.commanded_flows[rack].value() * (1.0 - blockage));
        self.net.set_flow(channel, effective)?;
        self.refresh_crah_flows()
    }

    /// Rack `rack`'s tile blockage fraction (0.0 when clear).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidRoom`] for an out-of-range rack.
    pub fn tile_blockage(&self, rack: usize) -> Result<f64, ThermalError> {
        self.rack_nodes(rack)?;
        Ok(self.blockage[rack])
    }

    /// Rack `rack`'s *commanded* tile flow (what the controller asked
    /// for; the live flow is this times `1 − blockage`).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidRoom`] for an out-of-range rack.
    pub fn commanded_tile_flow(&self, rack: usize) -> Result<AirFlow, ThermalError> {
        self.rack_nodes(rack)?;
        Ok(self.commanded_flows[rack])
    }

    /// Recomputes the supply and bypass channel flows from the
    /// effective tile flows and the CRAH capacity. Generation counters
    /// bump only on real value changes, so nominal rooms never pay for
    /// the fault surface.
    fn refresh_crah_flows(&mut self) -> Result<(), ThermalError> {
        let total: f64 = self
            .racks
            .iter()
            .map(|n| self.net.flow(n.channel).value())
            .sum();
        let returned = (1.0 - self.recirculation) * total;
        self.net.set_flow(
            self.supply_channel,
            AirFlow::new(self.crah_capacity * returned),
        )?;
        self.net.set_flow(
            self.outage_channel,
            AirFlow::new((1.0 - self.crah_capacity) * returned),
        )
    }

    /// Rack `rack`'s current tile flow.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidRoom`] for an out-of-range rack.
    pub fn tile_flow(&self, rack: usize) -> Result<AirFlow, ThermalError> {
        Ok(self.net.flow(self.rack_nodes(rack)?.channel))
    }

    /// Total rack through-flow `Σq_r`.
    #[must_use]
    pub fn total_tile_flow(&self) -> AirFlow {
        AirFlow::new(
            self.racks
                .iter()
                .map(|n| self.net.flow(n.channel).value())
                .sum(),
        )
    }

    /// Rack `rack`'s cold-aisle temperature — the inlet boundary its
    /// servers see.
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range rack.
    #[must_use]
    pub fn cold_aisle_temperature(&self, rack: usize) -> Celsius {
        self.net.temperature(&self.state, self.racks[rack].cold)
    }

    /// Rack `rack`'s hot-aisle temperature.
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range rack.
    #[must_use]
    pub fn hot_aisle_temperature(&self, rack: usize) -> Celsius {
        self.net.temperature(&self.state, self.racks[rack].hot)
    }

    /// The under-floor plenum temperature.
    #[must_use]
    pub fn plenum_temperature(&self) -> Celsius {
        self.net.temperature(&self.state, self.plenum)
    }

    /// The mixed hot-aisle return temperature at the CRAH intake.
    #[must_use]
    pub fn return_temperature(&self) -> Celsius {
        self.net.temperature(&self.state, self.ret)
    }

    /// The CRAH supply set-point.
    #[must_use]
    pub fn supply_temperature(&self) -> Celsius {
        self.net.temperature(&self.state, self.supply_node)
    }

    /// Heat the CRAH currently extracts from the return stream:
    /// `c·(1−β)·Σq·ρ·c_p·(T_return − T_supply)` where `c` is the CRAH
    /// capacity fraction (only the conditioned share of the return air
    /// is cooled). Equals the total injected rack power exactly at
    /// steady state for any capacity `c > 0` — a derated CRAH still
    /// removes everything, it just needs a hotter return to do it.
    #[must_use]
    pub fn crah_heat_removed(&self) -> Watts {
        let q_cooled =
            self.crah_capacity * (1.0 - self.recirculation) * self.total_tile_flow().value();
        let dt = self.return_temperature().degrees() - self.supply_temperature().degrees();
        Watts::new(q_cooled * AIR_DENSITY * AIR_SPECIFIC_HEAT * dt)
    }

    /// Total power currently injected across all hot aisles.
    #[must_use]
    pub fn total_rack_power(&self) -> Watts {
        self.net.total_power()
    }

    /// Advances the air volumes by `dt` (backward Euler through the
    /// cached solver; flows rarely change, so the factorization is
    /// sticky).
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn step(&mut self, dt: SimDuration) -> Result<(), ThermalError> {
        self.solver
            .step(&self.net, &mut self.state, dt, Integrator::BackwardEuler)
    }

    /// Replaces the state with the steady-state solution for the
    /// current powers, flows and supply temperature.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::SingularSystem`] when the system cannot
    /// be solved. With a healthy (or merely derated) CRAH that never
    /// happens — every volume sits on a flow path from the supply
    /// boundary — but a full outage
    /// ([`set_crah_capacity(0.0)`](Self::set_crah_capacity)) detaches
    /// the boundary, the room becomes a closed loop with net heat
    /// injection and *has no steady state*; the error is returned
    /// eagerly (and deterministically for every backend) rather than
    /// from a numerically singular factorization.
    pub fn solve_steady(&mut self) -> Result<(), ThermalError> {
        if self.crah_capacity == 0.0 {
            return Err(ThermalError::SingularSystem);
        }
        self.state = self.net.steady_state()?;
        Ok(())
    }

    /// Previews the steady-state per-rack cold-aisle temperatures the
    /// room would settle at under a candidate CRAH supply set-point,
    /// **without disturbing the live trajectory** — the cheap what-if
    /// hook receding-horizon set-point controllers iterate over.
    ///
    /// The candidate boundary is pinned, the steady system is solved
    /// through the cached `G` factorization (boundary changes never
    /// invalidate it — only flow changes do, so a controller sweeping
    /// `N` candidates pays one factorization and `N`
    /// back-substitutions), and the original set-point is restored
    /// bit-exactly. `cold_aisles` is cleared and refilled with one
    /// entry per rack; the returned value is the previewed mixed
    /// return temperature at the CRAH intake.
    ///
    /// Current rack powers and tile flows are held as-is, so the
    /// preview answers "where do the inlets end up if I only move the
    /// set-point" — leakage feedback on rack power is the caller's
    /// model to apply on top.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidRoom`] for a non-finite
    /// candidate and propagates solver failures — in particular
    /// [`ThermalError::SingularSystem`] during a full CRAH outage,
    /// when no steady state exists under *any* candidate supply (the
    /// signal set-point controllers use to drop into their max-cooling
    /// safe mode).
    pub fn preview_supply(
        &mut self,
        supply: Celsius,
        cold_aisles: &mut Vec<Celsius>,
    ) -> Result<Celsius, ThermalError> {
        if !supply.degrees().is_finite() {
            return Err(ThermalError::InvalidRoom {
                what: "supply temperature must be finite",
            });
        }
        if self.crah_capacity == 0.0 {
            return Err(ThermalError::SingularSystem);
        }
        let saved = self.supply_temperature();
        self.net.set_boundary(self.supply_node, supply)?;
        let solved = self.solver.steady_state_into(&self.net, &mut self.preview);
        // Restore before error handling so a solver failure can never
        // leave the candidate pinned on the live network.
        self.net.set_boundary(self.supply_node, saved)?;
        solved?;
        cold_aisles.clear();
        cold_aisles.extend(
            self.racks
                .iter()
                .map(|nodes| self.net.temperature(&self.preview, nodes.cold)),
        );
        Ok(self.net.temperature(&self.preview, self.ret))
    }

    fn rack_nodes(&self, rack: usize) -> Result<RackNodes, ThermalError> {
        self.racks
            .get(rack)
            .copied()
            .ok_or(ThermalError::InvalidRoom {
                what: "rack index out of range",
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn powered(racks: usize, beta: f64) -> RoomAirModel {
        let spec = RoomAirSpec::uniform(
            racks,
            Celsius::new(18.0),
            AirFlow::new(3.0 * racks as f64),
            beta,
        );
        let mut room = RoomAirModel::new(spec).unwrap();
        for r in 0..racks {
            room.set_rack_power(r, Watts::new(10_000.0 + 1_000.0 * r as f64))
                .unwrap();
        }
        room
    }

    #[test]
    fn spec_validation() {
        assert!(matches!(
            RoomAirModel::new(RoomAirSpec::uniform(
                0,
                Celsius::new(18.0),
                AirFlow::new(1.0),
                0.0
            )),
            Err(ThermalError::InvalidRoom { .. })
        ));
        assert!(matches!(
            RoomAirModel::new(RoomAirSpec::uniform(
                2,
                Celsius::new(18.0),
                AirFlow::new(1.0),
                1.0
            )),
            Err(ThermalError::InvalidRoom { .. })
        ));
        assert!(matches!(
            RoomAirModel::new(RoomAirSpec::uniform(
                2,
                Celsius::new(18.0),
                AirFlow::new(0.0),
                0.2
            )),
            Err(ThermalError::InvalidRoom { .. })
        ));
        let mut bad = RoomAirSpec::uniform(2, Celsius::new(18.0), AirFlow::new(4.0), 0.2);
        bad.tile_flows.pop();
        assert!(matches!(
            RoomAirModel::new(bad),
            Err(ThermalError::InvalidRoom { .. })
        ));
        let mut room = powered(2, 0.1);
        assert!(room.set_rack_power(9, Watts::new(1.0)).is_err());
        assert!(room.set_tile_flow(0, AirFlow::new(-1.0)).is_err());
        assert!(room.tile_flow(9).is_err());
    }

    #[test]
    fn steady_state_conserves_energy_exactly() {
        // CRAH extraction must equal total rack power at steady state,
        // for any recirculation fraction and any (uneven) tile split.
        for beta in [0.0, 0.15, 0.45] {
            let mut room = powered(5, beta);
            // Uneven tile split.
            room.set_tile_flow(0, AirFlow::new(1.2)).unwrap();
            room.set_tile_flow(4, AirFlow::new(5.5)).unwrap();
            room.solve_steady().unwrap();
            let total = room.total_rack_power().value();
            let removed = room.crah_heat_removed().value();
            assert!(
                ((removed - total) / total).abs() < 1e-9,
                "beta {beta}: CRAH {removed} W vs racks {total} W"
            );
        }
    }

    #[test]
    fn recirculation_warms_the_cold_aisle() {
        let mut sealed = powered(3, 0.0);
        let mut leaky = powered(3, 0.3);
        sealed.solve_steady().unwrap();
        leaky.solve_steady().unwrap();
        // Perfect containment: cold aisle sits at the supply.
        assert!((sealed.cold_aisle_temperature(0).degrees() - 18.0).abs() < 1e-9);
        // Analytic inlet lift: β/(1−β) · P/(q·ρ·c_p).
        let want = 18.0 + (0.3 / 0.7) * 10_000.0 / (3.0 * AIR_DENSITY * AIR_SPECIFIC_HEAT);
        let got = leaky.cold_aisle_temperature(0).degrees();
        assert!(
            (got - want).abs() < 1e-6,
            "30% recirculation inlet lift: got {got}, want {want}"
        );
        // The hot aisle is warmer than the cold aisle either way.
        for room in [&sealed, &leaky] {
            assert!(room.hot_aisle_temperature(1) > room.cold_aisle_temperature(1));
        }
    }

    #[test]
    fn starved_tile_runs_hotter() {
        let mut room = powered(3, 0.1);
        room.set_tile_flow(1, AirFlow::new(1.0)).unwrap();
        room.solve_steady().unwrap();
        assert!(
            room.hot_aisle_temperature(1).degrees() > room.hot_aisle_temperature(0).degrees() + 2.0,
            "a third of the airflow must show as a hotter exhaust"
        );
        // Recirculation couples the starved exhaust back to its inlet.
        assert!(room.cold_aisle_temperature(1) > room.cold_aisle_temperature(0));
    }

    #[test]
    fn supply_setpoint_shifts_every_aisle() {
        let mut cool = powered(2, 0.2);
        let mut warm = powered(2, 0.2);
        warm.set_supply(Celsius::new(27.0)).unwrap();
        cool.solve_steady().unwrap();
        warm.solve_steady().unwrap();
        for r in 0..2 {
            let lift =
                warm.cold_aisle_temperature(r).degrees() - cool.cold_aisle_temperature(r).degrees();
            assert!((lift - 9.0).abs() < 1e-6, "supply lift must pass through");
        }
        assert_eq!(warm.supply_temperature(), Celsius::new(27.0));
    }

    #[test]
    fn transient_approaches_steady_state() {
        let mut transient = powered(4, 0.25);
        let mut steady = transient.clone();
        steady.solve_steady().unwrap();
        for _ in 0..4_000 {
            transient.step(SimDuration::from_secs(1)).unwrap();
        }
        for r in 0..4 {
            let got = transient.hot_aisle_temperature(r).degrees();
            let want = steady.hot_aisle_temperature(r).degrees();
            assert!((got - want).abs() < 1e-6, "rack {r}: {got} vs {want}");
        }
        assert!(transient.plenum_temperature().degrees() < 18.0 + 1e-6);
        assert!(transient.return_temperature() > transient.plenum_temperature());
    }

    #[test]
    fn preview_supply_matches_committed_steady_state() {
        let mut room = powered(3, 0.2);
        room.set_tile_flow(2, AirFlow::new(1.5)).unwrap();
        // Step a while so the live trajectory is mid-transient.
        for _ in 0..50 {
            room.step(SimDuration::from_secs(1)).unwrap();
        }
        let live_before: Vec<u64> = (0..3)
            .map(|r| room.cold_aisle_temperature(r).degrees().to_bits())
            .collect();
        let supply_before = room.supply_temperature();

        let mut previewed = Vec::new();
        let ret = room
            .preview_supply(Celsius::new(24.0), &mut previewed)
            .unwrap();
        // The live state and set-point are untouched, bit-for-bit.
        assert_eq!(room.supply_temperature(), supply_before);
        let live_after: Vec<u64> = (0..3)
            .map(|r| room.cold_aisle_temperature(r).degrees().to_bits())
            .collect();
        assert_eq!(live_after, live_before);

        // Committing the candidate and solving steady lands exactly
        // where the preview said.
        room.set_supply(Celsius::new(24.0)).unwrap();
        room.solve_steady().unwrap();
        for (r, want) in previewed.iter().enumerate() {
            let got = room.cold_aisle_temperature(r).degrees();
            let want = want.degrees();
            assert!((got - want).abs() < 1e-9, "rack {r}: {got} vs {want}");
        }
        assert!((ret.degrees() - room.return_temperature().degrees()).abs() < 1e-9);
        // Rejects nonsense candidates without touching anything.
        assert!(room
            .preview_supply(Celsius::new(f64::NAN), &mut previewed)
            .is_err());
    }

    #[test]
    fn preview_supply_lift_passes_through() {
        // At steady state a supply lift passes 1:1 into every cold
        // aisle regardless of recirculation — the linear-response fact
        // set-point controllers lean on.
        let mut room = powered(2, 0.3);
        room.solve_steady().unwrap();
        let mut previewed = Vec::new();
        room.preview_supply(Celsius::new(25.0), &mut previewed)
            .unwrap();
        for (r, p) in previewed.iter().enumerate() {
            let lift = p.degrees() - room.cold_aisle_temperature(r).degrees();
            assert!((lift - 7.0).abs() < 1e-9, "rack {r} lift {lift}");
        }
    }

    #[test]
    fn derated_crah_runs_hotter_but_still_conserves_energy() {
        let mut healthy = powered(3, 0.2);
        let mut derated = powered(3, 0.2);
        derated.set_crah_capacity(0.5).unwrap();
        assert!((derated.crah_capacity() - 0.5).abs() < 1e-15);
        healthy.solve_steady().unwrap();
        derated.solve_steady().unwrap();
        // A derated CRAH still removes every injected watt at steady
        // state — it just needs a hotter return to do it.
        let total = derated.total_rack_power().value();
        let removed = derated.crah_heat_removed().value();
        assert!(
            ((removed - total) / total).abs() < 1e-9,
            "derated CRAH {removed} W vs racks {total} W"
        );
        assert!(
            derated.return_temperature().degrees() > healthy.return_temperature().degrees() + 1.0,
            "half capacity must show as a hotter return"
        );
        assert!(derated.cold_aisle_temperature(0) > healthy.cold_aisle_temperature(0));
        // Out-of-range capacities are rejected.
        assert!(derated.set_crah_capacity(1.5).is_err());
        assert!(derated.set_crah_capacity(f64::NAN).is_err());
    }

    #[test]
    fn full_outage_has_no_steady_state_but_keeps_stepping() {
        let mut room = powered(2, 0.1);
        room.solve_steady().unwrap();
        let before = room.return_temperature();
        room.set_crah_capacity(0.0).unwrap();
        assert!(matches!(
            room.solve_steady(),
            Err(ThermalError::SingularSystem)
        ));
        let mut scratch = Vec::new();
        assert!(matches!(
            room.preview_supply(Celsius::new(14.0), &mut scratch),
            Err(ThermalError::SingularSystem)
        ));
        // Transient integration survives the detached boundary: the
        // room is a closed loop heating up.
        for _ in 0..120 {
            room.step(SimDuration::from_secs(1)).unwrap();
        }
        assert!(room.state().is_finite());
        assert!(
            room.return_temperature().degrees() > before.degrees() + 1.0,
            "an uncooled room must heat up"
        );
        // Recovery restores the exact pre-fault flow values.
        room.set_crah_capacity(1.0).unwrap();
        room.solve_steady().unwrap();
        let total = room.total_rack_power().value();
        let removed = room.crah_heat_removed().value();
        assert!(((removed - total) / total).abs() < 1e-9);
    }

    #[test]
    fn tile_blockage_scales_the_live_flow_and_clears_exactly() {
        let mut room = powered(3, 0.1);
        let commanded = room.tile_flow(1).unwrap();
        let flows_before: Vec<u64> = (0..3)
            .map(|r| room.tile_flow(r).unwrap().value().to_bits())
            .collect();
        room.set_tile_blockage(1, 0.5).unwrap();
        assert!((room.tile_blockage(1).unwrap() - 0.5).abs() < 1e-15);
        assert!((room.tile_flow(1).unwrap().value() - commanded.value() * 0.5).abs() < 1e-12);
        assert_eq!(room.commanded_tile_flow(1).unwrap(), commanded);
        // Re-commanding under blockage keeps the derate applied.
        room.set_tile_flow(1, AirFlow::new(4.0)).unwrap();
        assert!((room.tile_flow(1).unwrap().value() - 2.0).abs() < 1e-12);
        room.set_tile_flow(1, commanded).unwrap();
        // A starved rack runs hotter than its neighbours.
        room.solve_steady().unwrap();
        assert!(room.hot_aisle_temperature(1) > room.hot_aisle_temperature(0));
        // Clearing the blockage restores the exact pre-fault flows.
        room.set_tile_blockage(1, 0.0).unwrap();
        let flows_after: Vec<u64> = (0..3)
            .map(|r| room.tile_flow(r).unwrap().value().to_bits())
            .collect();
        assert_eq!(flows_after, flows_before);
        assert!(room.set_tile_blockage(9, 0.1).is_err());
        assert!(room.set_tile_blockage(0, 1.5).is_err());
        assert!(room.tile_blockage(9).is_err());
        assert!(room.commanded_tile_flow(9).is_err());
    }

    #[test]
    fn large_rooms_go_sparse() {
        let room = powered(64, 0.1);
        assert_eq!(room.network().state_count(), 2 * 64 + 2);
        assert!(room.is_sparse(), "130 nodes must select the CSR backend");
        let small = powered(4, 0.1);
        assert!(!small.is_sparse(), "10 nodes stay dense");
        assert_eq!(small.racks(), 4);
        assert!(small.state().is_finite());
        assert!((small.recirculation() - 0.1).abs() < 1e-15);
    }
}
