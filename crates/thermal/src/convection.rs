//! Forced-convection conductance model.

use leakctl_units::{AirFlow, ThermalConductance};

/// Conductance of a surface-to-air convection path as a function of the
/// air flow over the surface.
///
/// Uses the standard forced-convection correlation for turbulent internal
/// flow, `h ∝ Q^n` with `n ≈ 0.8`, anchored at a reference point, plus a
/// natural-convection floor that keeps the model sane at zero flow:
///
/// ```text
/// g(Q) = g_min + g_ref · (Q / Q_ref)^n
/// ```
///
/// This is the lever through which fan speed influences CPU temperature:
/// the fan law gives `Q ∝ RPM`, and this model converts flow into the
/// sink-to-air conductance of the RC network.
///
/// # Example
///
/// ```
/// use leakctl_thermal::ConvectionModel;
/// use leakctl_units::{AirFlow, ThermalConductance};
///
/// let m = ConvectionModel::new(
///     ThermalConductance::new(4.0),
///     AirFlow::from_cfm(300.0),
///     0.8,
///     ThermalConductance::new(0.3),
/// );
/// let g_ref = m.conductance(AirFlow::from_cfm(300.0));
/// assert!((g_ref.value() - 4.3).abs() < 1e-9);
/// let g_half = m.conductance(AirFlow::from_cfm(150.0));
/// assert!(g_half < g_ref);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ConvectionModel {
    g_ref: ThermalConductance,
    flow_ref: AirFlow,
    exponent: f64,
    g_min: ThermalConductance,
}

impl ConvectionModel {
    /// Creates a model anchored at conductance `g_ref` for flow
    /// `flow_ref`, scaling with `(Q/Q_ref)^exponent`, with floor `g_min`.
    ///
    /// # Panics
    ///
    /// Panics when `g_ref` or `flow_ref` are non-positive, when
    /// `exponent` is outside `(0, 2]`, or when `g_min` is negative —
    /// these would silently produce a nonphysical network.
    #[must_use]
    pub fn new(
        g_ref: ThermalConductance,
        flow_ref: AirFlow,
        exponent: f64,
        g_min: ThermalConductance,
    ) -> Self {
        assert!(
            g_ref.value() > 0.0 && g_ref.is_finite(),
            "reference conductance must be positive"
        );
        assert!(
            flow_ref.value() > 0.0 && flow_ref.is_finite(),
            "reference flow must be positive"
        );
        assert!(
            exponent > 0.0 && exponent <= 2.0,
            "convection exponent must be in (0, 2]"
        );
        assert!(g_min.value() >= 0.0, "minimum conductance must be >= 0");
        Self {
            g_ref,
            flow_ref,
            exponent,
            g_min,
        }
    }

    /// Bit-exact parameter fingerprint, used by the network's structural
    /// hash so identically-built networks can share factorizations.
    pub(crate) fn param_bits(&self) -> [u64; 4] {
        [
            self.g_ref.value().to_bits(),
            self.flow_ref.value().to_bits(),
            self.exponent.to_bits(),
            self.g_min.value().to_bits(),
        ]
    }

    /// A model with the standard turbulent exponent (0.8) and a floor of
    /// 5 % of the reference conductance.
    #[must_use]
    pub fn turbulent(g_ref: ThermalConductance, flow_ref: AirFlow) -> Self {
        Self::new(g_ref, flow_ref, 0.8, g_ref * 0.05)
    }

    /// Conductance at the given flow; negative flow is treated as zero.
    #[must_use]
    pub fn conductance(&self, flow: AirFlow) -> ThermalConductance {
        let q = flow.value().max(0.0);
        let ratio = q / self.flow_ref.value();
        self.g_min + self.g_ref * ratio.powf(self.exponent)
    }

    /// The reference conductance (at the reference flow, excluding the
    /// floor).
    #[must_use]
    pub fn g_ref(&self) -> ThermalConductance {
        self.g_ref
    }

    /// The reference flow.
    #[must_use]
    pub fn flow_ref(&self) -> AirFlow {
        self.flow_ref
    }

    /// The flow exponent.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// The natural-convection floor.
    #[must_use]
    pub fn g_min(&self) -> ThermalConductance {
        self.g_min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ConvectionModel {
        ConvectionModel::new(
            ThermalConductance::new(4.0),
            AirFlow::from_cfm(300.0),
            0.8,
            ThermalConductance::new(0.2),
        )
    }

    #[test]
    fn reference_point_reproduced() {
        let m = model();
        let g = m.conductance(AirFlow::from_cfm(300.0));
        assert!((g.value() - 4.2).abs() < 1e-9);
    }

    #[test]
    fn zero_flow_hits_floor() {
        let m = model();
        assert!((m.conductance(AirFlow::ZERO).value() - 0.2).abs() < 1e-12);
        // Negative flow clamps to the floor too.
        assert!((m.conductance(AirFlow::new(-1.0)).value() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_flow() {
        let m = model();
        let mut prev = m.conductance(AirFlow::ZERO);
        for cfm in [50.0, 100.0, 200.0, 400.0, 800.0] {
            let g = m.conductance(AirFlow::from_cfm(cfm));
            assert!(g > prev, "conductance must grow with flow");
            prev = g;
        }
    }

    #[test]
    fn sublinear_exponent_saturates() {
        let m = model();
        let g1 = m.conductance(AirFlow::from_cfm(300.0));
        let g2 = m.conductance(AirFlow::from_cfm(600.0));
        // Doubling flow must give less than double (g - g_min).
        let gain = (g2.value() - 0.2) / (g1.value() - 0.2);
        assert!(gain < 2.0);
        assert!(gain > 1.5);
    }

    #[test]
    fn turbulent_constructor_defaults() {
        let m = ConvectionModel::turbulent(ThermalConductance::new(2.0), AirFlow::from_cfm(100.0));
        assert_eq!(m.exponent(), 0.8);
        assert!((m.g_min().value() - 0.1).abs() < 1e-12);
        assert_eq!(m.g_ref().value(), 2.0);
        assert!((m.flow_ref().as_cfm() - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero_reference() {
        let _ = ConvectionModel::new(
            ThermalConductance::ZERO,
            AirFlow::from_cfm(100.0),
            0.8,
            ThermalConductance::ZERO,
        );
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn rejects_bad_exponent() {
        let _ = ConvectionModel::new(
            ThermalConductance::new(1.0),
            AirFlow::from_cfm(100.0),
            0.0,
            ThermalConductance::ZERO,
        );
    }
}
