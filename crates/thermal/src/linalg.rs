//! Minimal dense linear algebra for thermal-network solving.
//!
//! Thermal compact models are small (tens of nodes), so a straightforward
//! row-major dense matrix with LU decomposition (partial pivoting) is both
//! simple and fast enough — the whole Table I reproduction performs a few
//! hundred thousand 15×15 solves in well under a second.

use core::fmt;

/// Error produced by linear solvers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinalgError {
    /// Matrix dimensions did not match the operation.
    DimensionMismatch,
    /// The matrix is singular to working precision.
    Singular,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DimensionMismatch => write!(f, "matrix dimension mismatch"),
            Self::Singular => write!(f, "matrix is singular to working precision"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// A dense row-major matrix of `f64`.
///
/// # Example
///
/// ```
/// use leakctl_thermal::linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]).unwrap();
/// let x = a.solve(&[6.0, 8.0]).unwrap();
/// assert_eq!(x, vec![3.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when rows have unequal
    /// lengths or the input is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        let r = rows.len();
        if r == 0 {
            return Err(LinalgError::DimensionMismatch);
        }
        let c = rows[0].len();
        if c == 0 || rows.iter().any(|row| row.len() != c) {
            return Err(LinalgError::DimensionMismatch);
        }
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Number of rows.
    #[inline]
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of range.
    #[inline]
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of range");
        self.data[r * self.cols + c]
    }

    /// Writes entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of range.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: f64) {
        assert!(r < self.rows && c < self.cols, "matrix index out of range");
        self.data[r * self.cols + c] = value;
    }

    /// Adds `value` to entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of range.
    #[inline]
    pub fn add_to(&mut self, r: usize, c: usize, value: f64) {
        assert!(r < self.rows && c < self.cols, "matrix index out of range");
        self.data[r * self.cols + c] += value;
    }

    /// Overwrites every entry with `value` (used to reset cached
    /// assembly workspaces without reallocating).
    #[inline]
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let mut y = vec![0.0; self.rows];
        self.mul_vec_into(x, &mut y)?;
        Ok(y)
    }

    /// Matrix–vector product `A·x` written into `y` — the
    /// allocation-free variant for per-step hot paths.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `x.len() != cols`
    /// or `y.len() != rows`.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) -> Result<(), LinalgError> {
        if x.len() != self.cols || y.len() != self.rows {
            return Err(LinalgError::DimensionMismatch);
        }
        for (r, yr) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            *yr = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        Ok(())
    }

    /// Factors the matrix as `P·A = L·U` with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] for non-square input
    /// and [`LinalgError::Singular`] when a pivot vanishes.
    pub fn lu(&self) -> Result<LuFactors, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::DimensionMismatch);
        }
        let n = self.rows;
        let mut lu = self.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        factorize(n, &mut lu, &mut perm)?;
        Ok(LuFactors { n, lu, perm })
    }

    /// Re-factors the matrix into an existing [`LuFactors`], reusing its
    /// buffers — the allocation-free variant for solvers that factor the
    /// same-sized system repeatedly.
    ///
    /// On error the factors are left in an unspecified state and must
    /// not be used for solves until a subsequent successful
    /// factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] for non-square input
    /// and [`LinalgError::Singular`] when a pivot vanishes.
    pub fn lu_into(&self, factors: &mut LuFactors) -> Result<(), LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::DimensionMismatch);
        }
        let n = self.rows;
        factors.n = n;
        factors.lu.clear();
        factors.lu.extend_from_slice(&self.data);
        factors.perm.clear();
        factors.perm.extend(0..n);
        factorize(n, &mut factors.lu, &mut factors.perm)
    }

    /// Solves `A·x = b` through LU decomposition.
    ///
    /// # Errors
    ///
    /// Propagates [`LinalgError`] from factoring, and returns
    /// [`LinalgError::DimensionMismatch`] when `b.len() != rows`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let factors = self.lu()?;
        let mut x = vec![0.0; self.rows];
        factors.solve_into(b, &mut x)?;
        Ok(x)
    }
}

/// In-place LU elimination with partial pivoting over a row-major
/// `n × n` buffer; shared by [`Matrix::lu`] and [`Matrix::lu_into`].
fn factorize(n: usize, lu: &mut [f64], perm: &mut [usize]) -> Result<(), LinalgError> {
    for k in 0..n {
        // Find pivot.
        let mut pivot_row = k;
        let mut pivot_val = lu[k * n + k].abs();
        for r in (k + 1)..n {
            let v = lu[r * n + k].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < 1e-300 {
            return Err(LinalgError::Singular);
        }
        if pivot_row != k {
            for c in 0..n {
                lu.swap(k * n + c, pivot_row * n + c);
            }
            perm.swap(k, pivot_row);
        }
        // Eliminate below the pivot.
        let pivot = lu[k * n + k];
        for r in (k + 1)..n {
            let factor = lu[r * n + k] / pivot;
            lu[r * n + k] = factor;
            for c in (k + 1)..n {
                lu[r * n + c] -= factor * lu[k * n + c];
            }
        }
    }
    Ok(())
}

/// The result of LU-factoring a square matrix; reusable across multiple
/// right-hand sides.
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    lu: Vec<f64>,
    perm: Vec<usize>,
}

impl LuFactors {
    /// The dimension of the factored system.
    #[inline]
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.n
    }

    /// Solves `A·x = b` using the stored factors.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `b.len()` differs
    /// from the factored dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let mut x = vec![0.0; self.n];
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A·x = b` into a caller-provided buffer — the
    /// allocation-free variant: a cached factorization plus this call is
    /// a single O(n²) back-substitution per step.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `b.len()` or
    /// `x.len()` differs from the factored dimension.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) -> Result<(), LinalgError> {
        if b.len() != self.n || x.len() != self.n {
            return Err(LinalgError::DimensionMismatch);
        }
        let n = self.n;
        // Apply permutation: y = P·b.
        for (xr, &p) in x.iter_mut().zip(&self.perm) {
            *xr = b[p];
        }
        // Forward substitution with unit-diagonal L. Row dot products
        // over slices let the compiler elide bounds checks and
        // vectorize.
        for r in 1..n {
            let row = &self.lu[r * n..r * n + r];
            let (solved, rest) = x.split_at_mut(r);
            let dot: f64 = row.iter().zip(solved.iter()).map(|(l, v)| l * v).sum();
            rest[0] -= dot;
        }
        // Back substitution with U.
        for r in (0..n).rev() {
            let row = &self.lu[r * n + r + 1..(r + 1) * n];
            let (head, solved) = x.split_at_mut(r + 1);
            let dot: f64 = row.iter().zip(solved.iter()).map(|(u, v)| u * v).sum();
            head[r] = (head[r] - dot) / self.lu[r * n + r];
        }
        Ok(())
    }

    /// Solves `A·X = B` for a slot-major block of `batch` right-hand
    /// sides (`rhs[slot * batch + lane]`, likewise `x`), using `acc`
    /// (length ≥ `batch`) as the accumulation workspace.
    ///
    /// Per lane the accumulation order is exactly that of
    /// [`Self::solve_into`] — each lane carries its own accumulator
    /// through the same ascending-`k` dot products — so a lane pulled
    /// out of a block solve is bit-identical to solving it alone. Across
    /// lanes the inner loops run over contiguous memory and vectorize,
    /// which is what makes one shared factorization across a rack of
    /// servers an order of magnitude cheaper than per-server solves.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `rhs` or `x` is
    /// not `dimension · batch` long, or `acc` is shorter than `batch`.
    pub fn solve_block_into(
        &self,
        rhs: &[f64],
        x: &mut [f64],
        batch: usize,
        acc: &mut [f64],
    ) -> Result<(), LinalgError> {
        let n = self.n;
        if rhs.len() != n * batch || x.len() != n * batch || acc.len() < batch {
            return Err(LinalgError::DimensionMismatch);
        }
        let acc = &mut acc[..batch];
        // Apply permutation: X = P·B, whole lanes at a time.
        for (r, &p) in self.perm.iter().enumerate() {
            x[r * batch..(r + 1) * batch].copy_from_slice(&rhs[p * batch..(p + 1) * batch]);
        }
        // Forward substitution with unit-diagonal L. Exactly-zero
        // factor entries (structural zeros of the thermal topology that
        // survived elimination) are skipped: adding `0.0 · x` to the
        // accumulator is an exact no-op for the finite values a
        // non-diverged solve carries, so per-lane bit-identity with
        // `solve_into` is preserved while the common sparse-in-dense
        // case drops about half the row passes.
        for r in 1..n {
            let row = &self.lu[r * n..r * n + r];
            acc.fill(0.0);
            for (k, &l) in row.iter().enumerate() {
                if l == 0.0 {
                    continue;
                }
                let src = k * batch;
                for (a, &xv) in acc.iter_mut().zip(&x[src..src + batch]) {
                    *a += l * xv;
                }
            }
            let dst = r * batch;
            for (xv, &a) in x[dst..dst + batch].iter_mut().zip(acc.iter()) {
                *xv -= a;
            }
        }
        // Back substitution with U.
        for r in (0..n).rev() {
            let row = &self.lu[r * n + r + 1..(r + 1) * n];
            acc.fill(0.0);
            for (off, &u) in row.iter().enumerate() {
                if u == 0.0 {
                    continue;
                }
                let src = (r + 1 + off) * batch;
                for (a, &xv) in acc.iter_mut().zip(&x[src..src + batch]) {
                    *a += u * xv;
                }
            }
            let diag = self.lu[r * n + r];
            let dst = r * batch;
            for (xv, &a) in x[dst..dst + batch].iter_mut().zip(acc.iter()) {
                *xv = (*xv - a) / diag;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_returns_rhs() {
        let a = Matrix::identity(4);
        let b = [1.0, -2.0, 3.5, 0.0];
        assert_eq!(a.solve(&b).unwrap(), b.to_vec());
    }

    #[test]
    fn known_3x3_system() {
        // x = [1, 2, 3]
        let a = Matrix::from_rows(&[&[2.0, 1.0, 1.0], &[1.0, 3.0, 2.0], &[1.0, 0.0, 0.0]]).unwrap();
        let b = [7.0, 13.0, 1.0];
        let x = a.solve(&b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert!((x[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = a.solve(&[5.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert_eq!(a.solve(&[1.0, 2.0]), Err(LinalgError::Singular));
    }

    #[test]
    fn dimension_mismatch_detected() {
        let a = Matrix::zeros(2, 3);
        assert_eq!(a.lu().unwrap_err(), LinalgError::DimensionMismatch);
        let sq = Matrix::identity(3);
        assert_eq!(
            sq.solve(&[1.0, 2.0]).unwrap_err(),
            LinalgError::DimensionMismatch
        );
        assert_eq!(
            sq.mul_vec(&[1.0]).unwrap_err(),
            LinalgError::DimensionMismatch
        );
    }

    #[test]
    fn from_rows_validates_shape() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]).is_err());
        let empty_row: &[f64] = &[];
        assert!(Matrix::from_rows(&[empty_row]).is_err());
    }

    #[test]
    fn mul_vec_matches_solve_round_trip() {
        let a =
            Matrix::from_rows(&[&[4.0, -1.0, 0.5], &[-1.0, 5.0, -2.0], &[0.5, -2.0, 6.0]]).unwrap();
        let x_true = [0.3, -1.2, 2.5];
        let b = a.mul_vec(&x_true).unwrap();
        let x = a.solve(&b).unwrap();
        for (xs, xt) in x.iter().zip(&x_true) {
            assert!((xs - xt).abs() < 1e-10);
        }
    }

    #[test]
    fn lu_factors_reusable() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]).unwrap();
        let lu = a.lu().unwrap();
        let x1 = lu.solve(&[5.0, 5.0]).unwrap();
        let x2 = lu.solve(&[4.0, 3.0]).unwrap();
        assert!((x1[0] - 1.0).abs() < 1e-12 && (x1[1] - 2.0).abs() < 1e-12);
        assert!((x2[0] - 1.0).abs() < 1e-12 && (x2[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let _ = Matrix::zeros(2, 2).get(2, 0);
    }

    #[test]
    fn block_solve_lanes_bit_identical_to_single_solves() {
        // A matrix that forces pivoting, so the permutation path of the
        // block solve is exercised too.
        let a = Matrix::from_rows(&[
            &[0.1, 4.0, -1.0, 0.5],
            &[3.0, 0.2, 1.0, -0.7],
            &[-1.0, 1.5, 5.0, 0.3],
            &[0.4, -0.6, 0.8, 2.5],
        ])
        .unwrap();
        let lu = a.lu().unwrap();
        let n = 4;
        let batch = 3;
        let mut rhs = vec![0.0; n * batch];
        let mut singles = Vec::new();
        for lane in 0..batch {
            let b: Vec<f64> = (0..n).map(|i| ((i * 7 + lane * 3) as f64).sin()).collect();
            for i in 0..n {
                rhs[i * batch + lane] = b[i];
            }
            singles.push(lu.solve(&b).unwrap());
        }
        let mut x = vec![0.0; n * batch];
        let mut acc = vec![0.0; batch];
        lu.solve_block_into(&rhs, &mut x, batch, &mut acc).unwrap();
        for (lane, single) in singles.iter().enumerate() {
            for i in 0..n {
                assert_eq!(
                    x[i * batch + lane].to_bits(),
                    single[i].to_bits(),
                    "lane {lane} slot {i}"
                );
            }
        }
        // Mis-sized operands are rejected.
        assert_eq!(
            lu.solve_block_into(&rhs[1..], &mut x, batch, &mut acc),
            Err(LinalgError::DimensionMismatch)
        );
    }

    #[test]
    fn random_spd_systems_solve_accurately() {
        // Deterministic pseudo-random SPD matrices: A = Mᵀ·M + n·I.
        let mut seed = 0x1234_5678_u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for n in [2usize, 5, 9, 14] {
            let mut m = Matrix::zeros(n, n);
            for r in 0..n {
                for c in 0..n {
                    m.set(r, c, next());
                }
            }
            let mut a = Matrix::zeros(n, n);
            for r in 0..n {
                for c in 0..n {
                    let mut dot = 0.0;
                    for k in 0..n {
                        dot += m.get(k, r) * m.get(k, c);
                    }
                    a.set(r, c, dot + if r == c { n as f64 } else { 0.0 });
                }
            }
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
            let b = a.mul_vec(&x_true).unwrap();
            let x = a.solve(&b).unwrap();
            for (xs, xt) in x.iter().zip(&x_true) {
                assert!((xs - xt).abs() < 1e-8, "n={n}: {xs} vs {xt}");
            }
        }
    }
}
