//! RC thermal-network simulation for server digital twins.
//!
//! This crate models a server enclosure as a lumped *thermal RC network*:
//! capacitive nodes (CPU dies, heat sinks, DIMMs, air volumes) exchange
//! heat through couplings, with fixed-temperature boundary nodes for the
//! ambient. Three coupling kinds cover everything the `leakctl` platform
//! needs:
//!
//! - **Conductance** — a fixed conduction path (die → heat sink).
//! - **Convective** — a surface-to-air path whose conductance scales with
//!   the air flow in a named channel (`g = g_min + g_ref·(Q/Q_ref)^n`),
//!   which is how fan speed reaches the thermal model.
//! - **Advective** — a *directed* path modelling bulk air transport
//!   (`g = ṁ·c_p`): the downstream air volume is heated toward the
//!   upstream temperature, reproducing the paper's airflow order where
//!   inlet air crosses the DIMMs before it reaches the CPUs.
//!
//! Transients integrate with a choice of [`Integrator`]s; the air nodes
//! make the system stiff, so the default is the unconditionally stable
//! backward-Euler method. Steady states solve directly through the
//! bundled dense [`linalg`] module.
//!
//! # Example
//!
//! ```
//! use leakctl_thermal::{Coupling, Integrator, ThermalNetworkBuilder};
//! use leakctl_units::{
//!     Celsius, SimDuration, ThermalCapacitance, ThermalConductance, Watts,
//! };
//!
//! # fn main() -> Result<(), leakctl_thermal::ThermalError> {
//! let mut b = ThermalNetworkBuilder::new();
//! let die = b.add_node("die", ThermalCapacitance::new(120.0));
//! let ambient = b.add_boundary("ambient", Celsius::new(24.0));
//! b.connect(die, ambient, Coupling::Conductance(ThermalConductance::new(2.0)));
//! let mut net = b.build()?;
//!
//! net.set_power(die, Watts::new(100.0));
//! let mut state = net.uniform_state(Celsius::new(24.0));
//! for _ in 0..600 {
//!     net.step(&mut state, SimDuration::from_secs(1), Integrator::BackwardEuler)?;
//! }
//! // Steady state: 24 °C + 100 W / 2 W/K = 74 °C.
//! assert!((net.temperature(&state, die).degrees() - 74.0).abs() < 0.5);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod backend;
mod batch;
mod convection;
mod error;
pub mod linalg;
mod network;
mod plant;
mod room;
mod shard;
mod solver;
pub mod sparse;
mod stepper;

pub use backend::{AutoBackend, CsrBackend, DenseBackend, SolverBackend, CSR_NODE_THRESHOLD};
pub use batch::{BatchLane, BatchSolver, PackedLanes};
pub use convection::ConvectionModel;
pub use error::ThermalError;
pub use network::{
    Coupling, FlowChannelId, NodeId, ThermalNetwork, ThermalNetworkBuilder, ThermalState,
};
pub use plant::{ChilledWaterLoop, ChilledWaterSpec};
pub use room::{RoomAirModel, RoomAirSpec};
pub use shard::{
    group_by_structure_hash, HeteroBatch, ShardPlan, ShardedBatchSolver, ShardedLanes, StepKernel,
    THREADS_ENV,
};
pub use solver::Integrator;
pub use stepper::TransientSolver;

/// A [`TransientSolver`] pinned to the dense backend (explicit choice;
/// [`TransientSolver::new`] auto-selects).
pub type DenseTransientSolver = TransientSolver<DenseBackend>;

/// A [`TransientSolver`] pinned to the CSR sparse backend.
pub type CsrTransientSolver = TransientSolver<CsrBackend>;

/// Specific heat capacity of air at constant pressure, J/(kg·K).
pub const AIR_SPECIFIC_HEAT: f64 = 1006.0;

/// Density of air at ~25 °C sea level, kg/m³.
pub const AIR_DENSITY: f64 = 1.184;
