//! Zero-allocation transient stepping engine, generic over a solver
//! backend.
//!
//! The stateless [`ThermalNetwork::step`] reassembles the linear system
//! and (for the implicit method) runs a full factorization on every
//! call. Long transient integrations — the paper's 80-minute runs at
//! 1-second steps, and the dense characterization sweeps behind the
//! LUT — spend almost all of their time in stretches where *nothing*
//! about the system changes: fans hold a constant flow, powers update
//! but only move the source vector, and the step size is fixed.
//!
//! [`TransientSolver`] exploits that structure. It owns preallocated
//! workspace buffers and three caches keyed on the network's
//! cache-invalidation generations (bumped by
//! [`ThermalNetwork::set_flow`] / [`ThermalNetwork::set_power`] /
//! [`ThermalNetwork::set_boundary`] only when a value actually
//! changes):
//!
//! 1. the flow-dependent conductance matrix `G` plus the
//!    boundary-coupling source, invalidated by flow or boundary
//!    changes;
//! 2. the power-injection source vector, invalidated by power changes;
//! 3. the factorization of `(C + h·G)`, keyed on `(h, flow)` — the
//!    common constant-fan/constant-dt stretches pay only a
//!    back-substitution per step, with zero heap allocation.
//!
//! The matrix storage and factorization live behind a pluggable
//! [`SolverBackend`]: dense LU for single-server networks and CSR
//! sparse LU (with a cached symbolic analysis) for rack-scale ones. The
//! default [`AutoBackend`] picks by node count, so existing call sites
//! transparently go sparse at scale while small networks keep the
//! historical bit-exact dense path.
//!
//! The stateless `step()`/`run()` API remains available as a thin
//! wrapper that builds a throwaway solver, so one code path produces
//! both answers.

use leakctl_units::SimDuration;

use crate::backend::{AutoBackend, SolverBackend};
use crate::error::ThermalError;
use crate::network::{ThermalNetwork, ThermalState};
use crate::solver::Integrator;

/// Reusable stepping engine bound to one [`ThermalNetwork`]'s topology.
///
/// Create it once per network with [`TransientSolver::new`] (automatic
/// dense/CSR backend selection) or [`TransientSolver::with_backend`]
/// (explicit backend), and drive every step of a transient through it.
/// The solver may be used with the network it was built from *or any
/// clone of it* — caches key on globally unique generation numbers, so
/// switching between clones is always correct (at worst it costs a
/// re-assembly).
///
/// # Example
///
/// ```
/// use leakctl_thermal::{
///     Coupling, Integrator, ThermalNetworkBuilder, TransientSolver,
/// };
/// use leakctl_units::{
///     Celsius, SimDuration, ThermalCapacitance, ThermalConductance, Watts,
/// };
///
/// # fn main() -> Result<(), leakctl_thermal::ThermalError> {
/// let mut b = ThermalNetworkBuilder::new();
/// let die = b.add_node("die", ThermalCapacitance::new(120.0));
/// let ambient = b.add_boundary("ambient", Celsius::new(24.0));
/// b.connect(die, ambient, Coupling::Conductance(ThermalConductance::new(2.0)));
/// let mut net = b.build()?;
/// net.set_power(die, Watts::new(100.0))?;
///
/// let mut solver = TransientSolver::new(&net);
/// let mut state = net.uniform_state(Celsius::new(24.0));
/// for _ in 0..600 {
///     // After the first step this is allocation-free: cached assembly
///     // plus one back-substitution.
///     solver.step(&net, &mut state, SimDuration::from_secs(1), Integrator::BackwardEuler)?;
/// }
/// assert!((net.temperature(&state, die).degrees() - 74.0).abs() < 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TransientSolver<B: SolverBackend = AutoBackend> {
    n: usize,
    /// Structural identity of the network this solver was built for
    /// (shared by clones); guards the fixed sparsity/capacitance data.
    topology_id: u64,
    /// Matrix storage + factorization engine (dense or CSR).
    backend: B,
    // ---- cached assembly -------------------------------------------
    s_bound: Vec<f64>,
    s_power: Vec<f64>,
    /// Combined source `s = s_power + s_bound`, refreshed when either
    /// part goes stale.
    s: Vec<f64>,
    c: Vec<f64>,
    cond_key: Option<(u64, u64)>,
    power_key: Option<u64>,
    // ---- factorization keys ----------------------------------------
    /// Backward-Euler `(C + h·G)` factorization key: `(h, flow)`.
    be_key: Option<(u64, u64)>,
    /// Steady-state `G` factorization key: flow generation.
    ss_key: Option<u64>,
    // ---- step workspaces -------------------------------------------
    rhs: Vec<f64>,
    x: Vec<f64>,
    gt: Vec<f64>,
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    tmp: Vec<f64>,
}

impl TransientSolver<AutoBackend> {
    /// Builds a solver sized for `net` with all caches cold, selecting
    /// the backend automatically: dense below
    /// [`CSR_NODE_THRESHOLD`](crate::backend::CSR_NODE_THRESHOLD) state
    /// nodes, CSR sparse at or above it.
    #[must_use]
    pub fn new(net: &ThermalNetwork) -> Self {
        Self::with_backend(net)
    }
}

impl<B: SolverBackend> TransientSolver<B> {
    /// Builds a solver for `net` over an explicitly chosen backend —
    /// see [`DenseTransientSolver`](crate::DenseTransientSolver) and
    /// [`CsrTransientSolver`](crate::CsrTransientSolver).
    #[must_use]
    pub fn with_backend(net: &ThermalNetwork) -> Self {
        let n = net.state_count();
        let mut c = vec![0.0; n];
        net.capacitances_into(&mut c);
        Self {
            n,
            topology_id: net.topology_id(),
            backend: B::build(net),
            s_bound: vec![0.0; n],
            s_power: vec![0.0; n],
            s: vec![0.0; n],
            c,
            cond_key: None,
            power_key: None,
            be_key: None,
            ss_key: None,
            rhs: vec![0.0; n],
            x: vec![0.0; n],
            gt: vec![0.0; n],
            k1: vec![0.0; n],
            k2: vec![0.0; n],
            k3: vec![0.0; n],
            tmp: vec![0.0; n],
        }
    }

    /// `true` when the selected backend stores the system sparsely.
    #[must_use]
    pub fn is_sparse(&self) -> bool {
        self.backend.is_sparse()
    }

    /// Panics unless `net` is the network this solver was built for (or
    /// a clone of it). The fixed per-solver data — capacitances and the
    /// backend's structural sparsity — is only valid for that topology,
    /// so a structurally different network of the same dimension must
    /// be rejected rather than silently mis-stepped.
    fn check_topology(&self, net: &ThermalNetwork) {
        assert_eq!(
            net.topology_id(),
            self.topology_id,
            "network is not the one this solver was built for"
        );
    }

    /// Brings the assembled `(G, s, c)` caches up to date with `net`'s
    /// current generations.
    fn refresh(&mut self, net: &ThermalNetwork) {
        let cond_key = (net.flow_generation(), net.boundary_generation());
        let mut source_stale = false;
        if self.cond_key != Some(cond_key) {
            self.backend.assemble_conductance(net, &mut self.s_bound);
            self.cond_key = Some(cond_key);
            source_stale = true;
        }
        let power_key = net.power_generation();
        if self.power_key != Some(power_key) {
            net.assemble_power_into(&mut self.s_power);
            self.power_key = Some(power_key);
            source_stale = true;
        }
        if source_stale {
            for i in 0..self.n {
                self.s[i] = self.s_power[i] + self.s_bound[i];
            }
        }
    }

    /// Advances `state` by `dt` with the chosen integrator, holding
    /// powers, boundary temperatures and flows constant over the step.
    ///
    /// Identical semantics to [`ThermalNetwork::step`]; after warm-up
    /// the call is allocation-free, and with unchanged `(dt, flows)`
    /// the implicit method reuses the cached factorization.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::Diverged`] when the step produced a
    /// non-finite temperature (explicit method with too large a step)
    /// and [`ThermalError::SingularSystem`] when the implicit solve
    /// fails.
    ///
    /// # Panics
    ///
    /// Panics when `net` is not the network this solver was built for
    /// (or a clone of it), or when `state` does not match its
    /// dimension.
    pub fn step(
        &mut self,
        net: &ThermalNetwork,
        state: &mut ThermalState,
        dt: SimDuration,
        method: Integrator,
    ) -> Result<(), ThermalError> {
        if dt.is_zero() {
            return Ok(());
        }
        let n = self.n;
        self.check_topology(net);
        assert_eq!(
            state.temps.len(),
            n,
            "state does not match the solver's dimension"
        );
        self.refresh(net);
        let h = dt.as_secs_f64();
        match method {
            Integrator::ForwardEuler => {
                derivative_into(&self.backend, &self.s, &self.c, &state.temps, &mut self.gt);
                for (t, d) in state.temps.iter_mut().zip(&self.gt) {
                    *t += h * d;
                }
            }
            Integrator::Rk4 => {
                derivative_into(&self.backend, &self.s, &self.c, &state.temps, &mut self.k1);
                for i in 0..n {
                    self.tmp[i] = state.temps[i] + 0.5 * h * self.k1[i];
                }
                derivative_into(&self.backend, &self.s, &self.c, &self.tmp, &mut self.k2);
                for i in 0..n {
                    self.tmp[i] = state.temps[i] + 0.5 * h * self.k2[i];
                }
                derivative_into(&self.backend, &self.s, &self.c, &self.tmp, &mut self.k3);
                for i in 0..n {
                    self.tmp[i] = state.temps[i] + h * self.k3[i];
                }
                // k4 lands in `x`, reusing the solve workspace.
                derivative_into(&self.backend, &self.s, &self.c, &self.tmp, &mut self.x);
                for i in 0..n {
                    state.temps[i] +=
                        h / 6.0 * (self.k1[i] + 2.0 * self.k2[i] + 2.0 * self.k3[i] + self.x[i]);
                }
            }
            Integrator::ExponentialEuler => {
                for i in 0..n {
                    let a = self.backend.g_diag(i) / self.c[i];
                    // Off-diagonal inflow frozen at start-of-step
                    // values; only structurally coupled slots
                    // contribute, so the scan is sparse.
                    let mut inflow = self.s[i];
                    self.backend.g_offdiag_row(i, |j, g| {
                        inflow -= g * state.temps[j];
                    });
                    let r = inflow / self.c[i];
                    self.x[i] = if a.abs() < 1e-300 {
                        state.temps[i] + r * h
                    } else {
                        let t_inf = r / a;
                        t_inf + (state.temps[i] - t_inf) * (-a * h).exp()
                    };
                }
                std::mem::swap(&mut state.temps, &mut self.x);
            }
            Integrator::BackwardEuler => {
                // (C + h·G)·T' = C·T + h·s
                let key = (h.to_bits(), net.flow_generation());
                if self.be_key != Some(key) {
                    if let Err(err) = self.backend.factor_be(&self.c, h) {
                        self.be_key = None;
                        return Err(err);
                    }
                    self.be_key = Some(key);
                }
                for (((rhs, &ci), &ti), &si) in self
                    .rhs
                    .iter_mut()
                    .zip(&self.c)
                    .zip(&state.temps)
                    .zip(&self.s)
                {
                    *rhs = ci * ti + h * si;
                }
                self.backend.solve_be_into(&self.rhs, &mut self.x)?;
                std::mem::swap(&mut state.temps, &mut self.x);
            }
        }
        if let Some(bad) = state.temps.iter().position(|t| !t.is_finite()) {
            return Err(ThermalError::Diverged {
                name: net.slot_name(bad).to_owned(),
            });
        }
        Ok(())
    }

    /// Advances `state` by `total`, internally substepping at `max_dt`
    /// — the cached counterpart of [`ThermalNetwork::run`].
    ///
    /// # Errors
    ///
    /// Propagates errors from [`TransientSolver::step`].
    ///
    /// # Panics
    ///
    /// Panics when `max_dt` is zero.
    pub fn run(
        &mut self,
        net: &ThermalNetwork,
        state: &mut ThermalState,
        total: SimDuration,
        max_dt: SimDuration,
        method: Integrator,
    ) -> Result<(), ThermalError> {
        assert!(!max_dt.is_zero(), "max_dt must be non-zero");
        let mut remaining = total;
        while !remaining.is_zero() {
            let dt = remaining.min(max_dt);
            self.step(net, state, dt, method)?;
            remaining = remaining.saturating_sub(dt);
        }
        Ok(())
    }

    /// Directly solves for the steady-state temperatures under `net`'s
    /// current inputs, writing into `state` — the cached counterpart of
    /// [`ThermalNetwork::steady_state`]. `G`'s factorization is reused
    /// while flows stay constant, so fixed-point iterations that only
    /// move powers (e.g. the leakage–temperature loop) pay one
    /// back-substitution per iteration.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::SingularSystem`] when some capacitive
    /// node has no path to a boundary.
    ///
    /// # Panics
    ///
    /// Panics when `net` is not the network this solver was built for
    /// (or a clone of it), or when `state` does not match its
    /// dimension.
    pub fn steady_state_into(
        &mut self,
        net: &ThermalNetwork,
        state: &mut ThermalState,
    ) -> Result<(), ThermalError> {
        self.check_topology(net);
        assert_eq!(
            state.temps.len(),
            self.n,
            "state does not match the solver's dimension"
        );
        self.refresh(net);
        let key = net.flow_generation();
        if self.ss_key != Some(key) {
            if let Err(err) = self.backend.factor_steady() {
                self.ss_key = None;
                return Err(err);
            }
            self.ss_key = Some(key);
        }
        self.backend.solve_steady_into(&self.s, &mut state.temps)
    }
}

/// `dT/dt = C⁻¹·(s − G·T)`, written into `out` without allocating.
fn derivative_into<B: SolverBackend>(
    backend: &B,
    s: &[f64],
    c: &[f64],
    temps: &[f64],
    out: &mut [f64],
) {
    backend.mul_g_into(temps, out);
    for i in 0..out.len() {
        out[i] = (s[i] - out[i]) / c[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{CsrBackend, DenseBackend};
    use crate::network::{Coupling, ThermalNetworkBuilder};
    use leakctl_units::{AirFlow, Celsius, ThermalCapacitance, ThermalConductance, Watts};

    fn two_node() -> (ThermalNetwork, crate::NodeId, crate::FlowChannelId) {
        let mut b = ThermalNetworkBuilder::new();
        let die = b.add_node("die", ThermalCapacitance::new(100.0));
        let sink = b.add_node("sink", ThermalCapacitance::new(500.0));
        let amb = b.add_boundary("amb", Celsius::new(24.0));
        b.connect(
            die,
            sink,
            Coupling::Conductance(ThermalConductance::new(4.0)),
        )
        .unwrap();
        let ch = b.add_flow_channel("duct");
        let model = crate::ConvectionModel::turbulent(
            ThermalConductance::new(3.0),
            AirFlow::from_cfm(300.0),
        );
        b.connect(sink, amb, Coupling::Convective { channel: ch, model })
            .unwrap();
        let mut net = b.build().unwrap();
        net.set_flow(ch, AirFlow::from_cfm(200.0)).unwrap();
        net.set_power(die, Watts::new(60.0)).unwrap();
        (net, die, ch)
    }

    #[test]
    fn cached_trajectory_matches_stateless_wrapper() {
        for method in [
            Integrator::ForwardEuler,
            Integrator::Rk4,
            Integrator::ExponentialEuler,
            Integrator::BackwardEuler,
        ] {
            let (mut net, die, ch) = two_node();
            let mut solver = TransientSolver::new(&net);
            let mut cached = net.uniform_state(Celsius::new(24.0));
            let mut stateless = net.uniform_state(Celsius::new(24.0));
            let dt = SimDuration::from_millis(500);
            for step in 0..400 {
                // Exercise every invalidation path mid-run.
                if step == 100 {
                    net.set_flow(ch, AirFlow::from_cfm(500.0)).unwrap();
                }
                if step == 200 {
                    net.set_power(die, Watts::new(120.0)).unwrap();
                }
                solver.step(&net, &mut cached, dt, method).unwrap();
                net.step(&mut stateless, dt, method).unwrap();
            }
            for (a, b) in cached.temps.iter().zip(&stateless.temps) {
                assert!(
                    (a - b).abs() <= 1e-12 * a.abs().max(1.0),
                    "{method:?}: cached {a} vs stateless {b}"
                );
            }
        }
    }

    #[test]
    fn csr_backend_matches_dense_backend() {
        for method in [
            Integrator::ForwardEuler,
            Integrator::Rk4,
            Integrator::ExponentialEuler,
            Integrator::BackwardEuler,
        ] {
            let (mut net, die, ch) = two_node();
            let mut dense = TransientSolver::<DenseBackend>::with_backend(&net);
            let mut csr = TransientSolver::<CsrBackend>::with_backend(&net);
            assert!(!dense.is_sparse() && csr.is_sparse());
            let mut sd = net.uniform_state(Celsius::new(24.0));
            let mut sc = net.uniform_state(Celsius::new(24.0));
            let dt = SimDuration::from_millis(500);
            for step in 0..300 {
                if step == 80 {
                    net.set_flow(ch, AirFlow::from_cfm(440.0)).unwrap();
                }
                if step == 160 {
                    net.set_power(die, Watts::new(95.0)).unwrap();
                }
                dense.step(&net, &mut sd, dt, method).unwrap();
                csr.step(&net, &mut sc, dt, method).unwrap();
            }
            for (a, b) in sd.temps.iter().zip(&sc.temps) {
                assert!(
                    (a - b).abs() <= 1e-12 * a.abs().max(1.0),
                    "{method:?}: dense {a} vs csr {b}"
                );
            }
        }
    }

    #[test]
    fn csr_steady_state_matches_dense() {
        let (net, die, _) = two_node();
        let mut dense = TransientSolver::<DenseBackend>::with_backend(&net);
        let mut csr = TransientSolver::<CsrBackend>::with_backend(&net);
        let mut sd = net.uniform_state(Celsius::new(0.0));
        let mut sc = net.uniform_state(Celsius::new(0.0));
        dense.steady_state_into(&net, &mut sd).unwrap();
        csr.steady_state_into(&net, &mut sc).unwrap();
        let a = net.temperature(&sd, die).degrees();
        let b = net.temperature(&sc, die).degrees();
        assert!((a - b).abs() < 1e-10, "dense {a} vs csr {b}");
    }

    #[test]
    fn auto_backend_selects_by_node_count() {
        let (net, _, _) = two_node();
        assert!(!TransientSolver::new(&net).is_sparse());
        // A long chain above the threshold must auto-select CSR.
        let mut b = ThermalNetworkBuilder::new();
        let amb = b.add_boundary("amb", Celsius::new(24.0));
        let mut prev = b.add_node("n0", ThermalCapacitance::new(10.0));
        b.connect(
            prev,
            amb,
            Coupling::Conductance(ThermalConductance::new(1.0)),
        )
        .unwrap();
        for i in 1..crate::backend::CSR_NODE_THRESHOLD {
            let node = b.add_node(&format!("n{i}"), ThermalCapacitance::new(10.0));
            b.connect(
                node,
                prev,
                Coupling::Conductance(ThermalConductance::new(2.0)),
            )
            .unwrap();
            prev = node;
        }
        let big = b.build().unwrap();
        let mut solver = TransientSolver::new(&big);
        assert!(solver.is_sparse());
        // And it steps/solves sanely.
        let mut state = big.uniform_state(Celsius::new(24.0));
        solver
            .step(
                &big,
                &mut state,
                SimDuration::from_secs(1),
                Integrator::BackwardEuler,
            )
            .unwrap();
        assert!(state.is_finite());
    }

    #[test]
    fn steady_state_into_matches_direct_solve() {
        let (net, die, _) = two_node();
        let mut solver = TransientSolver::new(&net);
        let mut state = net.uniform_state(Celsius::new(0.0));
        solver.steady_state_into(&net, &mut state).unwrap();
        let direct = net.steady_state().unwrap();
        assert!(
            (net.temperature(&state, die).degrees() - net.temperature(&direct, die).degrees())
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn steady_state_reuses_factorization_across_power_changes() {
        let (mut net, die, _) = two_node();
        let mut solver = TransientSolver::new(&net);
        let mut state = net.uniform_state(Celsius::new(0.0));
        solver.steady_state_into(&net, &mut state).unwrap();
        let t1 = net.temperature(&state, die).degrees();
        net.set_power(die, Watts::new(120.0)).unwrap();
        solver.steady_state_into(&net, &mut state).unwrap();
        let t2 = net.temperature(&state, die).degrees();
        // Linear network: doubling power doubles the rise.
        assert!(((t2 - 24.0) - 2.0 * (t1 - 24.0)).abs() < 1e-9);
    }

    #[test]
    fn singular_network_reported_and_recoverable() {
        let mut b = ThermalNetworkBuilder::new();
        b.add_node("floating", ThermalCapacitance::new(1.0));
        let net = b.build().unwrap();
        let mut solver = TransientSolver::new(&net);
        let mut state = net.uniform_state(Celsius::new(24.0));
        assert!(matches!(
            solver.steady_state_into(&net, &mut state),
            Err(ThermalError::SingularSystem)
        ));
        // Backward Euler stays solvable: (C + h·G) = C is regular.
        solver
            .step(
                &net,
                &mut state,
                SimDuration::from_secs(1),
                Integrator::BackwardEuler,
            )
            .unwrap();
    }

    #[test]
    fn works_against_a_clone_with_diverged_inputs() {
        let (net, die, _) = two_node();
        let mut clone = net.clone();
        clone.set_power(die, Watts::new(200.0)).unwrap();
        let mut solver = TransientSolver::new(&net);
        let dt = SimDuration::from_secs(1);
        let mut a = net.uniform_state(Celsius::new(24.0));
        let mut b = clone.uniform_state(Celsius::new(24.0));
        // Alternate between the original and the mutated clone; caches
        // must track whichever network each call sees.
        for _ in 0..50 {
            solver
                .step(&net, &mut a, dt, Integrator::BackwardEuler)
                .unwrap();
            solver
                .step(&clone, &mut b, dt, Integrator::BackwardEuler)
                .unwrap();
        }
        let mut fresh = net.uniform_state(Celsius::new(24.0));
        for _ in 0..50 {
            net.step(&mut fresh, dt, Integrator::BackwardEuler).unwrap();
        }
        for (x, y) in a.temps.iter().zip(&fresh.temps) {
            assert!((x - y).abs() <= 1e-12 * x.abs().max(1.0));
        }
        assert!(
            b.temps[0] > a.temps[0] + 1.0,
            "clone at higher power must run hotter"
        );
    }
}
