//! Zero-allocation transient stepping engine.
//!
//! The stateless [`ThermalNetwork::step`] reassembles the linear system
//! and (for the implicit method) runs a full O(n³) LU factorization on
//! every call. Long transient integrations — the paper's 80-minute runs
//! at 1-second steps, and the dense characterization sweeps behind the
//! LUT — spend almost all of their time in stretches where *nothing*
//! about the system changes: fans hold a constant flow, powers update
//! but only move the source vector, and the step size is fixed.
//!
//! [`TransientSolver`] exploits that structure. It owns preallocated
//! workspace buffers and three caches keyed on the network's
//! cache-invalidation generations (bumped by
//! [`ThermalNetwork::set_flow`] / [`ThermalNetwork::set_power`] /
//! [`ThermalNetwork::set_boundary`] only when a value actually
//! changes):
//!
//! 1. the flow-dependent conductance matrix `G` plus the
//!    boundary-coupling source, invalidated by flow or boundary
//!    changes;
//! 2. the power-injection source vector, invalidated by power changes;
//! 3. the LU factorization of `(C + h·G)`, keyed on `(h, flow)` — the
//!    common constant-fan/constant-dt stretches pay only an O(n²)
//!    back-substitution per step, with zero heap allocation.
//!
//! The stateless `step()`/`run()` API remains available as a thin
//! wrapper that builds a throwaway solver, so one code path produces
//! both answers.

use leakctl_units::SimDuration;

use crate::error::ThermalError;
use crate::linalg::{LuFactors, Matrix};
use crate::network::{ThermalNetwork, ThermalState};
use crate::solver::Integrator;

/// Reusable stepping engine bound to one [`ThermalNetwork`]'s topology.
///
/// Create it once per network with [`TransientSolver::new`] and drive
/// every step of a transient through it. The solver may be used with
/// the network it was built from *or any clone of it* — caches key on
/// globally unique generation numbers, so switching between clones is
/// always correct (at worst it costs a re-assembly).
///
/// # Example
///
/// ```
/// use leakctl_thermal::{
///     Coupling, Integrator, ThermalNetworkBuilder, TransientSolver,
/// };
/// use leakctl_units::{
///     Celsius, SimDuration, ThermalCapacitance, ThermalConductance, Watts,
/// };
///
/// # fn main() -> Result<(), leakctl_thermal::ThermalError> {
/// let mut b = ThermalNetworkBuilder::new();
/// let die = b.add_node("die", ThermalCapacitance::new(120.0));
/// let ambient = b.add_boundary("ambient", Celsius::new(24.0));
/// b.connect(die, ambient, Coupling::Conductance(ThermalConductance::new(2.0)));
/// let mut net = b.build()?;
/// net.set_power(die, Watts::new(100.0))?;
///
/// let mut solver = TransientSolver::new(&net);
/// let mut state = net.uniform_state(Celsius::new(24.0));
/// for _ in 0..600 {
///     // After the first step this is allocation-free: cached assembly
///     // plus one back-substitution.
///     solver.step(&net, &mut state, SimDuration::from_secs(1), Integrator::BackwardEuler)?;
/// }
/// assert!((net.temperature(&state, die).degrees() - 74.0).abs() < 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TransientSolver {
    n: usize,
    /// Structural identity of the network this solver was built for
    /// (shared by clones); guards the fixed sparsity/capacitance data.
    topology_id: u64,
    // ---- cached assembly -------------------------------------------
    g: Matrix,
    s_bound: Vec<f64>,
    s_power: Vec<f64>,
    /// Combined source `s = s_power + s_bound`, refreshed when either
    /// part goes stale.
    s: Vec<f64>,
    c: Vec<f64>,
    cond_key: Option<(u64, u64)>,
    power_key: Option<u64>,
    // ---- cached factorizations -------------------------------------
    /// Backward-Euler system `(C + h·G)` build workspace.
    be_m: Matrix,
    be_lu: Option<LuFactors>,
    be_key: Option<(u64, u64)>,
    /// Steady-state factorization of `G` itself.
    ss_lu: Option<LuFactors>,
    ss_key: Option<u64>,
    // ---- structural sparsity (fixed at build) ----------------------
    nbr_offsets: Vec<usize>,
    nbr_cols: Vec<usize>,
    // ---- step workspaces -------------------------------------------
    rhs: Vec<f64>,
    x: Vec<f64>,
    gt: Vec<f64>,
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    tmp: Vec<f64>,
}

impl TransientSolver {
    /// Builds a solver sized for `net`, with all caches cold.
    #[must_use]
    pub fn new(net: &ThermalNetwork) -> Self {
        let n = net.state_count();
        let mut c = vec![0.0; n];
        net.capacitances_into(&mut c);
        let nbrs = net.slot_adjacency();
        let mut nbr_offsets = Vec::with_capacity(n + 1);
        let mut nbr_cols = Vec::new();
        nbr_offsets.push(0);
        for row in &nbrs {
            nbr_cols.extend_from_slice(row);
            nbr_offsets.push(nbr_cols.len());
        }
        Self {
            n,
            topology_id: net.topology_id(),
            g: Matrix::zeros(n, n),
            s_bound: vec![0.0; n],
            s_power: vec![0.0; n],
            s: vec![0.0; n],
            c,
            cond_key: None,
            power_key: None,
            be_m: Matrix::zeros(n, n),
            be_lu: None,
            be_key: None,
            ss_lu: None,
            ss_key: None,
            nbr_offsets,
            nbr_cols,
            rhs: vec![0.0; n],
            x: vec![0.0; n],
            gt: vec![0.0; n],
            k1: vec![0.0; n],
            k2: vec![0.0; n],
            k3: vec![0.0; n],
            tmp: vec![0.0; n],
        }
    }

    /// Panics unless `net` is the network this solver was built for (or
    /// a clone of it). The fixed per-solver data — capacitances and the
    /// structural sparsity used by the exponential integrator — is only
    /// valid for that topology, so a structurally different network of
    /// the same dimension must be rejected rather than silently
    /// mis-stepped.
    fn check_topology(&self, net: &ThermalNetwork) {
        assert_eq!(
            net.topology_id(),
            self.topology_id,
            "network is not the one this solver was built for"
        );
    }

    /// Brings the assembled `(G, s, c)` caches up to date with `net`'s
    /// current generations.
    fn refresh(&mut self, net: &ThermalNetwork) {
        let cond_key = (net.flow_generation(), net.boundary_generation());
        let mut source_stale = false;
        if self.cond_key != Some(cond_key) {
            net.assemble_conductance_into(&mut self.g, &mut self.s_bound);
            self.cond_key = Some(cond_key);
            source_stale = true;
        }
        let power_key = net.power_generation();
        if self.power_key != Some(power_key) {
            net.assemble_power_into(&mut self.s_power);
            self.power_key = Some(power_key);
            source_stale = true;
        }
        if source_stale {
            for i in 0..self.n {
                self.s[i] = self.s_power[i] + self.s_bound[i];
            }
        }
    }

    /// Advances `state` by `dt` with the chosen integrator, holding
    /// powers, boundary temperatures and flows constant over the step.
    ///
    /// Identical semantics to [`ThermalNetwork::step`]; after warm-up
    /// the call is allocation-free, and with unchanged `(dt, flows)`
    /// the implicit method reuses the cached LU factorization.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::Diverged`] when the step produced a
    /// non-finite temperature (explicit method with too large a step)
    /// and [`ThermalError::SingularSystem`] when the implicit solve
    /// fails.
    ///
    /// # Panics
    ///
    /// Panics when `net` is not the network this solver was built for
    /// (or a clone of it), or when `state` does not match its
    /// dimension.
    pub fn step(
        &mut self,
        net: &ThermalNetwork,
        state: &mut ThermalState,
        dt: SimDuration,
        method: Integrator,
    ) -> Result<(), ThermalError> {
        if dt.is_zero() {
            return Ok(());
        }
        let n = self.n;
        self.check_topology(net);
        assert_eq!(
            state.temps.len(),
            n,
            "state does not match the solver's dimension"
        );
        self.refresh(net);
        let h = dt.as_secs_f64();
        match method {
            Integrator::ForwardEuler => {
                derivative_into(&self.g, &self.s, &self.c, &state.temps, &mut self.gt);
                for (t, d) in state.temps.iter_mut().zip(&self.gt) {
                    *t += h * d;
                }
            }
            Integrator::Rk4 => {
                derivative_into(&self.g, &self.s, &self.c, &state.temps, &mut self.k1);
                for i in 0..n {
                    self.tmp[i] = state.temps[i] + 0.5 * h * self.k1[i];
                }
                derivative_into(&self.g, &self.s, &self.c, &self.tmp, &mut self.k2);
                for i in 0..n {
                    self.tmp[i] = state.temps[i] + 0.5 * h * self.k2[i];
                }
                derivative_into(&self.g, &self.s, &self.c, &self.tmp, &mut self.k3);
                for i in 0..n {
                    self.tmp[i] = state.temps[i] + h * self.k3[i];
                }
                // k4 lands in `x`, reusing the solve workspace.
                derivative_into(&self.g, &self.s, &self.c, &self.tmp, &mut self.x);
                for i in 0..n {
                    state.temps[i] +=
                        h / 6.0 * (self.k1[i] + 2.0 * self.k2[i] + 2.0 * self.k3[i] + self.x[i]);
                }
            }
            Integrator::ExponentialEuler => {
                for i in 0..n {
                    let a = self.g.get(i, i) / self.c[i];
                    // Off-diagonal inflow frozen at start-of-step
                    // values; only structurally coupled slots
                    // contribute, so the scan is sparse.
                    let mut inflow = self.s[i];
                    for &j in &self.nbr_cols[self.nbr_offsets[i]..self.nbr_offsets[i + 1]] {
                        inflow -= self.g.get(i, j) * state.temps[j];
                    }
                    let r = inflow / self.c[i];
                    self.x[i] = if a.abs() < 1e-300 {
                        state.temps[i] + r * h
                    } else {
                        let t_inf = r / a;
                        t_inf + (state.temps[i] - t_inf) * (-a * h).exp()
                    };
                }
                std::mem::swap(&mut state.temps, &mut self.x);
            }
            Integrator::BackwardEuler => {
                // (C + h·G)·T' = C·T + h·s
                let key = (h.to_bits(), net.flow_generation());
                if self.be_key != Some(key) {
                    for r in 0..n {
                        for col in 0..n {
                            let mut v = h * self.g.get(r, col);
                            if r == col {
                                v += self.c[r];
                            }
                            self.be_m.set(r, col, v);
                        }
                    }
                    let factored = if let Some(factors) = self.be_lu.as_mut() {
                        self.be_m.lu_into(factors)
                    } else {
                        self.be_m.lu().map(|factors| {
                            self.be_lu = Some(factors);
                        })
                    };
                    if factored.is_err() {
                        self.be_key = None;
                        self.be_lu = None;
                        return Err(ThermalError::SingularSystem);
                    }
                    self.be_key = Some(key);
                }
                let factors = self.be_lu.as_ref().expect("factorization cached above");
                for (((rhs, &ci), &ti), &si) in self
                    .rhs
                    .iter_mut()
                    .zip(&self.c)
                    .zip(&state.temps)
                    .zip(&self.s)
                {
                    *rhs = ci * ti + h * si;
                }
                factors
                    .solve_into(&self.rhs, &mut self.x)
                    .map_err(|_| ThermalError::SingularSystem)?;
                std::mem::swap(&mut state.temps, &mut self.x);
            }
        }
        if let Some(bad) = state.temps.iter().position(|t| !t.is_finite()) {
            return Err(ThermalError::Diverged {
                name: net.slot_name(bad).to_owned(),
            });
        }
        Ok(())
    }

    /// Advances `state` by `total`, internally substepping at `max_dt`
    /// — the cached counterpart of [`ThermalNetwork::run`].
    ///
    /// # Errors
    ///
    /// Propagates errors from [`TransientSolver::step`].
    ///
    /// # Panics
    ///
    /// Panics when `max_dt` is zero.
    pub fn run(
        &mut self,
        net: &ThermalNetwork,
        state: &mut ThermalState,
        total: SimDuration,
        max_dt: SimDuration,
        method: Integrator,
    ) -> Result<(), ThermalError> {
        assert!(!max_dt.is_zero(), "max_dt must be non-zero");
        let mut remaining = total;
        while !remaining.is_zero() {
            let dt = remaining.min(max_dt);
            self.step(net, state, dt, method)?;
            remaining = remaining.saturating_sub(dt);
        }
        Ok(())
    }

    /// Directly solves for the steady-state temperatures under `net`'s
    /// current inputs, writing into `state` — the cached counterpart of
    /// [`ThermalNetwork::steady_state`]. `G`'s factorization is reused
    /// while flows stay constant, so fixed-point iterations that only
    /// move powers (e.g. the leakage–temperature loop) pay one O(n²)
    /// back-substitution per iteration.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::SingularSystem`] when some capacitive
    /// node has no path to a boundary.
    ///
    /// # Panics
    ///
    /// Panics when `net` is not the network this solver was built for
    /// (or a clone of it), or when `state` does not match its
    /// dimension.
    pub fn steady_state_into(
        &mut self,
        net: &ThermalNetwork,
        state: &mut ThermalState,
    ) -> Result<(), ThermalError> {
        self.check_topology(net);
        assert_eq!(
            state.temps.len(),
            self.n,
            "state does not match the solver's dimension"
        );
        self.refresh(net);
        let key = net.flow_generation();
        if self.ss_key != Some(key) {
            let factored = if let Some(factors) = self.ss_lu.as_mut() {
                self.g.lu_into(factors)
            } else {
                self.g.lu().map(|factors| {
                    self.ss_lu = Some(factors);
                })
            };
            if factored.is_err() {
                self.ss_key = None;
                self.ss_lu = None;
                return Err(ThermalError::SingularSystem);
            }
            self.ss_key = Some(key);
        }
        self.ss_lu
            .as_ref()
            .expect("factorization cached above")
            .solve_into(&self.s, &mut state.temps)
            .map_err(|_| ThermalError::SingularSystem)
    }
}

/// `dT/dt = C⁻¹·(s − G·T)`, written into `out` without allocating.
fn derivative_into(g_mat: &Matrix, s: &[f64], c: &[f64], temps: &[f64], out: &mut [f64]) {
    g_mat
        .mul_vec_into(temps, out)
        .expect("assemble produces consistent dimensions");
    for i in 0..out.len() {
        out[i] = (s[i] - out[i]) / c[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Coupling, ThermalNetworkBuilder};
    use leakctl_units::{AirFlow, Celsius, ThermalCapacitance, ThermalConductance, Watts};

    fn two_node() -> (ThermalNetwork, crate::NodeId, crate::FlowChannelId) {
        let mut b = ThermalNetworkBuilder::new();
        let die = b.add_node("die", ThermalCapacitance::new(100.0));
        let sink = b.add_node("sink", ThermalCapacitance::new(500.0));
        let amb = b.add_boundary("amb", Celsius::new(24.0));
        b.connect(
            die,
            sink,
            Coupling::Conductance(ThermalConductance::new(4.0)),
        )
        .unwrap();
        let ch = b.add_flow_channel("duct");
        let model = crate::ConvectionModel::turbulent(
            ThermalConductance::new(3.0),
            AirFlow::from_cfm(300.0),
        );
        b.connect(sink, amb, Coupling::Convective { channel: ch, model })
            .unwrap();
        let mut net = b.build().unwrap();
        net.set_flow(ch, AirFlow::from_cfm(200.0)).unwrap();
        net.set_power(die, Watts::new(60.0)).unwrap();
        (net, die, ch)
    }

    #[test]
    fn cached_trajectory_matches_stateless_wrapper() {
        for method in [
            Integrator::ForwardEuler,
            Integrator::Rk4,
            Integrator::ExponentialEuler,
            Integrator::BackwardEuler,
        ] {
            let (mut net, die, ch) = two_node();
            let mut solver = TransientSolver::new(&net);
            let mut cached = net.uniform_state(Celsius::new(24.0));
            let mut stateless = net.uniform_state(Celsius::new(24.0));
            let dt = SimDuration::from_millis(500);
            for step in 0..400 {
                // Exercise every invalidation path mid-run.
                if step == 100 {
                    net.set_flow(ch, AirFlow::from_cfm(500.0)).unwrap();
                }
                if step == 200 {
                    net.set_power(die, Watts::new(120.0)).unwrap();
                }
                solver.step(&net, &mut cached, dt, method).unwrap();
                net.step(&mut stateless, dt, method).unwrap();
            }
            for (a, b) in cached.temps.iter().zip(&stateless.temps) {
                assert!(
                    (a - b).abs() <= 1e-12 * a.abs().max(1.0),
                    "{method:?}: cached {a} vs stateless {b}"
                );
            }
        }
    }

    #[test]
    fn steady_state_into_matches_direct_solve() {
        let (net, die, _) = two_node();
        let mut solver = TransientSolver::new(&net);
        let mut state = net.uniform_state(Celsius::new(0.0));
        solver.steady_state_into(&net, &mut state).unwrap();
        let direct = net.steady_state().unwrap();
        assert!(
            (net.temperature(&state, die).degrees() - net.temperature(&direct, die).degrees())
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn steady_state_reuses_factorization_across_power_changes() {
        let (mut net, die, _) = two_node();
        let mut solver = TransientSolver::new(&net);
        let mut state = net.uniform_state(Celsius::new(0.0));
        solver.steady_state_into(&net, &mut state).unwrap();
        let t1 = net.temperature(&state, die).degrees();
        net.set_power(die, Watts::new(120.0)).unwrap();
        solver.steady_state_into(&net, &mut state).unwrap();
        let t2 = net.temperature(&state, die).degrees();
        // Linear network: doubling power doubles the rise.
        assert!(((t2 - 24.0) - 2.0 * (t1 - 24.0)).abs() < 1e-9);
    }

    #[test]
    fn singular_network_reported_and_recoverable() {
        let mut b = ThermalNetworkBuilder::new();
        b.add_node("floating", ThermalCapacitance::new(1.0));
        let net = b.build().unwrap();
        let mut solver = TransientSolver::new(&net);
        let mut state = net.uniform_state(Celsius::new(24.0));
        assert!(matches!(
            solver.steady_state_into(&net, &mut state),
            Err(ThermalError::SingularSystem)
        ));
        // Backward Euler stays solvable: (C + h·G) = C is regular.
        solver
            .step(
                &net,
                &mut state,
                SimDuration::from_secs(1),
                Integrator::BackwardEuler,
            )
            .unwrap();
    }

    #[test]
    fn works_against_a_clone_with_diverged_inputs() {
        let (net, die, _) = two_node();
        let mut clone = net.clone();
        clone.set_power(die, Watts::new(200.0)).unwrap();
        let mut solver = TransientSolver::new(&net);
        let dt = SimDuration::from_secs(1);
        let mut a = net.uniform_state(Celsius::new(24.0));
        let mut b = clone.uniform_state(Celsius::new(24.0));
        // Alternate between the original and the mutated clone; caches
        // must track whichever network each call sees.
        for _ in 0..50 {
            solver
                .step(&net, &mut a, dt, Integrator::BackwardEuler)
                .unwrap();
            solver
                .step(&clone, &mut b, dt, Integrator::BackwardEuler)
                .unwrap();
        }
        let mut fresh = net.uniform_state(Celsius::new(24.0));
        for _ in 0..50 {
            net.step(&mut fresh, dt, Integrator::BackwardEuler).unwrap();
        }
        for (x, y) in a.temps.iter().zip(&fresh.temps) {
            assert!((x - y).abs() <= 1e-12 * x.abs().max(1.0));
        }
        assert!(
            b.temps[0] > a.temps[0] + 1.0,
            "clone at higher power must run hotter"
        );
    }
}
