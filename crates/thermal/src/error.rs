//! Error type for thermal-network construction and solving.

use core::fmt;

/// Errors produced while building or solving a thermal network.
#[derive(Debug, Clone, PartialEq)]
pub enum ThermalError {
    /// The network has no capacitive nodes, so there is nothing to solve.
    NoCapacitiveNodes,
    /// A node id referred to a different network or out-of-range slot.
    UnknownNode {
        /// The offending index.
        index: usize,
    },
    /// A flow-channel id referred to a different network.
    UnknownChannel {
        /// The offending index.
        index: usize,
    },
    /// A coupling was created with a non-positive or non-finite value.
    InvalidCoupling {
        /// Description of the invalid parameter.
        what: &'static str,
    },
    /// The system matrix was singular — typically a capacitive node with
    /// no path (even indirect) to any boundary node.
    SingularSystem,
    /// A capacitance was non-positive.
    InvalidCapacitance {
        /// Node name.
        name: String,
    },
    /// Integration produced a non-finite temperature (step too large for
    /// the chosen explicit method).
    Diverged {
        /// Name of the first offending node.
        name: String,
    },
    /// A packed batch step requires every lane to share one flow
    /// signature (use the per-lane `BatchSolver::step` API for fleets
    /// with diverged fan speeds).
    MixedBatchSignatures,
    /// A room air-model spec was inconsistent (rack counts, tile
    /// flows, recirculation fraction out of range).
    InvalidRoom {
        /// Description of the problem.
        what: &'static str,
    },
    /// A chilled-water plant spec or fault knob was invalid
    /// (non-finite temperature, availability outside `[0, 1]`, …).
    InvalidPlant {
        /// Description of the problem.
        what: &'static str,
    },
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoCapacitiveNodes => write!(f, "network has no capacitive nodes"),
            Self::UnknownNode { index } => write!(f, "unknown node id {index}"),
            Self::UnknownChannel { index } => write!(f, "unknown flow channel id {index}"),
            Self::InvalidCoupling { what } => write!(f, "invalid coupling: {what}"),
            Self::SingularSystem => {
                write!(f, "singular thermal system (node without a boundary path?)")
            }
            Self::InvalidCapacitance { name } => {
                write!(f, "node {name} has non-positive capacitance")
            }
            Self::Diverged { name } => write!(
                f,
                "integration diverged at node {name} (reduce the step or use an implicit method)"
            ),
            Self::MixedBatchSignatures => write!(
                f,
                "packed batch step requires all lanes to share one flow signature"
            ),
            Self::InvalidRoom { what } => write!(f, "invalid room spec: {what}"),
            Self::InvalidPlant { what } => write!(f, "invalid chilled-water plant: {what}"),
        }
    }
}

impl std::error::Error for ThermalError {}
