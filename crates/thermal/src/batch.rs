//! Batched backward-Euler stepping of many identical-topology networks
//! through shared factorizations.
//!
//! A rack of identically configured servers steps N copies of the same
//! thermal network. Per-server [`TransientSolver`](crate::TransientSolver)s
//! already avoid refactoring during constant-flow stretches, but they
//! still pay N separate back-substitutions on N separate copies of the
//! *same* matrix — same topology, same conductances, same `(dt, flow)`
//! key ⇒ bit-identical `(C + h·G)`.
//!
//! [`BatchSolver`] shares that work. Lanes (network/state pairs) are
//! grouped by their `(dt, flow-values)` signature; each group factors
//! `(C + h·G)` once and back-substitutes all members as one slot-major
//! blocked multi-RHS solve whose inner loops run over contiguous lanes
//! and vectorize. Per-lane inputs that live in the right-hand side —
//! power injections and boundary (inlet) temperatures — stay fully
//! independent, cached per lane on the network's invalidation
//! generations.
//!
//! Every lane's arithmetic is bit-identical to stepping it alone
//! through a `TransientSolver` with the same backend: assembly,
//! factorization and the per-lane accumulation order of the block
//! substitution all match the scalar path exactly. A fleet of one
//! therefore reproduces the single-server trajectory to the last bit.
//!
//! Batching is defined for the implicit backward-Euler method only —
//! the integrator where a shared factorization exists. Explicit
//! integrators have no factorization to share; step those lanes
//! individually.

use std::borrow::Borrow;

use leakctl_units::SimDuration;

use crate::backend::{AutoBackend, SolverBackend};
use crate::error::ThermalError;
use crate::network::{ThermalNetwork, ThermalState};

/// One batch member: a network (read side: inputs and generations) and
/// its temperature state (advanced in place).
#[derive(Debug)]
pub struct BatchLane<'a> {
    /// The lane's network; must be structurally identical to the batch
    /// template (same [`structure_hash`](ThermalNetwork::structure_hash)).
    pub net: &'a ThermalNetwork,
    /// The lane's temperature state.
    pub state: &'a mut ThermalState,
}

/// Slot-major packed lane states for [`BatchSolver::step_packed`], the
/// homogeneous-flow fast path: temperatures and cached sources live as
/// `n × batch` blocks (`[slot * batch + lane]`) that persist across
/// steps, so the per-step right-hand-side build, solve and divergence
/// check all run over contiguous memory with no per-lane gather or
/// scatter. Trajectories are bit-identical to the per-lane
/// [`BatchSolver::step`] API (and therefore to scalar stepping).
///
/// Pack once with [`PackedLanes::pack`], step many times, and
/// [`PackedLanes::unpack_into`] whenever per-lane [`ThermalState`]s are
/// needed again.
#[derive(Debug, Clone)]
pub struct PackedLanes {
    n: usize,
    batch: usize,
    /// Temperatures, `temps[slot * batch + lane]`.
    temps: Vec<f64>,
    /// Combined per-lane sources `s = s_power + s_bound`,
    /// `s[slot * batch + lane]` — the layout the per-step RHS build
    /// streams over.
    s: Vec<f64>,
    /// *Lane-major* staging halves of `s`
    /// (`stage_power[lane * n + slot]`): a lane's source assembly
    /// writes one contiguous `n`-slice instead of `n` stride-`batch`
    /// scatters, and a dense refresh (every lane changed, the dynamic
    /// fleet regime) recombines into `s` with one cache-friendly
    /// transpose pass over an L1-resident staging block. Cached halves
    /// are kept separate so a power-only change refreshes without
    /// re-walking the boundary edges and vice versa.
    stage_power: Vec<f64>,
    stage_bound: Vec<f64>,
    /// Lanes whose staging changed this refresh and still need their
    /// `s` column recombined.
    dirty: Vec<bool>,
    /// `false` while `s` lags the staging buffers (a dense refresh
    /// defers the recombine: the RHS build reads the staging directly
    /// that step, and `s` is rebuilt lazily on the next sparse/clean
    /// step).
    s_valid: bool,
    /// Slot → node index map of the (shared) topology, captured at the
    /// first refresh and keyed on the structure hash it was captured
    /// under (re-captured if a different-topology solver ever drives
    /// this block): power staging then reads each lane's raw power
    /// array directly instead of re-deriving the mapping per lane.
    slot_map: Vec<usize>,
    slot_map_key: Option<u64>,
    // Per-lane source-cache keys (same invalidation protocol as the
    // scalar solver).
    cond_keys: Vec<Option<(u64, u64)>>,
    power_keys: Vec<Option<u64>>,
    /// Flow generation seen per lane at the last signature check; any
    /// change forces a homogeneity recheck.
    flow_gens: Vec<u64>,
    /// `true` while every lane is known to share the reference flow
    /// signature.
    homogeneous: bool,
    // Per-shard solve workspaces (each packed block owns its own, so
    // shards solve concurrently without touching the solver).
    rhs: Vec<f64>,
    acc: Vec<f64>,
}

impl PackedLanes {
    /// Packs per-lane states into slot-major block storage.
    ///
    /// # Panics
    ///
    /// Panics when `states` is empty or the states disagree in
    /// dimension.
    #[must_use]
    pub fn pack(states: &[ThermalState]) -> Self {
        assert!(!states.is_empty(), "packed batch needs at least one lane");
        let n = states[0].temps.len();
        let batch = states.len();
        let mut temps = vec![0.0; n * batch];
        for (lane, state) in states.iter().enumerate() {
            assert_eq!(state.temps.len(), n, "lane states must agree in dimension");
            for (slot, &t) in state.temps.iter().enumerate() {
                temps[slot * batch + lane] = t;
            }
        }
        Self {
            n,
            batch,
            temps,
            s: vec![0.0; n * batch],
            stage_power: vec![0.0; n * batch],
            stage_bound: vec![0.0; n * batch],
            dirty: vec![false; batch],
            s_valid: true,
            slot_map: Vec::new(),
            slot_map_key: None,
            cond_keys: vec![None; batch],
            power_keys: vec![None; batch],
            flow_gens: vec![0; batch],
            homogeneous: false,
            rhs: vec![0.0; n * batch],
            acc: vec![0.0; batch],
        }
    }

    /// Number of lanes.
    #[must_use]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// State dimension per lane.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.n
    }

    /// Writes the packed temperatures back into per-lane states.
    ///
    /// # Panics
    ///
    /// Panics when `states` does not match the packed batch shape.
    pub fn unpack_into(&self, states: &mut [ThermalState]) {
        assert_eq!(states.len(), self.batch, "state count must match batch");
        for (lane, state) in states.iter_mut().enumerate() {
            assert_eq!(state.temps.len(), self.n, "lane state dimension");
            for (slot, t) in state.temps.iter_mut().enumerate() {
                *t = self.temps[slot * self.batch + lane];
            }
        }
    }

    /// The hottest packed temperature across all lanes.
    #[must_use]
    pub fn max_temperature(&self) -> f64 {
        self.temps.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Writes one lane's packed temperatures back into `state`.
    ///
    /// # Panics
    ///
    /// Panics when `lane` is out of range or `state` has the wrong
    /// dimension.
    pub fn unpack_lane_into(&self, lane: usize, state: &mut ThermalState) {
        assert!(lane < self.batch, "lane out of range");
        assert_eq!(state.temps.len(), self.n, "lane state dimension");
        for (slot, t) in state.temps.iter_mut().enumerate() {
            *t = self.temps[slot * self.batch + lane];
        }
    }

    /// Copies only the given state slots of one lane into `state` —
    /// the cheap sync fleet engines use per step for the few slots
    /// (CPU dies) that per-server dynamics read, deferring the full
    /// unpack to telemetry boundaries.
    ///
    /// # Panics
    ///
    /// Panics when `lane` or a slot is out of range or `state` has the
    /// wrong dimension.
    pub fn copy_lane_slots_into(&self, lane: usize, slots: &[usize], state: &mut ThermalState) {
        assert!(lane < self.batch, "lane out of range");
        assert_eq!(state.temps.len(), self.n, "lane state dimension");
        for &slot in slots {
            state.temps[slot] = self.temps[slot * self.batch + lane];
        }
    }

    /// One packed temperature, `(lane, slot)`.
    ///
    /// # Panics
    ///
    /// Panics when `lane` or `slot` is out of range.
    #[must_use]
    pub fn lane_temperature(&self, lane: usize, slot: usize) -> f64 {
        assert!(lane < self.batch && slot < self.n, "lane/slot out of range");
        self.temps[slot * self.batch + lane]
    }

    /// Refreshes the packed source block from each lane's network,
    /// change-driven on the networks' invalidation generations.
    /// Returns `true` when any lane's flow generation moved (the caller
    /// must then recheck flow homogeneity).
    ///
    /// A stale lane assembles into its contiguous *lane-major* staging
    /// slice; afterwards the dirty columns of the slot-major `s` block
    /// are recombined — one dense transpose pass over the L1-resident
    /// staging block when most lanes changed (the dynamic fleet
    /// regime), or per-lane strided column updates when changes are
    /// sparse. Values and addition order match the scalar solver's
    /// `s = s_power + s_bound` exactly, so trajectories stay
    /// bit-identical.
    ///
    /// # Panics
    ///
    /// Panics when a lane's network does not match `structure_hash` or
    /// the packed dimension.
    pub(crate) fn refresh_sources<'n, F>(&mut self, net_of: F, structure_hash: u64) -> bool
    where
        F: Fn(usize) -> &'n ThermalNetwork,
    {
        let n = self.n;
        let batch = self.batch;
        if self.slot_map_key != Some(structure_hash) {
            self.slot_map.clear();
            self.slot_map.extend_from_slice(net_of(0).slot_to_node());
            self.slot_map_key = Some(structure_hash);
        }
        let mut flows_moved = false;
        let mut dirty_count = 0usize;
        for lane in 0..batch {
            let net = net_of(lane);
            assert_eq!(
                net.structure_hash(),
                structure_hash,
                "lane network is not structurally identical to the batch template"
            );
            assert_eq!(net.state_count(), n, "lane network dimension");
            let flow_gen = net.flow_generation();
            if self.flow_gens[lane] != flow_gen {
                self.flow_gens[lane] = flow_gen;
                flows_moved = true;
            }
            let cond_key = (flow_gen, net.boundary_generation());
            let power_key = net.power_generation();
            let mut stale = false;
            if self.cond_keys[lane] != Some(cond_key) {
                net.assemble_boundary_source_into(&mut self.stage_bound[lane * n..(lane + 1) * n]);
                self.cond_keys[lane] = Some(cond_key);
                stale = true;
            }
            if self.power_keys[lane] != Some(power_key) {
                let powers = net.powers_raw();
                for (stage, &node) in self.stage_power[lane * n..(lane + 1) * n]
                    .iter_mut()
                    .zip(&self.slot_map)
                {
                    *stage = powers[node];
                }
                self.power_keys[lane] = Some(power_key);
                stale = true;
            }
            if stale && !self.dirty[lane] {
                self.dirty[lane] = true;
                dirty_count += 1;
            }
        }
        if dirty_count == 0 && self.s_valid {
            return flows_moved;
        }
        if dirty_count * 2 >= batch {
            // Dense refresh (the dynamic fleet regime: most lanes
            // changed): defer the recombine entirely — the RHS build
            // reads the staging block directly this step, skipping one
            // full write+read pass over `s`.
            self.s_valid = false;
        } else if !self.s_valid || dirty_count * 4 >= batch {
            // Recombine every column in one transpose pass —
            // contiguous writes per slot row, gather reads from a
            // staging block small enough to stay cache-resident. Clean
            // columns are rewritten with their (identical) staged
            // values, which is exact.
            for slot in 0..n {
                let row = slot * batch;
                let s_row = &mut self.s[row..row + batch];
                for (lane, s) in s_row.iter_mut().enumerate() {
                    let at = lane * n + slot;
                    *s = self.stage_power[at] + self.stage_bound[at];
                }
            }
            self.s_valid = true;
        } else {
            for lane in 0..batch {
                if !self.dirty[lane] {
                    continue;
                }
                for slot in 0..n {
                    let at = lane * n + slot;
                    self.s[slot * batch + lane] = self.stage_power[at] + self.stage_bound[at];
                }
            }
        }
        self.dirty[..batch].fill(false);
        flows_moved
    }

    /// Builds the backward-Euler right-hand side `C·T + h·s` for every
    /// lane and solves the block through `backend`'s cached `(C + h·G)`
    /// factors, advancing the packed temperatures in place. The whole
    /// step streams over contiguous slot-major rows; per-lane
    /// arithmetic is bit-identical to a scalar solve.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::SingularSystem`] when the backend holds
    /// no valid factors and [`ThermalError::Diverged`] (named through
    /// `net_of`) on a non-finite result.
    pub(crate) fn solve_be_block<'n, B, F>(
        &mut self,
        backend: &B,
        c: &[f64],
        h: f64,
        net_of: F,
    ) -> Result<(), ThermalError>
    where
        B: SolverBackend,
        F: Fn(usize) -> &'n ThermalNetwork,
    {
        let n = self.n;
        let batch = self.batch;
        if self.s_valid {
            for (slot, &ci) in c.iter().enumerate() {
                let row = slot * batch;
                let temps = &self.temps[row..row + batch];
                let s_row = &self.s[row..row + batch];
                for ((r, &t), &si) in self.rhs[row..row + batch].iter_mut().zip(temps).zip(s_row) {
                    *r = ci * t + h * si;
                }
            }
        } else {
            // Deferred recombine: fold `s = s_power + s_bound` into the
            // RHS build straight from the lane-major staging (same
            // operand order as the recombine pass, so values are
            // bit-identical).
            for (slot, &ci) in c.iter().enumerate() {
                let row = slot * batch;
                let temps = &self.temps[row..row + batch];
                for (lane, (r, &t)) in self.rhs[row..row + batch].iter_mut().zip(temps).enumerate()
                {
                    let at = lane * n + slot;
                    let si = self.stage_power[at] + self.stage_bound[at];
                    *r = ci * t + h * si;
                }
            }
        }
        backend.solve_be_block_into(&self.rhs, &mut self.temps, batch, &mut self.acc)?;
        if let Some(bad) = self.temps.iter().position(|t| !t.is_finite()) {
            let slot = bad / batch;
            let lane = bad % batch;
            return Err(ThermalError::Diverged {
                name: net_of(lane).slot_name(slot).to_owned(),
            });
        }
        Ok(())
    }
}

/// Per-lane cached right-hand-side assembly, keyed on the lane
/// network's invalidation generations (mirrors the source caches of a
/// scalar `TransientSolver`).
#[derive(Debug, Clone)]
struct LaneCache {
    cond_key: Option<(u64, u64)>,
    power_key: Option<u64>,
    s_bound: Vec<f64>,
    s_power: Vec<f64>,
    s: Vec<f64>,
    /// Cached group assignment, valid while the lane's flow generation,
    /// the step size and the group table's epoch are all unchanged.
    group: usize,
    group_flow_gen: u64,
    group_h_bits: u64,
    group_epoch: u64,
}

impl LaneCache {
    fn new(n: usize) -> Self {
        Self {
            cond_key: None,
            power_key: None,
            s_bound: vec![0.0; n],
            s_power: vec![0.0; n],
            s: vec![0.0; n],
            group: usize::MAX,
            group_flow_gen: 0,
            group_h_bits: 0,
            group_epoch: 0,
        }
    }
}

/// One shared factorization: all lanes whose `(h, flow-values)`
/// signature matches `key` step through this backend's `(C + h·G)`
/// factors.
#[derive(Debug, Clone)]
struct GroupCache<B> {
    /// `(h.to_bits(), per-channel flow bits)`.
    key: (u64, Vec<u64>),
    backend: B,
    /// Step counter of the last use, for LRU replacement.
    last_used: u64,
}

/// Upper bound on retained shared factorizations. Fan-slew transients
/// mint a new flow signature every step; beyond this many live groups
/// the least-recently-used one is recycled.
const MAX_GROUPS: usize = 32;

/// Steps N identical-topology networks through shared backward-Euler
/// factorizations with a blocked multi-RHS substitution.
///
/// Build it from any network of the target topology (the *template* —
/// only its structure is read), then call [`BatchSolver::step`] with
/// the fleet's lanes each step. Lanes may diverge freely in powers and
/// boundary temperatures (right-hand side, always per-lane) and even in
/// flows (the batch splits into per-signature groups, each with its own
/// shared factorization).
///
/// # Example
///
/// ```
/// use leakctl_thermal::{
///     BatchLane, BatchSolver, Coupling, ThermalNetworkBuilder,
/// };
/// use leakctl_units::{Celsius, SimDuration, ThermalCapacitance, ThermalConductance, Watts};
///
/// # fn main() -> Result<(), leakctl_thermal::ThermalError> {
/// let build = || {
///     let mut b = ThermalNetworkBuilder::new();
///     let die = b.add_node("die", ThermalCapacitance::new(120.0));
///     let amb = b.add_boundary("ambient", Celsius::new(24.0));
///     b.connect(die, amb, Coupling::Conductance(ThermalConductance::new(2.0)))
///         .unwrap();
///     (b.build().unwrap(), die)
/// };
/// let (mut a, die_a) = build();
/// let (mut b, die_b) = build();
/// a.set_power(die_a, Watts::new(50.0))?;
/// b.set_power(die_b, Watts::new(100.0))?;
///
/// let mut solver = BatchSolver::new(&a);
/// let mut state_a = a.uniform_state(Celsius::new(24.0));
/// let mut state_b = b.uniform_state(Celsius::new(24.0));
/// for _ in 0..600 {
///     let mut lanes = [
///         BatchLane { net: &a, state: &mut state_a },
///         BatchLane { net: &b, state: &mut state_b },
///     ];
///     solver.step(&mut lanes, SimDuration::from_secs(1))?;
/// }
/// // Twice the power, twice the rise — through one factorization.
/// assert!((a.temperature(&state_a, die_a).degrees() - 49.0).abs() < 0.5);
/// assert!((b.temperature(&state_b, die_b).degrees() - 74.0).abs() < 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BatchSolver<B: SolverBackend = AutoBackend> {
    n: usize,
    structure_hash: u64,
    /// Pristine backend built once from the template: cloned per group
    /// so shared immutable setup (notably the CSR symbolic analysis)
    /// is never recomputed.
    backend_template: B,
    c: Vec<f64>,
    lanes: Vec<LaneCache>,
    groups: Vec<GroupCache<B>>,
    step_counter: u64,
    /// Bumped whenever a group slot is recycled; invalidates every
    /// lane's sticky group index (indices stay stable on append).
    groups_epoch: u64,
    /// Sticky shared-group assignment for the packed fast path:
    /// `(group index, groups_epoch, h_bits, lane-0 flow generation)`.
    packed_group: Option<(usize, u64, u64, u64)>,
    // ---- reusable workspaces ---------------------------------------
    sig_scratch: Vec<u64>,
    s_bound_scratch: Vec<f64>,
    rhs_block: Vec<f64>,
    x_block: Vec<f64>,
    acc: Vec<f64>,
    /// Lane indices ordered group-by-group for the current step.
    order: Vec<usize>,
    group_counts: Vec<usize>,
    group_offsets: Vec<usize>,
    group_cursor: Vec<usize>,
}

impl BatchSolver<AutoBackend> {
    /// Builds a batch solver for the template's topology with automatic
    /// dense/CSR backend selection (matching what
    /// [`TransientSolver::new`](crate::TransientSolver::new) would pick
    /// for the same network).
    #[must_use]
    pub fn new(template: &ThermalNetwork) -> Self {
        Self::with_backend(template)
    }
}

impl<B: SolverBackend + Clone> BatchSolver<B> {
    /// Builds a batch solver for the template's topology over an
    /// explicit backend.
    #[must_use]
    pub fn with_backend(template: &ThermalNetwork) -> Self {
        let n = template.state_count();
        let mut c = vec![0.0; n];
        template.capacitances_into(&mut c);
        Self {
            n,
            structure_hash: template.structure_hash(),
            backend_template: B::build(template),
            c,
            lanes: Vec::new(),
            groups: Vec::new(),
            step_counter: 0,
            groups_epoch: 0,
            packed_group: None,
            sig_scratch: Vec::new(),
            s_bound_scratch: vec![0.0; n],
            rhs_block: Vec::new(),
            x_block: Vec::new(),
            acc: Vec::new(),
            order: Vec::new(),
            group_counts: Vec::new(),
            group_offsets: Vec::new(),
            group_cursor: Vec::new(),
        }
    }

    /// Number of live shared factorizations (diagnostics: 1 while the
    /// whole fleet shares one `(dt, flow)` operating point).
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Advances every lane by `dt` with the implicit backward-Euler
    /// method, sharing one `(C + h·G)` factorization per `(dt, flow)`
    /// signature and back-substituting each group as a blocked
    /// multi-RHS solve.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::SingularSystem`] when a factorization
    /// fails and [`ThermalError::Diverged`] when a lane produced a
    /// non-finite temperature.
    ///
    /// # Panics
    ///
    /// Panics when a lane's network is not structurally identical to
    /// the template (different
    /// [`structure_hash`](ThermalNetwork::structure_hash)) or a state
    /// has the wrong dimension.
    pub fn step(
        &mut self,
        lanes: &mut [BatchLane<'_>],
        dt: SimDuration,
    ) -> Result<(), ThermalError> {
        if dt.is_zero() || lanes.is_empty() {
            return Ok(());
        }
        let n = self.n;
        let h = dt.as_secs_f64();
        let h_bits = h.to_bits();
        self.step_counter += 1;

        if self.lanes.len() != lanes.len() {
            self.lanes.resize_with(lanes.len(), || LaneCache::new(n));
            self.rhs_block.resize(n * lanes.len(), 0.0);
            self.x_block.resize(n * lanes.len(), 0.0);
            self.acc.resize(lanes.len(), 0.0);
            self.order.resize(lanes.len(), 0);
        }

        // ---- per-lane refresh + group assignment --------------------
        for (idx, lane) in lanes.iter().enumerate() {
            assert_eq!(
                lane.net.structure_hash(),
                self.structure_hash,
                "lane network is not structurally identical to the batch template"
            );
            assert_eq!(
                lane.state.temps.len(),
                n,
                "lane state does not match the batch dimension"
            );
            let cache = &mut self.lanes[idx];
            // Source refresh, keyed like the scalar solver's caches.
            let cond_key = (lane.net.flow_generation(), lane.net.boundary_generation());
            let mut source_stale = false;
            if cache.cond_key != Some(cond_key) {
                lane.net.assemble_boundary_source_into(&mut cache.s_bound);
                cache.cond_key = Some(cond_key);
                source_stale = true;
            }
            let power_key = lane.net.power_generation();
            if cache.power_key != Some(power_key) {
                lane.net.assemble_power_into(&mut cache.s_power);
                cache.power_key = Some(power_key);
                source_stale = true;
            }
            if source_stale {
                for i in 0..n {
                    cache.s[i] = cache.s_power[i] + cache.s_bound[i];
                }
            }
            // Group assignment: sticky while the lane's flows, the
            // step size and the group table are unchanged, so
            // constant-flow stretches pay no signature work at all.
            let flow_gen = lane.net.flow_generation();
            let assignment_fresh = cache.group != usize::MAX
                && cache.group_flow_gen == flow_gen
                && cache.group_h_bits == h_bits
                && cache.group_epoch == self.groups_epoch
                && cache.group < self.groups.len();
            let group = if assignment_fresh {
                cache.group
            } else {
                self.sig_scratch.clear();
                lane.net.flow_signature_into(&mut self.sig_scratch);
                let group = match self
                    .groups
                    .iter()
                    .position(|g| g.key.0 == h_bits && g.key.1 == self.sig_scratch)
                {
                    Some(found) => found,
                    None => Self::create_group(
                        &mut self.groups,
                        &mut self.groups_epoch,
                        &self.backend_template,
                        &self.c,
                        &mut self.s_bound_scratch,
                        lane.net,
                        (h_bits, self.sig_scratch.clone()),
                        h,
                        self.step_counter,
                    )?,
                };
                let epoch = self.groups_epoch;
                let cache = &mut self.lanes[idx];
                cache.group = group;
                cache.group_flow_gen = flow_gen;
                cache.group_h_bits = h_bits;
                cache.group_epoch = epoch;
                group
            };
            // Mark the group as used *now*, before any later lane runs
            // `create_group`: the LRU recycler refuses current-step
            // groups, so an assignment made earlier in this loop can
            // never be silently repointed at a different flow's
            // factorization mid-step.
            self.groups[group].last_used = self.step_counter;
        }

        // ---- order lanes group-by-group (counting sort) -------------
        self.group_counts.clear();
        self.group_counts.resize(self.groups.len(), 0);
        for cache in &self.lanes[..lanes.len()] {
            self.group_counts[cache.group] += 1;
        }
        self.group_offsets.clear();
        let mut running = 0;
        for &count in &self.group_counts {
            self.group_offsets.push(running);
            running += count;
        }
        self.group_cursor.clear();
        self.group_cursor.extend_from_slice(&self.group_offsets);
        for (idx, cache) in self.lanes[..lanes.len()].iter().enumerate() {
            self.order[self.group_cursor[cache.group]] = idx;
            self.group_cursor[cache.group] += 1;
        }

        // ---- per-group blocked solve --------------------------------
        for (group_idx, (&start, &count)) in self
            .group_offsets
            .iter()
            .zip(&self.group_counts)
            .enumerate()
        {
            if count == 0 {
                continue;
            }
            let members = &self.order[start..start + count];
            let batch = count;
            let rhs = &mut self.rhs_block[..n * batch];
            for (b, &lane_idx) in members.iter().enumerate() {
                let temps = &lanes[lane_idx].state.temps;
                let s = &self.lanes[lane_idx].s;
                for i in 0..n {
                    rhs[i * batch + b] = self.c[i] * temps[i] + h * s[i];
                }
            }
            let group = &mut self.groups[group_idx];
            group.last_used = self.step_counter;
            let x = &mut self.x_block[..n * batch];
            group
                .backend
                .solve_be_block_into(rhs, x, batch, &mut self.acc[..batch])?;
            for (b, &lane_idx) in members.iter().enumerate() {
                let temps = &mut lanes[lane_idx].state.temps;
                for i in 0..n {
                    temps[i] = x[i * batch + b];
                }
                if let Some(bad) = temps.iter().position(|t| !t.is_finite()) {
                    return Err(ThermalError::Diverged {
                        name: lanes[lane_idx].net.slot_name(bad).to_owned(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Advances every packed lane by `dt` with the implicit
    /// backward-Euler method through one shared factorization — the
    /// homogeneous-flow fast path.
    ///
    /// `nets[lane]` provides each lane's inputs (powers, boundary
    /// temperatures, generations); all lanes must currently hold the
    /// same flow values (identical fan commands — the common fleet
    /// regime). Temperatures advance inside `packed`'s slot-major
    /// block, so the whole step — right-hand-side build, blocked
    /// substitution, divergence check — runs over contiguous memory
    /// with no per-lane gather/scatter. Results are bit-identical to
    /// [`BatchSolver::step`] on the same inputs.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::MixedBatchSignatures`] when lane flows
    /// have diverged (step such fleets through the per-lane API),
    /// [`ThermalError::SingularSystem`] when the factorization fails
    /// and [`ThermalError::Diverged`] on a non-finite temperature.
    ///
    /// # Panics
    ///
    /// Panics when `nets` does not match the packed batch shape or a
    /// network is not structurally identical to the template.
    pub fn step_packed<N: Borrow<ThermalNetwork>>(
        &mut self,
        nets: &[N],
        packed: &mut PackedLanes,
        dt: SimDuration,
    ) -> Result<(), ThermalError> {
        if dt.is_zero() || nets.is_empty() {
            return Ok(());
        }
        let n = self.n;
        let batch = packed.batch;
        assert_eq!(
            nets.len(),
            batch,
            "network count must match the packed batch"
        );
        assert_eq!(packed.n, n, "packed dimension must match the template");
        let h = dt.as_secs_f64();

        // ---- per-lane source refresh (lane-major, change-driven) ----
        let flows_moved = packed.refresh_sources(|lane| nets[lane].borrow(), self.structure_hash);

        // ---- homogeneity + shared factorization ---------------------
        if flows_moved || !packed.homogeneous {
            if !self.flows_homogeneous(|lane| nets[lane].borrow(), batch) {
                packed.homogeneous = false;
                return Err(ThermalError::MixedBatchSignatures);
            }
            packed.homogeneous = true;
            self.packed_group = None;
        }
        let group_idx = self.ensure_shared_group(nets[0].borrow(), h)?;

        // ---- contiguous rhs build + blocked solve -------------------
        packed.solve_be_block(&self.groups[group_idx].backend, &self.c, h, |lane| {
            nets[lane].borrow()
        })
    }

    /// `true` when the first `count` lanes all carry the same flow
    /// values (the shared-factorization precondition of the packed
    /// paths). A network with no flow channels has an empty signature:
    /// trivially homogeneous.
    pub(crate) fn flows_homogeneous<'n, F>(&mut self, net_of: F, count: usize) -> bool
    where
        F: Fn(usize) -> &'n ThermalNetwork,
    {
        self.sig_scratch.clear();
        net_of(0).flow_signature_into(&mut self.sig_scratch);
        let reference_len = self.sig_scratch.len();
        if reference_len == 0 {
            return true;
        }
        for lane in 1..count {
            net_of(lane).flow_signature_into(&mut self.sig_scratch);
        }
        let (reference, rest) = self.sig_scratch.split_at(reference_len);
        rest.chunks(reference_len).all(|sig| sig == reference)
    }

    /// Resolves the one shared factorization every homogeneous lane
    /// steps through: sticky while `(dt, representative flow
    /// generation, group table epoch)` are unchanged, otherwise a
    /// signature lookup and — on miss — a fresh factorization from the
    /// representative network. Bumps the step counter and the group's
    /// LRU stamp.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::SingularSystem`] when the factorization
    /// fails.
    pub(crate) fn ensure_shared_group(
        &mut self,
        representative: &ThermalNetwork,
        h: f64,
    ) -> Result<usize, ThermalError> {
        let h_bits = h.to_bits();
        self.step_counter += 1;
        let sticky = self.packed_group.and_then(|(idx, epoch, hb, fg)| {
            (epoch == self.groups_epoch
                && hb == h_bits
                && fg == representative.flow_generation()
                && idx < self.groups.len())
            .then_some(idx)
        });
        let group_idx = match sticky {
            Some(idx) => idx,
            None => {
                self.sig_scratch.clear();
                representative.flow_signature_into(&mut self.sig_scratch);
                let found = self
                    .groups
                    .iter()
                    .position(|g| g.key.0 == h_bits && g.key.1 == self.sig_scratch);
                let idx = match found {
                    Some(idx) => idx,
                    None => Self::create_group(
                        &mut self.groups,
                        &mut self.groups_epoch,
                        &self.backend_template,
                        &self.c,
                        &mut self.s_bound_scratch,
                        representative,
                        (h_bits, self.sig_scratch.clone()),
                        h,
                        self.step_counter,
                    )?,
                };
                self.packed_group = Some((
                    idx,
                    self.groups_epoch,
                    h_bits,
                    representative.flow_generation(),
                ));
                idx
            }
        };
        self.groups[group_idx].last_used = self.step_counter;
        Ok(group_idx)
    }

    /// The backend (with its cached `(C + h·G)` factors) behind a group
    /// index from [`Self::ensure_shared_group`] — read-only, so shard
    /// workers can solve through it concurrently.
    pub(crate) fn group_backend(&self, idx: usize) -> &B {
        &self.groups[idx].backend
    }

    /// The per-slot capacitances of the template topology.
    pub(crate) fn capacitances(&self) -> &[f64] {
        &self.c
    }

    /// The template's structural fingerprint
    /// ([`ThermalNetwork::structure_hash`]); every lane must match it.
    #[must_use]
    pub fn template_structure_hash(&self) -> u64 {
        self.structure_hash
    }

    /// Creates (or recycles, past [`MAX_GROUPS`]) a group: clones the
    /// prebuilt backend template (keeping e.g. the CSR symbolic
    /// analysis instead of recomputing it), assembles `G` from the
    /// representative network and factors `(C + h·G)`. Returns the
    /// group index; a failed factorization is not cached (the next
    /// attempt retries).
    ///
    /// Only groups *not* used in the current step are eligible for
    /// recycling — a group some lane was already assigned to this step
    /// must keep its factorization until the step's solves are done.
    /// When every cached group is current (more distinct signatures
    /// than [`MAX_GROUPS`] in one step), the table grows past the cap
    /// instead.
    #[allow(clippy::too_many_arguments)]
    fn create_group(
        groups: &mut Vec<GroupCache<B>>,
        groups_epoch: &mut u64,
        backend_template: &B,
        c: &[f64],
        s_bound_scratch: &mut [f64],
        net: &ThermalNetwork,
        key: (u64, Vec<u64>),
        h: f64,
        step_counter: u64,
    ) -> Result<usize, ThermalError> {
        let mut backend = backend_template.clone();
        backend.assemble_conductance(net, s_bound_scratch);
        backend.factor_be(c, h)?;
        let entry = GroupCache {
            key,
            backend,
            last_used: step_counter,
        };
        let recyclable = if groups.len() >= MAX_GROUPS {
            groups
                .iter()
                .enumerate()
                .filter(|(_, g)| g.last_used != step_counter)
                .min_by_key(|(_, g)| g.last_used)
                .map(|(i, _)| i)
        } else {
            None
        };
        let slot = if let Some(lru) = recyclable {
            // Recycling changes what an index means: invalidate every
            // lane's sticky assignment.
            *groups_epoch += 1;
            groups[lru] = entry;
            lru
        } else {
            groups.push(entry);
            groups.len() - 1
        };
        Ok(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::DenseBackend;
    use crate::network::{Coupling, ThermalNetworkBuilder};
    use crate::solver::Integrator;
    use crate::stepper::TransientSolver;
    use leakctl_units::{AirFlow, Celsius, ThermalCapacitance, ThermalConductance, Watts};

    /// Builds one instance of a small server-shaped network.
    fn build_instance() -> (
        ThermalNetwork,
        crate::NodeId,
        crate::NodeId,
        crate::FlowChannelId,
    ) {
        let mut b = ThermalNetworkBuilder::new();
        let die = b.add_node("die", ThermalCapacitance::new(80.0));
        let sink = b.add_node("sink", ThermalCapacitance::new(400.0));
        let amb = b.add_boundary("ambient", Celsius::new(24.0));
        b.connect(
            die,
            sink,
            Coupling::Conductance(ThermalConductance::new(10.0)),
        )
        .unwrap();
        let ch = b.add_flow_channel("chassis");
        let model = crate::ConvectionModel::turbulent(
            ThermalConductance::new(3.4),
            AirFlow::from_cfm(300.0),
        );
        b.connect(sink, amb, Coupling::Convective { channel: ch, model })
            .unwrap();
        let mut net = b.build().unwrap();
        net.set_flow(ch, AirFlow::from_cfm(250.0)).unwrap();
        (net, die, amb, ch)
    }

    #[test]
    fn batched_lanes_bit_identical_to_scalar_solvers() {
        let count = 5;
        let mut nets = Vec::new();
        let mut dies = Vec::new();
        let mut channels = Vec::new();
        for i in 0..count {
            let (mut net, die, _, ch) = build_instance();
            net.set_power(die, Watts::new(40.0 + 15.0 * i as f64))
                .unwrap();
            nets.push(net);
            dies.push(die);
            channels.push(ch);
        }
        let mut batch = BatchSolver::<DenseBackend>::with_backend(&nets[0]);
        let mut batch_states: Vec<_> = nets
            .iter()
            .map(|n| n.uniform_state(Celsius::new(24.0)))
            .collect();
        let mut scalar_solvers: Vec<_> = nets
            .iter()
            .map(TransientSolver::<DenseBackend>::with_backend)
            .collect();
        let mut scalar_states: Vec<_> = nets
            .iter()
            .map(|n| n.uniform_state(Celsius::new(24.0)))
            .collect();
        let dt = SimDuration::from_secs(1);
        for step in 0..200 {
            // Mid-run divergence: one lane changes flow (splitting the
            // group), another changes power (RHS only).
            if step == 60 {
                nets[1]
                    .set_flow(channels[1], AirFlow::from_cfm(420.0))
                    .unwrap();
            }
            if step == 120 {
                nets[3].set_power(dies[3], Watts::new(140.0)).unwrap();
            }
            let mut lanes: Vec<BatchLane<'_>> = nets
                .iter()
                .zip(batch_states.iter_mut())
                .map(|(net, state)| BatchLane { net, state })
                .collect();
            batch.step(&mut lanes, dt).unwrap();
            for ((solver, net), state) in scalar_solvers
                .iter_mut()
                .zip(&nets)
                .zip(scalar_states.iter_mut())
            {
                solver
                    .step(net, state, dt, Integrator::BackwardEuler)
                    .unwrap();
            }
        }
        assert_eq!(batch.group_count(), 2, "flow divergence splits groups");
        for (lane, (bs, ss)) in batch_states.iter().zip(&scalar_states).enumerate() {
            for (i, (a, b)) in bs.temps.iter().zip(&ss.temps).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "lane {lane} slot {i}: batch {a} vs scalar {b}"
                );
            }
        }
    }

    #[test]
    fn per_lane_boundaries_stay_independent() {
        let (net_a, _, amb_a, _) = build_instance();
        let (mut net_b, _, _, _) = build_instance();
        let mut net_a = net_a;
        net_a.set_boundary(amb_a, Celsius::new(40.0)).unwrap();
        let _ = &mut net_b;
        let mut solver = BatchSolver::new(&net_a);
        let mut sa = net_a.uniform_state(Celsius::new(24.0));
        let mut sb = net_b.uniform_state(Celsius::new(24.0));
        for _ in 0..1800 {
            let mut lanes = [
                BatchLane {
                    net: &net_a,
                    state: &mut sa,
                },
                BatchLane {
                    net: &net_b,
                    state: &mut sb,
                },
            ];
            solver.step(&mut lanes, SimDuration::from_secs(1)).unwrap();
        }
        // Same flows — one shared factorization — but the hot-inlet
        // lane settles 16 K above the cool one.
        assert_eq!(solver.group_count(), 1);
        assert!(sa.temps[0] - sb.temps[0] > 15.0);
    }

    #[test]
    #[should_panic(expected = "structurally identical")]
    fn foreign_topology_rejected() {
        let (net, _, _, _) = build_instance();
        let mut b = ThermalNetworkBuilder::new();
        let n0 = b.add_node("other", ThermalCapacitance::new(5.0));
        let amb = b.add_boundary("amb", Celsius::new(24.0));
        b.connect(n0, amb, Coupling::Conductance(ThermalConductance::new(1.0)))
            .unwrap();
        let other = b.build().unwrap();
        let mut solver = BatchSolver::new(&net);
        let mut state = other.uniform_state(Celsius::new(24.0));
        let mut lanes = [BatchLane {
            net: &other,
            state: &mut state,
        }];
        let _ = solver.step(&mut lanes, SimDuration::from_secs(1));
    }

    #[test]
    fn zero_dt_and_empty_batch_are_noops() {
        let (net, _, _, _) = build_instance();
        let mut solver = BatchSolver::new(&net);
        let mut state = net.uniform_state(Celsius::new(24.0));
        solver
            .step(
                &mut [BatchLane {
                    net: &net,
                    state: &mut state,
                }],
                SimDuration::ZERO,
            )
            .unwrap();
        assert_eq!(state.temps[0], 24.0);
        solver.step(&mut [], SimDuration::from_secs(1)).unwrap();
        assert_eq!(solver.group_count(), 0);
    }

    #[test]
    fn packed_path_bit_identical_to_lane_api() {
        let count = 6;
        let mut nets = Vec::new();
        let mut dies = Vec::new();
        for i in 0..count {
            let (mut net, die, _, _) = build_instance();
            net.set_power(die, Watts::new(30.0 + 10.0 * i as f64))
                .unwrap();
            nets.push(net);
            dies.push(die);
        }
        let mut lane_solver = BatchSolver::new(&nets[0]);
        let mut lane_states: Vec<_> = nets
            .iter()
            .map(|n| n.uniform_state(Celsius::new(24.0)))
            .collect();
        let mut packed_solver = BatchSolver::new(&nets[0]);
        let mut packed = PackedLanes::pack(&lane_states);
        assert_eq!(packed.batch(), count);
        assert_eq!(packed.dimension(), nets[0].state_count());
        let dt = SimDuration::from_secs(1);
        for step in 0..150 {
            if step == 50 {
                // Power changes flow through both paths identically.
                nets[2].set_power(dies[2], Watts::new(120.0)).unwrap();
            }
            let mut lanes: Vec<BatchLane<'_>> = nets
                .iter()
                .zip(lane_states.iter_mut())
                .map(|(net, state)| BatchLane { net, state })
                .collect();
            lane_solver.step(&mut lanes, dt).unwrap();
            packed_solver.step_packed(&nets, &mut packed, dt).unwrap();
        }
        let mut unpacked: Vec<_> = nets
            .iter()
            .map(|n| n.uniform_state(Celsius::new(0.0)))
            .collect();
        packed.unpack_into(&mut unpacked);
        for (lane, (a, b)) in unpacked.iter().zip(&lane_states).enumerate() {
            for (i, (x, y)) in a.temps.iter().zip(&b.temps).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "lane {lane} slot {i}: packed {x} vs lane-api {y}"
                );
            }
        }
        assert!(packed.max_temperature() > 24.0);
    }

    #[test]
    fn packed_path_handles_channel_free_networks() {
        // Pure-conduction topology: no flow channels, empty flow
        // signature — trivially homogeneous, must step rather than
        // panic.
        let build = || {
            let mut b = ThermalNetworkBuilder::new();
            let die = b.add_node("die", ThermalCapacitance::new(100.0));
            let amb = b.add_boundary("amb", Celsius::new(24.0));
            b.connect(
                die,
                amb,
                Coupling::Conductance(ThermalConductance::new(2.0)),
            )
            .unwrap();
            (b.build().unwrap(), die)
        };
        let (mut a, die_a) = build();
        let (b, _) = build();
        a.set_power(die_a, Watts::new(100.0)).unwrap();
        let states = [
            a.uniform_state(Celsius::new(24.0)),
            b.uniform_state(Celsius::new(24.0)),
        ];
        let mut packed = PackedLanes::pack(&states);
        let mut solver = BatchSolver::new(&a);
        let nets = vec![a, b];
        for _ in 0..600 {
            solver
                .step_packed(&nets, &mut packed, SimDuration::from_secs(1))
                .unwrap();
        }
        // Powered lane heads to 74 °C, unpowered stays ambient.
        assert!((packed.max_temperature() - 74.0).abs() < 0.5);
    }

    #[test]
    fn packed_path_rejects_diverged_flows() {
        let (net_a, _, _, _) = build_instance();
        let (mut net_b, _, _, ch_b) = build_instance();
        net_b.set_flow(ch_b, AirFlow::from_cfm(500.0)).unwrap();
        let states = [
            net_a.uniform_state(Celsius::new(24.0)),
            net_b.uniform_state(Celsius::new(24.0)),
        ];
        let mut packed = PackedLanes::pack(&states);
        let mut solver = BatchSolver::new(&net_a);
        let nets = vec![net_a, net_b];
        assert_eq!(
            solver.step_packed(&nets, &mut packed, SimDuration::from_secs(1)),
            Err(ThermalError::MixedBatchSignatures)
        );
    }

    #[test]
    fn more_groups_than_cache_cap_in_one_step_stays_correct() {
        // Every lane gets a distinct flow ⇒ more groups than
        // MAX_GROUPS must coexist within one step. The LRU recycler
        // must not evict a group some earlier lane of the same step is
        // already assigned to — each lane stays bit-identical to its
        // scalar solver.
        let count = MAX_GROUPS + 2;
        let mut nets = Vec::new();
        for i in 0..count {
            let (mut net, die, _, ch) = build_instance();
            net.set_flow(ch, AirFlow::from_cfm(120.0 + i as f64))
                .unwrap();
            net.set_power(die, Watts::new(50.0 + i as f64)).unwrap();
            nets.push(net);
        }
        let mut batch = BatchSolver::<DenseBackend>::with_backend(&nets[0]);
        let mut batch_states: Vec<_> = nets
            .iter()
            .map(|n| n.uniform_state(Celsius::new(24.0)))
            .collect();
        let mut scalar: Vec<_> = nets
            .iter()
            .map(|n| {
                (
                    TransientSolver::<DenseBackend>::with_backend(n),
                    n.uniform_state(Celsius::new(24.0)),
                )
            })
            .collect();
        let dt = SimDuration::from_secs(1);
        for _ in 0..5 {
            let mut lanes: Vec<BatchLane<'_>> = nets
                .iter()
                .zip(batch_states.iter_mut())
                .map(|(net, state)| BatchLane { net, state })
                .collect();
            batch.step(&mut lanes, dt).unwrap();
            for (net, (solver, state)) in nets.iter().zip(scalar.iter_mut()) {
                solver
                    .step(net, state, dt, Integrator::BackwardEuler)
                    .unwrap();
            }
        }
        assert!(batch.group_count() >= count, "no current-step eviction");
        for (lane, (bs, (_, ss))) in batch_states.iter().zip(&scalar).enumerate() {
            for (i, (a, b)) in bs.temps.iter().zip(&ss.temps).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "lane {lane} slot {i}");
            }
        }
    }

    #[test]
    fn group_cache_recycles_under_flow_churn() {
        let (mut net, die, _, ch) = build_instance();
        net.set_power(die, Watts::new(60.0)).unwrap();
        let mut solver = BatchSolver::new(&net);
        let mut state = net.uniform_state(Celsius::new(24.0));
        // A long slew: every step a fresh flow signature.
        for step in 0..(MAX_GROUPS + 20) {
            net.set_flow(ch, AirFlow::from_cfm(100.0 + step as f64))
                .unwrap();
            let mut lanes = [BatchLane {
                net: &net,
                state: &mut state,
            }];
            solver.step(&mut lanes, SimDuration::from_secs(1)).unwrap();
        }
        assert!(solver.group_count() <= MAX_GROUPS);
        assert!(state.is_finite());
    }
}
