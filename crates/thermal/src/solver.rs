//! Transient integration of the thermal ODE `C·dT/dt = −G·T + s`.

use leakctl_units::SimDuration;

use crate::error::ThermalError;
use crate::network::{ThermalNetwork, ThermalState};
use crate::stepper::TransientSolver;

/// Time-integration method for [`ThermalNetwork::step`].
///
/// The server model mixes slow solid nodes (minutes) with fast air nodes
/// (sub-second), making the ODE stiff. Guidance:
///
/// - [`Integrator::BackwardEuler`] (default) — implicit, unconditionally
///   stable; accurate at the 0.1–1 s steps the platform uses.
/// - [`Integrator::ExponentialEuler`] — per-node exact diagonal decay
///   with frozen couplings; stable and cheap, small splitting error.
/// - [`Integrator::Rk4`] — classic 4th order; accurate but requires
///   steps below the fastest time constant.
/// - [`Integrator::ForwardEuler`] — reference method; diverges for
///   steps above twice the fastest time constant. Kept for the solver
///   ablation benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum Integrator {
    /// Explicit first-order Euler.
    ForwardEuler,
    /// Classic explicit fourth-order Runge–Kutta.
    Rk4,
    /// Per-node exponential decay toward a frozen local equilibrium.
    ExponentialEuler,
    /// Implicit first-order Euler (LU solve per step).
    #[default]
    BackwardEuler,
}

impl ThermalNetwork {
    /// Advances `state` by `dt` with the chosen integrator, holding
    /// powers, boundary temperatures and flows constant over the step.
    ///
    /// Thin wrapper over [`TransientSolver`] that builds a throwaway
    /// solver per call — convenient for one-off steps. Long transients
    /// should hold a [`TransientSolver`] instead so assembly and LU
    /// factorizations are cached across steps.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::Diverged`] when the step produced a
    /// non-finite temperature (explicit method with too large a step)
    /// and [`ThermalError::SingularSystem`] when the implicit solve
    /// fails.
    pub fn step(
        &self,
        state: &mut ThermalState,
        dt: SimDuration,
        method: Integrator,
    ) -> Result<(), ThermalError> {
        TransientSolver::new(self).step(self, state, dt, method)
    }

    /// Advances `state` by `total`, internally substepping at `max_dt`.
    ///
    /// Convenience wrapper used by characterization sweeps where inputs
    /// are constant for long stretches; one [`TransientSolver`] backs
    /// the whole run, so every substep after the first reuses the
    /// cached factorization.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`ThermalNetwork::step`].
    pub fn run(
        &self,
        state: &mut ThermalState,
        total: SimDuration,
        max_dt: SimDuration,
        method: Integrator,
    ) -> Result<(), ThermalError> {
        TransientSolver::new(self).run(self, state, total, max_dt, method)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Coupling, ThermalNetworkBuilder};
    use leakctl_units::{Celsius, ThermalCapacitance, ThermalConductance, Watts};

    /// Single RC: C = 200 J/K, g = 2 W/K → τ = 100 s; P = 100 W,
    /// ambient 24 °C → final 74 °C.
    fn single_rc() -> (crate::ThermalNetwork, crate::NodeId) {
        let mut b = ThermalNetworkBuilder::new();
        let die = b.add_node("die", ThermalCapacitance::new(200.0));
        let amb = b.add_boundary("amb", Celsius::new(24.0));
        b.connect(
            die,
            amb,
            Coupling::Conductance(ThermalConductance::new(2.0)),
        )
        .unwrap();
        let mut net = b.build().unwrap();
        net.set_power(die, Watts::new(100.0)).unwrap();
        (net, die)
    }

    fn analytic(t: f64) -> f64 {
        74.0 + (24.0 - 74.0) * (-t / 100.0).exp()
    }

    #[test]
    fn all_methods_match_analytic_solution() {
        for method in [
            Integrator::ForwardEuler,
            Integrator::Rk4,
            Integrator::ExponentialEuler,
            Integrator::BackwardEuler,
        ] {
            let (net, die) = single_rc();
            let mut st = net.uniform_state(Celsius::new(24.0));
            let dt = SimDuration::from_millis(500);
            for _ in 0..600 {
                net.step(&mut st, dt, method).unwrap();
            }
            let expect = analytic(300.0);
            let got = net.temperature(&st, die).degrees();
            assert!(
                (got - expect).abs() < 0.5,
                "{method:?}: {got} vs analytic {expect}"
            );
        }
    }

    #[test]
    fn rk4_is_more_accurate_than_euler() {
        let dt = SimDuration::from_secs(5);
        let mut errs = vec![];
        for method in [Integrator::ForwardEuler, Integrator::Rk4] {
            let (net, die) = single_rc();
            let mut st = net.uniform_state(Celsius::new(24.0));
            for _ in 0..60 {
                net.step(&mut st, dt, method).unwrap();
            }
            errs.push((net.temperature(&st, die).degrees() - analytic(300.0)).abs());
        }
        assert!(errs[1] < errs[0] / 10.0, "RK4 {errs:?} not \u{226a} Euler");
    }

    #[test]
    fn implicit_methods_stable_at_huge_steps() {
        for method in [Integrator::BackwardEuler, Integrator::ExponentialEuler] {
            let (net, die) = single_rc();
            let mut st = net.uniform_state(Celsius::new(24.0));
            // dt = 10·τ — forward Euler would explode.
            for _ in 0..20 {
                net.step(&mut st, SimDuration::from_secs(1_000), method)
                    .unwrap();
            }
            let got = net.temperature(&st, die).degrees();
            assert!((got - 74.0).abs() < 0.5, "{method:?} settled at {got}");
        }
    }

    #[test]
    fn forward_euler_diverges_beyond_stability_limit() {
        let (net, _) = single_rc();
        let mut st = net.uniform_state(Celsius::new(24.0));
        // Stability limit is dt < 2τ = 200 s; push way past it. The
        // amplification factor is ~3.5 per step, so ~600 steps overflow
        // f64 and trip the non-finite check.
        let mut diverged = false;
        for _ in 0..1_000 {
            if net
                .step(
                    &mut st,
                    SimDuration::from_secs(450),
                    Integrator::ForwardEuler,
                )
                .is_err()
            {
                diverged = true;
                break;
            }
        }
        assert!(diverged, "expected divergence error");
    }

    #[test]
    fn zero_step_is_noop() {
        let (net, die) = single_rc();
        let mut st = net.uniform_state(Celsius::new(24.0));
        net.step(&mut st, SimDuration::ZERO, Integrator::BackwardEuler)
            .unwrap();
        assert_eq!(net.temperature(&st, die), Celsius::new(24.0));
    }

    #[test]
    fn run_substeps_to_target() {
        let (net, die) = single_rc();
        let mut st = net.uniform_state(Celsius::new(24.0));
        net.run(
            &mut st,
            SimDuration::from_secs(300),
            SimDuration::from_secs(1),
            Integrator::BackwardEuler,
        )
        .unwrap();
        assert!((net.temperature(&st, die).degrees() - analytic(300.0)).abs() < 0.3);
    }

    #[test]
    fn transient_converges_to_steady_state() {
        let (net, die) = single_rc();
        let ss = net.steady_state().unwrap();
        let mut st = net.uniform_state(Celsius::new(24.0));
        net.run(
            &mut st,
            SimDuration::from_secs(2_000),
            SimDuration::from_secs(1),
            Integrator::BackwardEuler,
        )
        .unwrap();
        let diff =
            (net.temperature(&st, die).degrees() - net.temperature(&ss, die).degrees()).abs();
        assert!(diff < 1e-3, "transient end {diff} K from steady state");
    }
}
