//! Compressed-sparse-row storage and a no-pivoting sparse LU for
//! rack-scale thermal networks.
//!
//! The dense [`Matrix`](crate::linalg::Matrix) path is the right tool at
//! the 9–15 nodes of one server, but a rack or room model couples
//! hundreds of nodes whose conductance matrix is overwhelmingly zero:
//! each node exchanges heat with a handful of structural neighbours. At
//! that scale dense LU is O(n³) on mostly-zero arithmetic. This module
//! provides:
//!
//! - [`CsrMatrix`] — row-major compressed storage over a *fixed*
//!   sparsity pattern (thermal topology never changes after build), with
//!   in-pattern accumulation for assembly and an allocation-free
//!   mat-vec.
//! - [`CsrLu`] — an LU factorization without pivoting whose *symbolic*
//!   analysis (fill pattern, computed once per topology) is cached and
//!   whose *numeric* refactorization reuses the pattern, exactly
//!   mirroring how the dense stepper caches its `(dt, flow)`-keyed
//!   factorization.
//!
//! No pivoting is safe here because the systems the solver factors are
//! (weakly) diagonally dominant: `C + h·G` has the positive capacitance
//! added to a diagonal that already bounds the off-diagonal row sum, and
//! `G` itself is an irreducibly dominant graph Laplacian plus boundary
//! couplings. A vanishing pivot (an isolated node in a steady-state
//! solve) is reported as [`LinalgError::Singular`], matching the dense
//! path's semantics.

use crate::linalg::LinalgError;

/// A square sparse matrix in CSR form over a fixed sparsity pattern.
///
/// Column indices are sorted within each row and the diagonal entry is
/// always structurally present (thermal assembly touches every
/// diagonal). Values can be reset and re-accumulated freely; the
/// pattern cannot change after construction.
///
/// # Example
///
/// ```
/// use leakctl_thermal::sparse::CsrMatrix;
///
/// // Pattern: 0-1 coupled chain, diagonal always present.
/// let mut m = CsrMatrix::from_adjacency(2, &[vec![1], vec![0]]);
/// m.add_to(0, 0, 2.0);
/// m.add_to(0, 1, -1.0);
/// m.add_to(1, 0, -1.0);
/// m.add_to(1, 1, 2.0);
/// let mut y = [0.0; 2];
/// m.mul_vec_into(&[1.0, 1.0], &mut y);
/// assert_eq!(y, [1.0, 1.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<f64>,
}

impl CsrMatrix {
    /// Builds an `n × n` matrix whose pattern is the full diagonal plus
    /// the given per-row off-diagonal neighbour lists (as produced by
    /// the network's structural adjacency). Neighbour lists must be
    /// sorted and deduplicated; self-entries are ignored (the diagonal
    /// is inserted unconditionally).
    ///
    /// # Panics
    ///
    /// Panics when `adjacency.len() != n` or a column index is out of
    /// range.
    #[must_use]
    pub fn from_adjacency(n: usize, adjacency: &[Vec<usize>]) -> Self {
        assert_eq!(adjacency.len(), n, "adjacency rows must match dimension");
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        row_ptr.push(0);
        for (r, nbrs) in adjacency.iter().enumerate() {
            let mut placed_diag = false;
            for &c in nbrs {
                assert!(c < n, "column index out of range");
                if c == r {
                    continue;
                }
                if c > r && !placed_diag {
                    col_idx.push(r);
                    placed_diag = true;
                }
                col_idx.push(c);
            }
            if !placed_diag {
                col_idx.push(r);
                // Keep columns sorted: the diagonal belongs before any
                // neighbour greater than r, which is already handled
                // above; reaching here means every neighbour was < r.
            }
            let row = &mut col_idx[row_ptr[r]..];
            debug_assert!(row.windows(2).all(|w| w[0] < w[1]), "row must be sorted");
            let _ = row;
            row_ptr.push(col_idx.len());
        }
        let vals = vec![0.0; col_idx.len()];
        Self {
            n,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// The dimension of the (square) matrix.
    #[inline]
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.n
    }

    /// Number of structurally non-zero entries.
    #[inline]
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Resets every stored value to zero, keeping the pattern.
    #[inline]
    pub fn fill_zero(&mut self) {
        self.vals.fill(0.0);
    }

    /// The sorted column indices of row `r`.
    #[inline]
    #[must_use]
    pub fn row_cols(&self, r: usize) -> &[usize] {
        &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// The values of row `r`, parallel to [`Self::row_cols`].
    #[inline]
    #[must_use]
    pub fn row_vals(&self, r: usize) -> &[f64] {
        &self.vals[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    fn pos(&self, r: usize, c: usize) -> Option<usize> {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi]
            .binary_search(&c)
            .ok()
            .map(|off| lo + off)
    }

    /// Adds `v` to entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when `(r, c)` is outside the fixed sparsity pattern.
    #[inline]
    pub fn add_to(&mut self, r: usize, c: usize, v: f64) {
        let Some(p) = self.pos(r, c) else {
            panic!("entry ({r}, {c}) lies outside the fixed CSR pattern");
        };
        self.vals[p] += v;
    }

    /// Reads entry `(r, c)`; entries outside the pattern are zero.
    #[inline]
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.pos(r, c).map_or(0.0, |p| self.vals[p])
    }

    /// Overwrites this matrix with the backward-Euler operator
    /// `h·src + diag(c)`. Both matrices must share one pattern (clone
    /// the assembly matrix to create the operator storage), so the
    /// values align positionally and the rebuild is a single pass.
    ///
    /// # Panics
    ///
    /// Panics when the patterns differ or `c` has the wrong length.
    pub(crate) fn assign_be_operator(&mut self, src: &CsrMatrix, h: f64, c: &[f64]) {
        assert!(
            self.n == src.n && self.col_idx == src.col_idx && c.len() == self.n,
            "BE operator must share the assembly pattern"
        );
        for (r, &cr) in c.iter().enumerate() {
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            for p in lo..hi {
                let mut v = h * src.vals[p];
                if self.col_idx[p] == r {
                    v += cr;
                }
                self.vals[p] = v;
            }
        }
    }

    /// Sparse matrix–vector product `A·x` written into `y`.
    ///
    /// # Panics
    ///
    /// Panics when `x` or `y` does not match the dimension.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert!(
            x.len() == self.n && y.len() == self.n,
            "mat-vec operands must match the dimension"
        );
        for (r, yr) in y.iter_mut().enumerate() {
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            *yr = self.col_idx[lo..hi]
                .iter()
                .zip(&self.vals[lo..hi])
                .map(|(&c, &v)| v * x[c])
                .sum();
        }
    }
}

/// The cached symbolic analysis of a [`CsrLu`]: the fill pattern of the
/// `L\U` factor, computed once per sparsity pattern and shared by every
/// numeric refactorization (and by the backward-Euler and steady-state
/// factors, whose matrices share the pattern of `G`).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrLuSymbolic {
    n: usize,
    /// Row pointers into the combined `L\U` pattern.
    row_ptr: Vec<usize>,
    /// Sorted column indices; entries `< r` belong to L (unit diagonal
    /// implied), entries `>= r` to U.
    cols: Vec<usize>,
    /// Offset of the diagonal entry within each row.
    diag: Vec<usize>,
}

impl CsrLuSymbolic {
    /// Runs the symbolic factorization for the given matrix pattern.
    ///
    /// The pattern is symmetrized internally (fill is computed on
    /// `pattern(A) ∪ pattern(Aᵀ)`), which upper-bounds the true
    /// unsymmetric fill — thermal networks are structurally symmetric
    /// except for directed advection edges, so the overshoot is a few
    /// explicitly-stored zeros, not meaningful work.
    #[must_use]
    pub fn analyze(a: &CsrMatrix) -> Self {
        let n = a.n;
        // Symmetrized input pattern, per row, sorted.
        let mut sym: Vec<Vec<usize>> = vec![Vec::new(); n];
        for r in 0..n {
            for &c in a.row_cols(r) {
                sym[r].push(c);
                if r != c {
                    sym[c].push(r);
                }
            }
        }
        for row in &mut sym {
            row.sort_unstable();
            row.dedup();
        }
        // Symbolic elimination: the pattern of row i of L\U is the input
        // pattern plus, for every k < i in the (growing) pattern taken
        // in ascending order, the columns > k of U's row k. Insertions
        // always land above the scan cursor (merged columns exceed k),
        // so a single ascending pass with in-place sorted insertion
        // terminates with the full fill.
        let mut u_rows: Vec<Vec<usize>> = Vec::with_capacity(n);
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut cols = Vec::new();
        let mut diag = Vec::with_capacity(n);
        row_ptr.push(0);
        let mut pattern: Vec<usize> = Vec::new();
        let mut in_pattern = vec![false; n];
        for (i, sym_row) in sym.iter().enumerate() {
            pattern.clear();
            for &c in sym_row {
                pattern.push(c);
                in_pattern[c] = true;
            }
            if !in_pattern[i] {
                let at = pattern.partition_point(|&c| c < i);
                pattern.insert(at, i);
                in_pattern[i] = true;
            }
            let mut cursor = 0;
            while cursor < pattern.len() {
                let k = pattern[cursor];
                if k >= i {
                    break;
                }
                for &j in &u_rows[k] {
                    if j > k && !in_pattern[j] {
                        let at = pattern.partition_point(|&c| c < j);
                        pattern.insert(at, j);
                        in_pattern[j] = true;
                    }
                }
                cursor += 1;
            }
            for &c in &pattern {
                in_pattern[c] = false;
            }
            let d = pattern.partition_point(|&c| c < i);
            debug_assert!(pattern[d] == i, "diagonal must be present");
            diag.push(cols.len() + d);
            u_rows.push(pattern[d..].to_vec());
            cols.extend_from_slice(&pattern);
            row_ptr.push(cols.len());
        }
        Self {
            n,
            row_ptr,
            cols,
            diag,
        }
    }

    /// Structural non-zeros of the combined `L\U` factor.
    #[must_use]
    pub fn factor_nnz(&self) -> usize {
        self.cols.len()
    }
}

/// A numeric LU factorization over a cached [`CsrLuSymbolic`] pattern.
///
/// Created empty with [`CsrLu::new`], populated by
/// [`CsrLu::refactor`] whenever the matrix values change (the caller
/// keys refactorization on `(dt, flow)` exactly as the dense path
/// does), and then applied through [`CsrLu::solve_into`] — an
/// O(nnz(L\U)) substitution.
#[derive(Debug, Clone)]
pub struct CsrLu {
    symbolic: CsrLuSymbolic,
    vals: Vec<f64>,
    /// Scatter workspace for one factor/solve row.
    work: Vec<f64>,
    valid: bool,
}

impl CsrLu {
    /// Prepares numeric storage over a symbolic analysis.
    #[must_use]
    pub fn new(symbolic: CsrLuSymbolic) -> Self {
        let nnz = symbolic.factor_nnz();
        let n = symbolic.n;
        Self {
            symbolic,
            vals: vec![0.0; nnz],
            work: vec![0.0; n],
            valid: false,
        }
    }

    /// The dimension of the factored system.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.symbolic.n
    }

    /// `true` after a successful [`Self::refactor`].
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// Numerically refactors `a` (which must share the pattern the
    /// symbolic analysis was computed from) without pivoting, reusing
    /// all storage.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] when a pivot vanishes (e.g. a
    /// floating node in a steady-state solve) and
    /// [`LinalgError::DimensionMismatch`] when `a` has a different
    /// dimension. On error the factors are invalid until a subsequent
    /// successful refactorization.
    pub fn refactor(&mut self, a: &CsrMatrix) -> Result<(), LinalgError> {
        let n = self.symbolic.n;
        if a.n != n {
            self.valid = false;
            return Err(LinalgError::DimensionMismatch);
        }
        let sym = &self.symbolic;
        // Up-looking row LU: for each row, scatter A's row into the
        // dense workspace, eliminate with every finished U row indexed
        // by the L part of this row's pattern, then gather back.
        for i in 0..n {
            let lo = sym.row_ptr[i];
            let hi = sym.row_ptr[i + 1];
            for &c in &sym.cols[lo..hi] {
                self.work[c] = 0.0;
            }
            {
                let a_lo = a.row_ptr[i];
                let a_hi = a.row_ptr[i + 1];
                for (&c, &v) in a.col_idx[a_lo..a_hi].iter().zip(&a.vals[a_lo..a_hi]) {
                    self.work[c] = v;
                }
            }
            for p in lo..hi {
                let k = sym.cols[p];
                if k >= i {
                    break;
                }
                let ukk = self.vals[sym.diag[k]];
                let lik = self.work[k] / ukk;
                self.work[k] = lik;
                if lik != 0.0 {
                    let k_lo = sym.diag[k] + 1;
                    let k_hi = sym.row_ptr[k + 1];
                    for p2 in k_lo..k_hi {
                        self.work[sym.cols[p2]] -= lik * self.vals[p2];
                    }
                }
            }
            for p in lo..hi {
                self.vals[p] = self.work[sym.cols[p]];
            }
            if self.vals[sym.diag[i]].abs() < 1e-300 {
                self.valid = false;
                return Err(LinalgError::Singular);
            }
        }
        self.valid = true;
        Ok(())
    }

    /// Solves `A·x = b` using the stored factors.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] when no valid factorization is
    /// held and [`LinalgError::DimensionMismatch`] for wrong-sized
    /// operands.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) -> Result<(), LinalgError> {
        let n = self.symbolic.n;
        if !self.valid {
            return Err(LinalgError::Singular);
        }
        if b.len() != n || x.len() != n {
            return Err(LinalgError::DimensionMismatch);
        }
        x.copy_from_slice(b);
        let sym = &self.symbolic;
        // Forward substitution with unit-diagonal L.
        for i in 0..n {
            let lo = sym.row_ptr[i];
            let d = sym.diag[i];
            let mut dot = 0.0;
            for p in lo..d {
                dot += self.vals[p] * x[sym.cols[p]];
            }
            x[i] -= dot;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let d = sym.diag[i];
            let hi = sym.row_ptr[i + 1];
            let mut dot = 0.0;
            for p in (d + 1)..hi {
                dot += self.vals[p] * x[sym.cols[p]];
            }
            x[i] = (x[i] - dot) / self.vals[d];
        }
        Ok(())
    }

    /// Solves `A·X = B` for a slot-major block of `batch` right-hand
    /// sides, copying `rhs` into `x` first — see
    /// [`Self::solve_block_in_place`] for layout and bit-identity
    /// guarantees.
    ///
    /// # Errors
    ///
    /// As [`Self::solve_block_in_place`], plus
    /// [`LinalgError::DimensionMismatch`] when `rhs` and `x` differ in
    /// length.
    pub fn solve_block_into(
        &self,
        rhs: &[f64],
        x: &mut [f64],
        batch: usize,
        acc: &mut [f64],
    ) -> Result<(), LinalgError> {
        if rhs.len() != x.len() {
            return Err(LinalgError::DimensionMismatch);
        }
        x.copy_from_slice(rhs);
        self.solve_block_in_place(x, batch, acc)
    }

    /// Solves `A·X = B` for a slot-major block of `batch` right-hand
    /// sides (`block[slot * batch + lane]`), in place.
    ///
    /// Each lane's arithmetic follows the exact accumulation order of
    /// [`Self::solve_into`], so a lane extracted from a block solve is
    /// bit-identical to solving it alone; across lanes the inner loops
    /// are contiguous and vectorize.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] when no valid factorization is
    /// held and [`LinalgError::DimensionMismatch`] when `block` is not
    /// `dimension · batch` long (or `acc` is shorter than `batch`).
    pub fn solve_block_in_place(
        &self,
        block: &mut [f64],
        batch: usize,
        acc: &mut [f64],
    ) -> Result<(), LinalgError> {
        let n = self.symbolic.n;
        if !self.valid {
            return Err(LinalgError::Singular);
        }
        if block.len() != n * batch || acc.len() < batch {
            return Err(LinalgError::DimensionMismatch);
        }
        let acc = &mut acc[..batch];
        let sym = &self.symbolic;
        for i in 0..n {
            let lo = sym.row_ptr[i];
            let d = sym.diag[i];
            acc.fill(0.0);
            for p in lo..d {
                let l = self.vals[p];
                let src = sym.cols[p] * batch;
                for (abuf, &xv) in acc.iter_mut().zip(&block[src..src + batch]) {
                    *abuf += l * xv;
                }
            }
            let dst = i * batch;
            for (xv, &abuf) in block[dst..dst + batch].iter_mut().zip(acc.iter()) {
                *xv -= abuf;
            }
        }
        for i in (0..n).rev() {
            let d = sym.diag[i];
            let hi = sym.row_ptr[i + 1];
            acc.fill(0.0);
            for p in (d + 1)..hi {
                let u = self.vals[p];
                let src = sym.cols[p] * batch;
                for (abuf, &xv) in acc.iter_mut().zip(&block[src..src + batch]) {
                    *abuf += u * xv;
                }
            }
            let inv_diag = self.vals[d];
            let dst = i * batch;
            for (xv, &abuf) in block[dst..dst + batch].iter_mut().zip(acc.iter()) {
                *xv = (*xv - abuf) / inv_diag;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::Matrix;

    /// A diagonally dominant chain matrix in both CSR and dense form.
    fn chain(n: usize) -> (CsrMatrix, Matrix) {
        let adjacency: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                let mut nbrs = Vec::new();
                if i > 0 {
                    nbrs.push(i - 1);
                }
                if i + 1 < n {
                    nbrs.push(i + 1);
                }
                nbrs
            })
            .collect();
        let mut csr = CsrMatrix::from_adjacency(n, &adjacency);
        let mut dense = Matrix::zeros(n, n);
        for i in 0..n {
            let d = 3.0 + i as f64 * 0.1;
            csr.add_to(i, i, d);
            dense.add_to(i, i, d);
            if i + 1 < n {
                let g = -(1.0 + 0.01 * i as f64);
                csr.add_to(i, i + 1, g);
                dense.add_to(i, i + 1, g);
                csr.add_to(i + 1, i, g * 0.9);
                dense.add_to(i + 1, i, g * 0.9);
            }
        }
        (csr, dense)
    }

    #[test]
    fn pattern_has_sorted_rows_and_diagonal() {
        let m = CsrMatrix::from_adjacency(4, &[vec![2, 3], vec![], vec![0], vec![0]]);
        for r in 0..4 {
            let cols = m.row_cols(r);
            assert!(cols.windows(2).all(|w| w[0] < w[1]), "row {r} sorted");
            assert!(cols.contains(&r), "row {r} has diagonal");
        }
        assert_eq!(m.nnz(), 4 + 4);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let (csr, dense) = chain(12);
        let x: Vec<f64> = (0..12).map(|i| (i as f64) - 4.5).collect();
        let mut y_sparse = vec![0.0; 12];
        csr.mul_vec_into(&x, &mut y_sparse);
        let y_dense = dense.mul_vec(&x).unwrap();
        for (a, b) in y_sparse.iter().zip(&y_dense) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn lu_solve_matches_dense() {
        let (csr, dense) = chain(20);
        let symbolic = CsrLuSymbolic::analyze(&csr);
        let mut lu = CsrLu::new(symbolic);
        lu.refactor(&csr).unwrap();
        let b: Vec<f64> = (0..20).map(|i| (i as f64 * 0.7).sin() * 10.0).collect();
        let mut x = vec![0.0; 20];
        lu.solve_into(&b, &mut x).unwrap();
        let x_dense = dense.solve(&b).unwrap();
        for (a, b) in x.iter().zip(&x_dense) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn refactor_tracks_value_changes() {
        let (mut csr, _) = chain(8);
        let symbolic = CsrLuSymbolic::analyze(&csr);
        let mut lu = CsrLu::new(symbolic);
        lu.refactor(&csr).unwrap();
        let b = vec![1.0; 8];
        let mut x1 = vec![0.0; 8];
        lu.solve_into(&b, &mut x1).unwrap();
        // Stiffen the diagonal and refactor: solution must shrink.
        for i in 0..8 {
            csr.add_to(i, i, 5.0);
        }
        lu.refactor(&csr).unwrap();
        let mut x2 = vec![0.0; 8];
        lu.solve_into(&b, &mut x2).unwrap();
        assert!(x2.iter().zip(&x1).all(|(a, b)| a.abs() < b.abs()));
    }

    #[test]
    fn block_solve_lane_bit_identical_to_single() {
        let (csr, _) = chain(16);
        let symbolic = CsrLuSymbolic::analyze(&csr);
        let mut lu = CsrLu::new(symbolic);
        lu.refactor(&csr).unwrap();
        let batch = 5;
        let n = 16;
        let mut block = vec![0.0; n * batch];
        let mut singles = Vec::new();
        for lane in 0..batch {
            let b: Vec<f64> = (0..n).map(|i| ((i + lane) as f64 * 0.3).cos()).collect();
            for i in 0..n {
                block[i * batch + lane] = b[i];
            }
            let mut x = vec![0.0; n];
            lu.solve_into(&b, &mut x).unwrap();
            singles.push(x);
        }
        let mut acc = vec![0.0; batch];
        lu.solve_block_in_place(&mut block, batch, &mut acc)
            .unwrap();
        for (lane, single) in singles.iter().enumerate() {
            for i in 0..n {
                assert_eq!(
                    block[i * batch + lane].to_bits(),
                    single[i].to_bits(),
                    "lane {lane} slot {i} must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn singular_reported_and_recoverable() {
        let mut csr = CsrMatrix::from_adjacency(2, &[vec![], vec![]]);
        // Row 1 stays all-zero: singular.
        csr.add_to(0, 0, 1.0);
        let symbolic = CsrLuSymbolic::analyze(&csr);
        let mut lu = CsrLu::new(symbolic);
        assert_eq!(lu.refactor(&csr), Err(LinalgError::Singular));
        assert!(!lu.is_valid());
        assert_eq!(
            lu.solve_into(&[1.0, 1.0], &mut [0.0, 0.0]),
            Err(LinalgError::Singular)
        );
        csr.add_to(1, 1, 4.0);
        lu.refactor(&csr).unwrap();
        let mut x = [0.0, 0.0];
        lu.solve_into(&[2.0, 2.0], &mut x).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12 && (x[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fill_in_handled_on_arrow_pattern() {
        // Arrow matrix: first row/column full — elimination fills the
        // trailing block completely; symbolic analysis must predict it.
        let n = 6;
        let adjacency: Vec<Vec<usize>> = (0..n)
            .map(|i| if i == 0 { (1..n).collect() } else { vec![0] })
            .collect();
        let mut csr = CsrMatrix::from_adjacency(n, &adjacency);
        let mut dense = Matrix::zeros(n, n);
        for i in 0..n {
            let d = 10.0 + i as f64;
            csr.add_to(i, i, d);
            dense.add_to(i, i, d);
            if i > 0 {
                csr.add_to(0, i, -1.0);
                dense.add_to(0, i, -1.0);
                csr.add_to(i, 0, -1.5);
                dense.add_to(i, 0, -1.5);
            }
        }
        let symbolic = CsrLuSymbolic::analyze(&csr);
        assert!(symbolic.factor_nnz() >= csr.nnz());
        let mut lu = CsrLu::new(symbolic);
        lu.refactor(&csr).unwrap();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let mut x = vec![0.0; n];
        lu.solve_into(&b, &mut x).unwrap();
        let expect = dense.solve(&b).unwrap();
        for (a, b) in x.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-10);
        }
    }
}
