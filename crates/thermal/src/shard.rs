//! Thread-sharded stepping of packed lane blocks, and hash-grouped
//! batching of heterogeneous (mixed-topology) fleets.
//!
//! After the shared `(C + h·G)` factorization, packed lanes are
//! completely independent: the blocked substitution carries one
//! accumulator per lane and never mixes columns. A batch can therefore
//! be *split into per-shard slot-major blocks* and stepped on as many
//! threads as the machine offers with **bit-identical** results for any
//! thread or shard count — [`ShardPlan`] picks the deterministic
//! contiguous partition, [`ShardedLanes`] owns one
//! [`PackedLanes`] block per shard, and [`ShardedBatchSolver`] runs the
//! per-step pipeline:
//!
//! 1. *serial*: flow-homogeneity check and shared factorization
//!    (cheap, change-driven — sticky across constant-flow stretches);
//! 2. *parallel* ([`std::thread::scope`], no pool state to manage):
//!    each shard refreshes its lane-major source staging, builds its
//!    right-hand-side block and back-substitutes through the shared
//!    read-only factors.
//!
//! Thread count comes from [`ShardPlan::from_env`]
//! (`LEAKCTL_THREADS`, else the machine's available parallelism), and
//! small batches stay single-shard — and therefore inline, with zero
//! spawn overhead — via a minimum shard width.
//!
//! [`HeteroBatch`] lifts the identical-topology restriction: lanes are
//! partitioned by [`ThermalNetwork::structure_hash`] into per-SKU
//! groups, each batching through its own sharded solver, so a room of
//! mixed server SKUs still shares one factorization per (SKU, dt,
//! flow) instead of falling back to scalar stepping.

use std::borrow::Borrow;
use std::ops::Range;
use std::thread;

use leakctl_units::SimDuration;

use crate::backend::{AutoBackend, SolverBackend};
use crate::batch::{BatchSolver, PackedLanes};
use crate::error::ThermalError;
use crate::network::{ThermalNetwork, ThermalState};

/// Environment variable overriding the worker thread count used by
/// [`ShardPlan::from_env`]. `LEAKCTL_THREADS=1` forces fully inline
/// (spawn-free) stepping; results are bit-identical either way.
pub const THREADS_ENV: &str = "LEAKCTL_THREADS";

/// Hard ceiling on worker threads (a plan never exceeds it).
const MAX_THREADS: usize = 64;

/// Default minimum lanes per shard: batches smaller than
/// `2 × DEFAULT_MIN_LANES_PER_SHARD` stay single-shard, so small fleets
/// (and every unit test) never pay thread-spawn overhead.
const DEFAULT_MIN_LANES_PER_SHARD: usize = 16;

/// Deterministic work partition: how many worker threads to use and
/// how finely to shard a batch across them.
///
/// The partition for a given lane count is a pure function of the plan
/// — contiguous ranges, sizes differing by at most one — and the
/// stepped results are bit-identical for *any* plan, so the plan is
/// purely a performance knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    threads: usize,
    min_lanes_per_shard: usize,
}

impl ShardPlan {
    /// A plan over `threads` workers (clamped to `1..=64`) with the
    /// default minimum shard width.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.clamp(1, MAX_THREADS),
            min_lanes_per_shard: DEFAULT_MIN_LANES_PER_SHARD,
        }
    }

    /// The plan the environment asks for: `LEAKCTL_THREADS` when set,
    /// else the machine's available parallelism. An unparsable value
    /// (a typo in a deployment manifest) also falls back to the
    /// machine's parallelism — a misconfiguration must not silently
    /// force the engine single-threaded.
    #[must_use]
    pub fn from_env() -> Self {
        let machine = || thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let threads = match std::env::var(THREADS_ENV) {
            Ok(v) => v.trim().parse::<usize>().unwrap_or_else(|_| machine()),
            Err(_) => machine(),
        };
        Self::new(threads)
    }

    /// Overrides the minimum lanes per shard (floored at 1) — mainly
    /// for tests that want many tiny shards, and for huge-node
    /// topologies where even narrow shards carry enough work.
    #[must_use]
    pub fn with_min_lanes_per_shard(mut self, min: usize) -> Self {
        self.min_lanes_per_shard = min.max(1);
        self
    }

    /// The worker thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of shards a batch of `lanes` splits into: at most
    /// `threads`, and wide enough that no shard is narrower than the
    /// minimum width (a batch below twice the minimum stays whole).
    #[must_use]
    pub fn shard_count(&self, lanes: usize) -> usize {
        if lanes == 0 {
            return 0;
        }
        self.threads.min((lanes / self.min_lanes_per_shard).max(1))
    }

    /// The deterministic contiguous lane ranges of each shard: sizes
    /// differ by at most one, earlier shards take the remainder.
    #[must_use]
    pub fn ranges(&self, lanes: usize) -> Vec<Range<usize>> {
        let shards = self.shard_count(lanes);
        let mut out = Vec::with_capacity(shards);
        if shards == 0 {
            return out;
        }
        let (base, rem) = (lanes / shards, lanes % shards);
        let mut start = 0;
        for i in 0..shards {
            let size = base + usize::from(i < rem);
            out.push(start..start + size);
            start += size;
        }
        out
    }
}

impl Default for ShardPlan {
    fn default() -> Self {
        Self::from_env()
    }
}

/// A batch of lane states split into per-shard slot-major
/// [`PackedLanes`] blocks, per a [`ShardPlan`].
///
/// Pack once, step many times through a [`ShardedBatchSolver`], and
/// unpack (whole states, single lanes, or just a few slots) whenever a
/// consumer needs per-lane [`ThermalState`]s again.
#[derive(Debug, Clone)]
pub struct ShardedLanes {
    n: usize,
    total: usize,
    /// Lane offset of each shard (parallel to `shards`).
    starts: Vec<usize>,
    shards: Vec<PackedLanes>,
}

impl ShardedLanes {
    /// Packs per-lane states into the plan's per-shard blocks.
    ///
    /// # Panics
    ///
    /// Panics when `states` is empty or disagrees in dimension.
    #[must_use]
    pub fn pack(states: &[ThermalState], plan: &ShardPlan) -> Self {
        assert!(!states.is_empty(), "sharded batch needs at least one lane");
        let n = states[0].len();
        let ranges = plan.ranges(states.len());
        let mut starts = Vec::with_capacity(ranges.len());
        let mut shards = Vec::with_capacity(ranges.len());
        for range in ranges {
            starts.push(range.start);
            shards.push(PackedLanes::pack(&states[range]));
        }
        Self {
            n,
            total: states.len(),
            starts,
            shards,
        }
    }

    /// Total lane count across all shards.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.total
    }

    /// State dimension per lane.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.n
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The contiguous lane range of shard `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[must_use]
    pub fn shard_range(&self, i: usize) -> Range<usize> {
        self.starts[i]..self.starts[i] + self.shards[i].batch()
    }

    /// Locates a lane: `(shard index, offset within the shard)`.
    fn locate(&self, lane: usize) -> (usize, usize) {
        assert!(lane < self.total, "lane out of range");
        let shard = self.starts.partition_point(|&s| s <= lane) - 1;
        (shard, lane - self.starts[shard])
    }

    /// Writes every lane's packed temperatures back into `states`.
    ///
    /// # Panics
    ///
    /// Panics when `states` does not match the packed shape.
    pub fn unpack_into(&self, states: &mut [ThermalState]) {
        assert_eq!(states.len(), self.total, "state count must match lanes");
        for (shard, &start) in self.shards.iter().zip(&self.starts) {
            shard.unpack_into(&mut states[start..start + shard.batch()]);
        }
    }

    /// Writes one lane's packed temperatures back into `state`.
    ///
    /// # Panics
    ///
    /// Panics when `lane` is out of range or `state` has the wrong
    /// dimension.
    pub fn unpack_lane_into(&self, lane: usize, state: &mut ThermalState) {
        let (shard, offset) = self.locate(lane);
        self.shards[shard].unpack_lane_into(offset, state);
    }

    /// Copies only the given state slots of one lane into `state` —
    /// the cheap per-step sync for the few slots per-server dynamics
    /// read (CPU dies), deferring full unpacks to telemetry
    /// boundaries.
    ///
    /// # Panics
    ///
    /// Panics when `lane` or a slot is out of range.
    pub fn copy_lane_slots_into(&self, lane: usize, slots: &[usize], state: &mut ThermalState) {
        let (shard, offset) = self.locate(lane);
        self.shards[shard].copy_lane_slots_into(offset, slots, state);
    }

    /// One packed temperature, `(lane, slot)`.
    ///
    /// # Panics
    ///
    /// Panics when `lane` or `slot` is out of range.
    #[must_use]
    pub fn lane_temperature(&self, lane: usize, slot: usize) -> f64 {
        let (shard, offset) = self.locate(lane);
        self.shards[shard].lane_temperature(offset, slot)
    }

    /// The hottest packed temperature across all lanes.
    #[must_use]
    pub fn max_temperature(&self) -> f64 {
        self.shards
            .iter()
            .map(PackedLanes::max_temperature)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Iterates the per-shard blocks with their lane ranges — for
    /// external fleet engines that fuse their own per-lane work (server
    /// dynamics, telemetry) with [`StepKernel::step_shard`] inside one
    /// parallel region.
    pub fn shards_mut(&mut self) -> impl Iterator<Item = (Range<usize>, &mut PackedLanes)> {
        self.starts
            .iter()
            .zip(self.shards.iter_mut())
            .map(|(&start, shard)| {
                let batch = shard.batch();
                (start..start + batch, shard)
            })
    }
}

/// The immutable per-step solve context a [`ShardedBatchSolver`] hands
/// to shard workers after the serial prepare phase: the shared
/// factorization (read-only), the capacitances and the step size.
///
/// External fleet engines embed [`StepKernel::step_shard`] into their
/// own worker loops to fuse per-server dynamics with the thermal solve
/// in one parallel region.
#[derive(Debug)]
pub struct StepKernel<'a, B: SolverBackend> {
    backend: &'a B,
    c: &'a [f64],
    h: f64,
    structure_hash: u64,
}

impl<B: SolverBackend> Clone for StepKernel<'_, B> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<B: SolverBackend> Copy for StepKernel<'_, B> {}

impl<B: SolverBackend> StepKernel<'_, B> {
    /// Advances one shard by the prepared step: change-driven
    /// lane-major source refresh, contiguous right-hand-side build and
    /// blocked substitution through the shared factors. `net_of` maps
    /// a shard-local lane offset to its network.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::SingularSystem`] when no valid factors
    /// are held and [`ThermalError::Diverged`] on a non-finite
    /// temperature.
    ///
    /// # Panics
    ///
    /// Panics when a lane's network does not match the template
    /// topology.
    pub fn step_shard<'n, F>(&self, shard: &mut PackedLanes, net_of: F) -> Result<(), ThermalError>
    where
        F: Fn(usize) -> &'n ThermalNetwork,
    {
        shard.refresh_sources(&net_of, self.structure_hash);
        shard.solve_be_block(self.backend, self.c, self.h, &net_of)
    }
}

/// Steps [`ShardedLanes`] through one shared backward-Euler
/// factorization on a scoped worker pool — the parallel counterpart of
/// [`BatchSolver::step_packed`], bit-identical to it (and to scalar
/// stepping) for every thread and shard count.
#[derive(Debug, Clone)]
pub struct ShardedBatchSolver<B: SolverBackend = AutoBackend> {
    inner: BatchSolver<B>,
    plan: ShardPlan,
    /// Flow generation seen per lane at the last homogeneity check.
    flow_gens: Vec<u64>,
    /// `true` while every lane is known to share the reference flow
    /// signature.
    homogeneous: bool,
}

impl ShardedBatchSolver<AutoBackend> {
    /// Builds a sharded solver for the template's topology with the
    /// environment's thread plan ([`ShardPlan::from_env`]).
    #[must_use]
    pub fn new(template: &ThermalNetwork) -> Self {
        Self::with_plan(template, ShardPlan::from_env())
    }

    /// Builds a sharded solver with an explicit plan.
    #[must_use]
    pub fn with_plan(template: &ThermalNetwork, plan: ShardPlan) -> Self {
        Self::with_backend_plan(template, plan)
    }
}

impl<B: SolverBackend + Clone> ShardedBatchSolver<B> {
    /// Builds a sharded solver over an explicit backend and plan.
    #[must_use]
    pub fn with_backend_plan(template: &ThermalNetwork, plan: ShardPlan) -> Self {
        Self {
            inner: BatchSolver::<B>::with_backend(template),
            plan,
            flow_gens: Vec::new(),
            homogeneous: false,
        }
    }

    /// The work partition in force.
    #[must_use]
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of live shared factorizations.
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.inner.group_count()
    }

    /// The underlying per-lane [`BatchSolver`] — fleets fall back to
    /// its mixed-signature `step` when lane flows diverge, sharing the
    /// same factorization cache.
    pub fn lane_solver_mut(&mut self) -> &mut BatchSolver<B> {
        &mut self.inner
    }

    /// Serial phase of a step: verifies flow homogeneity across all
    /// `count` lanes (change-driven on flow generations) and resolves
    /// the shared factorization. Returns the read-only [`StepKernel`]
    /// the parallel phase solves through.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::MixedBatchSignatures`] when lane flows
    /// have diverged and [`ThermalError::SingularSystem`] when the
    /// factorization fails.
    pub fn prepare<'n, F>(
        &mut self,
        net_of: F,
        count: usize,
        dt: SimDuration,
    ) -> Result<StepKernel<'_, B>, ThermalError>
    where
        F: Fn(usize) -> &'n ThermalNetwork,
    {
        let h = dt.as_secs_f64();
        if self.flow_gens.len() != count {
            self.flow_gens.clear();
            self.flow_gens.resize(count, 0);
            self.homogeneous = false;
        }
        let mut moved = false;
        for (lane, gen) in self.flow_gens.iter_mut().enumerate() {
            let g = net_of(lane).flow_generation();
            if *gen != g {
                *gen = g;
                moved = true;
            }
        }
        if moved || !self.homogeneous {
            if !self.inner.flows_homogeneous(&net_of, count) {
                self.homogeneous = false;
                return Err(ThermalError::MixedBatchSignatures);
            }
            self.homogeneous = true;
        }
        let group = self.inner.ensure_shared_group(net_of(0), h)?;
        Ok(StepKernel {
            backend: self.inner.group_backend(group),
            c: self.inner.capacitances(),
            h,
            structure_hash: self.inner.template_structure_hash(),
        })
    }
}

impl<B: SolverBackend + Clone + Sync> ShardedBatchSolver<B> {
    /// Advances every packed lane by `dt` through one shared
    /// factorization, stepping shards concurrently on a
    /// [`std::thread::scope`] worker per shard (inline when the batch
    /// is single-shard). Results are bit-identical to
    /// [`BatchSolver::step_packed`] for any plan.
    ///
    /// # Errors
    ///
    /// As [`BatchSolver::step_packed`]; with several shards failing at
    /// once, the lowest shard's error is reported.
    ///
    /// # Panics
    ///
    /// Panics when `nets` does not match the packed shape or a network
    /// is not structurally identical to the template.
    pub fn step<N: Borrow<ThermalNetwork> + Sync>(
        &mut self,
        nets: &[N],
        lanes: &mut ShardedLanes,
        dt: SimDuration,
    ) -> Result<(), ThermalError> {
        self.step_with(|lane| nets[lane].borrow(), nets.len(), lanes, dt)
    }

    /// As [`Self::step`], with lane networks resolved through a
    /// closure — for callers whose networks are not contiguous in
    /// memory (fleets of servers, hash-grouped members).
    ///
    /// # Errors
    ///
    /// As [`Self::step`].
    ///
    /// # Panics
    ///
    /// As [`Self::step`].
    pub fn step_with<'n, F>(
        &mut self,
        net_of: F,
        count: usize,
        lanes: &mut ShardedLanes,
        dt: SimDuration,
    ) -> Result<(), ThermalError>
    where
        F: Fn(usize) -> &'n ThermalNetwork + Sync,
    {
        if dt.is_zero() || count == 0 {
            return Ok(());
        }
        assert_eq!(count, lanes.lanes(), "network count must match lanes");
        let kernel = self.prepare(&net_of, count, dt)?;
        step_shards_once(&kernel, &net_of, lanes)
    }

    /// Advances every packed lane by `steps × dt` with inputs frozen
    /// (guaranteed by the shared borrow of the networks): the serial
    /// prepare runs once, then every worker iterates its shard's full
    /// step sequence independently — zero cross-thread synchronization
    /// inside the run, which is what makes sharded stepping scale to
    /// the core count. Bit-identical to calling [`Self::step`] `steps`
    /// times.
    ///
    /// # Errors
    ///
    /// As [`Self::step`].
    ///
    /// # Panics
    ///
    /// As [`Self::step`].
    pub fn step_many<N: Borrow<ThermalNetwork> + Sync>(
        &mut self,
        nets: &[N],
        lanes: &mut ShardedLanes,
        steps: u64,
        dt: SimDuration,
    ) -> Result<(), ThermalError> {
        if dt.is_zero() || nets.is_empty() || steps == 0 {
            return Ok(());
        }
        assert_eq!(nets.len(), lanes.lanes(), "network count must match lanes");
        let net_of = |lane: usize| nets[lane].borrow();
        let kernel = self.prepare(net_of, nets.len(), dt)?;
        if lanes.shard_count() == 1 {
            let shard = &mut lanes.shards[0];
            for _ in 0..steps {
                kernel.step_shard(shard, net_of)?;
            }
            return Ok(());
        }
        let starts = &lanes.starts;
        thread::scope(|scope| {
            let mut handles = Vec::with_capacity(lanes.shards.len());
            for (shard, &start) in lanes.shards.iter_mut().zip(starts) {
                let kernel = &kernel;
                handles.push(scope.spawn(move || {
                    for _ in 0..steps {
                        kernel.step_shard(shard, |offset| net_of(start + offset))?;
                    }
                    Ok(())
                }));
            }
            join_shard_results(handles)
        })
    }
}

/// Runs one prepared step over every shard — inline when single-shard,
/// one scoped worker per shard otherwise.
fn step_shards_once<'n, B, F>(
    kernel: &StepKernel<'_, B>,
    net_of: &F,
    lanes: &mut ShardedLanes,
) -> Result<(), ThermalError>
where
    B: SolverBackend + Sync,
    F: Fn(usize) -> &'n ThermalNetwork + Sync,
{
    if lanes.shard_count() == 1 {
        return kernel.step_shard(&mut lanes.shards[0], net_of);
    }
    let starts = &lanes.starts;
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(lanes.shards.len());
        for (shard, &start) in lanes.shards.iter_mut().zip(starts) {
            handles.push(
                scope.spawn(move || kernel.step_shard(shard, |offset| net_of(start + offset))),
            );
        }
        join_shard_results(handles)
    })
}

/// Joins shard workers in shard order, reporting the lowest-indexed
/// failure (deterministic regardless of completion order).
fn join_shard_results(
    handles: Vec<thread::ScopedJoinHandle<'_, Result<(), ThermalError>>>,
) -> Result<(), ThermalError> {
    let mut first_err = None;
    for handle in handles {
        let result = handle
            .join()
            .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
        if first_err.is_none() {
            first_err = result.err();
        }
    }
    first_err.map_or(Ok(()), Err)
}

/// Partitions items by structure hash in first-seen order: returns the
/// member lists of input *positions*, one list per distinct hash — the
/// single grouping policy shared by [`HeteroBatch`] and the core
/// fleet engine.
#[must_use]
pub fn group_by_structure_hash(hashes: impl Iterator<Item = u64>) -> Vec<Vec<usize>> {
    let mut seen: Vec<u64> = Vec::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (position, hash) in hashes.enumerate() {
        match seen.iter().position(|&h| h == hash) {
            Some(g) => groups[g].push(position),
            None => {
                seen.push(hash);
                groups.push(vec![position]);
            }
        }
    }
    groups
}

/// A heterogeneous (mixed-topology) batch: lanes partitioned by
/// [`ThermalNetwork::structure_hash`] into per-SKU groups, each stepped
/// through its own [`ShardedBatchSolver`] — so a room of several server
/// SKUs batches within each SKU instead of falling back to scalar
/// stepping.
///
/// Lane order is the caller's: `nets[i]` and `states[i]` stay lane `i`
/// through [`HeteroBatch::step`] and [`HeteroBatch::unpack_into`],
/// whatever group they land in.
#[derive(Debug)]
pub struct HeteroBatch<B: SolverBackend + Clone = AutoBackend> {
    groups: Vec<HeteroGroup<B>>,
}

#[derive(Debug)]
struct HeteroGroup<B: SolverBackend + Clone> {
    /// Caller lane indices of this group's members, in caller order.
    members: Vec<usize>,
    solver: ShardedBatchSolver<B>,
    lanes: ShardedLanes,
}

impl<B: SolverBackend + Clone> HeteroBatch<B> {
    /// Packs a mixed fleet: lanes are grouped by structure hash
    /// (first-seen order), each group packing its member states per
    /// `plan`.
    ///
    /// # Panics
    ///
    /// Panics when `nets` is empty or disagrees with `states` in count
    /// or dimension.
    #[must_use]
    pub fn pack<N: Borrow<ThermalNetwork>>(
        nets: &[N],
        states: &[ThermalState],
        plan: ShardPlan,
    ) -> Self {
        assert!(!nets.is_empty(), "heterogeneous batch needs lanes");
        assert_eq!(nets.len(), states.len(), "one state per network");
        let member_lists =
            group_by_structure_hash(nets.iter().map(|n| n.borrow().structure_hash()));
        let groups = member_lists
            .into_iter()
            .map(|members| {
                let member_states: Vec<ThermalState> =
                    members.iter().map(|&lane| states[lane].clone()).collect();
                let solver = ShardedBatchSolver::with_backend_plan(nets[members[0]].borrow(), plan);
                let lanes = ShardedLanes::pack(&member_states, &plan);
                HeteroGroup {
                    members,
                    solver,
                    lanes,
                }
            })
            .collect();
        Self { groups }
    }

    /// Number of structure-hash groups (distinct SKUs).
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Total live shared factorizations across all groups (1 per group
    /// while each SKU runs one `(dt, flow)` operating point).
    #[must_use]
    pub fn shared_factorizations(&self) -> usize {
        self.groups.iter().map(|g| g.solver.group_count()).sum()
    }

    /// Advances every lane by `dt`, each hash group batching through
    /// its own shared factorization and shard workers.
    ///
    /// # Errors
    ///
    /// As [`ShardedBatchSolver::step`], per group; the first failing
    /// group (in first-seen hash order) reports.
    ///
    /// # Panics
    ///
    /// Panics when `nets` does not match the packed fleet (count,
    /// per-lane topology).
    pub fn step<N: Borrow<ThermalNetwork> + Sync>(
        &mut self,
        nets: &[N],
        dt: SimDuration,
    ) -> Result<(), ThermalError>
    where
        B: Sync,
    {
        let total: usize = self.groups.iter().map(|g| g.members.len()).sum();
        assert_eq!(
            nets.len(),
            total,
            "network count must match the packed fleet"
        );
        for group in &mut self.groups {
            let members = &group.members;
            group.solver.step_with(
                |pos| nets[members[pos]].borrow(),
                members.len(),
                &mut group.lanes,
                dt,
            )?;
        }
        Ok(())
    }

    /// Writes every lane's packed temperatures back into `states`
    /// (caller lane order).
    ///
    /// # Panics
    ///
    /// Panics when `states` does not match the packed fleet.
    pub fn unpack_into(&self, states: &mut [ThermalState]) {
        for group in &self.groups {
            for (pos, &lane) in group.members.iter().enumerate() {
                group.lanes.unpack_lane_into(pos, &mut states[lane]);
            }
        }
    }

    /// The hottest packed temperature across the whole fleet.
    #[must_use]
    pub fn max_temperature(&self) -> f64 {
        self.groups
            .iter()
            .map(|g| g.lanes.max_temperature())
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::DenseBackend;
    use crate::network::{Coupling, ThermalNetworkBuilder};
    use leakctl_units::{AirFlow, Celsius, ThermalCapacitance, ThermalConductance, Watts};

    fn build_server_like(
        sockets: usize,
    ) -> (ThermalNetwork, Vec<crate::NodeId>, crate::FlowChannelId) {
        let mut b = ThermalNetworkBuilder::new();
        let amb = b.add_boundary("ambient", Celsius::new(24.0));
        let ch = b.add_flow_channel("chassis");
        let model = crate::ConvectionModel::turbulent(
            ThermalConductance::new(3.4),
            AirFlow::from_cfm(300.0),
        );
        let mut dies = Vec::new();
        for s in 0..sockets {
            let die = b.add_node(&format!("die{s}"), ThermalCapacitance::new(80.0));
            let sink = b.add_node(&format!("sink{s}"), ThermalCapacitance::new(400.0));
            b.connect(
                die,
                sink,
                Coupling::Conductance(ThermalConductance::new(10.0)),
            )
            .unwrap();
            b.connect(sink, amb, Coupling::Convective { channel: ch, model })
                .unwrap();
            dies.push(die);
        }
        let mut net = b.build().unwrap();
        net.set_flow(ch, AirFlow::from_cfm(250.0)).unwrap();
        (net, dies, ch)
    }

    fn fleet(count: usize, sockets: usize) -> Vec<ThermalNetwork> {
        (0..count)
            .map(|lane| {
                let (mut net, dies, _) = build_server_like(sockets);
                for (s, &die) in dies.iter().enumerate() {
                    net.set_power(die, Watts::new(40.0 + 3.0 * lane as f64 + s as f64))
                        .unwrap();
                }
                net
            })
            .collect()
    }

    #[test]
    fn plan_partition_is_deterministic_and_covers() {
        let plan = ShardPlan::new(4).with_min_lanes_per_shard(1);
        let ranges = plan.ranges(10);
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[0], 0..3);
        assert_eq!(ranges[1], 3..6);
        assert_eq!(ranges[2], 6..8);
        assert_eq!(ranges[3], 8..10);
        assert_eq!(plan.ranges(10), ranges, "pure function of the plan");
        // Default width keeps small batches whole.
        assert_eq!(ShardPlan::new(8).shard_count(20), 1);
        assert_eq!(ShardPlan::new(8).shard_count(64), 4);
        assert_eq!(ShardPlan::new(2).shard_count(64), 2);
        assert_eq!(ShardPlan::new(0).threads(), 1, "clamped");
    }

    #[test]
    fn sharded_step_bit_identical_to_packed_for_any_plan() {
        let nets = fleet(13, 2);
        let states: Vec<_> = nets
            .iter()
            .map(|n| n.uniform_state(Celsius::new(24.0)))
            .collect();
        let dt = SimDuration::from_secs(1);

        let mut reference = BatchSolver::<DenseBackend>::with_backend(&nets[0]);
        let mut packed = PackedLanes::pack(&states);
        for _ in 0..100 {
            reference.step_packed(&nets, &mut packed, dt).unwrap();
        }
        let mut want: Vec<_> = nets
            .iter()
            .map(|n| n.uniform_state(Celsius::new(0.0)))
            .collect();
        packed.unpack_into(&mut want);

        for threads in [1usize, 2, 8] {
            for min_width in [1usize, 3, 16] {
                let plan = ShardPlan::new(threads).with_min_lanes_per_shard(min_width);
                let mut solver =
                    ShardedBatchSolver::<DenseBackend>::with_backend_plan(&nets[0], plan);
                let mut lanes = ShardedLanes::pack(&states, &plan);
                for _ in 0..100 {
                    solver.step(&nets, &mut lanes, dt).unwrap();
                }
                let mut got: Vec<_> = nets
                    .iter()
                    .map(|n| n.uniform_state(Celsius::new(0.0)))
                    .collect();
                lanes.unpack_into(&mut got);
                for (lane, (a, b)) in got.iter().zip(&want).enumerate() {
                    for (i, (x, y)) in a.temperatures().iter().zip(b.temperatures()).enumerate() {
                        assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "threads {threads} width {min_width} lane {lane} slot {i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn step_many_matches_stepwise() {
        let nets = fleet(40, 2);
        let states: Vec<_> = nets
            .iter()
            .map(|n| n.uniform_state(Celsius::new(24.0)))
            .collect();
        let dt = SimDuration::from_secs(1);
        let plan = ShardPlan::new(3).with_min_lanes_per_shard(4);

        let mut a = ShardedBatchSolver::<DenseBackend>::with_backend_plan(&nets[0], plan);
        let mut lanes_a = ShardedLanes::pack(&states, &plan);
        a.step_many(&nets, &mut lanes_a, 80, dt).unwrap();

        let mut b = ShardedBatchSolver::<DenseBackend>::with_backend_plan(&nets[0], plan);
        let mut lanes_b = ShardedLanes::pack(&states, &plan);
        for _ in 0..80 {
            b.step(&nets, &mut lanes_b, dt).unwrap();
        }
        for lane in 0..nets.len() {
            for slot in 0..nets[0].state_count() {
                assert_eq!(
                    lanes_a.lane_temperature(lane, slot).to_bits(),
                    lanes_b.lane_temperature(lane, slot).to_bits(),
                    "lane {lane} slot {slot}"
                );
            }
        }
        assert!(lanes_a.max_temperature() > 24.0);
    }

    #[test]
    fn mixed_flows_rejected_then_recoverable() {
        let mut nets = fleet(6, 1);
        let states: Vec<_> = nets
            .iter()
            .map(|n| n.uniform_state(Celsius::new(24.0)))
            .collect();
        let plan = ShardPlan::new(2).with_min_lanes_per_shard(1);
        let mut solver = ShardedBatchSolver::with_plan(&nets[0], plan);
        let mut lanes = ShardedLanes::pack(&states, &plan);
        let dt = SimDuration::from_secs(1);
        solver.step(&nets, &mut lanes, dt).unwrap();
        // Diverge one lane's flow: the shared-factorization contract
        // breaks.
        let ch = crate::FlowChannelId(0);
        nets[3].set_flow(ch, AirFlow::from_cfm(500.0)).unwrap();
        assert_eq!(
            solver.step(&nets, &mut lanes, dt),
            Err(ThermalError::MixedBatchSignatures)
        );
        // Re-converge: stepping resumes.
        nets[3].set_flow(ch, AirFlow::from_cfm(250.0)).unwrap();
        solver.step(&nets, &mut lanes, dt).unwrap();
    }

    #[test]
    fn sharded_lane_accessors_agree_with_unpack() {
        let nets = fleet(9, 2);
        let states: Vec<_> = nets
            .iter()
            .map(|n| n.uniform_state(Celsius::new(24.0)))
            .collect();
        let plan = ShardPlan::new(3).with_min_lanes_per_shard(2);
        let mut solver = ShardedBatchSolver::with_plan(&nets[0], plan);
        let mut lanes = ShardedLanes::pack(&states, &plan);
        for _ in 0..50 {
            solver
                .step(&nets, &mut lanes, SimDuration::from_secs(1))
                .unwrap();
        }
        let mut unpacked: Vec<_> = nets
            .iter()
            .map(|n| n.uniform_state(Celsius::new(0.0)))
            .collect();
        lanes.unpack_into(&mut unpacked);
        let n = nets[0].state_count();
        for (lane, state) in unpacked.iter().enumerate() {
            let mut single = nets[lane].uniform_state(Celsius::new(0.0));
            lanes.unpack_lane_into(lane, &mut single);
            assert_eq!(state, &single);
            for slot in 0..n {
                assert_eq!(
                    lanes.lane_temperature(lane, slot),
                    state.temperatures()[slot]
                );
            }
            let mut partial = nets[lane].uniform_state(Celsius::new(-1.0));
            lanes.copy_lane_slots_into(lane, &[0, n - 1], &mut partial);
            assert_eq!(partial.temperatures()[0], state.temperatures()[0]);
            assert_eq!(partial.temperatures()[n - 1], state.temperatures()[n - 1]);
        }
    }

    #[test]
    fn hetero_batch_groups_by_structure_and_matches_scalar() {
        use crate::solver::Integrator;
        use crate::stepper::TransientSolver;
        // Interleaved SKUs: 1-, 2- and 3-socket topologies.
        let sockets_of = |lane: usize| 1 + lane % 3;
        let nets: Vec<ThermalNetwork> = (0..12)
            .map(|lane| {
                let (mut net, dies, _) = build_server_like(sockets_of(lane));
                for (s, &die) in dies.iter().enumerate() {
                    net.set_power(die, Watts::new(35.0 + 5.0 * lane as f64 + s as f64))
                        .unwrap();
                }
                net
            })
            .collect();
        let states: Vec<_> = nets
            .iter()
            .map(|n| n.uniform_state(Celsius::new(24.0)))
            .collect();
        let plan = ShardPlan::new(2).with_min_lanes_per_shard(2);
        let mut hetero = HeteroBatch::<DenseBackend>::pack(&nets, &states, plan);
        assert_eq!(hetero.group_count(), 3, "three SKUs, three groups");

        let mut reference: Vec<_> = nets
            .iter()
            .map(|n| {
                (
                    TransientSolver::<DenseBackend>::with_backend(n),
                    n.uniform_state(Celsius::new(24.0)),
                )
            })
            .collect();
        let dt = SimDuration::from_secs(1);
        for _ in 0..200 {
            hetero.step(&nets, dt).unwrap();
            for (net, (solver, state)) in nets.iter().zip(reference.iter_mut()) {
                solver
                    .step(net, state, dt, Integrator::BackwardEuler)
                    .unwrap();
            }
        }
        assert_eq!(hetero.shared_factorizations(), 3, "one per SKU");
        let mut got: Vec<_> = nets
            .iter()
            .map(|n| n.uniform_state(Celsius::new(0.0)))
            .collect();
        hetero.unpack_into(&mut got);
        for (lane, (a, (_, b))) in got.iter().zip(&reference).enumerate() {
            for (i, (x, y)) in a.temperatures().iter().zip(b.temperatures()).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "lane {lane} slot {i}");
            }
        }
        assert!(hetero.max_temperature() > 24.0);
    }

    #[test]
    fn zero_dt_and_zero_steps_are_noops() {
        let nets = fleet(3, 1);
        let states: Vec<_> = nets
            .iter()
            .map(|n| n.uniform_state(Celsius::new(24.0)))
            .collect();
        let plan = ShardPlan::new(2).with_min_lanes_per_shard(1);
        let mut solver = ShardedBatchSolver::with_plan(&nets[0], plan);
        let mut lanes = ShardedLanes::pack(&states, &plan);
        solver.step(&nets, &mut lanes, SimDuration::ZERO).unwrap();
        solver
            .step_many(&nets, &mut lanes, 0, SimDuration::from_secs(1))
            .unwrap();
        assert_eq!(lanes.max_temperature(), 24.0);
        assert_eq!(solver.group_count(), 0);
    }
}
