//! Invalidation-correctness properties for the cached
//! [`TransientSolver`]: a persistent solver whose caches survive across
//! steps must produce the same trajectory as the per-step
//! reassemble-and-refactor path (`ThermalNetwork::step`, which builds a
//! throwaway solver and therefore re-reads every input each call),
//! across randomized networks, mid-run input changes and all four
//! integrators.

use leakctl_thermal::{
    ConvectionModel, Coupling, Integrator, ThermalNetwork, ThermalNetworkBuilder, TransientSolver,
};
use leakctl_units::{AirFlow, Celsius, SimDuration, ThermalCapacitance, ThermalConductance, Watts};
use proptest::prelude::*;

const ALL_INTEGRATORS: [Integrator; 4] = [
    Integrator::ForwardEuler,
    Integrator::Rk4,
    Integrator::ExponentialEuler,
    Integrator::BackwardEuler,
];

/// Handles into a randomized chain network.
struct Rig {
    net: ThermalNetwork,
    dies: Vec<leakctl_thermal::NodeId>,
    boundary: leakctl_thermal::NodeId,
    channel: leakctl_thermal::FlowChannelId,
}

/// Builds a randomized multi-branch network: `branches` die→sink chains
/// convecting into a shared air node that couples to ambient, with one
/// flow channel driving every convective edge.
fn build_rig(
    branches: usize,
    caps: &[f64],
    conductances: &[f64],
    powers: &[f64],
    ambient: f64,
    cfm: f64,
) -> Rig {
    let mut b = ThermalNetworkBuilder::new();
    let air = b.add_node("air", ThermalCapacitance::new(20.0 + caps[0]));
    let amb = b.add_boundary("ambient", Celsius::new(ambient));
    let channel = b.add_flow_channel("chassis");
    b.connect(
        air,
        amb,
        Coupling::Conductance(ThermalConductance::new(conductances[0])),
    )
    .unwrap();
    b.connect_directed(
        amb,
        air,
        Coupling::Advective {
            channel,
            fraction: 1.0,
        },
    )
    .unwrap();
    let mut dies = Vec::new();
    for i in 0..branches {
        let die = b.add_node(&format!("die{i}"), ThermalCapacitance::new(caps[1 + 2 * i]));
        let sink = b.add_node(
            &format!("sink{i}"),
            ThermalCapacitance::new(caps[2 + 2 * i]),
        );
        b.connect(
            die,
            sink,
            Coupling::Conductance(ThermalConductance::new(conductances[1 + i])),
        )
        .unwrap();
        let model = ConvectionModel::turbulent(
            ThermalConductance::new(conductances[1 + branches + i]),
            AirFlow::from_cfm(300.0),
        );
        b.connect(sink, air, Coupling::Convective { channel, model })
            .unwrap();
        dies.push(die);
    }
    let mut net = b.build().unwrap();
    net.set_flow(channel, AirFlow::from_cfm(cfm)).unwrap();
    for (die, p) in dies.iter().zip(powers) {
        net.set_power(*die, Watts::new(*p)).unwrap();
    }
    Rig {
        net,
        dies,
        boundary: amb,
        channel,
    }
}

fn assert_trajectories_match(a: &[f64], b: &[f64], what: &str) {
    for (x, y) in a.iter().zip(b) {
        assert!(
            (x - y).abs() <= 1e-12 * x.abs().max(1.0),
            "{what}: cached {x} vs reference {y}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A persistent cached solver must match the per-step assemble path
    /// exactly, including across mid-run flow, power and boundary
    /// changes that invalidate each cache layer, for every integrator.
    #[test]
    fn cached_stepper_equals_per_step_assembly(
        branches in 1usize..4,
        caps in prop::collection::vec(20.0..900.0f64, 9),
        conductances in prop::collection::vec(0.8..12.0f64, 9),
        powers in prop::collection::vec(0.0..150.0f64, 4),
        ambient in 15.0..35.0f64,
        cfm in 60.0..500.0f64,
        flow_change_at in 10usize..40,
        power_change_at in 10usize..40,
        boundary_change_at in 10usize..40,
        dt_ms in 200u64..1500,
    ) {
        for method in ALL_INTEGRATORS {
            let Rig { mut net, dies, boundary, channel } =
                build_rig(branches, &caps, &conductances, &powers, ambient, cfm);
            let mut solver = TransientSolver::new(&net);
            let mut cached = net.uniform_state(Celsius::new(ambient));
            let mut reference = net.uniform_state(Celsius::new(ambient));
            let dt = SimDuration::from_millis(dt_ms);
            let mut diverged = false;
            for step in 0..50 {
                if step == flow_change_at {
                    net.set_flow(channel, AirFlow::from_cfm(cfm * 1.7 + 20.0)).unwrap();
                }
                if step == power_change_at {
                    net.set_power(dies[0], Watts::new(powers[0] * 0.5 + 10.0)).unwrap();
                }
                if step == boundary_change_at {
                    net.set_boundary(boundary, Celsius::new(ambient + 4.0)).unwrap();
                }
                // Persistent solver: caches carry over from previous
                // steps and must self-invalidate. Reference: stateless
                // path re-reads everything. An explicit method may
                // legitimately diverge on a stiff draw — both paths
                // must then diverge together.
                let cached_result = solver.step(&net, &mut cached, dt, method);
                let reference_result = net.step(&mut reference, dt, method);
                prop_assert_eq!(
                    cached_result.is_err(),
                    reference_result.is_err(),
                    "{:?}: cached {:?} vs reference {:?}",
                    method,
                    cached_result,
                    reference_result
                );
                if cached_result.is_err() {
                    diverged = true;
                    break;
                }
            }
            if !diverged {
                let got: Vec<f64> =
                    dies.iter().map(|&d| net.temperature(&cached, d).degrees()).collect();
                let want: Vec<f64> =
                    dies.iter().map(|&d| net.temperature(&reference, d).degrees()).collect();
                assert_trajectories_match(&got, &want, &format!("{method:?}"));
            }
        }
    }

    /// Redundant writes (same value) must not disturb the trajectory
    /// either — they are exactly the no-invalidation fast path.
    #[test]
    fn redundant_writes_are_noops(
        p in 10.0..200.0f64,
        cfm in 60.0..400.0f64,
    ) {
        let caps = vec![50.0; 9];
        let gs = vec![4.0; 9];
        let powers = vec![p; 4];
        let Rig { mut net, dies, boundary: _, channel } = build_rig(2, &caps, &gs, &powers, 24.0, cfm);
        let mut solver = TransientSolver::new(&net);
        let mut noisy = net.uniform_state(Celsius::new(24.0));
        let dt = SimDuration::from_secs(1);
        for _ in 0..30 {
            // Re-set identical values every step.
            net.set_flow(channel, AirFlow::from_cfm(cfm)).unwrap();
            net.set_power(dies[0], Watts::new(p)).unwrap();
            solver.step(&net, &mut noisy, dt, Integrator::BackwardEuler).unwrap();
        }
        let mut quiet_solver = TransientSolver::new(&net);
        let mut quiet = net.uniform_state(Celsius::new(24.0));
        for _ in 0..30 {
            quiet_solver.step(&net, &mut quiet, dt, Integrator::BackwardEuler).unwrap();
        }
        for (&die, _) in dies.iter().zip(0..) {
            let a = net.temperature(&noisy, die).degrees();
            let b = net.temperature(&quiet, die).degrees();
            prop_assert!((a - b).abs() == 0.0, "redundant writes changed result: {a} vs {b}");
        }
    }
}
