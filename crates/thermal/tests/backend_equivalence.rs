//! Equivalence properties for the solver backends and the batch
//! engine: whatever path steps the network — dense per-server, CSR
//! sparse, per-lane batched, packed batched, thread-sharded packed or
//! hash-grouped heterogeneous — the trajectory must match the dense
//! per-server reference to ≤ 1e-12 relative (and the sharded paths
//! must be *bit-identical* across thread and shard counts), across
//! randomized topologies, batch sizes and mid-run input changes.

use leakctl_thermal::{
    BatchLane, BatchSolver, Coupling, CsrTransientSolver, DenseTransientSolver, HeteroBatch,
    Integrator, PackedLanes, ShardPlan, ShardedBatchSolver, ShardedLanes, ThermalNetwork,
    ThermalNetworkBuilder,
};
use leakctl_units::{AirFlow, Celsius, SimDuration, ThermalCapacitance, ThermalConductance, Watts};
use proptest::prelude::*;

const ALL_INTEGRATORS: [Integrator; 4] = [
    Integrator::ForwardEuler,
    Integrator::Rk4,
    Integrator::ExponentialEuler,
    Integrator::BackwardEuler,
];

/// Handles into a randomized multi-branch network.
struct Rig {
    net: ThermalNetwork,
    dies: Vec<leakctl_thermal::NodeId>,
    boundary: leakctl_thermal::NodeId,
    channel: leakctl_thermal::FlowChannelId,
}

/// Builds a randomized multi-branch network: `branches` die→sink chains
/// convecting into a shared air node that couples to ambient, with one
/// flow channel driving every convective edge. Identical parameters
/// build structurally identical networks (shared `structure_hash`), so
/// repeated calls can be pooled in one batch.
fn build_rig(
    branches: usize,
    caps: &[f64],
    conductances: &[f64],
    powers: &[f64],
    ambient: f64,
    cfm: f64,
) -> Rig {
    let mut b = ThermalNetworkBuilder::new();
    let air = b.add_node("air", ThermalCapacitance::new(20.0 + caps[0]));
    let amb = b.add_boundary("ambient", Celsius::new(ambient));
    let channel = b.add_flow_channel("chassis");
    b.connect(
        air,
        amb,
        Coupling::Conductance(ThermalConductance::new(conductances[0])),
    )
    .unwrap();
    b.connect_directed(
        amb,
        air,
        Coupling::Advective {
            channel,
            fraction: 1.0,
        },
    )
    .unwrap();
    let mut dies = Vec::new();
    for i in 0..branches {
        let die = b.add_node(&format!("die{i}"), ThermalCapacitance::new(caps[1 + 2 * i]));
        let sink = b.add_node(
            &format!("sink{i}"),
            ThermalCapacitance::new(caps[2 + 2 * i]),
        );
        b.connect(
            die,
            sink,
            Coupling::Conductance(ThermalConductance::new(conductances[1 + i])),
        )
        .unwrap();
        let model = leakctl_thermal::ConvectionModel::turbulent(
            ThermalConductance::new(conductances[1 + branches + i]),
            AirFlow::from_cfm(300.0),
        );
        b.connect(sink, air, Coupling::Convective { channel, model })
            .unwrap();
        dies.push(die);
    }
    let mut net = b.build().unwrap();
    net.set_flow(channel, AirFlow::from_cfm(cfm)).unwrap();
    for (die, p) in dies.iter().zip(powers) {
        net.set_power(*die, Watts::new(*p)).unwrap();
    }
    Rig {
        net,
        dies,
        boundary: amb,
        channel,
    }
}

fn assert_close(a: &[f64], b: &[f64], what: &str) {
    for (x, y) in a.iter().zip(b) {
        assert!(
            (x - y).abs() <= 1e-12 * x.abs().max(1.0),
            "{what}: {x} vs reference {y}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The CSR backend must track the dense backend to ≤ 1e-12 on the
    /// same randomized network, for every integrator, across mid-run
    /// flow, power and boundary changes that invalidate each cache
    /// layer and force sparse refactorizations.
    #[test]
    fn csr_backend_tracks_dense_across_random_topologies(
        branches in 1usize..4,
        caps in prop::collection::vec(20.0..900.0f64, 9),
        conductances in prop::collection::vec(0.8..12.0f64, 9),
        powers in prop::collection::vec(0.0..150.0f64, 4),
        ambient in 15.0..35.0f64,
        cfm in 60.0..500.0f64,
        flow_change_at in 10usize..40,
        power_change_at in 10usize..40,
        boundary_change_at in 10usize..40,
        dt_ms in 200u64..1500,
    ) {
        for method in ALL_INTEGRATORS {
            let mut rig = build_rig(branches, &caps, &conductances, &powers, ambient, cfm);
            let mut dense = DenseTransientSolver::with_backend(&rig.net);
            let mut csr = CsrTransientSolver::with_backend(&rig.net);
            let mut sd = rig.net.uniform_state(Celsius::new(ambient));
            let mut sc = rig.net.uniform_state(Celsius::new(ambient));
            let dt = SimDuration::from_millis(dt_ms);
            let mut diverged = false;
            for step in 0..60 {
                if step == flow_change_at {
                    rig.net.set_flow(rig.channel, AirFlow::from_cfm(cfm * 1.7)).unwrap();
                }
                if step == power_change_at {
                    rig.net.set_power(rig.dies[0], Watts::new(180.0)).unwrap();
                }
                if step == boundary_change_at {
                    rig.net.set_boundary(rig.boundary, Celsius::new(ambient + 4.0)).unwrap();
                }
                // An explicit method may legitimately diverge on a
                // stiff draw — both backends must then diverge
                // together.
                let dense_result = dense.step(&rig.net, &mut sd, dt, method);
                let csr_result = csr.step(&rig.net, &mut sc, dt, method);
                prop_assert_eq!(
                    dense_result.is_err(),
                    csr_result.is_err(),
                    "{:?}: dense {:?} vs csr {:?}",
                    method,
                    dense_result,
                    csr_result
                );
                if dense_result.is_err() {
                    diverged = true;
                    break;
                }
            }
            if !diverged {
                assert_close(sc.temperatures(), sd.temperatures(), &format!("{method:?}"));
            }
        }
    }

    /// Batched stepping — per-lane lanes and the packed fast path —
    /// must track independent dense per-server solvers to ≤ 1e-12
    /// across batch sizes and mid-run per-lane flow/power divergence.
    /// (The per-lane path additionally guarantees bit-identity; this
    /// property pins the public ≤ 1e-12 contract.)
    #[test]
    fn batched_tracks_dense_per_server(
        batch in 1usize..5,
        branches in 1usize..3,
        caps in prop::collection::vec(20.0..900.0f64, 7),
        conductances in prop::collection::vec(0.8..12.0f64, 7),
        base_power in 20.0..120.0f64,
        ambient in 15.0..35.0f64,
        cfm in 60.0..500.0f64,
        flow_change_at in 5usize..30,
        power_change_at in 5usize..30,
    ) {
        let powers: Vec<f64> = (0..branches).map(|i| base_power + 7.0 * i as f64).collect();
        let mut rigs: Vec<Rig> = (0..batch)
            .map(|_| build_rig(branches, &caps, &conductances, &powers, ambient, cfm))
            .collect();
        // Diverge lane powers so right-hand sides differ.
        for (lane, rig) in rigs.iter_mut().enumerate() {
            rig.net
                .set_power(rig.dies[0], Watts::new(base_power + 11.0 * lane as f64))
                .unwrap();
        }
        let dt = SimDuration::from_secs(1);

        // Reference: one dense solver per lane.
        let mut reference: Vec<_> = rigs
            .iter()
            .map(|r| {
                (
                    DenseTransientSolver::with_backend(&r.net),
                    r.net.uniform_state(Celsius::new(ambient)),
                )
            })
            .collect();
        // Per-lane batch path.
        let mut batch_solver = BatchSolver::new(&rigs[0].net);
        let mut batch_states: Vec<_> = rigs
            .iter()
            .map(|r| r.net.uniform_state(Celsius::new(ambient)))
            .collect();
        // Packed path runs while flows stay homogeneous.
        let mut packed_solver = BatchSolver::new(&rigs[0].net);
        let mut packed = PackedLanes::pack(&batch_states);
        let mut packed_live = true;

        for step in 0..50 {
            if step == power_change_at {
                let rig = &mut rigs[0];
                rig.net.set_power(rig.dies[0], Watts::new(200.0)).unwrap();
            }
            if step == flow_change_at && batch > 1 {
                // Split the batch into two flow groups mid-run; the
                // packed fast path refuses exactly then.
                let rig = &mut rigs[1];
                rig.net.set_flow(rig.channel, AirFlow::from_cfm(cfm * 2.1)).unwrap();
            }
            for (rig, (solver, state)) in rigs.iter().zip(reference.iter_mut()) {
                solver.step(&rig.net, state, dt, Integrator::BackwardEuler).unwrap();
            }
            let mut lanes: Vec<BatchLane<'_>> = rigs
                .iter()
                .zip(batch_states.iter_mut())
                .map(|(rig, state)| BatchLane { net: &rig.net, state })
                .collect();
            batch_solver.step(&mut lanes, dt).unwrap();
            if packed_live {
                let nets: Vec<ThermalNetwork> = rigs.iter().map(|r| r.net.clone()).collect();
                match packed_solver.step_packed(&nets, &mut packed, dt) {
                    Ok(()) => {}
                    Err(leakctl_thermal::ThermalError::MixedBatchSignatures) => {
                        assert!(step == flow_change_at && batch > 1, "only on divergence");
                        packed_live = false;
                    }
                    Err(other) => panic!("unexpected packed error: {other}"),
                }
            }
        }
        for (lane, ((_, ref_state), batch_state)) in
            reference.iter().zip(&batch_states).enumerate()
        {
            assert_close(
                batch_state.temperatures(),
                ref_state.temperatures(),
                &format!("lane {lane} (per-lane batch)"),
            );
        }
        if packed_live {
            let mut unpacked: Vec<_> = rigs
                .iter()
                .map(|r| r.net.uniform_state(Celsius::new(0.0)))
                .collect();
            packed.unpack_into(&mut unpacked);
            for (lane, ((_, ref_state), state)) in
                reference.iter().zip(&unpacked).enumerate()
            {
                assert_close(
                    state.temperatures(),
                    ref_state.temperatures(),
                    &format!("lane {lane} (packed batch)"),
                );
            }
        }
    }

    /// At rack scale (above the CSR auto-selection threshold) the
    /// sparse backend must track dense on a long randomized chain,
    /// including a mid-run flow change that forces a numeric
    /// refactorization over the cached symbolic analysis.
    #[test]
    fn csr_tracks_dense_at_rack_scale(
        sections in 25usize..45,
        cap_scale in 0.5..2.0f64,
        g_chain in 2.0..9.0f64,
        power in 10.0..90.0f64,
        cfm in 80.0..400.0f64,
        flow_change_at in 5usize..20,
    ) {
        // A chain of die→sink pairs hanging off a shared duct of air
        // nodes: 3·sections + 1 > 64 state nodes for every drawn size.
        let mut b = ThermalNetworkBuilder::new();
        let amb = b.add_boundary("amb", Celsius::new(22.0));
        let channel = b.add_flow_channel("duct");
        let mut upstream = b.add_node("plenum", ThermalCapacitance::new(50.0 * cap_scale));
        b.connect(
            upstream,
            amb,
            Coupling::Conductance(ThermalConductance::new(1.0)),
        )
        .unwrap();
        b.connect_directed(
            amb,
            upstream,
            Coupling::Advective { channel, fraction: 1.0 },
        )
        .unwrap();
        let mut dies = Vec::new();
        for i in 0..sections {
            let air = b.add_node(&format!("air{i}"), ThermalCapacitance::new(15.0 * cap_scale));
            let die = b.add_node(&format!("die{i}"), ThermalCapacitance::new(80.0 * cap_scale));
            let sink = b.add_node(&format!("sink{i}"), ThermalCapacitance::new(300.0 * cap_scale));
            b.connect(
                die,
                sink,
                Coupling::Conductance(ThermalConductance::new(g_chain)),
            )
            .unwrap();
            let model = leakctl_thermal::ConvectionModel::turbulent(
                ThermalConductance::new(3.0),
                AirFlow::from_cfm(300.0),
            );
            b.connect(sink, air, Coupling::Convective { channel, model }).unwrap();
            b.connect_directed(
                upstream,
                air,
                Coupling::Advective { channel, fraction: 1.0 },
            )
            .unwrap();
            b.connect(
                air,
                amb,
                Coupling::Conductance(ThermalConductance::new(0.3)),
            )
            .unwrap();
            dies.push(die);
            upstream = air;
        }
        let mut net = b.build().unwrap();
        assert!(net.state_count() >= leakctl_thermal::CSR_NODE_THRESHOLD);
        net.set_flow(channel, AirFlow::from_cfm(cfm)).unwrap();
        for (i, die) in dies.iter().enumerate() {
            net.set_power(*die, Watts::new(power + (i % 5) as f64)).unwrap();
        }
        // The auto backend must pick CSR here.
        let auto = leakctl_thermal::TransientSolver::new(&net);
        assert!(auto.is_sparse());

        let mut dense = DenseTransientSolver::with_backend(&net);
        let mut csr = CsrTransientSolver::with_backend(&net);
        let mut sd = net.uniform_state(Celsius::new(22.0));
        let mut sc = net.uniform_state(Celsius::new(22.0));
        let dt = SimDuration::from_secs(1);
        for step in 0..30 {
            if step == flow_change_at {
                net.set_flow(channel, AirFlow::from_cfm(cfm * 1.6)).unwrap();
            }
            dense.step(&net, &mut sd, dt, Integrator::BackwardEuler).unwrap();
            csr.step(&net, &mut sc, dt, Integrator::BackwardEuler).unwrap();
        }
        assert_close(sc.temperatures(), sd.temperatures(), "rack-scale chain");
        // Steady states agree too (G factorization path).
        let mut ssd = net.uniform_state(Celsius::new(0.0));
        let mut ssc = net.uniform_state(Celsius::new(0.0));
        dense.steady_state_into(&net, &mut ssd).unwrap();
        csr.steady_state_into(&net, &mut ssc).unwrap();
        assert_close(ssc.temperatures(), ssd.temperatures(), "rack-scale steady state");
    }

    /// Packed sharded stepping is *bit-identical* across thread counts
    /// {1, 2, 8} and arbitrary shard widths: the work partition is a
    /// pure performance knob. The reference is the single-block
    /// `step_packed` path (itself bit-identical to scalar stepping),
    /// with a mid-run power change exercising the lane-major refresh.
    #[test]
    fn sharded_stepping_bit_identical_across_thread_and_shard_counts(
        batch in 1usize..10,
        branches in 1usize..3,
        caps in prop::collection::vec(20.0..900.0f64, 7),
        conductances in prop::collection::vec(0.8..12.0f64, 7),
        base_power in 20.0..120.0f64,
        ambient in 15.0..35.0f64,
        cfm in 60.0..500.0f64,
        min_width in 1usize..6,
        power_change_at in 5usize..25,
    ) {
        let powers: Vec<f64> = (0..branches).map(|i| base_power + 7.0 * i as f64).collect();
        let mut rigs: Vec<Rig> = (0..batch)
            .map(|_| build_rig(branches, &caps, &conductances, &powers, ambient, cfm))
            .collect();
        for (lane, rig) in rigs.iter_mut().enumerate() {
            rig.net
                .set_power(rig.dies[0], Watts::new(base_power + 9.0 * lane as f64))
                .unwrap();
        }
        let dt = SimDuration::from_secs(1);
        let run = |rigs: &mut [Rig], threads: Option<usize>, min_width: usize| -> Vec<Vec<u64>> {
            let states: Vec<_> = rigs
                .iter()
                .map(|r| r.net.uniform_state(Celsius::new(ambient)))
                .collect();
            let mut packed_solver = BatchSolver::new(&rigs[0].net);
            let mut packed = PackedLanes::pack(&states);
            let mut sharded = threads.map(|t| {
                let plan = ShardPlan::new(t).with_min_lanes_per_shard(min_width);
                (
                    ShardedBatchSolver::with_plan(&rigs[0].net, plan),
                    ShardedLanes::pack(&states, &plan),
                )
            });
            for step in 0..30 {
                if step == power_change_at {
                    let rig = &mut rigs[0];
                    rig.net.set_power(rig.dies[0], Watts::new(190.0)).unwrap();
                }
                let nets: Vec<ThermalNetwork> = rigs.iter().map(|r| r.net.clone()).collect();
                match sharded.as_mut() {
                    Some((solver, lanes)) => solver.step(&nets, lanes, dt).unwrap(),
                    None => packed_solver.step_packed(&nets, &mut packed, dt).unwrap(),
                }
            }
            let mut out: Vec<_> = rigs
                .iter()
                .map(|r| r.net.uniform_state(Celsius::new(0.0)))
                .collect();
            match sharded.as_ref() {
                Some((_, lanes)) => lanes.unpack_into(&mut out),
                None => packed.unpack_into(&mut out),
            }
            out.iter()
                .map(|s| s.temperatures().iter().map(|t| t.to_bits()).collect())
                .collect()
        };
        // Reset the power change between runs by re-deriving rigs each
        // time: run() mutates rig 0 at power_change_at, so rebuild.
        let reference = run(&mut rigs, None, 1);
        for threads in [1usize, 2, 8] {
            let mut rigs: Vec<Rig> = (0..batch)
                .map(|_| build_rig(branches, &caps, &conductances, &powers, ambient, cfm))
                .collect();
            for (lane, rig) in rigs.iter_mut().enumerate() {
                rig.net
                    .set_power(rig.dies[0], Watts::new(base_power + 9.0 * lane as f64))
                    .unwrap();
            }
            let got = run(&mut rigs, Some(threads), min_width);
            prop_assert_eq!(
                &got,
                &reference,
                "threads {} width {} diverged from packed reference",
                threads,
                min_width
            );
        }
    }

    /// Hash-grouped heterogeneous batches: a fleet mixing several
    /// distinct topologies, partitioned by structure hash and batched
    /// per group, must match independent dense per-server solvers to
    /// ≤ 1e-12 on every lane.
    #[test]
    fn hetero_hash_groups_track_dense_reference(
        lanes in 2usize..8,
        caps in prop::collection::vec(20.0..900.0f64, 7),
        conductances in prop::collection::vec(0.8..12.0f64, 7),
        base_power in 20.0..120.0f64,
        ambient in 15.0..35.0f64,
        cfm in 60.0..500.0f64,
        power_change_at in 5usize..25,
    ) {
        // Lane i gets 1 + i % 3 branches: at least two distinct
        // topologies, interleaved in caller order.
        let mut rigs: Vec<Rig> = (0..lanes)
            .map(|lane| {
                let branches = 1 + lane % 3;
                let powers: Vec<f64> = (0..branches)
                    .map(|i| base_power + 5.0 * lane as f64 + 2.0 * i as f64)
                    .collect();
                build_rig(branches, &caps, &conductances, &powers, ambient, cfm)
            })
            .collect();
        let nets: Vec<ThermalNetwork> = rigs.iter().map(|r| r.net.clone()).collect();
        let states: Vec<_> = nets
            .iter()
            .map(|n| n.uniform_state(Celsius::new(ambient)))
            .collect();
        let plan = ShardPlan::new(2).with_min_lanes_per_shard(1);
        let mut hetero = HeteroBatch::<leakctl_thermal::DenseBackend>::pack(&nets, &states, plan);
        prop_assert!(hetero.group_count() >= 2, "mixed fleet must split");
        let mut reference: Vec<_> = nets
            .iter()
            .map(|n| {
                (
                    DenseTransientSolver::with_backend(n),
                    n.uniform_state(Celsius::new(ambient)),
                )
            })
            .collect();
        let dt = SimDuration::from_secs(1);
        let mut nets = nets;
        for step in 0..40 {
            if step == power_change_at {
                let die = rigs[0].dies[0];
                nets[0].set_power(die, Watts::new(200.0)).unwrap();
            }
            hetero.step(&nets, dt).unwrap();
            for (net, (solver, state)) in nets.iter().zip(reference.iter_mut()) {
                solver.step(net, state, dt, Integrator::BackwardEuler).unwrap();
            }
        }
        let _ = &mut rigs;
        let mut got: Vec<_> = nets
            .iter()
            .map(|n| n.uniform_state(Celsius::new(0.0)))
            .collect();
        hetero.unpack_into(&mut got);
        for (lane, (state, (_, ref_state))) in got.iter().zip(&reference).enumerate() {
            assert_close(
                state.temperatures(),
                ref_state.temperatures(),
                &format!("lane {lane} (hetero hash group)"),
            );
        }
    }
}
