//! Property-based tests for the RC thermal network.

use leakctl_thermal::{ConvectionModel, Coupling, Integrator, ThermalNetworkBuilder};
use leakctl_units::{AirFlow, Celsius, SimDuration, ThermalCapacitance, ThermalConductance, Watts};
use proptest::prelude::*;

/// Builds a chain: die — sink — air — ambient with a convective sink-air
/// edge, returning (network, die id, channel id).
fn chain(
    g_die_sink: f64,
    g_sink_air_ref: f64,
    g_air_amb: f64,
    ambient: f64,
) -> (
    leakctl_thermal::ThermalNetwork,
    leakctl_thermal::NodeId,
    leakctl_thermal::FlowChannelId,
) {
    let mut b = ThermalNetworkBuilder::new();
    let die = b.add_node("die", ThermalCapacitance::new(150.0));
    let sink = b.add_node("sink", ThermalCapacitance::new(800.0));
    let air = b.add_node("air", ThermalCapacitance::new(20.0));
    let amb = b.add_boundary("ambient", Celsius::new(ambient));
    b.connect(
        die,
        sink,
        Coupling::Conductance(ThermalConductance::new(g_die_sink)),
    )
    .unwrap();
    let ch = b.add_flow_channel("main");
    let model = ConvectionModel::turbulent(
        ThermalConductance::new(g_sink_air_ref),
        AirFlow::from_cfm(300.0),
    );
    b.connect(sink, air, Coupling::Convective { channel: ch, model })
        .unwrap();
    b.connect(
        air,
        amb,
        Coupling::Conductance(ThermalConductance::new(g_air_amb)),
    )
    .unwrap();
    (b.build().unwrap(), die, ch)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Maximum principle: with non-negative injected power, every steady
    /// temperature is at or above ambient.
    #[test]
    fn steady_state_above_ambient(
        p in 0.0..300.0f64,
        g1 in 0.5..10.0f64,
        g2 in 0.5..10.0f64,
        g3 in 5.0..50.0f64,
        cfm in 50.0..600.0f64,
        ambient in 10.0..40.0f64,
    ) {
        let (mut net, die, ch) = chain(g1, g2, g3, ambient);
        net.set_flow(ch, AirFlow::from_cfm(cfm)).unwrap();
        net.set_power(die, Watts::new(p)).unwrap();
        let ss = net.steady_state().unwrap();
        prop_assert!(net.temperature(&ss, die).degrees() >= ambient - 1e-9);
    }

    /// More airflow never makes the die hotter.
    #[test]
    fn die_temp_monotone_in_flow(
        p in 10.0..300.0f64,
        cfm_lo in 50.0..300.0f64,
        extra in 10.0..400.0f64,
    ) {
        let (mut net, die, ch) = chain(3.0, 4.0, 20.0, 24.0);
        net.set_power(die, Watts::new(p)).unwrap();
        net.set_flow(ch, AirFlow::from_cfm(cfm_lo)).unwrap();
        let t_lo = net.temperature(&net.steady_state().unwrap(), die);
        net.set_flow(ch, AirFlow::from_cfm(cfm_lo + extra)).unwrap();
        let t_hi = net.temperature(&net.steady_state().unwrap(), die);
        prop_assert!(t_hi <= t_lo, "flow up, temp {t_lo} -> {t_hi}");
    }

    /// Steady-state temperature rise is linear in injected power
    /// (the network is linear at fixed flows).
    #[test]
    fn superposition_in_power(
        p in 1.0..200.0f64,
        scale in 1.5..4.0f64,
    ) {
        let (mut net, die, ch) = chain(3.0, 4.0, 20.0, 24.0);
        net.set_flow(ch, AirFlow::from_cfm(200.0)).unwrap();
        net.set_power(die, Watts::new(p)).unwrap();
        let rise1 = net.temperature(&net.steady_state().unwrap(), die).degrees() - 24.0;
        net.set_power(die, Watts::new(p * scale)).unwrap();
        let rise2 = net.temperature(&net.steady_state().unwrap(), die).degrees() - 24.0;
        prop_assert!((rise2 - rise1 * scale).abs() < 1e-6 * rise2.abs().max(1.0));
    }

    /// The implicit integrator always lands on the steady state
    /// eventually, from any initial temperature.
    #[test]
    fn transient_converges_from_any_start(
        p in 0.0..200.0f64,
        t0 in -20.0..120.0f64,
    ) {
        let (mut net, die, ch) = chain(3.0, 4.0, 20.0, 24.0);
        net.set_flow(ch, AirFlow::from_cfm(200.0)).unwrap();
        net.set_power(die, Watts::new(p)).unwrap();
        let ss = net.steady_state().unwrap();
        let mut st = net.uniform_state(Celsius::new(t0));
        net.run(
            &mut st,
            SimDuration::from_hours(4),
            SimDuration::from_secs(10),
            Integrator::BackwardEuler,
        )
        .unwrap();
        let diff = (net.temperature(&st, die).degrees()
            - net.temperature(&ss, die).degrees())
        .abs();
        prop_assert!(diff < 0.05, "still {diff} K away after 4 h");
    }

    /// Backward Euler and RK4 agree at small steps.
    #[test]
    fn integrators_agree_at_small_steps(p in 10.0..150.0f64) {
        let (mut net, die, ch) = chain(3.0, 4.0, 20.0, 24.0);
        net.set_flow(ch, AirFlow::from_cfm(250.0)).unwrap();
        net.set_power(die, Watts::new(p)).unwrap();
        let horizon = SimDuration::from_mins(10);
        let dt = SimDuration::from_millis(100);
        let mut a = net.uniform_state(Celsius::new(24.0));
        net.run(&mut a, horizon, dt, Integrator::BackwardEuler).unwrap();
        let mut b = net.uniform_state(Celsius::new(24.0));
        net.run(&mut b, horizon, dt, Integrator::Rk4).unwrap();
        let da = net.temperature(&a, die).degrees();
        let db = net.temperature(&b, die).degrees();
        prop_assert!((da - db).abs() < 0.2, "BE {da} vs RK4 {db}");
    }
}
