//! Property-based tests for power models and fitting.

use leakctl_power::fit;
use leakctl_power::{
    ActivePowerModel, EmpiricalLeakage, FanPowerModel, PhysicalLeakage, PsuModel, ServerPowerModel,
};
use leakctl_units::{AirFlow, Celsius, Rpm, Utilization, Watts};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn active_power_is_linear(k1 in 0.01..2.0f64, u in 0.0..=1.0f64) {
        let m = ActivePowerModel::new(k1);
        let u1 = Utilization::from_fraction(u).unwrap();
        let p = m.power(u1).value();
        prop_assert!((p - k1 * u * 100.0).abs() < 1e-9);
    }

    #[test]
    fn leakage_monotone(
        c in 0.0..20.0f64,
        k2 in 0.01..2.0f64,
        k3 in 0.01..0.1f64,
        t1 in 20.0..70.0f64,
        dt in 0.5..30.0f64,
    ) {
        let m = EmpiricalLeakage::new(c, k2, k3);
        let p1 = m.power(Celsius::new(t1));
        let p2 = m.power(Celsius::new(t1 + dt));
        prop_assert!(p2 > p1);
    }

    #[test]
    fn physical_leakage_positive_and_monotone(
        pref in 1.0..30.0f64,
        sigma in 0.5..2.0f64,
        t in 20.0..100.0f64,
    ) {
        let m = PhysicalLeakage::calibrated(pref).with_process_sigma(sigma);
        let p = m.power(Celsius::new(t));
        prop_assert!(p.value() > 0.0);
        let p_hotter = m.power(Celsius::new(t + 1.0));
        prop_assert!(p_hotter > p);
    }

    #[test]
    fn fan_power_monotone_and_superlinear(
        rpm in 500.0..4000.0f64,
        factor in 1.1..2.0f64,
    ) {
        let m = FanPowerModel::paper_server();
        let p1 = m.power(Rpm::new(rpm));
        let p2 = m.power(Rpm::new(rpm * factor));
        prop_assert!(p2 > p1);
        // Dynamic part grows faster than linearly.
        let floor = m.power(Rpm::ZERO).value();
        prop_assert!(p2.value() - floor > factor * (p1.value() - floor) * 0.999);
    }

    #[test]
    fn fan_flow_linear(rpm in 100.0..4200.0f64, k in 1.1..3.0f64) {
        let m = FanPowerModel::paper_server();
        let q1 = m.flow(Rpm::new(rpm)).value();
        let q2 = m.flow(Rpm::new(rpm * k)).value();
        prop_assert!((q2 - k * q1).abs() < 1e-9 * q2.abs().max(1.0));
        prop_assert!(m.flow(Rpm::new(rpm)).value() >= 0.0);
        let _ = AirFlow::ZERO;
    }

    #[test]
    fn psu_input_at_least_output(out in 0.0..1800.0f64) {
        let psu = PsuModel::paper_server();
        let input = psu.input_power(Watts::new(out));
        prop_assert!(input.value() >= out);
        prop_assert!(psu.loss(Watts::new(out)).value() >= 0.0);
    }

    #[test]
    fn psu_input_monotone(out in 10.0..1500.0f64, extra in 1.0..200.0f64) {
        let psu = PsuModel::paper_server();
        let i1 = psu.input_power(Watts::new(out));
        let i2 = psu.input_power(Watts::new(out + extra));
        prop_assert!(i2 > i1);
    }

    #[test]
    fn composite_total_is_sum(
        u in 0.0..=1.0f64,
        t in 30.0..90.0f64,
        rpm in 1800.0..4200.0f64,
    ) {
        let m = ServerPowerModel::paper_fit();
        let uu = Utilization::from_fraction(u).unwrap();
        let total = m.total(uu, Celsius::new(t), Rpm::new(rpm)).value();
        let sum = m.idle().value()
            + m.active().power(uu).value()
            + m.leakage().power(Celsius::new(t)).value()
            + m.fan().power(Rpm::new(rpm)).value();
        prop_assert!((total - sum).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_recovers_truth(
        slope in -5.0..5.0f64,
        intercept in -50.0..50.0f64,
    ) {
        let xs: Vec<f64> = (0..25).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let f = fit::linear(&xs, &ys).unwrap();
        prop_assert!((f.slope - slope).abs() < 1e-8);
        prop_assert!((f.intercept - intercept).abs() < 1e-6);
    }

    #[test]
    fn exponential_fit_recovers_truth(
        c in 0.0..15.0f64,
        a in 0.05..2.0f64,
        b in 0.02..0.08f64,
    ) {
        let xs: Vec<f64> = (40..=90).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| c + a * (b * x).exp()).collect();
        let f = fit::exponential(&xs, &ys).unwrap();
        prop_assert!((f.rate - b).abs() < 1e-3, "rate {} vs {}", f.rate, b);
        // Offset and scale trade off slightly; check predictions instead.
        for &x in &xs {
            let y = c + a * (b * x).exp();
            prop_assert!((f.predict(x) - y).abs() < 0.05 * y.max(1.0));
        }
    }
}
