//! Ordinary least squares for `y = slope·x + intercept`.

use super::{validate_xy, FitError, Goodness};

/// Result of an ordinary-least-squares line fit.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Residual statistics.
    pub goodness: Goodness,
}

impl LinearFit {
    /// Evaluates the fitted line at `x`.
    #[must_use]
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fits `y = slope·x + intercept` by ordinary least squares.
///
/// Used to identify `k1` in `P_active = k1·U` from `(utilization,
/// active power)` observations.
///
/// # Errors
///
/// Returns [`FitError::InsufficientData`] for fewer than 2 points,
/// [`FitError::LengthMismatch`], [`FitError::NonFiniteData`], or
/// [`FitError::Degenerate`] when all `x` coincide.
pub fn linear(xs: &[f64], ys: &[f64]) -> Result<LinearFit, FitError> {
    validate_xy(xs, ys, 2)?;
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mean_x).powi(2)).sum();
    if sxx < 1e-300 {
        return Err(FitError::Degenerate);
    }
    let sxy: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let residuals: Vec<f64> = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| slope * x + intercept - y)
        .collect();
    Ok(LinearFit {
        slope,
        intercept,
        goodness: Goodness::from_residuals(&residuals, ys),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs: Vec<f64> = (0..=10).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.4452 * x + 3.0).collect();
        let f = linear(&xs, &ys).unwrap();
        assert!((f.slope - 0.4452).abs() < 1e-12);
        assert!((f.intercept - 3.0).abs() < 1e-12);
        assert!(f.goodness.r_squared > 0.999_999);
        assert!((f.predict(20.0) - (0.4452 * 20.0 + 3.0)).abs() < 1e-9);
    }

    #[test]
    fn noisy_line_recovered_approximately() {
        // Deterministic "noise" from a simple LCG.
        let mut seed = 1u64;
        let mut noise = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let xs: Vec<f64> = (0..200).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x - 5.0 + noise()).collect();
        let f = linear(&xs, &ys).unwrap();
        assert!((f.slope - 2.0).abs() < 0.01);
        assert!((f.intercept + 5.0).abs() < 1.0);
        assert!(f.goodness.rmse < 1.0);
    }

    #[test]
    fn vertical_data_rejected() {
        assert_eq!(
            linear(&[3.0, 3.0, 3.0], &[1.0, 2.0, 3.0]),
            Err(FitError::Degenerate)
        );
    }

    #[test]
    fn too_few_points_rejected() {
        assert!(matches!(
            linear(&[1.0], &[1.0]),
            Err(FitError::InsufficientData { .. })
        ));
    }
}
