//! Levenberg–Marquardt nonlinear least squares with numeric Jacobians.

use super::{solve_small, validate_xy, FitError, Goodness};

/// Convergence and damping options for [`levenberg_marquardt`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LmOptions {
    /// Maximum outer iterations.
    pub max_iterations: usize,
    /// Relative SSE improvement below which iteration stops.
    pub tolerance: f64,
    /// Initial damping factor λ.
    pub initial_lambda: f64,
}

impl Default for LmOptions {
    fn default() -> Self {
        Self {
            max_iterations: 200,
            tolerance: 1e-12,
            initial_lambda: 1e-3,
        }
    }
}

/// Result of a Levenberg–Marquardt fit.
#[derive(Debug, Clone, PartialEq)]
pub struct LmFit {
    /// Fitted parameter vector.
    pub params: Vec<f64>,
    /// Residual statistics at the solution.
    pub goodness: Goodness,
    /// Outer iterations consumed.
    pub iterations: usize,
}

/// Fits `y ≈ model(params, x)` by Levenberg–Marquardt with central-
/// difference Jacobians.
///
/// `model` evaluates the prediction for one `x`; the parameter vector
/// length is taken from `initial`. This is the general engine behind
/// [`exponential`](super::exponential()); it is public so downstream
/// experiments (e.g. ablations with alternative leakage forms) can fit
/// their own models.
///
/// # Errors
///
/// Returns the usual data-validation errors,
/// [`FitError::SingularNormalEquations`] when the damped normal
/// equations collapse, and [`FitError::NotConverged`] when the iteration
/// limit passes without meeting the tolerance.
///
/// # Example
///
/// ```
/// use leakctl_power::fit::{levenberg_marquardt, LmOptions};
///
/// # fn main() -> Result<(), leakctl_power::fit::FitError> {
/// let xs: Vec<f64> = (0..30).map(|i| f64::from(i) * 0.2).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| 3.0 * (0.7 * x).exp()).collect();
/// let fit = levenberg_marquardt(
///     |p, x| p[0] * (p[1] * x).exp(),
///     &xs,
///     &ys,
///     &[1.0, 0.3],
///     LmOptions::default(),
/// )?;
/// assert!((fit.params[0] - 3.0).abs() < 1e-6);
/// assert!((fit.params[1] - 0.7).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn levenberg_marquardt<F>(
    model: F,
    xs: &[f64],
    ys: &[f64],
    initial: &[f64],
    options: LmOptions,
) -> Result<LmFit, FitError>
where
    F: Fn(&[f64], f64) -> f64,
{
    let n_params = initial.len();
    validate_xy(xs, ys, n_params + 1)?;
    if initial.iter().any(|p| !p.is_finite()) {
        return Err(FitError::NonFiniteData);
    }

    let residuals =
        |p: &[f64]| -> Vec<f64> { xs.iter().zip(ys).map(|(&x, &y)| model(p, x) - y).collect() };
    let sse = |r: &[f64]| -> f64 { r.iter().map(|v| v * v).sum() };

    let mut params = initial.to_vec();
    let mut r = residuals(&params);
    let mut current_sse = sse(&r);
    let mut lambda = options.initial_lambda;
    let mut iterations = 0;

    while iterations < options.max_iterations {
        iterations += 1;

        // Central-difference Jacobian: J[i][j] = ∂r_i/∂p_j.
        let mut jac = vec![vec![0.0; n_params]; xs.len()];
        for j in 0..n_params {
            let h = 1e-6 * params[j].abs().max(1e-4);
            let mut p_hi = params.clone();
            p_hi[j] += h;
            let mut p_lo = params.clone();
            p_lo[j] -= h;
            for (i, &x) in xs.iter().enumerate() {
                jac[i][j] = (model(&p_hi, x) - model(&p_lo, x)) / (2.0 * h);
            }
        }

        // Normal equations: (JᵀJ + λ·diag(JᵀJ))·δ = −Jᵀr.
        let mut jtj = vec![vec![0.0; n_params]; n_params];
        let mut jtr = vec![0.0; n_params];
        for i in 0..xs.len() {
            for a in 0..n_params {
                jtr[a] += jac[i][a] * r[i];
                for b in 0..n_params {
                    jtj[a][b] += jac[i][a] * jac[i][b];
                }
            }
        }

        // Inner loop: raise λ until a step improves the SSE.
        let mut improved = false;
        for _ in 0..30 {
            let mut damped = jtj.clone();
            for (a, row) in damped.iter_mut().enumerate() {
                row[a] += lambda * jtj[a][a].max(1e-12);
            }
            let rhs: Vec<f64> = jtr.iter().map(|v| -v).collect();
            let delta = match solve_small(damped, rhs) {
                Ok(d) => d,
                Err(_) => {
                    lambda *= 10.0;
                    continue;
                }
            };
            let candidate: Vec<f64> = params.iter().zip(&delta).map(|(p, d)| p + d).collect();
            if candidate.iter().any(|p| !p.is_finite()) {
                lambda *= 10.0;
                continue;
            }
            let cand_r = residuals(&candidate);
            let cand_sse = sse(&cand_r);
            if cand_sse.is_finite() && cand_sse < current_sse {
                let rel_gain = (current_sse - cand_sse) / current_sse.max(1e-300);
                params = candidate;
                r = cand_r;
                current_sse = cand_sse;
                lambda = (lambda / 10.0).max(1e-12);
                improved = true;
                if rel_gain < options.tolerance {
                    // Converged.
                    return Ok(LmFit {
                        goodness: Goodness::from_residuals(&r, ys),
                        params,
                        iterations,
                    });
                }
                break;
            }
            lambda *= 10.0;
        }

        if !improved {
            // λ exhausted — we are at a (local) minimum.
            return Ok(LmFit {
                goodness: Goodness::from_residuals(&r, ys),
                params,
                iterations,
            });
        }
    }

    Err(FitError::NotConverged {
        iterations: options.max_iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_exponential_with_offset() {
        let truth = [9.0, 0.3231, 0.04749];
        let xs: Vec<f64> = (45..=88).map(f64::from).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| truth[0] + truth[1] * (truth[2] * x).exp())
            .collect();
        let fit = levenberg_marquardt(
            |p, x| p[0] + p[1] * (p[2] * x).exp(),
            &xs,
            &ys,
            &[5.0, 1.0, 0.03],
            LmOptions::default(),
        )
        .unwrap();
        for (got, want) in fit.params.iter().zip(&truth) {
            assert!((got - want).abs() < 1e-4, "{got} vs {want}");
        }
        assert!(fit.goodness.rmse < 1e-6);
    }

    #[test]
    fn fits_polynomial() {
        let xs: Vec<f64> = (-10..=10).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 - 2.0 * x + 0.5 * x * x).collect();
        let fit = levenberg_marquardt(
            |p, x| p[0] + p[1] * x + p[2] * x * x,
            &xs,
            &ys,
            &[0.0, 0.0, 0.0],
            LmOptions::default(),
        )
        .unwrap();
        assert!((fit.params[0] - 1.0).abs() < 1e-8);
        assert!((fit.params[1] + 2.0).abs() < 1e-8);
        assert!((fit.params[2] - 0.5).abs() < 1e-8);
    }

    #[test]
    fn stays_finite_on_wild_start() {
        let xs: Vec<f64> = (0..50).map(|i| f64::from(i) * 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 + x).collect();
        let fit = levenberg_marquardt(
            |p, x| p[0] + p[1] * (p[2] * x).exp(),
            &xs,
            &ys,
            &[100.0, -50.0, 5.0],
            LmOptions::default(),
        );
        // Either converges or reports non-convergence — never panics.
        if let Ok(f) = fit {
            assert!(f.params.iter().all(|p| p.is_finite()));
        }
    }

    #[test]
    fn insufficient_data_rejected() {
        let err = levenberg_marquardt(
            |p, x| p[0] * x,
            &[1.0],
            &[1.0],
            &[1.0],
            LmOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, FitError::InsufficientData { .. }));
    }

    #[test]
    fn non_finite_initial_rejected() {
        let err = levenberg_marquardt(
            |p, x| p[0] * x,
            &[1.0, 2.0, 3.0],
            &[1.0, 2.0, 3.0],
            &[f64::NAN],
            LmOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, FitError::NonFiniteData);
    }
}
