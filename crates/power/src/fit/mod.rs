//! Curve fitting for power-model identification.
//!
//! The characterization pipeline measures `(U, T, P)` triples from the
//! digital twin's telemetry and identifies the paper's Eqn. 2 constants:
//! `k1` by [ordinary least squares](linear()) on the active component and
//! `(C, k2, k3)` by [exponential fitting](exponential()) (log-linear
//! seeding refined with [Levenberg–Marquardt](levenberg_marquardt())).
//!
//! # Example
//!
//! ```
//! use leakctl_power::fit;
//!
//! # fn main() -> Result<(), fit::FitError> {
//! let xs: Vec<f64> = (0..20).map(f64::from).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| 2.0 + 0.5 * x).collect();
//! let f = fit::linear(&xs, &ys)?;
//! assert!((f.slope - 0.5).abs() < 1e-9);
//! assert!((f.intercept - 2.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

mod exponential;
mod linear;
mod lm;

pub use exponential::{exponential, ExponentialFit};
pub use linear::{linear, LinearFit};
pub use lm::{levenberg_marquardt, LmFit, LmOptions};

use core::fmt;

/// Errors produced by the fitting routines.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// Fewer observations than the model has parameters (plus one).
    InsufficientData {
        /// Observations supplied.
        got: usize,
        /// Observations required.
        need: usize,
    },
    /// `xs` and `ys` differ in length.
    LengthMismatch,
    /// Input contained NaN/∞ values.
    NonFiniteData,
    /// The regressors are degenerate (e.g. all `x` identical).
    Degenerate,
    /// The normal equations were singular at some iterate.
    SingularNormalEquations,
    /// The iteration limit was reached without meeting the tolerance.
    NotConverged {
        /// Iterations performed.
        iterations: usize,
    },
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InsufficientData { got, need } => {
                write!(f, "need at least {need} observations, got {got}")
            }
            Self::LengthMismatch => write!(f, "xs and ys must have equal length"),
            Self::NonFiniteData => write!(f, "input data must be finite"),
            Self::Degenerate => write!(f, "regressors are degenerate"),
            Self::SingularNormalEquations => write!(f, "singular normal equations"),
            Self::NotConverged { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for FitError {}

/// Goodness-of-fit summary attached to every fit result.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Goodness {
    /// Root-mean-square residual, in the units of `y` (the paper's
    /// "fitting error of 2.243 W").
    pub rmse: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// Largest absolute residual.
    pub max_abs_err: f64,
    /// `100·(1 − mean|residual| / mean|y|)` — the "98 % accuracy" figure
    /// of merit the paper quotes.
    pub accuracy_percent: f64,
}

impl Goodness {
    /// Computes the summary from residuals and observations.
    ///
    /// # Panics
    ///
    /// Panics when `residuals` and `ys` differ in length or are empty
    /// (internal misuse; public entry points validate earlier).
    pub(crate) fn from_residuals(residuals: &[f64], ys: &[f64]) -> Self {
        assert_eq!(residuals.len(), ys.len());
        assert!(!ys.is_empty());
        let n = ys.len() as f64;
        let sse: f64 = residuals.iter().map(|r| r * r).sum();
        let rmse = (sse / n).sqrt();
        let mean_y = ys.iter().sum::<f64>() / n;
        let sst: f64 = ys.iter().map(|y| (y - mean_y).powi(2)).sum();
        let r_squared = if sst > 0.0 { 1.0 - sse / sst } else { 1.0 };
        let max_abs_err = residuals.iter().fold(0.0f64, |m, r| m.max(r.abs()));
        let mean_abs_res = residuals.iter().map(|r| r.abs()).sum::<f64>() / n;
        let mean_abs_y = ys.iter().map(|y| y.abs()).sum::<f64>() / n;
        let accuracy_percent = if mean_abs_y > 0.0 {
            100.0 * (1.0 - mean_abs_res / mean_abs_y)
        } else {
            0.0
        };
        Self {
            rmse,
            r_squared,
            max_abs_err,
            accuracy_percent,
        }
    }
}

/// Validates paired observation arrays.
pub(crate) fn validate_xy(xs: &[f64], ys: &[f64], min_n: usize) -> Result<(), FitError> {
    if xs.len() != ys.len() {
        return Err(FitError::LengthMismatch);
    }
    if xs.len() < min_n {
        return Err(FitError::InsufficientData {
            got: xs.len(),
            need: min_n,
        });
    }
    if xs.iter().chain(ys).any(|v| !v.is_finite()) {
        return Err(FitError::NonFiniteData);
    }
    Ok(())
}

/// Solves a small dense linear system in place (Gaussian elimination
/// with partial pivoting). Used for the ≤ 4-parameter normal equations;
/// the thermal crate carries the full LU machinery for larger systems.
pub(crate) fn solve_small(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Result<Vec<f64>, FitError> {
    let n = b.len();
    for k in 0..n {
        let mut piv = k;
        for r in (k + 1)..n {
            if a[r][k].abs() > a[piv][k].abs() {
                piv = r;
            }
        }
        if a[piv][k].abs() < 1e-300 {
            return Err(FitError::SingularNormalEquations);
        }
        a.swap(k, piv);
        b.swap(k, piv);
        for r in (k + 1)..n {
            let factor = a[r][k] / a[k][k];
            let (pivot_rows, rest) = a.split_at_mut(k + 1);
            let pivot_row = &pivot_rows[k];
            let row = &mut rest[r - k - 1];
            for (cell, pivot_cell) in row[k..].iter_mut().zip(&pivot_row[k..]) {
                *cell -= factor * pivot_cell;
            }
            b[r] -= factor * b[k];
        }
    }
    for r in (0..n).rev() {
        for c in (r + 1)..n {
            b[r] -= a[r][c] * b[c];
        }
        b[r] /= a[r][r];
    }
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodness_of_perfect_fit() {
        let ys = [1.0, 2.0, 3.0];
        let g = Goodness::from_residuals(&[0.0, 0.0, 0.0], &ys);
        assert_eq!(g.rmse, 0.0);
        assert_eq!(g.r_squared, 1.0);
        assert_eq!(g.max_abs_err, 0.0);
        assert_eq!(g.accuracy_percent, 100.0);
    }

    #[test]
    fn goodness_known_values() {
        let ys = [10.0, 10.0, 10.0, 10.0];
        let res = [1.0, -1.0, 1.0, -1.0];
        let g = Goodness::from_residuals(&res, &ys);
        assert!((g.rmse - 1.0).abs() < 1e-12);
        assert!((g.accuracy_percent - 90.0).abs() < 1e-12);
        assert_eq!(g.max_abs_err, 1.0);
    }

    #[test]
    fn validate_catches_problems() {
        assert_eq!(
            validate_xy(&[1.0], &[1.0, 2.0], 1),
            Err(FitError::LengthMismatch)
        );
        assert_eq!(
            validate_xy(&[1.0], &[1.0], 3),
            Err(FitError::InsufficientData { got: 1, need: 3 })
        );
        assert_eq!(
            validate_xy(&[f64::NAN, 1.0], &[0.0, 1.0], 2),
            Err(FitError::NonFiniteData)
        );
        assert!(validate_xy(&[1.0, 2.0], &[3.0, 4.0], 2).is_ok());
    }

    #[test]
    fn solve_small_known_system() {
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let x = solve_small(a, vec![5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_small_detects_singular() {
        let a = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        assert_eq!(
            solve_small(a, vec![1.0, 2.0]),
            Err(FitError::SingularNormalEquations)
        );
    }

    #[test]
    fn error_messages() {
        assert!(FitError::Degenerate.to_string().contains("degenerate"));
        assert!(FitError::NotConverged { iterations: 7 }
            .to_string()
            .contains('7'));
    }
}
