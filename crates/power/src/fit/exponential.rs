//! Fitting the paper's leakage form `y = c + a·e^(b·x)`.

use super::{levenberg_marquardt, validate_xy, FitError, Goodness, LmOptions};

/// Result of fitting `y = offset + scale·e^(rate·x)` — the paper's
/// `P_leak = C + k2·e^(k3·T)` with `x` the CPU temperature in °C.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExponentialFit {
    /// The constant offset `C`.
    pub offset: f64,
    /// The scale factor `k2`.
    pub scale: f64,
    /// The exponent `k3`.
    pub rate: f64,
    /// Residual statistics.
    pub goodness: Goodness,
}

impl ExponentialFit {
    /// Evaluates the fitted curve at `x`.
    #[must_use]
    pub fn predict(&self, x: f64) -> f64 {
        self.offset + self.scale * (self.rate * x).exp()
    }
}

/// Fits `y = c + a·e^(b·x)` with `a > 0`, `b > 0` (leakage grows with
/// temperature).
///
/// Seeding follows the classic two-stage approach: guess `c` slightly
/// below the smallest observation, log-linearize `ln(y − c) = ln a + b·x`
/// for `(a, b)`, then refine all three parameters with
/// Levenberg–Marquardt.
///
/// # Errors
///
/// Returns data-validation errors from the shared checks, or
/// [`FitError::Degenerate`] when the observations do not grow with `x`
/// (no exponential signal to fit).
pub fn exponential(xs: &[f64], ys: &[f64]) -> Result<ExponentialFit, FitError> {
    validate_xy(xs, ys, 4)?;

    let y_min = ys.iter().copied().fold(f64::INFINITY, f64::min);
    let y_max = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if y_max - y_min < 1e-12 {
        return Err(FitError::Degenerate);
    }

    // Stage 1: log-linear seed with c slightly below min(y).
    let c0 = y_min - 0.05 * (y_max - y_min).max(1e-6);
    let (lin_xs, lin_ys): (Vec<f64>, Vec<f64>) = xs
        .iter()
        .zip(ys)
        .filter(|(_, &y)| y > c0)
        .map(|(&x, &y)| (x, (y - c0).ln()))
        .unzip();
    let seed = super::linear(&lin_xs, &lin_ys)?;
    let b0 = seed.slope.max(1e-6);
    let a0 = seed.intercept.exp().max(1e-9);

    // Stage 2: full nonlinear refinement.
    let fit = levenberg_marquardt(
        |p, x| p[0] + p[1] * (p[2] * x).exp(),
        xs,
        ys,
        &[c0, a0, b0],
        LmOptions::default(),
    )?;

    Ok(ExponentialFit {
        offset: fit.params[0],
        scale: fit.params[1],
        rate: fit.params[2],
        goodness: fit.goodness,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(c: f64, a: f64, b: f64, noise_amp: f64) -> (Vec<f64>, Vec<f64>) {
        let mut seed = 42u64;
        let mut noise = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0) * noise_amp
        };
        let xs: Vec<f64> = (45..=88).map(f64::from).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| c + a * (b * x).exp() + noise())
            .collect();
        (xs, ys)
    }

    #[test]
    fn recovers_paper_constants_noiseless() {
        let (xs, ys) = synth(9.0, 0.3231, 0.04749, 0.0);
        let f = exponential(&xs, &ys).unwrap();
        assert!((f.offset - 9.0).abs() < 1e-3, "offset {}", f.offset);
        assert!((f.scale - 0.3231).abs() < 1e-3, "scale {}", f.scale);
        assert!((f.rate - 0.04749).abs() < 1e-4, "rate {}", f.rate);
        assert!(f.goodness.rmse < 1e-5);
        assert!(f.goodness.accuracy_percent > 99.9);
    }

    #[test]
    fn recovers_constants_with_sensor_noise() {
        let (xs, ys) = synth(9.0, 0.3231, 0.04749, 0.5);
        let f = exponential(&xs, &ys).unwrap();
        assert!((f.rate - 0.04749).abs() < 0.01, "rate {}", f.rate);
        assert!(f.goodness.rmse < 0.6);
        assert!(f.goodness.r_squared > 0.95);
    }

    #[test]
    fn predict_round_trip() {
        let (xs, ys) = synth(5.0, 1.0, 0.03, 0.0);
        let f = exponential(&xs, &ys).unwrap();
        for (&x, &y) in xs.iter().zip(&ys) {
            assert!((f.predict(x) - y).abs() < 1e-4);
        }
    }

    #[test]
    fn flat_data_rejected() {
        let xs: Vec<f64> = (0..10).map(f64::from).collect();
        let ys = vec![3.0; 10];
        assert_eq!(exponential(&xs, &ys), Err(FitError::Degenerate));
    }

    #[test]
    fn too_few_points_rejected() {
        assert!(matches!(
            exponential(&[1.0, 2.0, 3.0], &[1.0, 2.0, 4.0]),
            Err(FitError::InsufficientData { .. })
        ));
    }
}
