//! Power-supply-unit efficiency model.

use leakctl_units::Watts;

/// Load-dependent PSU efficiency.
///
/// Efficiency follows the familiar 80-PLUS-style hump: poor at light
/// load, peaking near half load, slightly lower at full load:
///
/// ```text
/// η(l) = η_peak − droop·(l − l_peak)²,   l = P_out / P_rated
/// ```
///
/// The digital twin routes all DC consumers through this model so the
/// simulated wall-power sensor sees realistic conversion losses (the
/// paper's power telemetry is measured at the system level).
///
/// # Example
///
/// ```
/// use leakctl_power::PsuModel;
/// use leakctl_units::Watts;
///
/// let psu = PsuModel::paper_server();
/// let input = psu.input_power(Watts::new(500.0));
/// assert!(input.value() > 500.0, "input exceeds output by the losses");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PsuModel {
    rated: f64,
    eta_peak: f64,
    load_peak: f64,
    droop: f64,
}

impl PsuModel {
    /// Creates a PSU rated for `rated` output watts with peak efficiency
    /// `eta_peak` at load fraction `load_peak` and quadratic `droop`.
    ///
    /// # Panics
    ///
    /// Panics when `rated <= 0`, `eta_peak` is outside `(0, 1]`,
    /// `load_peak` is outside `(0, 1]`, or `droop < 0`.
    #[must_use]
    pub fn new(rated: Watts, eta_peak: f64, load_peak: f64, droop: f64) -> Self {
        assert!(
            rated.value() > 0.0 && rated.is_finite(),
            "rating must be positive"
        );
        assert!(
            eta_peak > 0.0 && eta_peak <= 1.0,
            "peak efficiency must be in (0, 1]"
        );
        assert!(
            load_peak > 0.0 && load_peak <= 1.0,
            "peak-efficiency load must be in (0, 1]"
        );
        assert!(
            droop >= 0.0 && droop.is_finite(),
            "droop must be non-negative"
        );
        Self {
            rated: rated.value(),
            eta_peak,
            load_peak,
            droop,
        }
    }

    /// The twin's supply: 2 kW rating, 91 % peak efficiency at half
    /// load, mild droop (η ≈ 88 % at full load).
    #[must_use]
    pub fn paper_server() -> Self {
        Self::new(Watts::new(2000.0), 0.91, 0.5, 0.12)
    }

    /// Efficiency at the given DC output power (clamped to 20 % minimum
    /// so pathological light loads stay finite).
    #[must_use]
    pub fn efficiency(&self, output: Watts) -> f64 {
        let load = (output.value().max(0.0) / self.rated).min(1.5);
        (self.eta_peak - self.droop * (load - self.load_peak).powi(2)).clamp(0.2, 1.0)
    }

    /// AC input power needed to deliver `output` DC watts.
    #[must_use]
    pub fn input_power(&self, output: Watts) -> Watts {
        let out = output.max(Watts::ZERO);
        Watts::new(out.value() / self.efficiency(out))
    }

    /// Conversion loss at the given output level.
    #[must_use]
    pub fn loss(&self, output: Watts) -> Watts {
        self.input_power(output) - output.max(Watts::ZERO)
    }
}

impl Default for PsuModel {
    /// The twin's calibrated supply.
    fn default() -> Self {
        Self::paper_server()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_peaks_at_configured_load() {
        let psu = PsuModel::new(Watts::new(1000.0), 0.9, 0.5, 0.2);
        let at_peak = psu.efficiency(Watts::new(500.0));
        assert!((at_peak - 0.9).abs() < 1e-12);
        assert!(psu.efficiency(Watts::new(100.0)) < at_peak);
        assert!(psu.efficiency(Watts::new(1000.0)) < at_peak);
    }

    #[test]
    fn input_always_exceeds_output() {
        let psu = PsuModel::paper_server();
        for out in [50.0, 200.0, 500.0, 800.0, 1500.0] {
            let input = psu.input_power(Watts::new(out));
            assert!(input.value() > out, "input {input} for output {out}");
        }
    }

    #[test]
    fn loss_is_consistent() {
        let psu = PsuModel::paper_server();
        let out = Watts::new(600.0);
        let loss = psu.loss(out);
        assert!((psu.input_power(out).value() - out.value() - loss.value()).abs() < 1e-12);
    }

    #[test]
    fn zero_and_negative_output_safe() {
        let psu = PsuModel::paper_server();
        assert_eq!(psu.input_power(Watts::ZERO), Watts::ZERO);
        assert_eq!(psu.input_power(Watts::new(-10.0)), Watts::ZERO);
        assert!(psu.efficiency(Watts::new(-10.0)) > 0.0);
    }

    #[test]
    fn efficiency_stays_in_bounds_under_overload() {
        let psu = PsuModel::new(Watts::new(100.0), 0.95, 0.5, 3.0);
        let eta = psu.efficiency(Watts::new(1000.0));
        assert!((0.2..=1.0).contains(&eta));
    }

    #[test]
    #[should_panic(expected = "peak efficiency")]
    fn rejects_bad_efficiency() {
        let _ = PsuModel::new(Watts::new(100.0), 1.2, 0.5, 0.1);
    }
}
