//! Server power models and curve fitting for the `leakctl` workspace.
//!
//! The paper decomposes server power as
//!
//! ```text
//! P_total = P_active + P_leak + P_fan            (Eqn. 1)
//! P_active = k1 · U,   P_leak = C + k2 · e^(k3·T) (Eqn. 2)
//! ```
//!
//! with fitted constants `k1 = 0.4452`, `k2 = 0.3231`, `k3 = 0.04749`
//! (2.243 W RMS error, 98 % accuracy). This crate provides:
//!
//! - [`ActivePowerModel`] — the linear-in-utilization dynamic component,
//! - [`EmpiricalLeakage`] — the paper's exponential-in-temperature form,
//! - [`PhysicalLeakage`] — a BSIM-flavoured `T²·exp` ground-truth model
//!   used by the digital twin, so that *fitting* the empirical form to
//!   simulated telemetry is a genuine inference exercise,
//! - [`FanPowerModel`] — fan-affinity laws (`P ∝ RPM³`, `Q ∝ RPM`),
//! - [`PsuModel`] — load-dependent supply efficiency,
//! - [`ServerPowerModel`] — the Eqn. 1 composite,
//! - [`fit`] — ordinary least squares, Gauss–Newton/Levenberg–Marquardt,
//!   an exponential-model fitter, and goodness-of-fit metrics.
//!
//! # Example
//!
//! ```
//! use leakctl_power::{EmpiricalLeakage, FanPowerModel, ServerPowerModel};
//! use leakctl_units::{Celsius, Rpm, Utilization, Watts};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = ServerPowerModel::paper_fit();
//! let p = model.total(
//!     Utilization::from_percent(100.0)?,
//!     Celsius::new(70.0),
//!     Rpm::new(2400.0),
//! );
//! assert!(p.value() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod active;
mod fan;
pub mod fit;
mod leakage;
mod model;
mod psu;

pub use active::ActivePowerModel;
pub use fan::FanPowerModel;
pub use leakage::{EmpiricalLeakage, PhysicalLeakage};
pub use model::ServerPowerModel;
pub use psu::PsuModel;

/// The paper's fitted active-power slope, watts per percent utilization.
pub const PAPER_K1: f64 = 0.4452;

/// The paper's fitted leakage scale factor, watts.
pub const PAPER_K2: f64 = 0.3231;

/// The paper's fitted leakage temperature exponent, 1/°C.
pub const PAPER_K3: f64 = 0.04749;

/// The paper's reported RMS fitting error, watts.
pub const PAPER_FIT_RMSE: f64 = 2.243;

/// Temperature-independent leakage offset (the paper's `C`, not reported
/// numerically; chosen during calibration — see `DESIGN.md` §5).
pub const DEFAULT_LEAK_OFFSET: f64 = 9.0;
