//! Leakage-power models: the paper's empirical exponential form and a
//! physics-grounded ground truth for the digital twin.

use leakctl_units::{Celsius, Watts};

use crate::{DEFAULT_LEAK_OFFSET, PAPER_K2, PAPER_K3};

/// The paper's empirical leakage model `P_leak = C + k2 · e^(k3·T)`,
/// with `T` in °C.
///
/// This is the *analysis* form: it is what the characterization pipeline
/// fits to telemetry, and what the LUT builder evaluates when minimizing
/// `P_leak + P_fan`.
///
/// # Example
///
/// ```
/// use leakctl_power::EmpiricalLeakage;
/// use leakctl_units::Celsius;
///
/// let m = EmpiricalLeakage::paper_fit();
/// let p55 = m.power(Celsius::new(55.0));
/// let p85 = m.power(Celsius::new(85.0));
/// assert!(p85.value() > p55.value(), "leakage grows with temperature");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EmpiricalLeakage {
    offset: f64,
    k2: f64,
    k3: f64,
}

impl EmpiricalLeakage {
    /// Creates a model `P = offset + k2·e^(k3·T)`.
    ///
    /// # Panics
    ///
    /// Panics when `k2 < 0`, `k3 <= 0`, or any parameter is non-finite —
    /// leakage must be positive and increasing in temperature.
    #[must_use]
    pub fn new(offset: f64, k2: f64, k3: f64) -> Self {
        assert!(
            offset.is_finite() && k2.is_finite() && k3.is_finite(),
            "leakage parameters must be finite"
        );
        assert!(k2 >= 0.0, "k2 must be non-negative");
        assert!(k3 > 0.0, "k3 must be positive");
        Self { offset, k2, k3 }
    }

    /// The paper's fitted constants (`k2 = 0.3231`, `k3 = 0.04749`) with
    /// the calibration offset from `DESIGN.md` §5.
    #[must_use]
    pub fn paper_fit() -> Self {
        Self::new(DEFAULT_LEAK_OFFSET, PAPER_K2, PAPER_K3)
    }

    /// Leakage power at die temperature `t`.
    #[must_use]
    pub fn power(&self, t: Celsius) -> Watts {
        Watts::new(self.offset + self.k2 * (self.k3 * t.degrees()).exp())
    }

    /// The constant offset `C`.
    #[must_use]
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// The scale factor `k2`.
    #[must_use]
    pub fn k2(&self) -> f64 {
        self.k2
    }

    /// The exponent `k3` (1/°C).
    #[must_use]
    pub fn k3(&self) -> f64 {
        self.k3
    }
}

impl Default for EmpiricalLeakage {
    /// The paper's fitted model.
    fn default() -> Self {
        Self::paper_fit()
    }
}

/// Physics-grounded leakage used as the digital twin's ground truth.
///
/// Subthreshold leakage in scaled CMOS follows
/// `I_sub ∝ T² · e^((a − b/T))` in absolute temperature; this model uses
/// the standard compact form
///
/// ```text
/// P(T) = p_ref · (T_K / T_ref_K)² · e^(β·(T_K − T_ref_K)) · σ
/// ```
///
/// where `σ` is a per-die process-variation multiplier. It deliberately
/// differs in functional form from [`EmpiricalLeakage`] (the `T²` term
/// adds curvature) so that the characterization pipeline's fit is a real
/// inference problem, as it was for the paper's authors measuring real
/// silicon.
///
/// # Example
///
/// ```
/// use leakctl_power::PhysicalLeakage;
/// use leakctl_units::Celsius;
///
/// let m = PhysicalLeakage::calibrated(9.0);
/// let p = m.power(Celsius::new(70.0));
/// assert!(p.value() > 8.0 && p.value() < 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PhysicalLeakage {
    p_ref: f64,
    t_ref_k: f64,
    beta: f64,
    process_sigma: f64,
}

impl PhysicalLeakage {
    /// Reference temperature for the calibrated model, °C.
    pub const T_REF_C: f64 = 70.0;

    /// Creates a model with reference power `p_ref` (W) at `t_ref`,
    /// exponential slope `beta` (1/K), and process multiplier
    /// `process_sigma`.
    ///
    /// # Panics
    ///
    /// Panics for non-positive `p_ref`, `process_sigma`, non-positive
    /// `beta`, or non-finite inputs.
    #[must_use]
    pub fn new(p_ref: Watts, t_ref: Celsius, beta: f64, process_sigma: f64) -> Self {
        assert!(
            p_ref.value() > 0.0 && p_ref.is_finite(),
            "reference leakage must be positive"
        );
        assert!(beta > 0.0 && beta.is_finite(), "beta must be positive");
        assert!(
            process_sigma > 0.0 && process_sigma.is_finite(),
            "process multiplier must be positive"
        );
        Self {
            p_ref: p_ref.value(),
            t_ref_k: t_ref.as_kelvin().kelvin(),
            beta,
            process_sigma,
        }
    }

    /// A model calibrated so its 45–90 °C behaviour tracks the paper's
    /// empirical curve: `p_ref` watts at 70 °C and an exponential slope
    /// matched to `k3` (the `T²` factor supplies the remaining, slightly
    /// non-exponential curvature).
    #[must_use]
    pub fn calibrated(p_ref_watts: f64) -> Self {
        // Slope chosen so d(ln P)/dT at 70 °C ≈ k3 = 0.04749:
        // d(ln P)/dT = 2/T_K + beta  →  beta = k3 − 2/343.15 ≈ 0.04166.
        let beta = crate::PAPER_K3 - 2.0 / (Self::T_REF_C + 273.15);
        Self::new(
            Watts::new(p_ref_watts),
            Celsius::new(Self::T_REF_C),
            beta,
            1.0,
        )
    }

    /// Returns a copy with a different process-variation multiplier
    /// (e.g. per-socket spread).
    #[must_use]
    pub fn with_process_sigma(mut self, sigma: f64) -> Self {
        assert!(sigma > 0.0 && sigma.is_finite());
        self.process_sigma = sigma;
        self
    }

    /// Leakage power at die temperature `t`.
    #[must_use]
    pub fn power(&self, t: Celsius) -> Watts {
        let tk = t.as_kelvin().kelvin();
        let ratio = tk / self.t_ref_k;
        Watts::new(
            self.p_ref
                * ratio
                * ratio
                * (self.beta * (tk - self.t_ref_k)).exp()
                * self.process_sigma,
        )
    }

    /// The process-variation multiplier.
    #[must_use]
    pub fn process_sigma(&self) -> f64 {
        self.process_sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_matches_hand_computation() {
        let m = EmpiricalLeakage::new(10.0, 0.3231, 0.04749);
        let p = m.power(Celsius::new(70.0));
        let expect = 10.0 + 0.3231 * (0.04749_f64 * 70.0).exp();
        assert!((p.value() - expect).abs() < 1e-12);
        assert_eq!(m.offset(), 10.0);
        assert_eq!(m.k2(), 0.3231);
        assert_eq!(m.k3(), 0.04749);
    }

    #[test]
    fn empirical_monotone_in_temperature() {
        let m = EmpiricalLeakage::paper_fit();
        let mut prev = m.power(Celsius::new(20.0));
        for t in [30.0, 45.0, 60.0, 75.0, 90.0] {
            let p = m.power(Celsius::new(t));
            assert!(p > prev);
            prev = p;
        }
    }

    #[test]
    fn empirical_default_is_paper() {
        assert_eq!(EmpiricalLeakage::default(), EmpiricalLeakage::paper_fit());
    }

    #[test]
    #[should_panic(expected = "k3 must be positive")]
    fn empirical_rejects_bad_k3() {
        let _ = EmpiricalLeakage::new(0.0, 1.0, 0.0);
    }

    #[test]
    fn physical_reference_point() {
        let m = PhysicalLeakage::calibrated(9.0);
        let p = m.power(Celsius::new(PhysicalLeakage::T_REF_C));
        assert!((p.value() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn physical_local_slope_matches_k3() {
        let m = PhysicalLeakage::calibrated(9.0);
        let dt = 0.01;
        let p0 = m.power(Celsius::new(70.0 - dt)).value();
        let p1 = m.power(Celsius::new(70.0 + dt)).value();
        let dlnp_dt = (p1.ln() - p0.ln()) / (2.0 * dt);
        assert!(
            (dlnp_dt - crate::PAPER_K3).abs() < 1e-4,
            "log-slope {dlnp_dt} vs k3 {}",
            crate::PAPER_K3
        );
    }

    #[test]
    fn physical_process_variation_scales_power() {
        let base = PhysicalLeakage::calibrated(9.0);
        let hot = base.with_process_sigma(1.2);
        let t = Celsius::new(80.0);
        assert!((hot.power(t).value() - 1.2 * base.power(t).value()).abs() < 1e-12);
        assert!((hot.process_sigma() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn physical_monotone_and_convex() {
        let m = PhysicalLeakage::calibrated(9.0);
        let temps: Vec<f64> = (40..=90).step_by(5).map(f64::from).collect();
        let powers: Vec<f64> = temps
            .iter()
            .map(|&t| m.power(Celsius::new(t)).value())
            .collect();
        for w in powers.windows(2) {
            assert!(w[1] > w[0], "monotone");
        }
        for w in powers.windows(3) {
            assert!(w[2] - w[1] > w[1] - w[0], "convex");
        }
    }

    #[test]
    fn physical_tracks_empirical_shape_over_fit_range() {
        // The ground truth should stay within ~1.5 W of the paper's
        // empirical curve (offset removed) over the 45–90 °C range used
        // for fitting.
        let phys = PhysicalLeakage::calibrated(9.0);
        let emp = EmpiricalLeakage::new(0.0, PAPER_K2, PAPER_K3);
        for t in 45..=90 {
            let tp = phys.power(Celsius::new(f64::from(t))).value();
            let te = emp.power(Celsius::new(f64::from(t))).value();
            assert!(
                (tp - te).abs() < 1.6,
                "at {t} °C: physical {tp:.2} W vs empirical {te:.2} W"
            );
        }
    }
}
