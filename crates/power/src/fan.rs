//! Fan power and air delivery through the fan-affinity laws.

use leakctl_units::{AirFlow, Rpm, Watts};

/// Fan-affinity model of a (bank of) cooling fan(s):
///
/// ```text
/// P(rpm) = count · (p_floor + p_ref · (rpm / rpm_ref)³)
/// Q(rpm) = count ·  q_ref · (rpm / rpm_ref)
/// ```
///
/// The cubic power law is why over-provisioned airflow is so costly —
/// the paper's central observation — and the linear flow law is how fan
/// speed reaches the thermal network's convective couplings.
///
/// # Example
///
/// ```
/// use leakctl_power::FanPowerModel;
/// use leakctl_units::Rpm;
///
/// let bank = FanPowerModel::paper_server();
/// let slow = bank.power(Rpm::new(1800.0));
/// let fast = bank.power(Rpm::new(3600.0));
/// // Doubling RPM costs ~8× the dynamic fan power (a bit less once the
/// // constant electronics floor is included).
/// assert!(fast.value() > 6.0 * slow.value());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FanPowerModel {
    count: u32,
    p_ref: f64,
    p_floor: f64,
    rpm_ref: f64,
    q_ref: f64,
}

impl FanPowerModel {
    /// Creates a model for `count` identical fans, each drawing
    /// `p_ref` watts and moving `q_ref` flow at `rpm_ref`, with a
    /// per-fan electronics floor `p_floor`.
    ///
    /// # Panics
    ///
    /// Panics when `count` is zero or any parameter is non-positive /
    /// non-finite (except `p_floor`, which may be zero).
    #[must_use]
    pub fn new(count: u32, p_ref: Watts, p_floor: Watts, rpm_ref: Rpm, q_ref: AirFlow) -> Self {
        assert!(count > 0, "fan count must be positive");
        assert!(
            p_ref.value() > 0.0 && p_ref.is_finite(),
            "reference fan power must be positive"
        );
        assert!(
            p_floor.value() >= 0.0 && p_floor.is_finite(),
            "fan power floor must be non-negative"
        );
        assert!(
            rpm_ref.value() > 0.0 && rpm_ref.is_finite(),
            "reference RPM must be positive"
        );
        assert!(
            q_ref.value() > 0.0 && q_ref.is_finite(),
            "reference flow must be positive"
        );
        Self {
            count,
            p_ref: p_ref.value(),
            p_floor: p_floor.value(),
            rpm_ref: rpm_ref.value(),
            q_ref: q_ref.value(),
        }
    }

    /// The calibrated bank for the paper's server: 6 fans in 3 rows of
    /// 2, ~33 W total at the 4200 RPM maximum, ~95 CFM per fan at
    /// 4200 RPM (see `DESIGN.md` §5).
    #[must_use]
    pub fn paper_server() -> Self {
        Self::new(
            6,
            Watts::new(5.4),
            Watts::new(0.1),
            Rpm::new(4200.0),
            AirFlow::from_cfm(95.0),
        )
    }

    /// Electrical power drawn by the whole bank at `rpm`; negative RPM
    /// clamps to zero.
    #[must_use]
    pub fn power(&self, rpm: Rpm) -> Watts {
        let ratio = (rpm.value().max(0.0)) / self.rpm_ref;
        Watts::new(f64::from(self.count) * (self.p_floor + self.p_ref * ratio.powi(3)))
    }

    /// Air moved by the whole bank at `rpm`; negative RPM clamps to
    /// zero.
    #[must_use]
    pub fn flow(&self, rpm: Rpm) -> AirFlow {
        let ratio = (rpm.value().max(0.0)) / self.rpm_ref;
        AirFlow::new(f64::from(self.count) * self.q_ref * ratio)
    }

    /// Flow delivered by a single fan of the bank at `rpm`.
    #[must_use]
    pub fn flow_per_fan(&self, rpm: Rpm) -> AirFlow {
        self.flow(rpm) / f64::from(self.count)
    }

    /// Returns a copy whose delivered *flow* is scaled by `factor`
    /// while electrical power is unchanged — models altitude derating,
    /// where thinner air moves less heat-carrying mass for the same
    /// fan work (`factor` = air-density ratio vs sea level).
    ///
    /// # Panics
    ///
    /// Panics for a non-positive or non-finite factor.
    #[must_use]
    pub fn derate_flow(mut self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "flow derating factor must be positive"
        );
        self.q_ref *= factor;
        self
    }

    /// Number of fans in the bank.
    #[must_use]
    pub fn count(&self) -> u32 {
        self.count
    }

    /// The reference RPM the model is anchored at.
    #[must_use]
    pub fn rpm_ref(&self) -> Rpm {
        Rpm::new(self.rpm_ref)
    }
}

impl Default for FanPowerModel {
    /// The calibrated paper-server bank.
    fn default() -> Self {
        Self::paper_server()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cubic_power_law() {
        let m = FanPowerModel::new(
            1,
            Watts::new(8.0),
            Watts::ZERO,
            Rpm::new(4000.0),
            AirFlow::from_cfm(80.0),
        );
        let p_half = m.power(Rpm::new(2000.0));
        assert!((p_half.value() - 1.0).abs() < 1e-12, "8·(1/2)³ = 1 W");
    }

    #[test]
    fn linear_flow_law() {
        let m = FanPowerModel::paper_server();
        let q1 = m.flow(Rpm::new(2100.0));
        let q2 = m.flow(Rpm::new(4200.0));
        assert!((q2.value() - 2.0 * q1.value()).abs() < 1e-12);
        assert!((m.flow_per_fan(Rpm::new(4200.0)).as_cfm() - 95.0).abs() < 1e-9);
    }

    #[test]
    fn calibration_totals() {
        let m = FanPowerModel::paper_server();
        assert_eq!(m.count(), 6);
        assert_eq!(m.rpm_ref(), Rpm::new(4200.0));
        let p_max = m.power(Rpm::new(4200.0));
        assert!(
            (p_max.value() - 33.0).abs() < 1.0,
            "max bank power {p_max} should be ≈33 W"
        );
        let p_default = m.power(Rpm::new(3300.0));
        assert!(
            p_default.value() > 15.0 && p_default.value() < 18.0,
            "default-speed bank power {p_default}"
        );
        let p_min = m.power(Rpm::new(1800.0));
        assert!(p_min.value() < 4.0, "min-speed bank power {p_min}");
    }

    #[test]
    fn negative_rpm_clamps() {
        let m = FanPowerModel::paper_server();
        assert_eq!(m.power(Rpm::new(-100.0)), m.power(Rpm::ZERO));
        assert_eq!(m.flow(Rpm::new(-100.0)), AirFlow::ZERO);
    }

    #[test]
    fn floor_power_at_zero_rpm() {
        let m = FanPowerModel::new(
            4,
            Watts::new(5.0),
            Watts::new(0.2),
            Rpm::new(4000.0),
            AirFlow::from_cfm(50.0),
        );
        assert!((m.power(Rpm::ZERO).value() - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "count must be positive")]
    fn rejects_zero_fans() {
        let _ = FanPowerModel::new(
            0,
            Watts::new(1.0),
            Watts::ZERO,
            Rpm::new(1000.0),
            AirFlow::from_cfm(10.0),
        );
    }
}
