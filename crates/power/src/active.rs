//! Active (dynamic) power as a function of utilization.

use leakctl_units::{Utilization, Watts};

use crate::PAPER_K1;

/// Linear active-power model `P_active = k1 · U[%]`, the form the paper
/// fits for a LoadGen-style workload that spreads load evenly across
/// cores.
///
/// `LoadGen` duty-cycles between full load and idle, so average dynamic
/// power is proportional to the duty cycle — which is why the linear
/// form fits the paper's data so well across all utilization levels.
///
/// # Example
///
/// ```
/// use leakctl_power::ActivePowerModel;
/// use leakctl_units::{Utilization, Watts};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let m = ActivePowerModel::paper_fit();
/// let p = m.power(Utilization::from_percent(100.0)?);
/// assert!((p.value() - 44.52).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ActivePowerModel {
    watts_per_percent: f64,
}

impl ActivePowerModel {
    /// Creates a model with the given slope in watts per percent
    /// utilization.
    ///
    /// # Panics
    ///
    /// Panics when the slope is negative or non-finite.
    #[must_use]
    pub fn new(watts_per_percent: f64) -> Self {
        assert!(
            watts_per_percent >= 0.0 && watts_per_percent.is_finite(),
            "active-power slope must be non-negative and finite"
        );
        Self { watts_per_percent }
    }

    /// The paper's fitted slope (`k1 = 0.4452 W/%`).
    #[must_use]
    pub fn paper_fit() -> Self {
        Self::new(PAPER_K1)
    }

    /// Dynamic power at the given utilization.
    #[must_use]
    pub fn power(&self, u: Utilization) -> Watts {
        Watts::new(self.watts_per_percent * u.as_percent())
    }

    /// The slope, watts per percent.
    #[must_use]
    pub fn watts_per_percent(&self) -> f64 {
        self.watts_per_percent
    }
}

impl Default for ActivePowerModel {
    /// The paper's fitted model.
    fn default() -> Self {
        Self::paper_fit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_at_idle() {
        assert_eq!(
            ActivePowerModel::paper_fit().power(Utilization::IDLE),
            Watts::ZERO
        );
    }

    #[test]
    fn linear_in_percent() {
        let m = ActivePowerModel::new(0.5);
        let u25 = Utilization::from_percent(25.0).unwrap();
        let u75 = Utilization::from_percent(75.0).unwrap();
        assert!((m.power(u75).value() - 3.0 * m.power(u25).value()).abs() < 1e-12);
    }

    #[test]
    fn paper_value_at_full_load() {
        let p = ActivePowerModel::paper_fit().power(Utilization::FULL);
        assert!((p.value() - 44.52).abs() < 1e-9);
    }

    #[test]
    fn default_is_paper_fit() {
        assert_eq!(ActivePowerModel::default(), ActivePowerModel::paper_fit());
        assert!((ActivePowerModel::default().watts_per_percent() - 0.4452).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_slope() {
        let _ = ActivePowerModel::new(-0.1);
    }
}
