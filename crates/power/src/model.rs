//! The Eqn. 1 composite server power model.

use leakctl_units::{Celsius, Rpm, Utilization, Watts};

use crate::{ActivePowerModel, EmpiricalLeakage, FanPowerModel};

/// The paper's server power decomposition (Eqn. 1):
///
/// ```text
/// P_total = P_idle + P_active(U) + P_leak(T) + P_fan(RPM)
/// ```
///
/// `P_idle` is the utilization/temperature/fan-independent baseline the
/// paper subtracts when reporting *net* savings (motherboard, DIMMs at
/// idle, disks, service processor). The three variable terms come from
/// [`ActivePowerModel`], [`EmpiricalLeakage`] and [`FanPowerModel`].
///
/// This type is the *analysis* model used by the LUT builder and the
/// reporting pipeline. The digital twin computes its ground-truth power
/// from per-component models instead.
///
/// # Example
///
/// ```
/// use leakctl_power::ServerPowerModel;
/// use leakctl_units::{Celsius, Rpm, Utilization, Watts};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let m = ServerPowerModel::paper_fit();
/// let u = Utilization::from_percent(100.0)?;
/// // The controllable part of the power: leakage + fan.
/// let hot_slow = m.controllable(Celsius::new(85.0), Rpm::new(1800.0));
/// let optimal = m.controllable(Celsius::new(70.0), Rpm::new(2400.0));
/// assert!(optimal.value() < hot_slow.value());
/// # let _ = u;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServerPowerModel {
    idle: f64,
    active: ActivePowerModel,
    leakage: EmpiricalLeakage,
    fan: FanPowerModel,
}

impl ServerPowerModel {
    /// Idle baseline used for the calibrated twin, watts (see
    /// `DESIGN.md` §5).
    pub const DEFAULT_IDLE_WATTS: f64 = 430.0;

    /// Creates a composite model.
    ///
    /// # Panics
    ///
    /// Panics when `idle` is negative or non-finite.
    #[must_use]
    pub fn new(
        idle: Watts,
        active: ActivePowerModel,
        leakage: EmpiricalLeakage,
        fan: FanPowerModel,
    ) -> Self {
        assert!(
            idle.value() >= 0.0 && idle.is_finite(),
            "idle power must be non-negative"
        );
        Self {
            idle: idle.value(),
            active,
            leakage,
            fan,
        }
    }

    /// The model with every component at its paper-fitted /
    /// design-calibrated value.
    #[must_use]
    pub fn paper_fit() -> Self {
        Self::new(
            Watts::new(Self::DEFAULT_IDLE_WATTS),
            ActivePowerModel::paper_fit(),
            EmpiricalLeakage::paper_fit(),
            FanPowerModel::paper_server(),
        )
    }

    /// Total server power for the given operating point.
    #[must_use]
    pub fn total(&self, u: Utilization, t: Celsius, rpm: Rpm) -> Watts {
        Watts::new(self.idle) + self.active.power(u) + self.leakage.power(t) + self.fan.power(rpm)
    }

    /// The portion the cooling controller can influence:
    /// `P_leak(T) + P_fan(RPM)` — the convex curve of Fig. 2.
    #[must_use]
    pub fn controllable(&self, t: Celsius, rpm: Rpm) -> Watts {
        self.leakage.power(t) + self.fan.power(rpm)
    }

    /// The idle baseline.
    #[must_use]
    pub fn idle(&self) -> Watts {
        Watts::new(self.idle)
    }

    /// The active-power component model.
    #[must_use]
    pub fn active(&self) -> &ActivePowerModel {
        &self.active
    }

    /// The leakage component model.
    #[must_use]
    pub fn leakage(&self) -> &EmpiricalLeakage {
        &self.leakage
    }

    /// The fan component model.
    #[must_use]
    pub fn fan(&self) -> &FanPowerModel {
        &self.fan
    }

    /// Replaces the leakage component (e.g. with freshly fitted
    /// constants from a characterization run).
    #[must_use]
    pub fn with_leakage(mut self, leakage: EmpiricalLeakage) -> Self {
        self.leakage = leakage;
        self
    }

    /// Replaces the active component.
    #[must_use]
    pub fn with_active(mut self, active: ActivePowerModel) -> Self {
        self.active = active;
        self
    }
}

impl Default for ServerPowerModel {
    /// The paper-fitted composite.
    fn default() -> Self {
        Self::paper_fit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_is_sum_of_parts() {
        let m = ServerPowerModel::paper_fit();
        let u = Utilization::from_percent(60.0).unwrap();
        let t = Celsius::new(65.0);
        let rpm = Rpm::new(3000.0);
        let total = m.total(u, t, rpm);
        let parts = m.idle() + m.active().power(u) + m.leakage().power(t) + m.fan().power(rpm);
        assert!((total.value() - parts.value()).abs() < 1e-12);
    }

    #[test]
    fn controllable_excludes_idle_and_active() {
        let m = ServerPowerModel::paper_fit();
        let c = m.controllable(Celsius::new(70.0), Rpm::new(2400.0));
        assert!(
            c.value() < 60.0,
            "leak+fan should be tens of watts, got {c}"
        );
        assert!(c.value() > 5.0);
    }

    #[test]
    fn idle_server_draw_is_plausible() {
        let m = ServerPowerModel::paper_fit();
        let p = m.total(Utilization::IDLE, Celsius::new(45.0), Rpm::new(3300.0));
        // Table I's default rows imply ≈ 460–510 W whole-server draw.
        assert!(
            p.value() > 430.0 && p.value() < 510.0,
            "idle draw {p} out of calibration band"
        );
    }

    #[test]
    fn full_load_draw_is_plausible() {
        let m = ServerPowerModel::paper_fit();
        let p = m.total(Utilization::FULL, Celsius::new(60.0), Rpm::new(3300.0));
        assert!(
            p.value() > 470.0 && p.value() < 560.0,
            "full-load draw {p} out of calibration band"
        );
    }

    #[test]
    fn controllable_curve_is_convex_with_interior_minimum() {
        // Sample leak+fan along a plausible (T, RPM) trade-off line:
        // faster fans → colder dies. This mimics Fig. 2a's x-axis.
        let m = ServerPowerModel::paper_fit();
        let points: Vec<(f64, f64)> = vec![
            // (die temp at 100 % load, RPM) — calibration targets
            (86.0, 1800.0),
            (72.0, 2400.0),
            (65.0, 3000.0),
            (60.0, 3600.0),
            (56.0, 4200.0),
        ];
        let costs: Vec<f64> = points
            .iter()
            .map(|&(t, r)| m.controllable(Celsius::new(t), Rpm::new(r)).value())
            .collect();
        let min_idx = costs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(
            min_idx > 0 && min_idx < costs.len() - 1,
            "interior minimum expected, costs {costs:?}"
        );
    }

    #[test]
    fn builder_style_replacements() {
        let m = ServerPowerModel::paper_fit()
            .with_active(ActivePowerModel::new(0.5))
            .with_leakage(EmpiricalLeakage::new(5.0, 0.4, 0.05));
        assert!((m.active().watts_per_percent() - 0.5).abs() < 1e-12);
        assert!((m.leakage().offset() - 5.0).abs() < 1e-12);
    }
}
