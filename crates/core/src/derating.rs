//! Ambient and altitude derating analysis — the extension the paper's
//! discussion motivates: "setting a high minimum RPM is common in
//! commercial servers to ensure reliable operation under a wider range
//! of ambient and altitude settings". This module quantifies exactly
//! when a LUT built at 24 °C sea level stops being safe, and what fan
//! speed would be required instead.

use leakctl_control::LookupTable;
use leakctl_platform::{Server, ServerConfig};
use leakctl_units::{Celsius, Rpm, Utilization};

use crate::error::CoreError;

/// Air-density ratio versus sea level at the given altitude, using the
/// standard 8 400 m scale height.
#[must_use]
pub fn air_density_ratio(altitude_m: f64) -> f64 {
    (-altitude_m.max(0.0) / 8_400.0).exp()
}

/// One row of a derating sweep.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DeratingPoint {
    /// Inlet ambient temperature, °C.
    pub ambient_c: f64,
    /// Altitude, metres.
    pub altitude_m: f64,
    /// The LUT's full-load fan speed.
    pub lut_rpm: Rpm,
    /// Predicted steady hottest-die temperature at 100 % load under the
    /// LUT's full-load speed.
    pub lut_max_temp: Celsius,
    /// Whether the LUT stays within the 75 °C operational target.
    pub lut_safe: bool,
    /// The slowest candidate speed that satisfies the target at this
    /// point (`None` when even maximum cooling cannot).
    pub required_rpm: Option<Rpm>,
}

/// Sweeps ambient temperature (and optionally altitude) at 100 % load,
/// asking at each point whether the sea-level LUT still honours the
/// paper's 75 °C operational target and which speed would.
///
/// Candidate speeds are the paper's characterization set
/// (1800–4200 RPM in 600 RPM steps).
///
/// # Errors
///
/// Returns [`CoreError::Invalid`] for an empty sweep and propagates
/// platform failures.
pub fn derating_sweep(
    base: &ServerConfig,
    lut: &LookupTable,
    points: &[(f64, f64)], // (ambient °C, altitude m)
    seed: u64,
) -> Result<Vec<DeratingPoint>, CoreError> {
    if points.is_empty() {
        return Err(CoreError::Invalid {
            what: "derating sweep needs at least one (ambient, altitude) point".to_owned(),
        });
    }
    let t_cap = Celsius::new(crate::paper::TARGET_MAX_TEMP_C);
    let candidates: Vec<Rpm> = (0..=4)
        .map(|i| Rpm::new(1800.0 + 600.0 * f64::from(i)))
        .collect();
    let lut_rpm = lut.lookup(Utilization::FULL);

    let mut out = Vec::with_capacity(points.len());
    for &(ambient_c, altitude_m) in points {
        let mut config = base.clone();
        config.ambient = Celsius::new(ambient_c);
        config.fans = config.fans.derate_flow(air_density_ratio(altitude_m));
        let server = Server::new(config, seed)?;

        // Thermal runaway (the leakage fixed point diverging) counts as
        // "infinitely hot" rather than an error: it is the strongest
        // possible way for an operating point to be unsafe.
        let max_at = |rpm: Rpm| -> Result<Celsius, CoreError> {
            use leakctl_platform::PlatformError;
            use leakctl_thermal::ThermalError;
            match server.steady_state_preview(Utilization::FULL, rpm) {
                Ok((temps, _)) => Ok(temps
                    .into_iter()
                    .fold(Celsius::new(f64::NEG_INFINITY), Celsius::max)),
                Err(PlatformError::Thermal(ThermalError::Diverged { .. })) => {
                    Ok(Celsius::new(f64::INFINITY))
                }
                Err(e) => Err(e.into()),
            }
        };

        let lut_max_temp = max_at(lut_rpm)?;
        let mut required = None;
        for &rpm in &candidates {
            if max_at(rpm)? <= t_cap {
                required = Some(rpm);
                break;
            }
        }
        out.push(DeratingPoint {
            ambient_c,
            altitude_m,
            lut_rpm,
            lut_max_temp,
            lut_safe: lut_max_temp <= t_cap,
            required_rpm: required,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakctl_control::LookupTable;

    fn lut_2400() -> LookupTable {
        LookupTable::new(vec![(Utilization::FULL, Rpm::new(2400.0))]).expect("valid")
    }

    #[test]
    fn density_ratio_physical() {
        assert!((air_density_ratio(0.0) - 1.0).abs() < 1e-12);
        let high = air_density_ratio(3_000.0);
        assert!((0.6..0.8).contains(&high), "3 km ratio {high}");
        assert!(air_density_ratio(-100.0) <= 1.0, "negative altitude clamps");
    }

    #[test]
    fn hotter_ambient_needs_faster_fans() {
        let sweep = derating_sweep(
            &ServerConfig::default(),
            &lut_2400(),
            &[(24.0, 0.0), (32.0, 0.0), (40.0, 0.0)],
            1,
        )
        .unwrap();
        // Monotone die temperature in ambient.
        assert!(sweep[1].lut_max_temp > sweep[0].lut_max_temp);
        assert!(sweep[2].lut_max_temp > sweep[1].lut_max_temp);
        // The sea-level 24 °C point is safe with the paper's optimum.
        assert!(sweep[0].lut_safe);
        assert_eq!(sweep[0].required_rpm, Some(Rpm::new(2400.0)));
        // At 40 °C ambient the 2400 RPM table is no longer safe, but
        // some faster speed still is.
        assert!(!sweep[2].lut_safe, "2400 RPM at 40 °C should violate 75 °C");
        let req = sweep[2].required_rpm.expect("faster speed suffices");
        assert!(req > Rpm::new(2400.0));
    }

    #[test]
    fn altitude_degrades_cooling() {
        let sweep = derating_sweep(
            &ServerConfig::default(),
            &lut_2400(),
            &[(24.0, 0.0), (24.0, 3_000.0)],
            1,
        )
        .unwrap();
        assert!(
            sweep[1].lut_max_temp > sweep[0].lut_max_temp,
            "thin air must run hotter: {:?} vs {:?}",
            sweep[1].lut_max_temp,
            sweep[0].lut_max_temp
        );
    }

    #[test]
    fn empty_sweep_rejected() {
        assert!(matches!(
            derating_sweep(&ServerConfig::default(), &lut_2400(), &[], 1),
            Err(CoreError::Invalid { .. })
        ));
    }
}
