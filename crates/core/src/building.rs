//! A building: many [`Room`]s sharing one chilled-water plant.
//!
//! This is the datacenter scale-out of the room model: every room's
//! CRAH units reject heat into a single [`ChilledWaterLoop`], so plant
//! faults (chiller derate, heat waves, supply-temperature excursions)
//! couple rooms that never exchange air. The coupling runs both ways:
//!
//! - **Capacity.** When the plant is oversubscribed, every room's CRAH
//!   capacity is derated by the plant's delivered fraction — rooms
//!   compete for degraded cooling.
//! - **Supply floor.** A CRAH cannot blow air colder than the chilled
//!   water it is fed plus an air-side approach, so a chilled-water
//!   excursion raises the floor under every controller's supply
//!   set-point.
//!
//! Stepping mirrors the room's operator split one level up: a **serial
//! plant phase** (sum the rooms' heat, update the loop, propagate
//! capacity/floor into each room in index order) followed by a
//! **parallel room phase** (rooms shard across scoped workers through
//! the same `run_sharded` helper the fleets use). Rooms interact only
//! through the serial phase, so building trajectories are
//! **bit-identical for any thread plan** (`LEAKCTL_THREADS`).
//!
//! The building is also the write path for the supervision layer
//! ([`crate::supervise`]): per-room **power caps** clamp the activity a
//! room is allowed to run (load shedding), and [`Building::apply`]
//! records each room's *commanded* supply so the chilled-water floor
//! can be re-imposed or relaxed as the plant state moves.

use leakctl_thermal::{ChilledWaterLoop, ChilledWaterSpec, ShardPlan};
use leakctl_units::{Celsius, Joules, SimDuration, Utilization, Watts};

use crate::control::{ControlAction, RoomController, RoomObservation};
use crate::error::{BuildingError, CoreError};
use crate::fleet::run_sharded;
use crate::room::{Room, RoomCheckpoint, RoomConfig};
use crate::schedule::PlacementAction;

/// Scenario builder for a [`Building`]: per-room configurations, the
/// shared chilled-water plant, and the CRAH air-side approach.
#[derive(Debug, Clone)]
pub struct BuildingConfig {
    /// One configuration per room (rooms may differ in geometry).
    pub rooms: Vec<RoomConfig>,
    /// The shared chilled-water plant.
    pub plant: ChilledWaterSpec,
    /// Air-side approach in °C: the coldest CRAH supply is the
    /// chilled-water temperature plus this margin.
    pub air_approach: f64,
}

impl BuildingConfig {
    /// A building of `rooms` identical rooms, with each room's sensor
    /// seed offset so no two rooms share RNG streams.
    #[must_use]
    pub fn uniform(rooms: usize, room: &RoomConfig, plant: ChilledWaterSpec) -> Self {
        let rooms = (0..rooms)
            .map(|i| {
                let mut cfg = room.clone();
                cfg.seed = room.seed.wrapping_add((i as u64) * 1_000_003);
                cfg
            })
            .collect();
        Self {
            rooms,
            plant,
            air_approach: 5.0,
        }
    }

    /// Validates the building-level parameters (room configs validate
    /// on construction).
    pub fn validate(&self) -> Result<(), BuildingError> {
        if self.rooms.is_empty() {
            return Err(BuildingError::InvalidFault {
                what: "a building needs at least one room",
            });
        }
        if !(self.air_approach.is_finite() && self.air_approach >= 0.0) {
            return Err(BuildingError::InvalidFault {
                what: "air approach must be finite and non-negative",
            });
        }
        self.plant.validate().map_err(BuildingError::Plant)
    }
}

/// Many rooms behind one chilled-water plant — see the module docs for
/// the stepping contract.
#[derive(Debug)]
pub struct Building {
    rooms: Vec<Room>,
    plant: ChilledWaterLoop,
    plan: ShardPlan,
    air_approach: f64,
    /// The supply each room's controller last commanded; the effective
    /// supply is this clamped to the chilled-water floor.
    commanded_supply: Vec<Celsius>,
    /// Room-local CRAH health (fault knob, 1 = healthy); composes
    /// multiplicatively with the plant's delivered fraction.
    room_crah_health: Vec<f64>,
    /// Supervision knob: activity fraction each room may run.
    power_caps: Vec<f64>,
    /// Scratch: per-room activity after power caps.
    eff_loads: Vec<Utilization>,
    accounted: SimDuration,
}

impl Building {
    /// Builds a building with the thread plan taken from
    /// `LEAKCTL_THREADS` (see [`ShardPlan::from_env`]).
    pub fn new(config: &BuildingConfig) -> Result<Self, CoreError> {
        Self::with_plan(config, ShardPlan::from_env())
    }

    /// Builds a building sharding its *rooms* across `plan`; each room
    /// is built single-sharded internally, so rooms are the unit of
    /// parallelism. The trajectory does not depend on the plan.
    pub fn with_plan(config: &BuildingConfig, plan: ShardPlan) -> Result<Self, CoreError> {
        config.validate()?;
        let rooms = config
            .rooms
            .iter()
            .map(|cfg| Room::with_plan(cfg.clone(), ShardPlan::new(1)))
            .collect::<Result<Vec<_>, _>>()?;
        let plant = ChilledWaterLoop::new(config.plant).map_err(BuildingError::Plant)?;
        let commanded_supply = rooms
            .iter()
            .map(|room| room.air().supply_temperature())
            .collect();
        let n = rooms.len();
        Ok(Self {
            rooms,
            plant,
            plan: plan.with_min_lanes_per_shard(1),
            air_approach: config.air_approach,
            commanded_supply,
            room_crah_health: vec![1.0; n],
            power_caps: vec![1.0; n],
            eff_loads: Vec::with_capacity(n),
            accounted: SimDuration::ZERO,
        })
    }

    /// Number of rooms.
    #[must_use]
    pub fn rooms(&self) -> usize {
        self.rooms.len()
    }

    fn check_room(&self, room: usize) -> Result<(), BuildingError> {
        if room >= self.rooms.len() {
            return Err(BuildingError::RoomOutOfRange {
                room,
                rooms: self.rooms.len(),
            });
        }
        Ok(())
    }

    /// Room `room`, read-only.
    pub fn room(&self, room: usize) -> Result<&Room, BuildingError> {
        self.check_room(room)?;
        Ok(&self.rooms[room])
    }

    /// Room `room`, mutable — for room-local fault injection
    /// (tile blockages, fan faults). Room-level CRAH derates should go
    /// through [`set_room_crah_health`](Self::set_room_crah_health)
    /// instead: the building re-imposes the plant-composed capacity
    /// every step, so a direct `set_crah_capacity` would be overwritten.
    pub fn room_mut(&mut self, room: usize) -> Result<&mut Room, BuildingError> {
        self.check_room(room)?;
        Ok(&mut self.rooms[room])
    }

    /// The shared plant, read-only.
    #[must_use]
    pub fn plant(&self) -> &ChilledWaterLoop {
        &self.plant
    }

    /// The coldest air any CRAH can currently supply: chilled water
    /// plus the air-side approach.
    #[must_use]
    pub fn supply_floor(&self) -> Celsius {
        Celsius::new(self.plant.chw_supply().degrees() + self.air_approach)
    }

    // ---- fault knobs -----------------------------------------------------

    /// Sets the outdoor temperature (heat-wave injector).
    pub fn set_outdoor(&mut self, outdoor: Celsius) -> Result<(), BuildingError> {
        self.plant
            .set_outdoor(outdoor)
            .map_err(BuildingError::Plant)
    }

    /// Sets the mechanical chiller's availability in `[0, 1]`
    /// (derate/outage injector).
    pub fn set_chiller_availability(&mut self, fraction: f64) -> Result<(), BuildingError> {
        self.plant
            .set_chiller_availability(fraction)
            .map_err(BuildingError::Plant)
    }

    /// Sets a chilled-water supply-temperature excursion in °C above
    /// design.
    pub fn set_chw_excursion(&mut self, excursion: f64) -> Result<(), BuildingError> {
        self.plant
            .set_supply_excursion(excursion)
            .map_err(BuildingError::Plant)
    }

    /// Sets room `room`'s local CRAH health in `[0, 1]`; the room's
    /// effective CRAH capacity is `health × plant delivered fraction`.
    pub fn set_room_crah_health(&mut self, room: usize, health: f64) -> Result<(), BuildingError> {
        self.check_room(room)?;
        if !(health.is_finite() && (0.0..=1.0).contains(&health)) {
            return Err(BuildingError::InvalidFault {
                what: "room CRAH health must lie in [0, 1]",
            });
        }
        self.room_crah_health[room] = health;
        Ok(())
    }

    /// Room `room`'s local CRAH health.
    pub fn room_crah_health(&self, room: usize) -> Result<f64, BuildingError> {
        self.check_room(room)?;
        Ok(self.room_crah_health[room])
    }

    // ---- supervision knobs -----------------------------------------------

    /// Caps the activity fraction room `room` may run (load shedding);
    /// 1 releases the cap. The cap clamps the load passed to
    /// [`step`](Self::step).
    pub fn set_power_cap(&mut self, room: usize, cap: f64) -> Result<(), BuildingError> {
        self.check_room(room)?;
        if !(cap.is_finite() && (0.0..=1.0).contains(&cap)) {
            return Err(BuildingError::InvalidFault {
                what: "power cap must lie in [0, 1]",
            });
        }
        self.power_caps[room] = cap;
        Ok(())
    }

    /// Room `room`'s current power cap.
    pub fn power_cap(&self, room: usize) -> Result<f64, BuildingError> {
        self.check_room(room)?;
        Ok(self.power_caps[room])
    }

    // ---- control path ----------------------------------------------------

    /// Observes room `room` into `obs` (see [`Room::observe_into`]).
    pub fn observe_room_into(
        &self,
        room: usize,
        obs: &mut RoomObservation,
    ) -> Result<(), BuildingError> {
        self.check_room(room)?;
        self.rooms[room].observe_into(obs);
        Ok(())
    }

    /// Consults `controller` for room `room` with the live air model as
    /// its what-if oracle, returning the (unapplied) action — see
    /// [`Room::decide`].
    pub fn decide(
        &mut self,
        room: usize,
        controller: &mut dyn RoomController,
        obs: &mut RoomObservation,
    ) -> Result<ControlAction, BuildingError> {
        self.check_room(room)?;
        Ok(self.rooms[room].decide(controller, obs))
    }

    /// Validates and applies a control action to room `room` — the one
    /// write path building controllers and the supervisor drive. The
    /// commanded supply is recorded as the room's set-point and clamped
    /// to the chilled-water [`supply_floor`](Self::supply_floor) before
    /// it reaches the CRAH; as the floor moves, the building converges
    /// each room back toward its commanded value.
    pub fn apply(&mut self, room: usize, action: &ControlAction) -> Result<(), CoreError> {
        self.check_room(room)?;
        let mut effective = action.clone();
        if let Some(supply) = action.supply {
            if !supply.is_finite() {
                return Err(CoreError::Invalid {
                    what: "supply set-point must be finite".to_owned(),
                });
            }
            let floor = self.supply_floor();
            effective.supply = Some(supply.max(floor));
        }
        self.rooms[room].apply(&effective)?;
        if let Some(supply) = action.supply {
            // Record only after a successful apply, so a rejected action
            // leaves no trace (atomicity).
            self.commanded_supply[room] = supply;
        }
        Ok(())
    }

    /// Room `room`'s last commanded supply (before floor clamping).
    pub fn commanded_supply(&self, room: usize) -> Result<Celsius, BuildingError> {
        self.check_room(room)?;
        Ok(self.commanded_supply[room])
    }

    /// Validates and commits a workload placement to room `room` — the
    /// placement-side twin of [`apply`](Self::apply), so schedulers
    /// drive rooms through the same all-or-nothing write path whether
    /// the room stands alone or behind the plant. The resident
    /// placement then drives [`step_placed`](Self::step_placed).
    ///
    /// # Errors
    ///
    /// Returns [`BuildingError::RoomOutOfRange`] for a bad room index
    /// and [`CoreError::Placement`] (room untouched) when the action
    /// fails validation.
    pub fn apply_placement(
        &mut self,
        room: usize,
        action: &PlacementAction,
    ) -> Result<(), CoreError> {
        self.check_room(room)?;
        self.rooms[room].apply_placement(action)
    }

    // ---- stepping --------------------------------------------------------

    /// Advances the building by `dt` with one activity level per room.
    ///
    /// Serial plant phase: the loop sees the building's IT power as
    /// demand and the rooms' CRAH extraction as rejected heat, then each
    /// room (in index order) receives its derated CRAH capacity and the
    /// floor-clamped supply. Parallel room phase: rooms shard across
    /// workers; each steps with its power-cap-clamped load.
    ///
    /// # Errors
    ///
    /// Returns [`BuildingError::InvalidFault`] when `loads` does not
    /// have one entry per room, and propagates room/solver failures.
    pub fn step(&mut self, dt: SimDuration, loads: &[Utilization]) -> Result<(), CoreError> {
        if loads.len() != self.rooms.len() {
            return Err(BuildingError::InvalidFault {
                what: "one activity level per room required",
            }
            .into());
        }
        if dt.is_zero() {
            return Ok(());
        }

        // ---- plant phase (serial, room index order).
        let mut demand = Watts::ZERO;
        let mut removed = Watts::ZERO;
        for room in &self.rooms {
            demand += room.total_power();
            removed += Watts::new(room.air().crah_heat_removed().value().max(0.0));
        }
        self.plant.update(demand, removed, dt);
        let fraction = self.plant.delivered_fraction();
        let floor = self.supply_floor();
        for (r, room) in self.rooms.iter_mut().enumerate() {
            let capacity = (self.room_crah_health[r] * fraction).clamp(0.0, 1.0);
            if capacity != room.crah_capacity() {
                room.set_crah_capacity(capacity)
                    .map_err(|source| BuildingError::Room { room: r, source })?;
            }
            let effective = self.commanded_supply[r].max(floor);
            if effective != room.air().supply_temperature() {
                room.apply(&ControlAction::hold().with_supply(effective))?;
            }
        }

        // ---- room phase (parallel): rooms are independent within the
        // step (they couple only through the plant phase above), so any
        // partition is bit-identical.
        self.eff_loads.clear();
        self.eff_loads
            .extend(loads.iter().zip(&self.power_caps).map(|(&load, &cap)| {
                Utilization::saturating_from_fraction(load.as_fraction().min(cap))
            }));
        let ranges = self.plan.ranges(self.rooms.len());
        let eff_loads = &self.eff_loads;
        run_sharded(&mut self.rooms, &ranges, |chunk, range| {
            for (room, &load) in chunk.iter_mut().zip(&eff_loads[range]) {
                room.step(dt, load)?;
            }
            Ok::<(), CoreError>(())
        })?;
        self.accounted += dt;
        Ok(())
    }

    /// Advances the building by `dt` with every room driven by its
    /// resident placement (see [`Building::apply_placement`] and
    /// [`Room::step_placed`]) instead of one uniform activity level.
    ///
    /// The phases are identical to [`step`](Self::step): a serial plant
    /// phase, then the parallel room phase where each room re-runs its
    /// resident per-rack placement clamped to the room's power cap.
    /// Scheduler placements and supervision load shedding therefore
    /// compose: the cap limits activity without disturbing the stored
    /// placement.
    ///
    /// # Errors
    ///
    /// Propagates room/solver failures.
    pub fn step_placed(&mut self, dt: SimDuration) -> Result<(), CoreError> {
        if dt.is_zero() {
            return Ok(());
        }

        // ---- plant phase (serial, room index order).
        let mut demand = Watts::ZERO;
        let mut removed = Watts::ZERO;
        for room in &self.rooms {
            demand += room.total_power();
            removed += Watts::new(room.air().crah_heat_removed().value().max(0.0));
        }
        self.plant.update(demand, removed, dt);
        let fraction = self.plant.delivered_fraction();
        let floor = self.supply_floor();
        for (r, room) in self.rooms.iter_mut().enumerate() {
            let capacity = (self.room_crah_health[r] * fraction).clamp(0.0, 1.0);
            if capacity != room.crah_capacity() {
                room.set_crah_capacity(capacity)
                    .map_err(|source| BuildingError::Room { room: r, source })?;
            }
            let effective = self.commanded_supply[r].max(floor);
            if effective != room.air().supply_temperature() {
                room.apply(&ControlAction::hold().with_supply(effective))?;
            }
        }

        // ---- room phase (parallel), as in `step`.
        self.eff_loads.clear();
        self.eff_loads.extend(
            self.power_caps
                .iter()
                .map(|&cap| Utilization::saturating_from_fraction(cap)),
        );
        let ranges = self.plan.ranges(self.rooms.len());
        let caps = &self.eff_loads;
        run_sharded(&mut self.rooms, &ranges, |chunk, range| {
            for (room, &cap) in chunk.iter_mut().zip(&caps[range]) {
                room.step_placed_limited(dt, cap)?;
            }
            Ok::<(), CoreError>(())
        })?;
        self.accounted += dt;
        Ok(())
    }

    // ---- telemetry and accounting ----------------------------------------

    /// Hottest die temperature across all rooms.
    #[must_use]
    pub fn max_die_temperature(&self) -> Celsius {
        self.rooms
            .iter()
            .map(Room::max_die_temperature)
            .fold(Celsius::new(f64::NEG_INFINITY), Celsius::max)
    }

    /// Total IT power across all rooms.
    #[must_use]
    pub fn total_power(&self) -> Watts {
        self.rooms.iter().map(Room::total_power).sum()
    }

    /// Cumulative IT energy across all rooms.
    #[must_use]
    pub fn it_energy(&self) -> Joules {
        self.rooms.iter().map(Room::it_energy).sum()
    }

    /// Cumulative plant electricity (the building-level cooling bill,
    /// through the outdoor-dependent plant COP; the rooms' own
    /// [`Room::cooling_energy`] remains the room-attributed view through
    /// their static COP models).
    #[must_use]
    pub fn plant_energy(&self) -> Joules {
        self.plant.energy()
    }

    /// IT energy plus plant electricity.
    #[must_use]
    pub fn total_energy(&self) -> Joules {
        self.it_energy() + self.plant_energy()
    }

    /// Simulated time accounted by [`step`](Self::step).
    #[must_use]
    pub fn accounted_time(&self) -> SimDuration {
        self.accounted
    }

    /// Clears every room's and the plant's energy/time accumulators.
    pub fn reset_accounting(&mut self) {
        for room in &mut self.rooms {
            room.reset_accounting();
        }
        self.plant.reset_accounting();
        self.accounted = SimDuration::ZERO;
    }

    // ---- checkpoint / restore --------------------------------------------

    /// Snapshots the whole building: every room's checkpoint, the plant
    /// state (including fault knobs), and the building-level control
    /// state (commanded supplies, CRAH health, power caps).
    pub fn checkpoint(&mut self) -> BuildingCheckpoint {
        BuildingCheckpoint {
            rooms: self.rooms.iter_mut().map(Room::checkpoint).collect(),
            plant: self.plant.clone(),
            commanded_supply: self.commanded_supply.clone(),
            room_crah_health: self.room_crah_health.clone(),
            power_caps: self.power_caps.clone(),
            accounted: self.accounted,
        }
    }

    /// Restores a [`Building::checkpoint`] — into this building or any
    /// building built from the same config under any thread plan. Every
    /// room's checkpoint is validated before anything is touched, so a
    /// rejected restore never leaves the building half-restored.
    ///
    /// # Errors
    ///
    /// Returns [`BuildingError::CheckpointMismatch`] when the room
    /// count differs, and [`BuildingError::Room`] naming the first room
    /// whose checkpoint does not fit.
    pub fn restore(&mut self, checkpoint: &BuildingCheckpoint) -> Result<(), BuildingError> {
        if checkpoint.rooms.len() != self.rooms.len() {
            return Err(BuildingError::CheckpointMismatch {
                what: format!(
                    "checkpoint holds {} rooms, building has {}",
                    checkpoint.rooms.len(),
                    self.rooms.len()
                ),
            });
        }
        for (r, (room, snap)) in self.rooms.iter().zip(&checkpoint.rooms).enumerate() {
            room.can_restore(snap)
                .map_err(|source| BuildingError::Room { room: r, source })?;
        }
        for (r, (room, snap)) in self.rooms.iter_mut().zip(&checkpoint.rooms).enumerate() {
            room.restore(snap)
                .map_err(|source| BuildingError::Room { room: r, source })?;
        }
        self.plant = checkpoint.plant.clone();
        self.commanded_supply
            .clone_from(&checkpoint.commanded_supply);
        self.room_crah_health
            .clone_from(&checkpoint.room_crah_health);
        self.power_caps.clone_from(&checkpoint.power_caps);
        self.accounted = checkpoint.accounted;
        Ok(())
    }
}

/// Snapshot of a [`Building`] — see [`Building::checkpoint`].
#[derive(Debug, Clone)]
pub struct BuildingCheckpoint {
    rooms: Vec<RoomCheckpoint>,
    plant: ChilledWaterLoop,
    commanded_supply: Vec<Celsius>,
    room_crah_health: Vec<f64>,
    power_caps: Vec<f64>,
    accounted: SimDuration,
}

impl BuildingCheckpoint {
    /// Number of rooms in the snapshot.
    #[must_use]
    pub fn rooms(&self) -> usize {
        self.rooms.len()
    }

    /// Simulated time at the snapshot.
    #[must_use]
    pub fn accounted_time(&self) -> SimDuration {
        self.accounted
    }
}
