//! Room-scale control: the closed loop that drives the CRAH supply
//! set-point and the under-floor tile-flow split.
//!
//! [PR 5's room](crate::room) built the actuators — a settable supply
//! boundary, per-rack tile-flow channels, COP-based cooling
//! accounting — and this module adds the brains: a [`RoomController`]
//! observes a [`RoomObservation`] snapshot each decision period and
//! answers with a [`ControlAction`] that [`Room::apply`] commits
//! atomically. Three built-in controllers span the paper's design
//! space:
//!
//! - [`FixedSupplyController`] — the non-adaptive baseline every
//!   comparison is made against: one set-point, pinned forever.
//! - [`LutSetPointController`] — the paper's LUT style lifted to room
//!   scale: a monotone table maps the observed load regime to a target
//!   *cold-aisle* temperature, and the supply set-point is back-
//!   computed through the observed recirculation lift, so one table
//!   serves every leakage regime (any recirculation fraction β).
//! - [`MpcSetPointController`] — a receding-horizon optimizer: each
//!   period it previews every candidate set-point through
//!   [`RoomAirModel::preview_supply`]'s cached-factorization steady
//!   solve, predicts the leakage/cooling split with an
//!   [`EmpiricalLeakage`] curve and a [`CopModel`], and commits the
//!   first move of the cheapest hot-spot-feasible plan.
//!
//! Either adaptive controller can carry a [`TileFlowBalancer`], which
//! shifts under-floor airflow toward the racks with the smallest
//! hot-spot margin (highest die temperatures) while conserving the
//! total — the room-scale analogue of the paper's per-server fan
//! trade-off.
//!
//! The loop itself is [`Room::run_controlled`]; see the README's
//! "Control" section for the end-to-end picture.
//!
//! [`RoomAirModel::preview_supply`]: leakctl_thermal::RoomAirModel::preview_supply
//! [`Room::apply`]: crate::room::Room::apply
//! [`Room::run_controlled`]: crate::room::Room::run_controlled

use leakctl_power::EmpiricalLeakage;
use leakctl_units::{AirFlow, Celsius, Rpm, SimDuration, Utilization, Watts};

use crate::error::{ControlError, CoreError};
use crate::room::CopModel;

/// A read-only room snapshot handed to [`RoomController::observe`] —
/// everything a set-point/tile-flow policy may act on, and nothing
/// that would require `&mut Room` to gather.
///
/// Built allocation-free by
/// [`Room::observe_into`](crate::room::Room::observe_into): the
/// per-rack vectors are cleared and refilled in place, so a controller
/// loop (or a telemetry poller) reuses one snapshot forever. The same
/// property is the groundwork for a concurrent `leakctld` read path:
/// nothing here holds borrows into the room.
///
/// # Example
///
/// ```
/// use leakctl::control::RoomObservation;
/// use leakctl::room::{Room, RoomConfig};
///
/// # fn main() -> Result<(), leakctl::CoreError> {
/// let room = Room::new(RoomConfig::new(1, 2, 2))?;
/// let mut obs = RoomObservation::new();
/// room.observe_into(&mut obs);
/// assert_eq!(obs.racks(), 2);
/// assert_eq!(obs.supply.degrees(), 18.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct RoomObservation {
    /// Simulated time the room has accounted so far.
    pub time: SimDuration,
    /// Current CRAH supply set-point.
    pub supply: Celsius,
    /// Mixed hot-aisle return temperature at the CRAH intake.
    pub return_temp: Celsius,
    /// Structural hot-aisle recirculation fraction β.
    pub recirculation: f64,
    /// Mean activity commanded over the most recent step (the load
    /// regime a LUT-style policy keys on); idle before the first step.
    pub activity: Utilization,
    /// Total IT (server + fan) power right now.
    pub it_power: Watts,
    /// CRAH compressor power right now (heat removed over COP).
    pub cooling_power: Watts,
    /// CRAH coefficient of performance at the current set-point.
    pub cop: f64,
    /// Servers per rack (uniform across the floor).
    pub servers_per_rack: usize,
    /// Per-rack cold-aisle (inlet) temperatures.
    pub cold_aisles: Vec<Celsius>,
    /// Per-rack hot-aisle temperatures.
    pub hot_aisles: Vec<Celsius>,
    /// Per-rack hottest die temperatures (packed-block read path — no
    /// state unpacks, no residency eviction).
    pub rack_die_max: Vec<Celsius>,
    /// Per-rack under-floor tile flows.
    pub tile_flows: Vec<AirFlow>,
    /// Per-rack IT (server + fan) power right now — the scheduler-side
    /// read path for budget headroom checks.
    pub rack_it_power: Vec<Watts>,
    /// Per-rack activity that actually ran over the most recent step
    /// (power-budget throttling included); idle before the first step.
    pub rack_activity: Vec<Utilization>,
    /// Per-rack hottest-die margin below the room's thermal cap
    /// ([`die_limit`](Self::die_limit) minus
    /// [`rack_die_max`](Self::rack_die_max)) — the leakage headroom a
    /// thermal-aware scheduler spends. Negative when a rack is over
    /// the cap.
    pub rack_die_margin: Vec<Celsius>,
    /// The room's thermal cap the margins are measured against.
    pub die_limit: Celsius,
}

impl RoomObservation {
    /// An empty snapshot; fill it with
    /// [`Room::observe_into`](crate::room::Room::observe_into).
    #[must_use]
    pub fn new() -> Self {
        Self {
            time: SimDuration::ZERO,
            supply: Celsius::new(0.0),
            return_temp: Celsius::new(0.0),
            recirculation: 0.0,
            activity: Utilization::IDLE,
            it_power: Watts::ZERO,
            cooling_power: Watts::ZERO,
            cop: 1.0,
            servers_per_rack: 0,
            cold_aisles: Vec::new(),
            hot_aisles: Vec::new(),
            rack_die_max: Vec::new(),
            tile_flows: Vec::new(),
            rack_it_power: Vec::new(),
            rack_activity: Vec::new(),
            rack_die_margin: Vec::new(),
            die_limit: Celsius::new(f64::INFINITY),
        }
    }

    /// Number of racks in the snapshot.
    #[must_use]
    pub fn racks(&self) -> usize {
        self.rack_die_max.len()
    }

    /// The hottest die anywhere in the room.
    #[must_use]
    pub fn max_die_temperature(&self) -> Celsius {
        self.rack_die_max
            .iter()
            .copied()
            .fold(Celsius::new(f64::NEG_INFINITY), Celsius::max)
    }

    /// The rack with the hottest die — the hot spot a tile-flow or
    /// set-point policy acts on (0 for an unfilled snapshot). Total
    /// order, so a non-finite die temperature under an injected fault
    /// still picks a rack instead of panicking mid-decision.
    #[must_use]
    pub fn hottest_rack(&self) -> usize {
        self.rack_die_max
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.degrees().total_cmp(&b.degrees()))
            .map_or(0, |(r, _)| r)
    }

    /// The worst (largest) cold-aisle lift above the supply set-point —
    /// the observed recirculation + tile-starvation penalty a LUT
    /// policy subtracts when back-computing a supply from a cold-aisle
    /// target.
    #[must_use]
    pub fn max_inlet_lift(&self) -> f64 {
        self.cold_aisles
            .iter()
            .map(|t| t.degrees() - self.supply.degrees())
            .fold(0.0, f64::max)
    }

    /// The rack with the coldest cold-aisle (inlet) temperature — the
    /// first pick of an inlet-greedy placement policy (0 for an
    /// unfilled snapshot). Total order, so a non-finite inlet under an
    /// injected fault still picks a rack instead of panicking.
    #[must_use]
    pub fn coldest_rack(&self) -> usize {
        self.cold_aisles
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.degrees().total_cmp(&b.degrees()))
            .map_or(0, |(r, _)| r)
    }

    /// The smallest per-rack hottest-die margin below the cap — the
    /// room-wide thermal headroom a scheduler can still spend
    /// (infinite for an unfilled snapshot, negative once any rack is
    /// over the cap).
    #[must_use]
    pub fn min_die_margin(&self) -> Celsius {
        self.rack_die_margin
            .iter()
            .copied()
            .fold(Celsius::new(f64::INFINITY), Celsius::min)
    }

    /// Total under-floor tile flow `Σq_r`.
    #[must_use]
    pub fn total_tile_flow(&self) -> AirFlow {
        AirFlow::new(self.tile_flows.iter().map(|q| q.value()).sum())
    }

    /// Total room power (IT plus CRAH compressor) right now.
    #[must_use]
    pub fn total_power(&self) -> Watts {
        self.it_power + self.cooling_power
    }
}

impl Default for RoomObservation {
    fn default() -> Self {
        Self::new()
    }
}

/// A validated, atomically applied room command: the one write path
/// that replaced the `set_crah_supply` / `set_tile_flow` /
/// `command_all` scatter.
///
/// Every field is optional — `None` holds the current value — so a
/// controller expresses exactly the moves it wants.
/// [`Room::apply`](crate::room::Room::apply) validates the whole
/// action first and only then touches the room, so a rejected action
/// never leaves it half-applied.
///
/// # Example
///
/// ```
/// use leakctl::control::ControlAction;
/// use leakctl::room::{Room, RoomConfig};
/// use leakctl_units::{Celsius, Rpm};
///
/// # fn main() -> Result<(), leakctl::CoreError> {
/// let mut room = Room::new(RoomConfig::new(1, 2, 2))?;
/// let action = ControlAction::hold()
///     .with_supply(Celsius::new(22.0))
///     .with_fan_floor(Rpm::new(3000.0));
/// room.apply(&action)?;
/// assert_eq!(room.air().supply_temperature().degrees(), 22.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ControlAction {
    /// New CRAH supply set-point (`None` holds the current one).
    pub supply: Option<Celsius>,
    /// New per-rack tile flows, one entry per rack (`None` holds the
    /// current split).
    pub tile_flows: Option<Vec<AirFlow>>,
    /// Commands every fan in the room to this speed — the floor the
    /// room guarantees from the next step (`None` leaves fans alone).
    pub fan_floor: Option<Rpm>,
}

impl ControlAction {
    /// The do-nothing action (every field `None`).
    #[must_use]
    pub fn hold() -> Self {
        Self::default()
    }

    /// `true` when the action changes nothing.
    #[must_use]
    pub fn is_hold(&self) -> bool {
        self.supply.is_none() && self.tile_flows.is_none() && self.fan_floor.is_none()
    }

    /// Sets the supply set-point move.
    #[must_use]
    pub fn with_supply(mut self, supply: Celsius) -> Self {
        self.supply = Some(supply);
        self
    }

    /// Sets the tile-flow move (one entry per rack).
    #[must_use]
    pub fn with_tile_flows(mut self, flows: Vec<AirFlow>) -> Self {
        self.tile_flows = Some(flows);
        self
    }

    /// Sets the room-wide fan floor.
    #[must_use]
    pub fn with_fan_floor(mut self, rpm: Rpm) -> Self {
        self.fan_floor = Some(rpm);
        self
    }
}

/// The what-if oracle a controller may query while deciding: steady
/// cold-aisle temperatures under a candidate supply set-point.
///
/// [`Room::run_controlled`](crate::room::Room::run_controlled) passes
/// the live room's air network (cached-factorization steady solves via
/// [`RoomAirModel::preview_supply`]); [`AnalyticPreview`] is a
/// stand-alone linear-response implementation for unit tests and
/// model-only planning.
///
/// [`RoomAirModel::preview_supply`]: leakctl_thermal::RoomAirModel::preview_supply
pub trait SupplyPreview {
    /// Fills `cold_aisles` (cleared first) with the steady per-rack
    /// cold-aisle temperatures the room would settle at under
    /// `supply`, holding powers and tile flows; returns the previewed
    /// CRAH return temperature.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Invalid`] (or a propagated solver error)
    /// for candidates the model cannot evaluate.
    fn preview_supply(
        &mut self,
        supply: Celsius,
        cold_aisles: &mut Vec<Celsius>,
    ) -> Result<Celsius, CoreError>;
}

/// Linear-response [`SupplyPreview`]: a supply move passes 1:1 into
/// every cold aisle (exactly what the advective room network does at
/// steady state for any recirculation fraction). Built from an
/// observation, so controllers are unit-testable without a room.
#[derive(Debug, Clone)]
pub struct AnalyticPreview {
    supply: Celsius,
    return_temp: Celsius,
    cold_aisles: Vec<Celsius>,
}

impl AnalyticPreview {
    /// Captures the linear-response base point from a snapshot.
    #[must_use]
    pub fn from_observation(obs: &RoomObservation) -> Self {
        Self {
            supply: obs.supply,
            return_temp: obs.return_temp,
            cold_aisles: obs.cold_aisles.clone(),
        }
    }
}

impl SupplyPreview for AnalyticPreview {
    fn preview_supply(
        &mut self,
        supply: Celsius,
        cold_aisles: &mut Vec<Celsius>,
    ) -> Result<Celsius, CoreError> {
        if !supply.degrees().is_finite() {
            return Err(CoreError::Invalid {
                what: "supply candidate must be finite".to_owned(),
            });
        }
        let lift = supply.degrees() - self.supply.degrees();
        cold_aisles.clear();
        cold_aisles.extend(
            self.cold_aisles
                .iter()
                .map(|t| Celsius::new(t.degrees() + lift)),
        );
        Ok(Celsius::new(self.return_temp.degrees() + lift))
    }
}

/// A room-scale control policy: poll an observation every
/// [`decision_period`](RoomController::decision_period), answer with a
/// [`ControlAction`].
///
/// The trait is object-safe — the closed loop holds
/// `&mut dyn RoomController` — and every later subsystem (the
/// thermal-aware scheduler, the `leakctld` set-point endpoint, the
/// fault-scenario harness) plugs in through it.
///
/// # Example: a custom controller
///
/// ```
/// use leakctl::control::{
///     ControlAction, RoomController, RoomObservation, SupplyPreview,
/// };
/// use leakctl_units::{Celsius, SimDuration};
///
/// /// Chases a fixed return-temperature target.
/// struct ReturnChaser {
///     target: Celsius,
/// }
///
/// impl RoomController for ReturnChaser {
///     fn name(&self) -> &str {
///         "return-chaser"
///     }
///     fn decision_period(&self) -> SimDuration {
///         SimDuration::from_secs(60)
///     }
///     fn observe(
///         &mut self,
///         obs: &RoomObservation,
///         _preview: &mut dyn SupplyPreview,
///     ) -> ControlAction {
///         let error = self.target.degrees() - obs.return_temp.degrees();
///         ControlAction::hold().with_supply(Celsius::new(obs.supply.degrees() + 0.5 * error))
///     }
/// }
///
/// let mut boxed: Box<dyn RoomController> = Box::new(ReturnChaser {
///     target: Celsius::new(32.0),
/// });
/// assert_eq!(boxed.name(), "return-chaser");
/// ```
pub trait RoomController {
    /// Short name used in sweeps and reports (e.g. `"LUT"`).
    fn name(&self) -> &str;

    /// How much simulated time passes between decisions.
    fn decision_period(&self) -> SimDuration;

    /// Makes a control decision from the current snapshot. `preview`
    /// answers what-if set-point questions against the live room
    /// model; policies that don't plan ahead simply ignore it.
    fn observe(&mut self, obs: &RoomObservation, preview: &mut dyn SupplyPreview) -> ControlAction;

    /// Resets internal state for a fresh run (default: nothing).
    fn reset(&mut self) {}

    /// Serializes the controller's mutable state as an opaque flat
    /// vector for scenario checkpointing (default: stateless). The
    /// encoding must round-trip exactly: restoring it and continuing
    /// must decide bit-identically to never having been interrupted.
    fn checkpoint_state(&self) -> Vec<f64> {
        Vec::new()
    }

    /// Restores state produced by
    /// [`checkpoint_state`](RoomController::checkpoint_state) (default:
    /// no-op). Unrecognized or truncated input falls back to the
    /// freshly-reset state rather than panicking.
    fn restore_state(&mut self, _state: &[f64]) {}
}

/// The non-adaptive baseline: pins one supply set-point (and
/// optionally a fan floor) at the first decision and holds forever —
/// the "best fixed supply" comparisons in the set-point figure are
/// sweeps over this controller.
#[derive(Debug, Clone)]
pub struct FixedSupplyController {
    supply: Celsius,
    fan_floor: Option<Rpm>,
    period: SimDuration,
    pending: bool,
}

impl FixedSupplyController {
    /// A baseline pinned at `supply`.
    #[must_use]
    pub fn new(supply: Celsius) -> Self {
        Self {
            supply,
            fan_floor: None,
            period: SimDuration::from_secs(60),
            pending: true,
        }
    }

    /// Also pins a room-wide fan floor at the first decision.
    #[must_use]
    pub fn with_fan_floor(mut self, rpm: Rpm) -> Self {
        self.fan_floor = Some(rpm);
        self
    }

    /// The pinned set-point.
    #[must_use]
    pub fn supply(&self) -> Celsius {
        self.supply
    }
}

impl RoomController for FixedSupplyController {
    fn name(&self) -> &str {
        "fixed"
    }

    fn decision_period(&self) -> SimDuration {
        self.period
    }

    fn observe(
        &mut self,
        _obs: &RoomObservation,
        _preview: &mut dyn SupplyPreview,
    ) -> ControlAction {
        if self.pending {
            self.pending = false;
            let mut action = ControlAction::hold().with_supply(self.supply);
            if let Some(rpm) = self.fan_floor {
                action = action.with_fan_floor(rpm);
            }
            action
        } else {
            ControlAction::hold()
        }
    }

    fn reset(&mut self) {
        self.pending = true;
    }

    fn checkpoint_state(&self) -> Vec<f64> {
        vec![f64::from(u8::from(self.pending))]
    }

    fn restore_state(&mut self, state: &[f64]) {
        self.pending = state.first().is_none_or(|&v| v != 0.0);
    }
}

/// Shifts under-floor airflow toward the racks with the smallest
/// hot-spot margin while conserving the total — each decision moves
/// every rack's tile flow by `gain` per °C its hottest die sits away
/// from the room mean, clamped to `min_share` of the mean flow, then
/// rescales so `Σq_r` is untouched (the CRAH supply flow never
/// changes under balancing).
///
/// Repeated applications converge: hot racks gain airflow, cool down,
/// and the per-rack [`RoomObservation::rack_die_max`] spread — the
/// quantity the balancer equalizes — contracts.
#[derive(Debug, Clone)]
pub struct TileFlowBalancer {
    /// Fractional flow moved per °C of die-temperature imbalance.
    pub gain: f64,
    /// Per-rack floor, as a fraction of the mean tile flow.
    pub min_share: f64,
    /// Die-temperature spread below which the balancer holds (avoids
    /// refactorizing the air solver for sub-noise rebalances).
    pub deadband: f64,
}

impl TileFlowBalancer {
    /// A balancer with a given per-°C gain, a 25 % floor share and a
    /// 0.25 °C deadband.
    #[must_use]
    pub fn new(gain: f64) -> Self {
        Self {
            gain,
            min_share: 0.25,
            deadband: 0.25,
        }
    }

    /// The rebalanced per-rack flows for this snapshot, or `None` when
    /// the die-temperature spread sits inside the deadband (hold).
    #[must_use]
    pub fn balance(&self, obs: &RoomObservation) -> Option<Vec<AirFlow>> {
        let racks = obs.racks();
        if racks < 2 || obs.tile_flows.len() != racks {
            return None;
        }
        let mean_die = obs.rack_die_max.iter().map(|t| t.degrees()).sum::<f64>() / racks as f64;
        let spread = obs
            .rack_die_max
            .iter()
            .map(|t| (t.degrees() - mean_die).abs())
            .fold(0.0, f64::max);
        if spread <= self.deadband {
            return None;
        }
        let total: f64 = obs.tile_flows.iter().map(|q| q.value()).sum();
        let floor = self.min_share * total / racks as f64;
        let mut flows: Vec<f64> = obs
            .tile_flows
            .iter()
            .zip(&obs.rack_die_max)
            .map(|(q, die)| {
                let scale = 1.0 + self.gain * (die.degrees() - mean_die);
                (q.value() * scale).max(floor)
            })
            .collect();
        let sum: f64 = flows.iter().sum();
        for q in &mut flows {
            *q *= total / sum;
        }
        Some(flows.into_iter().map(AirFlow::new).collect())
    }
}

/// One row of a [`LutSetPointController`] table: for load regimes up
/// to `max_load`, aim the *cold aisles* at `cold_aisle_target`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LutEntry {
    /// Upper edge (inclusive) of the load regime this row covers.
    pub max_load: Utilization,
    /// Cold-aisle temperature to aim at in this regime.
    pub cold_aisle_target: Celsius,
}

/// The paper's LUT style at room scale: a monotone table maps the
/// observed load regime to a target cold-aisle temperature, and the
/// supply set-point is back-computed through the *observed* worst
/// inlet lift (`max cold-aisle − supply`), so one table serves every
/// leakage regime — more recirculation simply yields a colder supply
/// for the same target.
///
/// Targets come from the same trade-off the paper's Fig. 3 resolves:
/// light load means cool dies and a flat leakage slope, so the warm
/// (COP-friendly) end wins; heavy load steepens the exponential
/// leakage slope and pushes the optimum down while the hot-spot cap
/// pins the ceiling.
#[derive(Debug, Clone)]
pub struct LutSetPointController {
    entries: Vec<LutEntry>,
    balancer: Option<TileFlowBalancer>,
    fan_floor: Option<Rpm>,
    period: SimDuration,
    supply_range: (Celsius, Celsius),
    safe_fan_floor: Option<Rpm>,
    in_safe_mode: bool,
    safe_mode_entries: u64,
    scratch: Vec<Celsius>,
}

impl LutSetPointController {
    /// A controller over an explicit table. Entries are sorted by
    /// `max_load`; the last row is the catch-all for full load.
    ///
    /// # Panics
    ///
    /// Panics on an invalid table (see
    /// [`LutSetPointController::try_new`]).
    #[must_use]
    pub fn new(entries: Vec<LutEntry>) -> Self {
        match Self::try_new(entries) {
            Ok(controller) => controller,
            Err(e) => panic!("invalid LUT table: {e}"),
        }
    }

    /// As [`LutSetPointController::new`], with invalid tables coming
    /// back as typed errors instead of panics — the constructor to use
    /// for tables assembled at runtime.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::EmptyLut`] for an empty table and
    /// [`ControlError::NonFiniteLutLoad`] for a non-finite load bound.
    pub fn try_new(mut entries: Vec<LutEntry>) -> Result<Self, ControlError> {
        if entries.is_empty() {
            return Err(ControlError::EmptyLut);
        }
        if entries
            .iter()
            .any(|e| !e.max_load.as_fraction().is_finite())
        {
            return Err(ControlError::NonFiniteLutLoad);
        }
        entries.sort_by(|a, b| {
            a.max_load
                .as_fraction()
                .total_cmp(&b.max_load.as_fraction())
        });
        Ok(Self {
            entries,
            balancer: None,
            fan_floor: None,
            period: SimDuration::from_secs(60),
            supply_range: (Celsius::new(12.0), Celsius::new(32.0)),
            safe_fan_floor: Some(Rpm::new(4200.0)),
            in_safe_mode: false,
            safe_mode_entries: 0,
            scratch: Vec::new(),
        })
    }

    /// The default three-regime table used by the `repro-setpoint`
    /// figure: ≤35 % load aims the cold aisles at 27 °C, ≤75 % at
    /// 24 °C, and full load at 21 °C.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(vec![
            LutEntry {
                max_load: Utilization::saturating_from_fraction(0.35),
                cold_aisle_target: Celsius::new(27.0),
            },
            LutEntry {
                max_load: Utilization::saturating_from_fraction(0.75),
                cold_aisle_target: Celsius::new(24.0),
            },
            LutEntry {
                max_load: Utilization::FULL,
                cold_aisle_target: Celsius::new(21.0),
            },
        ])
    }

    /// Attaches a tile-flow balancer to run alongside the set-point
    /// table.
    #[must_use]
    pub fn with_balancer(mut self, balancer: TileFlowBalancer) -> Self {
        self.balancer = Some(balancer);
        self
    }

    /// Pins a room-wide fan floor at every decision.
    #[must_use]
    pub fn with_fan_floor(mut self, rpm: Rpm) -> Self {
        self.fan_floor = Some(rpm);
        self
    }

    /// Overrides the decision period (default one minute).
    #[must_use]
    pub fn with_period(mut self, period: SimDuration) -> Self {
        self.period = period;
        self
    }

    /// Clamps emitted supply set-points to `[lo, hi]` (default
    /// 12–32 °C).
    #[must_use]
    pub fn with_supply_range(mut self, lo: Celsius, hi: Celsius) -> Self {
        self.supply_range = (lo, hi);
        self
    }

    /// Sets the fan floor commanded while in max-cooling safe mode
    /// (default 4200 RPM, the paper server's fan ceiling); `None`
    /// leaves fans alone even in safe mode.
    #[must_use]
    pub fn with_safe_fan_floor(mut self, rpm: Option<Rpm>) -> Self {
        self.safe_fan_floor = rpm;
        self
    }

    /// How many times the controller has entered max-cooling safe mode
    /// (the supply preview became unevaluable — e.g. a CRAH outage with
    /// no steady state).
    #[must_use]
    pub fn safe_mode_entries(&self) -> u64 {
        self.safe_mode_entries
    }

    /// The cold-aisle target for a load regime (table lookup).
    #[must_use]
    pub fn target_for(&self, load: Utilization) -> Celsius {
        self.entries
            .iter()
            .find(|e| load.as_fraction() <= e.max_load.as_fraction())
            .or_else(|| self.entries.last())
            .map_or(Celsius::new(f64::NAN), |e| e.cold_aisle_target)
    }
}

impl RoomController for LutSetPointController {
    fn name(&self) -> &str {
        "LUT"
    }

    fn decision_period(&self) -> SimDuration {
        self.period
    }

    fn observe(&mut self, obs: &RoomObservation, preview: &mut dyn SupplyPreview) -> ControlAction {
        let target = self.target_for(obs.activity);
        // Back out the supply that puts the *worst* cold aisle at the
        // target under the currently observed lift.
        let supply = (target.degrees() - obs.max_inlet_lift())
            .clamp(self.supply_range.0.degrees(), self.supply_range.1.degrees());
        // Probe the oracle once: a preview that cannot be evaluated
        // means the plant has no steady state under the current fault
        // (e.g. a CRAH outage) — back-computed set-points would chase
        // garbage, so fall back to max cooling until it recovers.
        let mut scratch = std::mem::take(&mut self.scratch);
        let evaluable = preview
            .preview_supply(Celsius::new(supply), &mut scratch)
            .is_ok();
        self.scratch = scratch;
        if !evaluable {
            if !self.in_safe_mode {
                self.in_safe_mode = true;
                self.safe_mode_entries += 1;
            }
            let mut action = ControlAction::hold().with_supply(self.supply_range.0);
            if let Some(rpm) = self.safe_fan_floor.or(self.fan_floor) {
                action = action.with_fan_floor(rpm);
            }
            return action;
        }
        self.in_safe_mode = false;
        let mut action = ControlAction::hold().with_supply(Celsius::new(supply));
        if let Some(balancer) = &self.balancer {
            if let Some(flows) = balancer.balance(obs) {
                action = action.with_tile_flows(flows);
            }
        }
        if let Some(rpm) = self.fan_floor {
            action = action.with_fan_floor(rpm);
        }
        action
    }

    fn reset(&mut self) {
        self.in_safe_mode = false;
        self.safe_mode_entries = 0;
    }

    fn checkpoint_state(&self) -> Vec<f64> {
        vec![
            f64::from(u8::from(self.in_safe_mode)),
            self.safe_mode_entries as f64,
        ]
    }

    fn restore_state(&mut self, state: &[f64]) {
        self.in_safe_mode = state.first().is_some_and(|&v| v != 0.0);
        self.safe_mode_entries = state.get(1).map_or(0, |&v| v as u64);
    }
}

/// Configuration for [`MpcSetPointController`].
#[derive(Debug, Clone)]
pub struct MpcConfig {
    /// Candidate supply set-points swept each decision.
    pub candidates: Vec<Celsius>,
    /// Preview horizon the candidate plans are costed over.
    pub horizon: SimDuration,
    /// First-order time constant of the die-temperature response to an
    /// inlet move (sets how much of the steady prediction is reachable
    /// within the horizon).
    pub response_time: SimDuration,
    /// Hot-spot cap: plans whose predicted end-of-horizon hottest die
    /// exceeds this are infeasible.
    pub die_limit: Celsius,
    /// Cap headroom reserved against an *unforecast* load step, scaled
    /// by how far the load can still rise: the effective cap is
    /// `die_limit − step_headroom · (1 − load)`. At full load nothing
    /// is reserved (there is no step left to absorb); at light load the
    /// room idles cool enough that a sudden ramp cannot overrun the cap
    /// within the controller's reaction window.
    pub step_headroom: Celsius,
    /// Per-server leakage curve used to predict the IT-power response
    /// to a die-temperature move.
    pub leakage: EmpiricalLeakage,
    /// CRAH efficiency curve used to cost the cooling side.
    pub cop: CopModel,
    /// Decision period.
    pub period: SimDuration,
}

impl MpcConfig {
    /// The default configuration used by the `repro-setpoint` figure:
    /// 14–30 °C candidates in 2 °C steps, a 10-minute horizon with a
    /// 3-minute response time, an 85 °C hot-spot cap, the paper's
    /// fitted leakage curve and the HP chilled-water COP model.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            candidates: (0..9)
                .map(|i| Celsius::new(14.0 + 2.0 * i as f64))
                .collect(),
            horizon: SimDuration::from_mins(10),
            response_time: SimDuration::from_mins(3),
            die_limit: Celsius::new(85.0),
            step_headroom: Celsius::new(8.0),
            leakage: EmpiricalLeakage::paper_fit(),
            cop: CopModel::HpChilledWater,
            period: SimDuration::from_secs(60),
        }
    }
}

/// Receding-horizon set-point optimization: each period, every
/// candidate supply is previewed through the room model's
/// cached-factorization steady solve, the leakage/cooling energy of
/// the resulting plan is predicted over the horizon, and the first
/// move of the cheapest plan whose predicted hot spot stays under the
/// cap is committed — re-planned from scratch at the next decision
/// (per Ogura et al., "MPC for Energy-Efficient Operation of Data
/// Centers with Cold Aisle Containments").
///
/// The prediction model: a supply move shifts each rack's cold aisle
/// by the previewed amount, dies follow their inlet 1:1 through a
/// first-order lag (`response_time`), per-server leakage follows the
/// [`EmpiricalLeakage`] curve, and cooling power is the predicted IT
/// power over the [`CopModel`] at the candidate. On top of the inlet
/// shift the prediction carries the *observed* heating trend: each
/// rack's die slope since the previous decision, extrapolated one
/// response time ahead, so a load step caught mid-transient backs the
/// plan off before the hot spot arrives instead of after. When no
/// candidate is feasible the coldest one is committed (maximum
/// cooling headroom).
#[derive(Debug, Clone)]
pub struct MpcSetPointController {
    cfg: MpcConfig,
    balancer: Option<TileFlowBalancer>,
    fan_floor: Option<Rpm>,
    scratch: Vec<Celsius>,
    /// Previous decision's (time, per-rack hottest die) for the trend
    /// term; cleared by [`RoomController::reset`].
    history: Option<(SimDuration, Vec<Celsius>)>,
    trend: Vec<f64>,
    safe_fan_floor: Option<Rpm>,
    in_safe_mode: bool,
    safe_mode_entries: u64,
}

impl MpcSetPointController {
    /// A controller over an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics on an empty candidate list (see
    /// [`MpcSetPointController::try_new`]).
    #[must_use]
    pub fn new(cfg: MpcConfig) -> Self {
        match Self::try_new(cfg) {
            Ok(controller) => controller,
            Err(e) => panic!("invalid MPC config: {e}"),
        }
    }

    /// As [`MpcSetPointController::new`], with invalid configurations
    /// coming back as typed errors instead of panics.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::NoCandidates`] for an empty candidate
    /// list.
    pub fn try_new(cfg: MpcConfig) -> Result<Self, ControlError> {
        if cfg.candidates.is_empty() {
            return Err(ControlError::NoCandidates);
        }
        Ok(Self {
            cfg,
            balancer: None,
            fan_floor: None,
            scratch: Vec::new(),
            history: None,
            trend: Vec::new(),
            safe_fan_floor: Some(Rpm::new(4200.0)),
            in_safe_mode: false,
            safe_mode_entries: 0,
        })
    }

    /// The default `repro-setpoint` configuration
    /// ([`MpcConfig::paper_default`]).
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(MpcConfig::paper_default())
    }

    /// Attaches a tile-flow balancer to run alongside the optimizer.
    #[must_use]
    pub fn with_balancer(mut self, balancer: TileFlowBalancer) -> Self {
        self.balancer = Some(balancer);
        self
    }

    /// Pins a room-wide fan floor at every decision.
    #[must_use]
    pub fn with_fan_floor(mut self, rpm: Rpm) -> Self {
        self.fan_floor = Some(rpm);
        self
    }

    /// Sets the fan floor commanded while in max-cooling safe mode
    /// (default 4200 RPM, the paper server's fan ceiling); `None`
    /// leaves fans alone even in safe mode.
    #[must_use]
    pub fn with_safe_fan_floor(mut self, rpm: Option<Rpm>) -> Self {
        self.safe_fan_floor = rpm;
        self
    }

    /// How many times the optimizer has entered max-cooling safe mode
    /// (every candidate preview failed — the plant has no steady state
    /// under the current fault).
    #[must_use]
    pub fn safe_mode_entries(&self) -> u64 {
        self.safe_mode_entries
    }

    /// Predicted room power rate (IT + cooling) and hottest die for a
    /// candidate, given the previewed cold aisles, at `alpha` ∈ [0, 1]
    /// of the way toward the new steady point. `self.trend` (°C/s per
    /// rack, heating only) carries the in-progress transient.
    fn predict(
        &self,
        obs: &RoomObservation,
        previewed: &[Celsius],
        supply: Celsius,
        alpha: f64,
    ) -> (f64, f64) {
        let n = obs.servers_per_rack as f64;
        let tau = self.cfg.response_time.as_secs_f64();
        let mut it = obs.it_power.value();
        let mut hottest = f64::NEG_INFINITY;
        for (r, die_now) in obs.rack_die_max.iter().enumerate() {
            let shift = previewed[r].degrees() - obs.cold_aisles[r].degrees();
            // For a first-order response the remaining travel is about
            // slope × τ (signed): a heating rack sits that far below
            // its incoming steady point, a cooling one that far above.
            let climb = self.trend.get(r).copied().unwrap_or(0.0) * tau;
            let die = die_now.degrees() + climb + alpha * shift;
            hottest = hottest.max(die);
            let delta = self.cfg.leakage.power(Celsius::new(die)).value()
                - self.cfg.leakage.power(*die_now).value();
            it += n * delta;
        }
        let rate = it * (1.0 + 1.0 / self.cfg.cop.cop(supply));
        (rate, hottest)
    }
}

impl RoomController for MpcSetPointController {
    fn name(&self) -> &str {
        "MPC"
    }

    fn decision_period(&self) -> SimDuration {
        self.cfg.period
    }

    fn observe(&mut self, obs: &RoomObservation, preview: &mut dyn SupplyPreview) -> ControlAction {
        // Fraction of the steady shift reached by the end of the
        // horizon under the first-order die response.
        let tau = self.cfg.response_time.as_secs_f64().max(1e-9);
        let alpha = 1.0 - (-self.cfg.horizon.as_secs_f64() / tau).exp();
        // Per-rack die slope since the previous decision, signed: for a
        // first-order response, slope × τ is the remaining travel to
        // the steady point at the *current* supply, so a heating rack
        // is credited its incoming climb and a cooling one its incoming
        // decay — without the signed term a post-peak decay would read
        // as "too hot now" and trigger active overcooling the physics
        // is about to do for free.
        self.trend.clear();
        match &self.history {
            Some((t0, dies)) if obs.time > *t0 && dies.len() == obs.racks() => {
                let dt = (obs.time - *t0).as_secs_f64();
                self.trend.extend(
                    obs.rack_die_max
                        .iter()
                        .zip(dies)
                        .map(|(now, then)| (now.degrees() - then.degrees()) / dt),
                );
            }
            _ => self.trend.resize(obs.racks(), 0.0),
        }
        // Effective cap: reserve step headroom in proportion to how far
        // the load can still rise (nothing at full load).
        let limit = self.cfg.die_limit.degrees()
            - self.cfg.step_headroom.degrees() * (1.0 - obs.activity.as_fraction());
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut best: Option<(f64, Celsius)> = None;
        let mut coldest: Option<Celsius> = None;
        for &candidate in &self.cfg.candidates {
            if preview.preview_supply(candidate, &mut scratch).is_err()
                || scratch.len() != obs.racks()
            {
                continue; // unevaluable candidate: treat as infeasible
            }
            coldest = Some(match coldest {
                Some(c) => c.min(candidate),
                None => candidate,
            });
            let (rate, hottest) = self.predict(obs, &scratch, candidate, alpha);
            if hottest > limit {
                continue;
            }
            if best.is_none_or(|(b, _)| rate < b) {
                best = Some((rate, candidate));
            }
        }
        self.scratch = scratch;
        match &mut self.history {
            Some((t, dies)) => {
                *t = obs.time;
                dies.clear();
                dies.extend_from_slice(&obs.rack_die_max);
            }
            None => self.history = Some((obs.time, obs.rack_die_max.clone())),
        }
        // Every candidate unevaluable: the preview oracle is dead (a
        // CRAH outage leaves the room with no steady state to solve
        // for). Holding would ride the excursion up — commit maximum
        // cooling instead and keep re-asserting it until the plant
        // recovers.
        let Some(coldest) = coldest else {
            if !self.in_safe_mode {
                self.in_safe_mode = true;
                self.safe_mode_entries += 1;
            }
            let floor = self
                .cfg
                .candidates
                .iter()
                .copied()
                .min_by(|a, b| a.degrees().total_cmp(&b.degrees()))
                .unwrap_or(obs.supply);
            let mut action = ControlAction::hold().with_supply(floor);
            if let Some(rpm) = self.safe_fan_floor.or(self.fan_floor) {
                action = action.with_fan_floor(rpm);
            }
            return action;
        };
        self.in_safe_mode = false;
        let supply = best.map_or(coldest, |(_, s)| s);
        let mut action = ControlAction::hold().with_supply(supply);
        if let Some(balancer) = &self.balancer {
            if let Some(flows) = balancer.balance(obs) {
                action = action.with_tile_flows(flows);
            }
        }
        if let Some(rpm) = self.fan_floor {
            action = action.with_fan_floor(rpm);
        }
        action
    }

    fn reset(&mut self) {
        self.history = None;
        self.trend.clear();
        self.in_safe_mode = false;
        self.safe_mode_entries = 0;
    }

    fn checkpoint_state(&self) -> Vec<f64> {
        // Times are encoded as whole milliseconds ([`SimDuration`]'s
        // exact representation), die temperatures as their `f64`
        // degrees: every field round-trips bit-exactly.
        let mut out = vec![
            f64::from(u8::from(self.in_safe_mode)),
            self.safe_mode_entries as f64,
        ];
        if let Some((t, dies)) = &self.history {
            out.push(1.0);
            out.push(t.as_millis() as f64);
            out.extend(dies.iter().map(|d| d.degrees()));
        } else {
            out.push(0.0);
        }
        out
    }

    fn restore_state(&mut self, state: &[f64]) {
        self.in_safe_mode = state.first().is_some_and(|&v| v != 0.0);
        self.safe_mode_entries = state.get(1).map_or(0, |&v| v as u64);
        // A genuine checkpoint carries only finite fields; anything
        // non-finite is foreign state and degrades to "no history"
        // rather than poisoning the predictor.
        self.history = match (state.get(2), state.get(3)) {
            (Some(&flag), Some(&millis))
                if flag != 0.0
                    && millis.is_finite()
                    && millis >= 0.0
                    && state[4..].iter().all(|d| d.is_finite()) =>
            {
                Some((
                    SimDuration::from_millis(millis as u64),
                    state[4..].iter().map(|&d| Celsius::new(d)).collect(),
                ))
            }
            _ => None,
        };
        self.trend.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> RoomObservation {
        let mut obs = RoomObservation::new();
        obs.supply = Celsius::new(18.0);
        obs.return_temp = Celsius::new(30.0);
        obs.recirculation = 0.2;
        obs.activity = Utilization::FULL;
        obs.it_power = Watts::new(20_000.0);
        obs.cooling_power = Watts::new(7_000.0);
        obs.cop = 2.7;
        obs.servers_per_rack = 16;
        obs.cold_aisles = vec![Celsius::new(20.0), Celsius::new(22.0)];
        obs.hot_aisles = vec![Celsius::new(32.0), Celsius::new(36.0)];
        obs.rack_die_max = vec![Celsius::new(66.0), Celsius::new(74.0)];
        obs.tile_flows = vec![AirFlow::new(3.0), AirFlow::new(3.0)];
        obs
    }

    #[test]
    fn observation_helpers() {
        let obs = snapshot();
        assert_eq!(obs.racks(), 2);
        assert_eq!(obs.hottest_rack(), 1);
        assert_eq!(obs.max_die_temperature(), Celsius::new(74.0));
        assert!((obs.max_inlet_lift() - 4.0).abs() < 1e-12);
        assert!((obs.total_tile_flow().value() - 6.0).abs() < 1e-12);
        assert_eq!(obs.total_power(), Watts::new(27_000.0));
        assert_eq!(RoomObservation::default(), RoomObservation::new());
    }

    #[test]
    fn action_builders() {
        assert!(ControlAction::hold().is_hold());
        let action = ControlAction::hold()
            .with_supply(Celsius::new(20.0))
            .with_fan_floor(Rpm::new(3000.0));
        assert!(!action.is_hold());
        assert_eq!(action.supply, Some(Celsius::new(20.0)));
        assert!(action.tile_flows.is_none());
    }

    #[test]
    fn fixed_controller_emits_once() {
        let mut ctl =
            FixedSupplyController::new(Celsius::new(17.0)).with_fan_floor(Rpm::new(2800.0));
        let obs = snapshot();
        let mut preview = AnalyticPreview::from_observation(&obs);
        let first = ctl.observe(&obs, &mut preview);
        assert_eq!(first.supply, Some(Celsius::new(17.0)));
        assert_eq!(first.fan_floor, Some(Rpm::new(2800.0)));
        assert!(ctl.observe(&obs, &mut preview).is_hold());
        ctl.reset();
        assert_eq!(
            ctl.observe(&obs, &mut preview).supply,
            Some(Celsius::new(17.0))
        );
        assert_eq!(ctl.supply(), Celsius::new(17.0));
        assert_eq!(ctl.name(), "fixed");
    }

    #[test]
    fn analytic_preview_shifts_linearly() {
        let obs = snapshot();
        let mut preview = AnalyticPreview::from_observation(&obs);
        let mut cold = Vec::new();
        let ret = preview
            .preview_supply(Celsius::new(21.0), &mut cold)
            .unwrap();
        assert_eq!(cold, vec![Celsius::new(23.0), Celsius::new(25.0)]);
        assert_eq!(ret, Celsius::new(33.0));
        assert!(preview
            .preview_supply(Celsius::new(f64::NAN), &mut cold)
            .is_err());
    }

    #[test]
    fn balancer_moves_flow_toward_the_hot_rack() {
        let obs = snapshot();
        let flows = TileFlowBalancer::new(0.02).balance(&obs).unwrap();
        // Rack 1 runs 8 °C hotter: it gains flow, rack 0 loses it.
        assert!(flows[1].value() > 3.0 && flows[0].value() < 3.0);
        // The total is conserved exactly.
        let total: f64 = flows.iter().map(|q| q.value()).sum();
        assert!((total - 6.0).abs() < 1e-12);
        // Inside the deadband the balancer holds.
        let mut flat = obs.clone();
        flat.rack_die_max = vec![Celsius::new(70.0), Celsius::new(70.1)];
        assert!(TileFlowBalancer::new(0.02).balance(&flat).is_none());
        // The floor clamp keeps every rack's flow positive even under
        // an extreme spread and an absurd gain, and the total still
        // holds exactly.
        let mut extreme = obs;
        extreme.rack_die_max = vec![Celsius::new(30.0), Celsius::new(95.0)];
        let clamped = TileFlowBalancer::new(10.0).balance(&extreme).unwrap();
        assert!(clamped.iter().all(|q| q.value() > 0.0));
        assert!(clamped[1] > clamped[0]);
        let total: f64 = clamped.iter().map(|q| q.value()).sum();
        assert!((total - 6.0).abs() < 1e-12);
    }

    #[test]
    fn lut_tracks_load_and_leakage_regime() {
        let mut ctl = LutSetPointController::paper_default();
        let mut obs = snapshot();
        let mut preview = AnalyticPreview::from_observation(&obs);
        // Full load: aim 21 °C; worst observed lift is 4 °C → 17 °C.
        let action = ctl.observe(&obs, &mut preview);
        assert_eq!(action.supply, Some(Celsius::new(17.0)));
        // Light load: aim 27 °C → 23 °C supply under the same lift.
        obs.activity = Utilization::saturating_from_fraction(0.2);
        let action = ctl.observe(&obs, &mut preview);
        assert_eq!(action.supply, Some(Celsius::new(23.0)));
        // A leakier room (bigger observed lift) derates the supply —
        // same table, different leakage regime.
        obs.cold_aisles = vec![Celsius::new(20.0), Celsius::new(26.0)];
        let action = ctl.observe(&obs, &mut preview);
        assert_eq!(action.supply, Some(Celsius::new(19.0)));
        // The clamp floor binds for absurd lifts.
        obs.cold_aisles = vec![Celsius::new(45.0), Celsius::new(45.0)];
        let action = ctl.observe(&obs, &mut preview);
        assert_eq!(action.supply, Some(Celsius::new(12.0)));
        assert_eq!(ctl.name(), "LUT");
        assert_eq!(ctl.decision_period(), SimDuration::from_secs(60));
    }

    #[test]
    fn mpc_trades_cop_against_leakage_under_the_cap() {
        let mut ctl = MpcSetPointController::paper_default();
        let mut obs = snapshot();
        let mut preview = AnalyticPreview::from_observation(&obs);
        let warm = ctl.observe(&obs, &mut preview).supply.unwrap();
        // Cool dies, flat leakage slope: the warm COP-friendly end wins.
        assert!(warm.degrees() >= 24.0, "got {}", warm.degrees());
        // Near the cap the feasibility constraint pins the choice cold:
        // dies at 84 °C leave ≤1 °C of headroom, so only candidates at
        // or below the current supply survive.
        obs.rack_die_max = vec![Celsius::new(80.0), Celsius::new(84.0)];
        let mut preview = AnalyticPreview::from_observation(&obs);
        let capped = ctl.observe(&obs, &mut preview).supply.unwrap();
        assert!(
            capped.degrees() < warm.degrees(),
            "cap must pull the choice down: {} vs {}",
            capped.degrees(),
            warm.degrees()
        );
        // Already over the cap: every candidate is infeasible and the
        // coldest one is committed for maximum headroom.
        obs.rack_die_max = vec![Celsius::new(95.0), Celsius::new(99.0)];
        let mut preview = AnalyticPreview::from_observation(&obs);
        let panic_cold = ctl.observe(&obs, &mut preview).supply.unwrap();
        assert_eq!(panic_cold, Celsius::new(14.0));
        // All-infeasible is not safe mode: the oracle still answered.
        assert_eq!(ctl.safe_mode_entries(), 0);
        assert_eq!(ctl.name(), "MPC");
    }

    /// A preview oracle with no steady state to report — what the live
    /// room's oracle degrades into during a full CRAH outage.
    struct DeadPreview;

    impl SupplyPreview for DeadPreview {
        fn preview_supply(
            &mut self,
            _supply: Celsius,
            _cold_aisles: &mut Vec<Celsius>,
        ) -> Result<Celsius, CoreError> {
            Err(CoreError::Invalid {
                what: "no steady state".to_owned(),
            })
        }
    }

    #[test]
    fn typed_constructor_errors() {
        assert_eq!(
            LutSetPointController::try_new(Vec::new()).unwrap_err(),
            ControlError::EmptyLut
        );
        let mut cfg = MpcConfig::paper_default();
        cfg.candidates.clear();
        assert_eq!(
            MpcSetPointController::try_new(cfg).unwrap_err(),
            ControlError::NoCandidates
        );
    }

    #[test]
    fn dead_preview_drives_controllers_into_safe_mode() {
        let obs = snapshot();

        let mut lut = LutSetPointController::paper_default();
        let action = lut.observe(&obs, &mut DeadPreview);
        assert_eq!(action.supply, Some(Celsius::new(12.0)));
        assert_eq!(action.fan_floor, Some(Rpm::new(4200.0)));
        // Re-entering while already in safe mode is not a new entry…
        lut.observe(&obs, &mut DeadPreview);
        assert_eq!(lut.safe_mode_entries(), 1);
        // …and a recovered oracle resumes normal decisions.
        let mut preview = AnalyticPreview::from_observation(&obs);
        let recovered = lut.observe(&obs, &mut preview);
        assert_eq!(recovered.supply, Some(Celsius::new(17.0)));
        assert_eq!(recovered.fan_floor, None);
        assert_eq!(lut.safe_mode_entries(), 1);
        lut.reset();
        assert_eq!(lut.safe_mode_entries(), 0);

        let mut mpc = MpcSetPointController::paper_default();
        let action = mpc.observe(&obs, &mut DeadPreview);
        assert_eq!(action.supply, Some(Celsius::new(14.0)));
        assert_eq!(action.fan_floor, Some(Rpm::new(4200.0)));
        mpc.observe(&obs, &mut DeadPreview);
        assert_eq!(mpc.safe_mode_entries(), 1);
        let mut preview = AnalyticPreview::from_observation(&obs);
        let recovered = mpc.observe(&obs, &mut preview);
        assert!(recovered.supply.unwrap().degrees() > 14.0);
        assert_eq!(mpc.safe_mode_entries(), 1);

        // Safe mode with the fan override disabled leaves fans alone.
        let mut quiet = MpcSetPointController::paper_default().with_safe_fan_floor(None);
        let action = quiet.observe(&obs, &mut DeadPreview);
        assert_eq!(action.supply, Some(Celsius::new(14.0)));
        assert_eq!(action.fan_floor, None);
    }

    #[test]
    fn controller_state_round_trips_exactly() {
        let mut obs = snapshot();
        let mut preview = AnalyticPreview::from_observation(&obs);

        // MPC: two observations build trend history; a restored twin
        // must make the identical next decision.
        let mut mpc = MpcSetPointController::paper_default();
        obs.time = SimDuration::from_secs(60);
        mpc.observe(&obs, &mut preview);
        obs.time = SimDuration::from_secs(120);
        obs.rack_die_max = vec![Celsius::new(68.0), Celsius::new(76.0)];
        mpc.observe(&obs, &mut preview);
        let state = mpc.checkpoint_state();
        let mut twin = MpcSetPointController::paper_default();
        twin.restore_state(&state);
        obs.time = SimDuration::from_secs(180);
        obs.rack_die_max = vec![Celsius::new(70.0), Celsius::new(79.0)];
        let a = mpc.observe(&obs, &mut preview);
        let b = twin.observe(&obs, &mut preview);
        assert_eq!(a, b);
        assert_eq!(twin.checkpoint_state(), mpc.checkpoint_state());

        // Fixed: the fired/pending latch survives the round trip.
        let mut fixed = FixedSupplyController::new(Celsius::new(17.0));
        fixed.observe(&obs, &mut preview);
        let mut twin = FixedSupplyController::new(Celsius::new(17.0));
        twin.restore_state(&fixed.checkpoint_state());
        assert!(twin.observe(&obs, &mut preview).is_hold());

        // Junk input falls back to freshly-reset state, not a panic.
        let mut lut = LutSetPointController::paper_default();
        lut.restore_state(&[]);
        assert_eq!(lut.safe_mode_entries(), 0);
        let mut mpc = MpcSetPointController::paper_default();
        mpc.restore_state(&[1.0]);
        assert_eq!(mpc.safe_mode_entries(), 0);
    }
}
