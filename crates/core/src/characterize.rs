//! Characterization sweeps (§IV of the paper): utilization × fan speed
//! grid under LoadGen, measuring steady temperatures and powers through
//! telemetry.
//!
//! Sweeps hold the fan speed constant for each grid point, which is the
//! best case for the platform's cached `TransientSolver`: the thermal
//! system is factored once per point and every subsequent second of
//! simulated time is a single back-substitution.

use leakctl_platform::{Server, ServerConfig};
use leakctl_units::{Celsius, Rpm, SimDuration, SimInstant, Utilization, Watts};
use leakctl_workload::{LoadGen, Profile, PwmConfig};

use crate::error::CoreError;

/// Options for [`characterize`].
#[derive(Debug, Clone)]
pub struct CharacterizeOptions {
    /// Machine description.
    pub config: ServerConfig,
    /// Utilization levels to sweep.
    pub utilizations: Vec<Utilization>,
    /// Fan speeds to sweep.
    pub fan_speeds: Vec<Rpm>,
    /// Simulation step.
    pub step: SimDuration,
    /// Cold-soak idle (fans 3600 RPM).
    pub warmup: SimDuration,
    /// Idle stabilization after setting the target fan speed.
    pub stabilize: SimDuration,
    /// Loaded run length.
    pub run: SimDuration,
    /// Averaging window at the end of the run (must not exceed `run`).
    pub measure_window: SimDuration,
    /// LoadGen PWM realization.
    pub pwm: PwmConfig,
}

impl CharacterizeOptions {
    /// The paper's §IV protocol: 8 utilization levels × 5 fan speeds,
    /// 30-minute runs with 10-minute cold soak and 5-minute
    /// stabilization, measuring over the final 10 minutes.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            config: ServerConfig::default(),
            utilizations: [10.0, 25.0, 40.0, 50.0, 60.0, 75.0, 90.0, 100.0]
                .iter()
                .filter_map(|&p| Utilization::from_percent(p).ok())
                .collect(),
            fan_speeds: [1800.0, 2400.0, 3000.0, 3600.0, 4200.0]
                .map(Rpm::new)
                .to_vec(),
            step: SimDuration::from_secs(1),
            warmup: SimDuration::from_mins(10),
            stabilize: SimDuration::from_mins(5),
            run: SimDuration::from_mins(30),
            measure_window: SimDuration::from_mins(10),
            pwm: PwmConfig::default(),
        }
    }

    /// A reduced sweep (4 × 3 grid, shorter phases) for tests, examples
    /// and quick demos. Still long enough to reach near-steady state.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            utilizations: [25.0, 50.0, 75.0, 100.0]
                .iter()
                .filter_map(|&p| Utilization::from_percent(p).ok())
                .collect(),
            fan_speeds: [1800.0, 2400.0, 3000.0, 4200.0].map(Rpm::new).to_vec(),
            warmup: SimDuration::from_mins(3),
            stabilize: SimDuration::from_mins(2),
            run: SimDuration::from_mins(20),
            measure_window: SimDuration::from_mins(5),
            ..Self::paper()
        }
    }
}

impl Default for CharacterizeOptions {
    /// The paper's protocol.
    fn default() -> Self {
        Self::paper()
    }
}

/// One measured operating point.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CharacterizationPoint {
    /// Commanded utilization level.
    pub utilization: Utilization,
    /// Commanded fan speed.
    pub rpm: Rpm,
    /// Mean of the four measured CPU temperatures over the window.
    pub avg_cpu_temp: Celsius,
    /// Hottest measured CPU temperature over the window.
    pub max_cpu_temp: Celsius,
    /// Mean measured system (wall) power over the window.
    pub system_power: Watts,
    /// Mean measured fan power over the window.
    pub fan_power: Watts,
    /// Ground-truth mean CPU leakage over the window (for validating
    /// the fit in EXPERIMENTS.md; the fitting pipeline never reads it).
    pub true_leakage: Watts,
}

/// The full characterization dataset.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CharacterizationData {
    /// Measured grid points, in sweep order (utilization-major).
    pub points: Vec<CharacterizationPoint>,
}

impl CharacterizationData {
    /// Unique utilization levels, ascending.
    #[must_use]
    pub fn utilization_axis(&self) -> Vec<Utilization> {
        let mut seen: Vec<Utilization> = Vec::new();
        for p in &self.points {
            if !seen.contains(&p.utilization) {
                seen.push(p.utilization);
            }
        }
        seen.sort_by(|a, b| a.as_fraction().total_cmp(&b.as_fraction()));
        seen
    }

    /// Unique fan speeds, ascending.
    #[must_use]
    pub fn rpm_axis(&self) -> Vec<Rpm> {
        let mut seen: Vec<Rpm> = Vec::new();
        for p in &self.points {
            if !seen.contains(&p.rpm) {
                seen.push(p.rpm);
            }
        }
        seen.sort_by(|a, b| a.value().total_cmp(&b.value()));
        seen
    }

    /// The point measured at `(utilization, rpm)`, if present.
    #[must_use]
    pub fn point(&self, utilization: Utilization, rpm: Rpm) -> Option<&CharacterizationPoint> {
        self.points
            .iter()
            .find(|p| p.utilization == utilization && p.rpm == rpm)
    }

    /// Points at one utilization level, ascending in fan speed.
    #[must_use]
    pub fn at_utilization(&self, utilization: Utilization) -> Vec<&CharacterizationPoint> {
        let mut pts: Vec<&CharacterizationPoint> = self
            .points
            .iter()
            .filter(|p| p.utilization == utilization)
            .collect();
        pts.sort_by(|a, b| a.rpm.value().total_cmp(&b.rpm.value()));
        pts
    }

    /// Serializes the dataset to CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "util_pct,rpm,avg_cpu_temp_c,max_cpu_temp_c,system_power_w,fan_power_w,true_leakage_w\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:.1},{:.0},{:.3},{:.3},{:.3},{:.3},{:.3}\n",
                p.utilization.as_percent(),
                p.rpm.value(),
                p.avg_cpu_temp.degrees(),
                p.max_cpu_temp.degrees(),
                p.system_power.value(),
                p.fan_power.value(),
                p.true_leakage.value(),
            ));
        }
        out
    }
}

/// Runs the characterization sweep.
///
/// Each grid point follows the paper's protocol on a *fresh, cold*
/// machine: cold soak at 3600 RPM, target speed set at `t = 0` with an
/// idle stabilization, then a LoadGen run at the target utilization,
/// with measurements averaged over the final window from telemetry
/// (never from simulator ground truth).
///
/// # Errors
///
/// Returns [`CoreError::Invalid`] for empty axes or a measurement
/// window longer than the run, and propagates platform failures.
pub fn characterize(
    options: &CharacterizeOptions,
    seed: u64,
) -> Result<CharacterizationData, CoreError> {
    if options.utilizations.is_empty() || options.fan_speeds.is_empty() {
        return Err(CoreError::Invalid {
            what: "characterization axes must be non-empty".to_owned(),
        });
    }
    if options.measure_window > options.run {
        return Err(CoreError::Invalid {
            what: "measurement window exceeds run duration".to_owned(),
        });
    }
    let mut points = Vec::with_capacity(options.utilizations.len() * options.fan_speeds.len());
    for (ui, &utilization) in options.utilizations.iter().enumerate() {
        for (ri, &rpm) in options.fan_speeds.iter().enumerate() {
            let point_seed = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((ui * 101 + ri) as u64);
            points.push(measure_point(options, utilization, rpm, point_seed)?);
        }
    }
    Ok(CharacterizationData { points })
}

/// Measures one `(utilization, rpm)` grid point.
fn measure_point(
    options: &CharacterizeOptions,
    utilization: Utilization,
    rpm: Rpm,
    seed: u64,
) -> Result<CharacterizationPoint, CoreError> {
    let mut server = Server::new(options.config.clone(), seed)?;

    // Cold soak.
    server.command_fan_speed(Rpm::new(3600.0));
    step_idle(&mut server, options.step, options.warmup)?;
    // Target fan speed + idle stabilization.
    server.command_fan_speed(rpm);
    step_idle(&mut server, options.step, options.stabilize)?;

    // Loaded run.
    let profile = Profile::constant(utilization, options.run)?;
    let gen = LoadGen::new(profile, options.pwm);
    let run_start = server.now();
    let run_end = run_start + options.run;
    let window_start = run_end - options.measure_window;
    let step_secs = options.step.as_secs_f64();
    let mut leak_integral = 0.0;
    let mut leak_time = 0.0;
    while server.now() < run_end {
        let rel = SimInstant::ZERO + (server.now() - run_start);
        let activity = gen.average_over(rel, options.step);
        server.step(options.step, activity)?;
        if server.now() >= window_start {
            leak_integral += server.leakage_power().value() * step_secs;
            leak_time += step_secs;
        }
    }

    // Telemetry-window averages.
    let csth = server.csth();
    let window_mean = |name: &str| -> f64 {
        csth.channel_by_name(name)
            .and_then(|ch| {
                csth.series(ch)
                    .window(window_start, run_end + SimDuration::from_millis(1))
                    .mean()
            })
            .unwrap_or(f64::NAN)
    };
    let cpu_channels = ["cpu0_temp0", "cpu0_temp1", "cpu1_temp0", "cpu1_temp1"];
    let cpu_means: Vec<f64> = cpu_channels.iter().map(|n| window_mean(n)).collect();
    let avg_cpu = cpu_means.iter().sum::<f64>() / cpu_means.len() as f64;
    let max_cpu = cpu_channels
        .iter()
        .filter_map(|n| {
            csth.channel_by_name(n).and_then(|ch| {
                csth.series(ch)
                    .window(window_start, run_end + SimDuration::from_millis(1))
                    .max()
            })
        })
        .fold(f64::NEG_INFINITY, f64::max);

    Ok(CharacterizationPoint {
        utilization,
        rpm,
        avg_cpu_temp: Celsius::new(avg_cpu),
        max_cpu_temp: Celsius::new(max_cpu),
        system_power: Watts::new(window_mean("system_power")),
        fan_power: Watts::new(window_mean("fan_power")),
        true_leakage: Watts::new(leak_integral / leak_time.max(1e-9)),
    })
}

fn step_idle(
    server: &mut Server,
    step: SimDuration,
    duration: SimDuration,
) -> Result<(), CoreError> {
    let end = server.now() + duration;
    while server.now() < end {
        server.step(step, Utilization::IDLE)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_options() -> CharacterizeOptions {
        CharacterizeOptions {
            utilizations: vec![
                Utilization::from_percent(25.0).unwrap(),
                Utilization::from_percent(100.0).unwrap(),
            ],
            fan_speeds: vec![Rpm::new(1800.0), Rpm::new(4200.0)],
            warmup: SimDuration::from_mins(2),
            stabilize: SimDuration::from_mins(1),
            run: SimDuration::from_mins(15),
            measure_window: SimDuration::from_mins(4),
            ..CharacterizeOptions::paper()
        }
    }

    #[test]
    fn sweep_covers_grid() {
        let data = characterize(&tiny_options(), 7).unwrap();
        assert_eq!(data.points.len(), 4);
        assert_eq!(data.utilization_axis().len(), 2);
        assert_eq!(data.rpm_axis().len(), 2);
        assert!(data.point(Utilization::FULL, Rpm::new(1800.0)).is_some());
        assert_eq!(data.at_utilization(Utilization::FULL).len(), 2);
    }

    #[test]
    fn physics_shows_in_measurements() {
        let data = characterize(&tiny_options(), 7).unwrap();
        let full = Utilization::FULL;
        let quarter = Utilization::from_percent(25.0).unwrap();
        let hot = data.point(full, Rpm::new(1800.0)).unwrap();
        let cold = data.point(full, Rpm::new(4200.0)).unwrap();
        // Slower fans → hotter dies, more leakage, less fan power.
        assert!(hot.avg_cpu_temp > cold.avg_cpu_temp);
        assert!(hot.true_leakage > cold.true_leakage);
        assert!(hot.fan_power < cold.fan_power);
        // More load → more power at the same fan speed.
        let light = data.point(quarter, Rpm::new(1800.0)).unwrap();
        assert!(hot.system_power > light.system_power);
        // Max ≥ avg.
        assert!(hot.max_cpu_temp >= hot.avg_cpu_temp);
    }

    #[test]
    fn csv_round_shape() {
        let data = characterize(&tiny_options(), 7).unwrap();
        let csv = data.to_csv();
        assert_eq!(csv.lines().count(), 1 + data.points.len());
        assert!(csv.starts_with("util_pct,rpm,"));
    }

    #[test]
    fn validation_errors() {
        let mut opts = tiny_options();
        opts.utilizations.clear();
        assert!(matches!(
            characterize(&opts, 1),
            Err(CoreError::Invalid { .. })
        ));
        let mut opts = tiny_options();
        opts.measure_window = opts.run + SimDuration::from_secs(1);
        assert!(matches!(
            characterize(&opts, 1),
            Err(CoreError::Invalid { .. })
        ));
    }
}
