//! Fault-injection scenario harness: scripted fault/recovery/load
//! timelines driven through the closed control loop, with
//! checkpoint/restore across the whole run.
//!
//! A [`Scenario`] is a deterministic script — timed [`ScenarioEvent`]s
//! (CRAH derating/outage, tile blockage, fan faults, load moves) over a
//! fixed duration and step size, plus the thermal cap the run is judged
//! against. A [`ScenarioRunner`] drives a [`Room`] and a
//! [`RoomController`] through the script with exactly
//! [`Room::run_controlled`]'s decision cadence, while sampling the
//! hottest die every step to account cap violations and recovery (the
//! fields [`ControlStats`] grew for this module).
//!
//! The runner is resumable: [`ScenarioRunner::checkpoint`] captures the
//! room ([`Room::checkpoint`]), the controller
//! ([`RoomController::checkpoint_state`]) and the runner's own cursor
//! (event index, decision phase, accumulated stats), and
//! [`ScenarioRunner::restore`] resumes the trajectory **bit-identically**
//! to an uninterrupted run, for any thread plan — the property the
//! `checkpoint_restore` integration proptest pins.
//!
//! # Example
//!
//! ```
//! use leakctl::control::FixedSupplyController;
//! use leakctl::room::{Room, RoomConfig};
//! use leakctl::scenario::{Scenario, ScenarioEvent, ScenarioRunner};
//! use leakctl_units::{Celsius, SimDuration};
//!
//! # fn main() -> Result<(), leakctl::CoreError> {
//! let scenario = Scenario::new("derate", SimDuration::from_mins(10), SimDuration::from_secs(1))
//!     .at(SimDuration::from_mins(2), ScenarioEvent::CrahCapacity(0.5))
//!     .at(SimDuration::from_mins(6), ScenarioEvent::CrahCapacity(1.0));
//! let mut room = Room::new(RoomConfig::new(1, 2, 2))?;
//! let mut controller = FixedSupplyController::new(Celsius::new(18.0));
//! let outcome = ScenarioRunner::new(scenario).run(&mut room, &mut controller)?;
//! assert_eq!(outcome.events_applied, 2);
//! # Ok(())
//! # }
//! ```

use leakctl_platform::FanFault;
use leakctl_units::{Celsius, Joules, SimDuration, Utilization};

use crate::building::{Building, BuildingCheckpoint};
use crate::control::{RoomController, RoomObservation};
use crate::error::{BuildingError, CoreError, RoomError};
use crate::room::{ControlStats, Room, RoomCheckpoint};
use crate::supervise::{Supervisor, TripCounts};

/// One timed move in a [`Scenario`] script.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScenarioEvent {
    /// Derates the CRAH plant to a capacity factor (`1.0` restores a
    /// healthy plant, `0.0` is a full outage).
    CrahCapacity(f64),
    /// Blocks a fraction of one rack's perforated tile (`0.0` clears).
    TileBlockage {
        /// Rack whose tile is obstructed.
        rack: usize,
        /// Blocked fraction in `[0, 1]`.
        blockage: f64,
    },
    /// Injects (or clears, with [`FanFault::None`]) a fan-bank fault.
    FanFault {
        /// Rack of the faulted server.
        rack: usize,
        /// Server index within the rack.
        server: usize,
        /// The fault to inject.
        fault: FanFault,
    },
    /// Moves the room-wide activity level (load spikes and dips).
    Load(Utilization),
}

impl ScenarioEvent {
    /// `true` for events that change the plant's fault state (load
    /// moves are workload, not faults) — the events recovery time is
    /// measured from.
    #[must_use]
    fn is_fault_transition(&self) -> bool {
        !matches!(self, Self::Load(_))
    }
}

/// A deterministic fault/recovery/load script: timed events over a
/// fixed duration and step size, judged against a thermal cap.
///
/// Events fire at the *start* of the step whose time they name (so an
/// event at a decision instant is visible to that very decision), in
/// time order; ties fire in insertion order.
#[derive(Debug, Clone)]
pub struct Scenario {
    name: String,
    events: Vec<(SimDuration, ScenarioEvent)>,
    duration: SimDuration,
    dt: SimDuration,
    die_cap: Celsius,
    initial_load: Utilization,
}

impl Scenario {
    /// A script of `duration` in steps of `dt` with no events yet, an
    /// 85 °C cap and full initial load.
    ///
    /// # Panics
    ///
    /// Panics on a zero `dt`.
    #[must_use]
    pub fn new(name: impl Into<String>, duration: SimDuration, dt: SimDuration) -> Self {
        assert!(!dt.is_zero(), "scenarios need a positive step");
        Self {
            name: name.into(),
            events: Vec::new(),
            duration,
            dt,
            die_cap: Celsius::new(85.0),
            initial_load: Utilization::FULL,
        }
    }

    /// Schedules `event` at simulated time `at` (from the start of the
    /// run).
    #[must_use]
    pub fn at(mut self, at: SimDuration, event: ScenarioEvent) -> Self {
        self.events.push((at, event));
        // Stable sort: same-time events keep their insertion order.
        self.events.sort_by_key(|&(t, _)| t);
        self
    }

    /// Overrides the thermal cap the run is judged against (default
    /// 85 °C, the paper's red-line die temperature).
    #[must_use]
    pub fn with_die_cap(mut self, cap: Celsius) -> Self {
        self.die_cap = cap;
        self
    }

    /// Overrides the activity level the run starts at (default full).
    #[must_use]
    pub fn with_initial_load(mut self, load: Utilization) -> Self {
        self.initial_load = load;
        self
    }

    /// The script's name (used in sweep reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total steps the script runs for.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.duration.as_millis() / self.dt.as_millis()
    }

    /// The step size.
    #[must_use]
    pub fn dt(&self) -> SimDuration {
        self.dt
    }

    /// The thermal cap the run is judged against.
    #[must_use]
    pub fn die_cap(&self) -> Celsius {
        self.die_cap
    }

    /// The activity level the run starts at (until a
    /// [`ScenarioEvent::Load`] moves it).
    #[must_use]
    pub fn initial_load(&self) -> Utilization {
        self.initial_load
    }

    /// Number of scheduled events.
    #[must_use]
    pub fn events(&self) -> usize {
        self.events.len()
    }
}

/// What a scenario run produced: the extended loop counters and the
/// room's energy/thermal bottom line.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ScenarioOutcome {
    /// The script's name.
    pub name: String,
    /// Loop counters, cap-violation time, recovery time (see
    /// [`ControlStats`]).
    pub stats: ControlStats,
    /// Total room energy (IT + cooling) over the run.
    pub total_energy: Joules,
    /// IT (server + fan) energy over the run.
    pub it_energy: Joules,
    /// CRAH cooling energy over the run.
    pub cooling_energy: Joules,
    /// The hottest die at the end of the run.
    pub final_max_die: Celsius,
    /// Events that fired (equals the script's count after a full run).
    pub events_applied: usize,
}

impl ScenarioOutcome {
    /// `true` when the hottest die never exceeded the cap.
    #[must_use]
    pub fn stayed_under_cap(&self) -> bool {
        self.stats.cap_violation_time.is_zero()
    }

    /// Fills [`ControlStats::energy_overhead`] relative to a reference
    /// run of the same script (typically fault-free or under a
    /// different controller).
    pub fn set_energy_overhead_vs(&mut self, reference: &ScenarioOutcome) {
        self.stats.energy_overhead = Some(self.total_energy - reference.total_energy);
    }
}

/// Everything needed to resume a scenario mid-flight: the room
/// snapshot, the controller's opaque state and the runner's cursor.
#[derive(Debug, Clone)]
pub struct ScenarioCheckpoint {
    room: RoomCheckpoint,
    controller: Vec<f64>,
    cursor: Cursor,
}

impl ScenarioCheckpoint {
    /// The step the run was captured at.
    #[must_use]
    pub fn step(&self) -> u64 {
        self.cursor.step
    }
}

/// The runner's progress state (everything outside the room and the
/// controller), captured verbatim in a [`ScenarioCheckpoint`].
#[derive(Debug, Clone)]
struct Cursor {
    step: u64,
    next_event: usize,
    since: SimDuration,
    load: Utilization,
    stats: ControlStats,
    events_applied: usize,
    last_fault_time: Option<SimDuration>,
    violated_since_fault: bool,
    recovered_at: Option<SimDuration>,
}

/// Drives a [`Room`] and a [`RoomController`] through a [`Scenario`],
/// step by step, with checkpoint/restore at any step boundary.
///
/// Per step: due events are applied first, then (every decision
/// period, and at `t = 0`) the controller decides against the
/// post-event room — so a CRAH outage is visible to the very decision
/// made at the instant it strikes — then the room advances and the
/// hottest die is sampled against the cap.
#[derive(Debug)]
pub struct ScenarioRunner {
    scenario: Scenario,
    cursor: Cursor,
    obs: RoomObservation,
}

impl ScenarioRunner {
    /// A runner positioned at the start of `scenario`.
    #[must_use]
    pub fn new(scenario: Scenario) -> Self {
        let load = scenario.initial_load;
        Self {
            scenario,
            cursor: Cursor {
                step: 0,
                next_event: 0,
                since: SimDuration::ZERO,
                load,
                stats: ControlStats::default(),
                events_applied: 0,
                last_fault_time: None,
                violated_since_fault: false,
                recovered_at: None,
            },
            obs: RoomObservation::new(),
        }
    }

    /// The script being driven.
    #[must_use]
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// `true` once every scripted step has run.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.cursor.step >= self.scenario.steps()
    }

    /// The current step index (steps completed so far).
    #[must_use]
    pub fn step(&self) -> u64 {
        self.cursor.step
    }

    /// Runs the remainder of the script and reports the outcome.
    ///
    /// # Errors
    ///
    /// Propagates room/controller failures ([`CoreError`]); scripted
    /// events with bad parameters surface as [`CoreError::Room`].
    pub fn run(
        &mut self,
        room: &mut Room,
        controller: &mut dyn RoomController,
    ) -> Result<ScenarioOutcome, CoreError> {
        let remaining = self.scenario.steps() - self.cursor.step;
        self.run_steps(room, controller, remaining)?;
        Ok(self.outcome(room))
    }

    /// Advances up to `steps` further steps (stopping at the script's
    /// end), e.g. to reach a checkpoint boundary mid-scenario.
    ///
    /// # Errors
    ///
    /// As [`ScenarioRunner::run`].
    pub fn run_steps(
        &mut self,
        room: &mut Room,
        controller: &mut dyn RoomController,
        steps: u64,
    ) -> Result<(), CoreError> {
        let dt = self.scenario.dt;
        let period = controller.decision_period();
        let end = (self.cursor.step + steps).min(self.scenario.steps());
        while self.cursor.step < end {
            let now = dt * self.cursor.step;
            // ---- due events fire at the start of their step.
            while let Some((at, event)) = self.scenario.events.get(self.cursor.next_event) {
                if *at > now {
                    break;
                }
                self.apply_event(room, event.clone(), now)?;
                self.cursor.next_event += 1;
                self.cursor.events_applied += 1;
            }
            // ---- decision cadence: exactly `Room::run_controlled`'s
            // (decide at t = 0, then every period).
            if self.cursor.step == 0 || self.cursor.since >= period {
                self.cursor.since = SimDuration::ZERO;
                let action = room.decide(controller, &mut self.obs);
                self.cursor.stats.decisions += 1;
                if !action.is_hold() {
                    self.cursor.stats.applied += 1;
                    room.apply(&action)?;
                }
            }
            // ---- advance and judge against the cap.
            room.step(dt, self.cursor.load)?;
            self.cursor.step += 1;
            self.cursor.since += dt;
            let die = room.max_die_temperature();
            self.cursor.stats.peak_die = self.cursor.stats.peak_die.max(die);
            if die > self.scenario.die_cap {
                self.cursor.stats.cap_violation_time += dt;
                self.cursor.violated_since_fault = true;
                self.cursor.recovered_at = None;
            } else if self.cursor.violated_since_fault && self.cursor.recovered_at.is_none() {
                self.cursor.recovered_at = Some(dt * self.cursor.step);
            }
        }
        Ok(())
    }

    fn apply_event(
        &mut self,
        room: &mut Room,
        event: ScenarioEvent,
        now: SimDuration,
    ) -> Result<(), CoreError> {
        if event.is_fault_transition() {
            self.cursor.last_fault_time = Some(now);
            self.cursor.violated_since_fault = false;
            self.cursor.recovered_at = None;
        }
        match event {
            ScenarioEvent::CrahCapacity(capacity) => room.set_crah_capacity(capacity)?,
            ScenarioEvent::TileBlockage { rack, blockage } => {
                room.set_tile_blockage(rack, blockage)?;
            }
            ScenarioEvent::FanFault {
                rack,
                server,
                fault,
            } => room.inject_fan_fault(rack, server, fault)?,
            ScenarioEvent::Load(load) => self.cursor.load = load,
        }
        Ok(())
    }

    /// The outcome so far (complete once [`ScenarioRunner::finished`]).
    /// Recovery time is measured from the last fault-state event (load
    /// moves excluded) to the end of the first cap excursion after it.
    #[must_use]
    pub fn outcome(&self, room: &Room) -> ScenarioOutcome {
        let mut stats = self.cursor.stats;
        stats.recovery_time = match (self.cursor.last_fault_time, self.cursor.recovered_at) {
            (Some(fault), Some(recovered)) if recovered > fault => Some(recovered - fault),
            _ => None,
        };
        ScenarioOutcome {
            name: self.scenario.name.clone(),
            stats,
            total_energy: room.total_energy(),
            it_energy: room.it_energy(),
            cooling_energy: room.cooling_energy(),
            final_max_die: room.max_die_temperature(),
            events_applied: self.cursor.events_applied,
        }
    }

    /// Captures the full run state — room, controller, cursor — at the
    /// current step boundary.
    #[must_use]
    pub fn checkpoint(
        &self,
        room: &mut Room,
        controller: &dyn RoomController,
    ) -> ScenarioCheckpoint {
        ScenarioCheckpoint {
            room: room.checkpoint(),
            controller: controller.checkpoint_state(),
            cursor: self.cursor.clone(),
        }
    }

    /// Restores a [`ScenarioRunner::checkpoint`] into `room`,
    /// `controller` and this runner; the resumed run is bit-identical
    /// to one that was never interrupted (any thread plan).
    ///
    /// # Errors
    ///
    /// Returns [`RoomError::CheckpointMismatch`] when the room does not
    /// match the snapshot (the runner and controller are only touched
    /// after the room restore succeeds).
    pub fn restore(
        &mut self,
        room: &mut Room,
        controller: &mut dyn RoomController,
        checkpoint: &ScenarioCheckpoint,
    ) -> Result<(), RoomError> {
        room.restore(&checkpoint.room)?;
        controller.reset();
        controller.restore_state(&checkpoint.controller);
        self.cursor = checkpoint.cursor.clone();
        self.obs = RoomObservation::new();
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Building-scale scenarios
// ---------------------------------------------------------------------------

/// One timed move in a [`BuildingScenario`] script — the building-scale
/// fault injectors, plus room-scoped [`ScenarioEvent`]s.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BuildingEvent {
    /// Derates the mechanical chiller to an availability factor
    /// (`1.0` restores a healthy chiller, `0.0` is a full outage).
    Chiller(f64),
    /// Raises the chilled-water supply temperature by this many °C
    /// above design (`0.0` clears the excursion).
    ChwExcursion(f64),
    /// Moves the outdoor temperature (heat waves; also drives
    /// economizer lockout and COP/capacity derates).
    Outdoor(Celsius),
    /// Moves one room's activity level.
    RoomLoad {
        /// Target room.
        room: usize,
        /// New activity level.
        load: Utilization,
    },
    /// Moves *every* room's activity level at once — the correlated
    /// multi-room surge.
    LoadSurge(Utilization),
    /// A room-scoped event from the room-scale script vocabulary.
    /// [`ScenarioEvent::CrahCapacity`] maps to the room's *local* CRAH
    /// health (the plant's derate composes on top);
    /// [`ScenarioEvent::Load`] moves that room's activity.
    Room {
        /// Target room.
        room: usize,
        /// The room-scale event.
        event: ScenarioEvent,
    },
}

impl BuildingEvent {
    /// `true` for events that change fault state (load moves are
    /// workload, not faults) — the events recovery time is measured
    /// from.
    fn is_fault_transition(&self) -> bool {
        match self {
            Self::RoomLoad { .. } | Self::LoadSurge(_) => false,
            Self::Room { event, .. } => event.is_fault_transition(),
            _ => true,
        }
    }
}

/// A deterministic building-scale fault/recovery/load script — the
/// [`Scenario`] shape one level up, sharing its timing contract: events
/// fire at the *start* of the step whose time they name, in time order;
/// ties fire in insertion order.
#[derive(Debug, Clone)]
pub struct BuildingScenario {
    name: String,
    events: Vec<(SimDuration, BuildingEvent)>,
    duration: SimDuration,
    dt: SimDuration,
    die_cap: Celsius,
    initial_load: Utilization,
}

impl BuildingScenario {
    /// A script of `duration` in steps of `dt` with no events yet, an
    /// 85 °C cap and full initial load in every room.
    ///
    /// # Panics
    ///
    /// Panics on a zero `dt`.
    #[must_use]
    pub fn new(name: impl Into<String>, duration: SimDuration, dt: SimDuration) -> Self {
        assert!(!dt.is_zero(), "scenarios need a positive step");
        Self {
            name: name.into(),
            events: Vec::new(),
            duration,
            dt,
            die_cap: Celsius::new(85.0),
            initial_load: Utilization::FULL,
        }
    }

    /// Schedules `event` at simulated time `at`.
    #[must_use]
    pub fn at(mut self, at: SimDuration, event: BuildingEvent) -> Self {
        self.events.push((at, event));
        // Stable sort: same-time events keep their insertion order.
        self.events.sort_by_key(|&(t, _)| t);
        self
    }

    /// Overrides the thermal cap the run is judged against.
    #[must_use]
    pub fn with_die_cap(mut self, cap: Celsius) -> Self {
        self.die_cap = cap;
        self
    }

    /// Overrides the activity level every room starts at.
    #[must_use]
    pub fn with_initial_load(mut self, load: Utilization) -> Self {
        self.initial_load = load;
        self
    }

    /// The script's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total steps the script runs for.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.duration.as_millis() / self.dt.as_millis()
    }

    /// The step size.
    #[must_use]
    pub fn dt(&self) -> SimDuration {
        self.dt
    }

    /// The thermal cap the run is judged against.
    #[must_use]
    pub fn die_cap(&self) -> Celsius {
        self.die_cap
    }

    /// The activity level rooms start at.
    #[must_use]
    pub fn initial_load(&self) -> Utilization {
        self.initial_load
    }

    /// Number of scheduled events.
    #[must_use]
    pub fn events(&self) -> usize {
        self.events.len()
    }
}

/// What a building scenario run produced: aggregated loop counters, the
/// building's energy bottom line, and the supervision record.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct BuildingOutcome {
    /// The script's name.
    pub name: String,
    /// Aggregated loop counters and cap accounting (violation time
    /// counts steps where *any* room's hottest die is over the cap).
    pub stats: ControlStats,
    /// IT energy plus plant electricity over the run.
    pub total_energy: Joules,
    /// IT (server + fan) energy over the run.
    pub it_energy: Joules,
    /// Plant electricity over the run.
    pub plant_energy: Joules,
    /// The hottest die across all rooms at the end of the run.
    pub final_max_die: Celsius,
    /// Events that fired.
    pub events_applied: usize,
    /// Invariant-monitor trip counters from the supervisor.
    pub trips: TripCounts,
    /// Times the watchdog entered a load shed.
    pub sheds: u64,
    /// Rooms escalated into safe mode.
    pub escalations: u64,
    /// Total simulated time spent shedding.
    pub shed_time: SimDuration,
}

impl BuildingOutcome {
    /// `true` when no room's hottest die ever exceeded the cap.
    #[must_use]
    pub fn stayed_under_cap(&self) -> bool {
        self.stats.cap_violation_time.is_zero()
    }

    /// Fills [`ControlStats::energy_overhead`] relative to a reference
    /// run of the same script.
    pub fn set_energy_overhead_vs(&mut self, reference: &BuildingOutcome) {
        self.stats.energy_overhead = Some(self.total_energy - reference.total_energy);
    }
}

/// Everything needed to resume a building scenario mid-flight: the
/// building snapshot, every controller's opaque state, the supervisor's
/// state, and the runner's cursor.
#[derive(Debug, Clone)]
pub struct BuildingScenarioCheckpoint {
    building: BuildingCheckpoint,
    controllers: Vec<Vec<f64>>,
    supervisor: Vec<f64>,
    cursor: BuildingCursor,
}

impl BuildingScenarioCheckpoint {
    /// The step the run was captured at.
    #[must_use]
    pub fn step(&self) -> u64 {
        self.cursor.step
    }
}

/// The building runner's progress state, captured verbatim in a
/// [`BuildingScenarioCheckpoint`].
#[derive(Debug, Clone)]
struct BuildingCursor {
    step: u64,
    next_event: usize,
    /// Per-room decision phase.
    since: Vec<SimDuration>,
    since_supervise: SimDuration,
    /// Per-room activity level.
    loads: Vec<Utilization>,
    stats: ControlStats,
    events_applied: usize,
    last_fault_time: Option<SimDuration>,
    violated_since_fault: bool,
    recovered_at: Option<SimDuration>,
}

/// Drives a [`Building`], one [`RoomController`] per room, and a
/// [`Supervisor`] through a [`BuildingScenario`].
///
/// Per step: due events fire first; then each room's controller decides
/// at its own cadence (from `t = 0`) against the post-event building;
/// then the supervisor runs at its cadence — *after* the controllers,
/// so watchdog actions override controller actions; then the building
/// advances and the hottest die across all rooms is judged against the
/// cap. All of it happens in room index order within the serial
/// section, so supervised runs are bit-identical for any thread plan.
#[derive(Debug)]
pub struct BuildingScenarioRunner {
    scenario: BuildingScenario,
    cursor: BuildingCursor,
    obs: RoomObservation,
}

impl BuildingScenarioRunner {
    /// A runner positioned at the start of `scenario`, for a building
    /// of `rooms` rooms.
    #[must_use]
    pub fn new(scenario: BuildingScenario, rooms: usize) -> Self {
        let load = scenario.initial_load;
        Self {
            scenario,
            cursor: BuildingCursor {
                step: 0,
                next_event: 0,
                since: vec![SimDuration::ZERO; rooms],
                since_supervise: SimDuration::ZERO,
                loads: vec![load; rooms],
                stats: ControlStats::default(),
                events_applied: 0,
                last_fault_time: None,
                violated_since_fault: false,
                recovered_at: None,
            },
            obs: RoomObservation::new(),
        }
    }

    /// The script being driven.
    #[must_use]
    pub fn scenario(&self) -> &BuildingScenario {
        &self.scenario
    }

    /// `true` once every scripted step has run.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.cursor.step >= self.scenario.steps()
    }

    /// The current step index.
    #[must_use]
    pub fn step(&self) -> u64 {
        self.cursor.step
    }

    fn check_shape(
        &self,
        building: &Building,
        controllers: &[Box<dyn RoomController>],
    ) -> Result<(), BuildingError> {
        if building.rooms() != self.cursor.since.len()
            || controllers.len() != self.cursor.since.len()
        {
            return Err(BuildingError::InvalidFault {
                what:
                    "one controller per room required (runner/building/controller count mismatch)",
            });
        }
        Ok(())
    }

    /// Runs the remainder of the script and reports the outcome.
    ///
    /// # Errors
    ///
    /// Propagates building/controller/supervisor failures; scripted
    /// events with bad parameters surface as [`CoreError::Building`].
    pub fn run(
        &mut self,
        building: &mut Building,
        controllers: &mut [Box<dyn RoomController>],
        supervisor: &mut Supervisor,
    ) -> Result<BuildingOutcome, CoreError> {
        let remaining = self.scenario.steps() - self.cursor.step;
        self.run_steps(building, controllers, supervisor, remaining)?;
        Ok(self.outcome(building, supervisor))
    }

    /// Advances up to `steps` further steps (stopping at the script's
    /// end).
    ///
    /// # Errors
    ///
    /// As [`BuildingScenarioRunner::run`].
    pub fn run_steps(
        &mut self,
        building: &mut Building,
        controllers: &mut [Box<dyn RoomController>],
        supervisor: &mut Supervisor,
        steps: u64,
    ) -> Result<(), CoreError> {
        self.check_shape(building, controllers)?;
        let dt = self.scenario.dt;
        let end = (self.cursor.step + steps).min(self.scenario.steps());
        while self.cursor.step < end {
            let now = dt * self.cursor.step;
            // ---- due events fire at the start of their step.
            while let Some((at, event)) = self.scenario.events.get(self.cursor.next_event) {
                if *at > now {
                    break;
                }
                let event = event.clone();
                self.apply_event(building, event, now)?;
                self.cursor.next_event += 1;
                self.cursor.events_applied += 1;
            }
            // ---- per-room decision cadence (room index order).
            for (r, controller) in controllers.iter_mut().enumerate() {
                if self.cursor.step == 0 || self.cursor.since[r] >= controller.decision_period() {
                    self.cursor.since[r] = SimDuration::ZERO;
                    let action = building.decide(r, controller.as_mut(), &mut self.obs)?;
                    self.cursor.stats.decisions += 1;
                    if !action.is_hold() {
                        self.cursor.stats.applied += 1;
                        building.apply(r, &action)?;
                    }
                }
            }
            // ---- supervision, after the controllers so watchdog
            // actions win.
            if self.cursor.step == 0 || self.cursor.since_supervise >= supervisor.period() {
                self.cursor.since_supervise = SimDuration::ZERO;
                supervisor.supervise(building)?;
            }
            // ---- advance and judge against the cap.
            building.step(dt, &self.cursor.loads)?;
            self.cursor.step += 1;
            for since in &mut self.cursor.since {
                *since += dt;
            }
            self.cursor.since_supervise += dt;
            let die = building.max_die_temperature();
            self.cursor.stats.peak_die = self.cursor.stats.peak_die.max(die);
            if die > self.scenario.die_cap {
                self.cursor.stats.cap_violation_time += dt;
                self.cursor.violated_since_fault = true;
                self.cursor.recovered_at = None;
            } else if self.cursor.violated_since_fault && self.cursor.recovered_at.is_none() {
                self.cursor.recovered_at = Some(dt * self.cursor.step);
            }
        }
        Ok(())
    }

    fn apply_event(
        &mut self,
        building: &mut Building,
        event: BuildingEvent,
        now: SimDuration,
    ) -> Result<(), CoreError> {
        if event.is_fault_transition() {
            self.cursor.last_fault_time = Some(now);
            self.cursor.violated_since_fault = false;
            self.cursor.recovered_at = None;
        }
        match event {
            BuildingEvent::Chiller(fraction) => building.set_chiller_availability(fraction)?,
            BuildingEvent::ChwExcursion(excursion) => building.set_chw_excursion(excursion)?,
            BuildingEvent::Outdoor(outdoor) => building.set_outdoor(outdoor)?,
            BuildingEvent::RoomLoad { room, load } => {
                if room >= self.cursor.loads.len() {
                    return Err(BuildingError::RoomOutOfRange {
                        room,
                        rooms: self.cursor.loads.len(),
                    }
                    .into());
                }
                self.cursor.loads[room] = load;
            }
            BuildingEvent::LoadSurge(load) => {
                self.cursor.loads.fill(load);
            }
            BuildingEvent::Room { room, event } => match event {
                ScenarioEvent::CrahCapacity(health) => {
                    building.set_room_crah_health(room, health)?;
                }
                ScenarioEvent::TileBlockage { rack, blockage } => building
                    .room_mut(room)?
                    .set_tile_blockage(rack, blockage)
                    .map_err(|source| BuildingError::Room { room, source })?,
                ScenarioEvent::FanFault {
                    rack,
                    server,
                    fault,
                } => building
                    .room_mut(room)?
                    .inject_fan_fault(rack, server, fault)
                    .map_err(|source| BuildingError::Room { room, source })?,
                ScenarioEvent::Load(load) => {
                    if room >= self.cursor.loads.len() {
                        return Err(BuildingError::RoomOutOfRange {
                            room,
                            rooms: self.cursor.loads.len(),
                        }
                        .into());
                    }
                    self.cursor.loads[room] = load;
                }
            },
        }
        Ok(())
    }

    /// The outcome so far (complete once
    /// [`BuildingScenarioRunner::finished`]).
    #[must_use]
    pub fn outcome(&self, building: &Building, supervisor: &Supervisor) -> BuildingOutcome {
        let mut stats = self.cursor.stats;
        stats.recovery_time = match (self.cursor.last_fault_time, self.cursor.recovered_at) {
            (Some(fault), Some(recovered)) if recovered > fault => Some(recovered - fault),
            _ => None,
        };
        BuildingOutcome {
            name: self.scenario.name.clone(),
            stats,
            total_energy: building.total_energy(),
            it_energy: building.it_energy(),
            plant_energy: building.plant_energy(),
            final_max_die: building.max_die_temperature(),
            events_applied: self.cursor.events_applied,
            trips: supervisor.counts(),
            sheds: supervisor.sheds(),
            escalations: supervisor.escalations(),
            shed_time: supervisor.shed_time(),
        }
    }

    /// Captures the full run state — building, controllers, supervisor,
    /// cursor — at the current step boundary.
    #[must_use]
    pub fn checkpoint(
        &self,
        building: &mut Building,
        controllers: &[Box<dyn RoomController>],
        supervisor: &Supervisor,
    ) -> BuildingScenarioCheckpoint {
        BuildingScenarioCheckpoint {
            building: building.checkpoint(),
            controllers: controllers.iter().map(|c| c.checkpoint_state()).collect(),
            supervisor: supervisor.checkpoint_state(),
            cursor: self.cursor.clone(),
        }
    }

    /// Restores a [`BuildingScenarioRunner::checkpoint`]; the resumed
    /// run is bit-identical to one that was never interrupted, for any
    /// thread plan. The building restore is all-or-nothing and happens
    /// before controllers or supervisor are touched.
    ///
    /// # Errors
    ///
    /// Returns [`BuildingError::CheckpointMismatch`] when the building
    /// or the controller count does not match the snapshot.
    pub fn restore(
        &mut self,
        building: &mut Building,
        controllers: &mut [Box<dyn RoomController>],
        supervisor: &mut Supervisor,
        checkpoint: &BuildingScenarioCheckpoint,
    ) -> Result<(), BuildingError> {
        if controllers.len() != checkpoint.controllers.len() {
            return Err(BuildingError::CheckpointMismatch {
                what: format!(
                    "checkpoint holds {} controllers, run has {}",
                    checkpoint.controllers.len(),
                    controllers.len()
                ),
            });
        }
        building.restore(&checkpoint.building)?;
        for (controller, state) in controllers.iter_mut().zip(&checkpoint.controllers) {
            controller.reset();
            controller.restore_state(state);
        }
        supervisor.reset();
        supervisor.restore_state(&checkpoint.supervisor);
        self.cursor = checkpoint.cursor.clone();
        self.obs = RoomObservation::new();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::{ControlAction, FixedSupplyController, LutSetPointController};
    use crate::room::RoomConfig;
    use leakctl_thermal::ShardPlan;
    use leakctl_units::Rpm;

    fn small_room(plan: usize) -> Room {
        let mut config = RoomConfig::new(1, 2, 2);
        config.recirculation_fraction = 0.2;
        let mut room = Room::with_plan(config, ShardPlan::new(plan)).unwrap();
        room.apply(&ControlAction::hold().with_fan_floor(Rpm::new(3000.0)))
            .unwrap();
        room
    }

    #[test]
    fn events_fire_in_order_and_shape_the_run() {
        let scenario = Scenario::new(
            "derate-and-spike",
            SimDuration::from_secs(600),
            SimDuration::from_secs(1),
        )
        .with_initial_load(Utilization::saturating_from_fraction(0.25))
        .at(
            SimDuration::from_secs(120),
            ScenarioEvent::Load(Utilization::FULL),
        )
        .at(
            SimDuration::from_secs(180),
            ScenarioEvent::CrahCapacity(0.6),
        )
        .at(
            SimDuration::from_secs(400),
            ScenarioEvent::CrahCapacity(1.0),
        );
        assert_eq!(scenario.steps(), 600);
        assert_eq!(scenario.events(), 3);

        let mut room = small_room(1);
        let mut ctl = FixedSupplyController::new(Celsius::new(18.0));
        let mut runner = ScenarioRunner::new(scenario);
        let outcome = runner.run(&mut room, &mut ctl).unwrap();
        assert!(runner.finished());
        assert_eq!(outcome.events_applied, 3);
        // 60 s decision period over 600 s: t = 0 plus every minute.
        assert_eq!(outcome.stats.decisions, 10);
        assert_eq!(room.crah_capacity(), 1.0);
        assert_eq!(room.accounted_time(), SimDuration::from_secs(600));
        assert!(outcome.stats.peak_die >= outcome.final_max_die);
        assert!(outcome.total_energy == outcome.it_energy + outcome.cooling_energy);
    }

    #[test]
    fn cap_violations_and_recovery_are_accounted() {
        // A low cap plus a full outage forces an excursion (the peak
        // arrives after the plant is restored — thermal lag); the
        // recovered plant pulls the room back under the cap before the
        // script ends.
        let scenario = Scenario::new(
            "outage",
            SimDuration::from_secs(2_000),
            SimDuration::from_secs(1),
        )
        .with_die_cap(Celsius::new(60.0))
        .at(
            SimDuration::from_secs(300),
            ScenarioEvent::CrahCapacity(0.0),
        )
        .at(
            SimDuration::from_secs(540),
            ScenarioEvent::CrahCapacity(1.0),
        );

        let mut room = small_room(1);
        let mut ctl = FixedSupplyController::new(Celsius::new(18.0));
        let outcome = ScenarioRunner::new(scenario)
            .run(&mut room, &mut ctl)
            .unwrap();
        assert!(!outcome.stayed_under_cap());
        assert!(outcome.stats.cap_violation_time >= SimDuration::from_secs(10));
        let recovery = outcome.stats.recovery_time.expect("room recovers");
        assert!(recovery > SimDuration::ZERO);
        assert!(outcome.stats.peak_die > Celsius::new(60.0));
        // The fixed baseline ends the run back under the cap here only
        // because the fault itself was cleared.
        assert!(outcome.final_max_die < Celsius::new(60.0));

        // Energy overhead vs a fault-free reference of the same script.
        let free = Scenario::new(
            "fault-free",
            SimDuration::from_secs(2_000),
            SimDuration::from_secs(1),
        );
        let mut reference_room = small_room(1);
        let mut reference_ctl = FixedSupplyController::new(Celsius::new(18.0));
        let reference = ScenarioRunner::new(free)
            .run(&mut reference_room, &mut reference_ctl)
            .unwrap();
        let mut judged = outcome;
        judged.set_energy_overhead_vs(&reference);
        assert!(judged.stats.energy_overhead.is_some());
    }

    #[test]
    fn bad_event_parameters_surface_as_room_errors() {
        let scenario = Scenario::new("bad", SimDuration::from_secs(10), SimDuration::from_secs(1))
            .at(SimDuration::ZERO, ScenarioEvent::CrahCapacity(2.0));
        let mut room = small_room(1);
        let mut ctl = FixedSupplyController::new(Celsius::new(18.0));
        let err = ScenarioRunner::new(scenario)
            .run(&mut room, &mut ctl)
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::Room(RoomError::InvalidFault { .. })
        ));
    }

    #[test]
    fn mid_scenario_checkpoint_resumes_bit_identically() {
        let scenario = || {
            Scenario::new(
                "ckpt",
                SimDuration::from_secs(900),
                SimDuration::from_secs(1),
            )
            .at(
                SimDuration::from_secs(200),
                ScenarioEvent::CrahCapacity(0.5),
            )
            .at(
                SimDuration::from_secs(300),
                ScenarioEvent::FanFault {
                    rack: 1,
                    server: 0,
                    fault: FanFault::Degraded { flow_scale: 0.6 },
                },
            )
            .at(
                SimDuration::from_secs(600),
                ScenarioEvent::CrahCapacity(1.0),
            )
            .at(
                SimDuration::from_secs(600),
                ScenarioEvent::FanFault {
                    rack: 1,
                    server: 0,
                    fault: FanFault::None,
                },
            )
        };
        let fingerprint = |room: &Room, outcome: &ScenarioOutcome| {
            (
                outcome.total_energy.value().to_bits(),
                outcome.final_max_die.degrees().to_bits(),
                outcome.stats.cap_violation_time,
                outcome.stats.decisions,
                (0..room.racks())
                    .map(|r| room.cold_aisle_temperature(r).degrees().to_bits())
                    .collect::<Vec<u64>>(),
            )
        };

        // Uninterrupted reference (single-threaded).
        let mut room = small_room(1);
        let mut ctl = LutSetPointController::paper_default();
        let mut runner = ScenarioRunner::new(scenario());
        let reference = runner.run(&mut room, &mut ctl).unwrap();
        let reference = fingerprint(&room, &reference);

        // Interrupted mid-fault at step 450, restored into a *fresh*
        // room under a different thread plan and a fresh controller.
        let mut room = small_room(2);
        let mut ctl = LutSetPointController::paper_default();
        let mut runner = ScenarioRunner::new(scenario());
        runner.run_steps(&mut room, &mut ctl, 450).unwrap();
        let snap = runner.checkpoint(&mut room, &ctl);
        assert_eq!(snap.step(), 450);

        let mut resumed_room = small_room(4);
        let mut resumed_ctl = LutSetPointController::paper_default();
        let mut resumed_runner = ScenarioRunner::new(scenario());
        resumed_runner
            .restore(&mut resumed_room, &mut resumed_ctl, &snap)
            .unwrap();
        assert_eq!(resumed_runner.step(), 450);
        let outcome = resumed_runner
            .run(&mut resumed_room, &mut resumed_ctl)
            .unwrap();
        assert_eq!(fingerprint(&resumed_room, &outcome), reference);
    }
}
