//! Core pipeline error type.

use core::fmt;

use leakctl_control::LutBuildError;
use leakctl_platform::PlatformError;
use leakctl_power::fit::FitError;
use leakctl_thermal::ThermalError;
use leakctl_workload::ProfileError;

/// Errors produced by the characterization / fitting / evaluation
/// pipeline.
#[derive(Debug)]
pub enum CoreError {
    /// The digital twin failed.
    Platform(PlatformError),
    /// Model fitting failed.
    Fit(FitError),
    /// LUT generation failed.
    LutBuild(LutBuildError),
    /// A workload profile was invalid.
    Profile(ProfileError),
    /// The pipeline was driven with inconsistent inputs.
    Invalid {
        /// Description of the problem.
        what: String,
    },
    /// A room-scale operation failed.
    Room(RoomError),
    /// A building-scale operation failed.
    Building(BuildingError),
    /// A controller could not be built or driven.
    Control(ControlError),
    /// A workload placement was rejected before anything was committed.
    Placement(PlacementError),
}

/// Errors raised when a [`PlacementAction`](crate::schedule::PlacementAction)
/// fails validation — the action is rejected as a whole and the room is
/// left untouched (all-or-nothing, like
/// [`Room::apply`](crate::room::Room::apply)).
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementError {
    /// The action's utilization list does not have one entry per rack.
    RackCountMismatch {
        /// Entries in the action.
        got: usize,
        /// Racks in the room.
        racks: usize,
    },
    /// A per-rack utilization was non-finite or outside `[0, 1]`.
    InvalidUtilization {
        /// The offending rack index.
        rack: usize,
        /// The rejected fraction.
        fraction: f64,
    },
    /// The budget list does not have one entry per rack.
    BudgetCountMismatch {
        /// Entries in the action.
        got: usize,
        /// Racks in the room.
        racks: usize,
    },
    /// A per-rack power budget was non-finite or non-positive.
    InvalidBudget {
        /// The offending rack index.
        rack: usize,
        /// The rejected budget in watts.
        watts: f64,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::RackCountMismatch { got, racks } => {
                write!(f, "placement holds {got} utilizations for {racks} racks")
            }
            Self::InvalidUtilization { rack, fraction } => {
                write!(
                    f,
                    "rack {rack}: utilization {fraction} must be finite and in [0, 1]"
                )
            }
            Self::BudgetCountMismatch { got, racks } => {
                write!(f, "placement holds {got} power budgets for {racks} racks")
            }
            Self::InvalidBudget { rack, watts } => {
                write!(
                    f,
                    "rack {rack}: power budget {watts} W must be finite and positive"
                )
            }
        }
    }
}

impl std::error::Error for PlacementError {}

impl From<PlacementError> for CoreError {
    fn from(e: PlacementError) -> Self {
        Self::Placement(e)
    }
}

/// Errors raised by building-scale operations: plant fault injection,
/// per-room dispatch, and building-wide checkpoint/restore.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildingError {
    /// A room index was out of range for this building.
    RoomOutOfRange {
        /// The offending index.
        room: usize,
        /// Number of rooms in the building.
        rooms: usize,
    },
    /// A building-level fault or supervision parameter was rejected.
    InvalidFault {
        /// Description of the problem.
        what: &'static str,
    },
    /// An operation on one of the rooms failed.
    Room {
        /// Index of the room that failed.
        room: usize,
        /// The underlying room error.
        source: RoomError,
    },
    /// The chilled-water plant rejected an operation.
    Plant(ThermalError),
    /// A checkpoint does not match the building it is being restored into.
    CheckpointMismatch {
        /// Description of the mismatch.
        what: String,
    },
}

impl fmt::Display for BuildingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::RoomOutOfRange { room, rooms } => {
                write!(f, "room index {room} out of range for {rooms} rooms")
            }
            Self::InvalidFault { what } => write!(f, "invalid building fault: {what}"),
            Self::Room { room, source } => write!(f, "room {room}: {source}"),
            Self::Plant(e) => write!(f, "chilled-water plant: {e}"),
            Self::CheckpointMismatch { what } => {
                write!(f, "building checkpoint mismatch: {what}")
            }
        }
    }
}

impl std::error::Error for BuildingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Room { source, .. } => Some(source),
            Self::Plant(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildingError> for CoreError {
    fn from(e: BuildingError) -> Self {
        Self::Building(e)
    }
}

/// Errors raised by room-scale operations: fault injection,
/// checkpoint/restore, and observation under degraded conditions.
///
/// These paths used to panic via `unwrap`/`expect`; fault injection makes
/// them reachable at runtime, so they now degrade into typed errors.
#[derive(Debug, Clone, PartialEq)]
pub enum RoomError {
    /// A rack index was out of range for this room.
    RackOutOfRange {
        /// The offending index.
        rack: usize,
        /// Number of racks in the room.
        racks: usize,
    },
    /// A server index was out of range within a rack.
    ServerOutOfRange {
        /// The offending index.
        server: usize,
        /// Servers per rack.
        servers: usize,
    },
    /// A fault parameter was rejected (non-finite or out of `[0, 1]`).
    InvalidFault {
        /// Description of the problem.
        what: &'static str,
    },
    /// The air-side thermal network rejected an operation.
    Air(ThermalError),
    /// A checkpoint does not match the room it is being restored into.
    CheckpointMismatch {
        /// Description of the mismatch.
        what: String,
    },
}

impl fmt::Display for RoomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::RackOutOfRange { rack, racks } => {
                write!(f, "rack index {rack} out of range for {racks} racks")
            }
            Self::ServerOutOfRange { server, servers } => {
                write!(
                    f,
                    "server index {server} out of range for {servers} servers per rack"
                )
            }
            Self::InvalidFault { what } => write!(f, "invalid fault parameter: {what}"),
            Self::Air(e) => write!(f, "room air model: {e}"),
            Self::CheckpointMismatch { what } => write!(f, "checkpoint mismatch: {what}"),
        }
    }
}

impl std::error::Error for RoomError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Air(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ThermalError> for RoomError {
    fn from(e: ThermalError) -> Self {
        Self::Air(e)
    }
}

impl From<RoomError> for CoreError {
    fn from(e: RoomError) -> Self {
        Self::Room(e)
    }
}

/// Errors raised when constructing or driving a room controller with
/// invalid configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlError {
    /// A set-point LUT had no entries.
    EmptyLut,
    /// A set-point LUT entry had a non-finite load bound.
    NonFiniteLutLoad,
    /// An MPC controller was configured with no supply candidates.
    NoCandidates,
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyLut => write!(f, "set-point LUT has no entries"),
            Self::NonFiniteLutLoad => write!(f, "set-point LUT entry has a non-finite load bound"),
            Self::NoCandidates => write!(f, "MPC controller has no supply candidates"),
        }
    }
}

impl std::error::Error for ControlError {}

impl From<ControlError> for CoreError {
    fn from(e: ControlError) -> Self {
        Self::Control(e)
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Platform(e) => write!(f, "platform: {e}"),
            Self::Fit(e) => write!(f, "fitting: {e}"),
            Self::LutBuild(e) => write!(f, "LUT build: {e}"),
            Self::Profile(e) => write!(f, "profile: {e}"),
            Self::Invalid { what } => write!(f, "invalid pipeline input: {what}"),
            Self::Room(e) => write!(f, "room: {e}"),
            Self::Building(e) => write!(f, "building: {e}"),
            Self::Control(e) => write!(f, "control: {e}"),
            Self::Placement(e) => write!(f, "placement: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Platform(e) => Some(e),
            Self::Fit(e) => Some(e),
            Self::LutBuild(e) => Some(e),
            Self::Profile(e) => Some(e),
            Self::Invalid { .. } => None,
            Self::Room(e) => Some(e),
            Self::Building(e) => Some(e),
            Self::Control(e) => Some(e),
            Self::Placement(e) => Some(e),
        }
    }
}

impl From<PlatformError> for CoreError {
    fn from(e: PlatformError) -> Self {
        Self::Platform(e)
    }
}

impl From<FitError> for CoreError {
    fn from(e: FitError) -> Self {
        Self::Fit(e)
    }
}

impl From<LutBuildError> for CoreError {
    fn from(e: LutBuildError) -> Self {
        Self::LutBuild(e)
    }
}

impl From<ProfileError> for CoreError {
    fn from(e: ProfileError) -> Self {
        Self::Profile(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::Invalid {
            what: "bad input".into(),
        };
        assert!(e.to_string().contains("bad input"));
        assert!(std::error::Error::source(&e).is_none());

        let e: CoreError = FitError::Degenerate.into();
        assert!(e.to_string().contains("fitting"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
