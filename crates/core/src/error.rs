//! Core pipeline error type.

use core::fmt;

use leakctl_control::LutBuildError;
use leakctl_platform::PlatformError;
use leakctl_power::fit::FitError;
use leakctl_workload::ProfileError;

/// Errors produced by the characterization / fitting / evaluation
/// pipeline.
#[derive(Debug)]
pub enum CoreError {
    /// The digital twin failed.
    Platform(PlatformError),
    /// Model fitting failed.
    Fit(FitError),
    /// LUT generation failed.
    LutBuild(LutBuildError),
    /// A workload profile was invalid.
    Profile(ProfileError),
    /// The pipeline was driven with inconsistent inputs.
    Invalid {
        /// Description of the problem.
        what: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Platform(e) => write!(f, "platform: {e}"),
            Self::Fit(e) => write!(f, "fitting: {e}"),
            Self::LutBuild(e) => write!(f, "LUT build: {e}"),
            Self::Profile(e) => write!(f, "profile: {e}"),
            Self::Invalid { what } => write!(f, "invalid pipeline input: {what}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Platform(e) => Some(e),
            Self::Fit(e) => Some(e),
            Self::LutBuild(e) => Some(e),
            Self::Profile(e) => Some(e),
            Self::Invalid { .. } => None,
        }
    }
}

impl From<PlatformError> for CoreError {
    fn from(e: PlatformError) -> Self {
        Self::Platform(e)
    }
}

impl From<FitError> for CoreError {
    fn from(e: FitError) -> Self {
        Self::Fit(e)
    }
}

impl From<LutBuildError> for CoreError {
    fn from(e: LutBuildError) -> Self {
        Self::LutBuild(e)
    }
}

impl From<ProfileError> for CoreError {
    fn from(e: ProfileError) -> Self {
        Self::Profile(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::Invalid {
            what: "bad input".into(),
        };
        assert!(e.to_string().contains("bad input"));
        assert!(std::error::Error::source(&e).is_none());

        let e: CoreError = FitError::Degenerate.into();
        assert!(e.to_string().contains("fitting"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
