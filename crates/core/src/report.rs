//! Plain-text rendering: ASCII tables and quick line charts for the
//! reproduction binaries and examples.

/// Renders an ASCII table with a header row.
///
/// Column widths adapt to the longest cell; all columns are left-
/// aligned except those whose header ends with `)` or that look
/// numeric, which are right-aligned.
///
/// # Example
///
/// ```
/// use leakctl::report::ascii_table;
///
/// let out = ascii_table(
///     &["Test", "Energy (kWh)"],
///     &[vec!["Test-1".into(), "0.6695".into()]],
/// );
/// assert!(out.contains("Test-1"));
/// assert!(out.contains('|'));
/// ```
#[must_use]
pub fn ascii_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let right_align: Vec<bool> = headers
        .iter()
        .map(|h| h.ends_with(')') || h.chars().any(|c| c.is_ascii_digit()))
        .collect();

    let mut out = String::new();
    let sep = |out: &mut String| {
        out.push('+');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('+');
        }
        out.push('\n');
    };
    let emit_row = |out: &mut String, cells: &[String]| {
        out.push('|');
        for i in 0..cols {
            let cell = cells.get(i).map_or("", String::as_str);
            if right_align[i] {
                out.push_str(&format!(" {:>width$} |", cell, width = widths[i]));
            } else {
                out.push_str(&format!(" {:<width$} |", cell, width = widths[i]));
            }
        }
        out.push('\n');
    };

    sep(&mut out);
    emit_row(
        &mut out,
        &headers.iter().map(|h| (*h).to_owned()).collect::<Vec<_>>(),
    );
    sep(&mut out);
    for row in rows {
        emit_row(&mut out, row);
    }
    sep(&mut out);
    out
}

/// A labeled series for [`ascii_chart`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChartSeries {
    /// Legend label; the first character is used as the plot glyph.
    pub label: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

/// Renders labeled series as a fixed-size ASCII line chart — enough to
/// eyeball the shape of Fig. 1/Fig. 3 reproductions in a terminal.
///
/// # Example
///
/// ```
/// use leakctl::report::{ascii_chart, ChartSeries};
///
/// let s = ChartSeries {
///     label: "A".into(),
///     points: (0..50).map(|i| (f64::from(i), f64::from(i) * 0.5)).collect(),
/// };
/// let plot = ascii_chart(&[s], 40, 10);
/// assert!(plot.contains('A'));
/// ```
#[must_use]
pub fn ascii_chart(series: &[ChartSeries], width: usize, height: usize) -> String {
    let width = width.max(10);
    let height = height.max(4);
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if all.is_empty() {
        return String::from("(no data)\n");
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for (x, y) in &all {
        x_min = x_min.min(*x);
        x_max = x_max.max(*x);
        y_min = y_min.min(*y);
        y_max = y_max.max(*y);
    }
    if (x_max - x_min).abs() < 1e-12 {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        let glyph = s.label.chars().next().unwrap_or('*');
        for (x, y) in &s.points {
            if !(x.is_finite() && y.is_finite()) {
                continue;
            }
            let cx = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
            let cy = (((y - y_min) / (y_max - y_min)) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{y_max:>8.1} ┤"));
    out.push_str(&grid[0].iter().collect::<String>());
    out.push('\n');
    for row in &grid[1..height - 1] {
        out.push_str("         │");
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!("{y_min:>8.1} ┤"));
    out.push_str(&grid[height - 1].iter().collect::<String>());
    out.push('\n');
    out.push_str("         └");
    out.push_str(&"─".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "          {x_min:<10.1}{:>width$.1}\n",
        x_max,
        width = width.saturating_sub(10)
    ));
    for s in series {
        let glyph = s.label.chars().next().unwrap_or('*');
        out.push_str(&format!("          {glyph} = {}\n", s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_all_cells() {
        let out = ascii_table(
            &["Name", "Value (W)"],
            &[
                vec!["alpha".into(), "1.5".into()],
                vec!["beta".into(), "22.0".into()],
            ],
        );
        assert!(out.contains("alpha"));
        assert!(out.contains("22.0"));
        assert!(out.contains("Value (W)"));
        // Header + 2 rows + 3 separators = 6 lines.
        assert_eq!(out.lines().count(), 6);
    }

    #[test]
    fn table_handles_ragged_rows() {
        let out = ascii_table(&["A", "B"], &[vec!["only".into()]]);
        assert!(out.contains("only"));
    }

    #[test]
    fn chart_renders_extremes() {
        let s = ChartSeries {
            label: "T".into(),
            points: vec![(0.0, 40.0), (45.0, 86.0)],
        };
        let out = ascii_chart(&[s], 60, 12);
        assert!(out.contains("86.0"));
        assert!(out.contains("40.0"));
        assert!(out.contains('T'));
    }

    #[test]
    fn chart_empty_series_safe() {
        assert_eq!(ascii_chart(&[], 40, 10), "(no data)\n");
        let nan_series = ChartSeries {
            label: "N".into(),
            points: vec![(f64::NAN, f64::NAN)],
        };
        assert_eq!(ascii_chart(&[nan_series], 40, 10), "(no data)\n");
    }

    #[test]
    fn chart_constant_series_safe() {
        let s = ChartSeries {
            label: "C".into(),
            points: vec![(0.0, 5.0), (10.0, 5.0)],
        };
        let out = ascii_chart(&[s], 30, 8);
        assert!(out.contains('C'));
    }
}
