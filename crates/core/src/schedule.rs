//! Thermal-aware job scheduling: *where* work runs, co-optimized with
//! the cooling loop that decides *how cold* the room runs.
//!
//! The paper's control layer ([`crate::control`]) only moves the
//! cooling side of the energy balance — supply set-points, tile flows,
//! fan floors. This module adds the computing side: a typed
//! workload-placement API ([`PlacementAction`] through
//! [`Room::apply_placement`]) and a scheduler layer that decides the
//! per-rack placement a [`Room`] runs. Because leakage grows
//! exponentially with die temperature and the floor's tile-flow
//! distribution leaves far corners inlet-starved, *where* a job lands
//! changes both the IT energy (leakage) and the CRAH energy (the
//! hot-spot that pins the supply set-point) — the joint
//! computing+cooling lever of Arroba et al. and Van Damme et al.
//!
//! Three policies ship:
//!
//! - [`RoundRobinScheduler`] — the thermally-blind baseline: next free
//!   rack in cyclic order.
//! - [`ThermalGreedyScheduler`] — coldest-first marginal-leakage
//!   placement: each job lands on the feasible rack (free slot, die
//!   margin, power budget) where it adds the least projected leakage.
//! - [`LocalSearchScheduler`] — a metaheuristic refinement pass à la
//!   Arroba et al.: seeds from the greedy solution, then applies
//!   best-improvement relocation moves until the projected leakage
//!   cost stops falling.
//!
//! [`ScheduledLoop`] co-runs a [`RoomScheduler`] and a
//! [`RoomController`] against one [`Room`] in a single deterministic
//! loop: both decide in the serial section between steps, so the
//! trajectory is bit-identical for any `LEAKCTL_THREADS` plan, like
//! every other layer.
//!
//! # Example
//!
//! ```
//! use leakctl::room::{Room, RoomConfig};
//! use leakctl::schedule::{
//!     JobStream, JobStreamConfig, RoundRobinScheduler, ScheduledLoop,
//! };
//! use leakctl::control::FixedSupplyController;
//! use leakctl_units::{Celsius, SimDuration};
//!
//! # fn main() -> Result<(), leakctl::CoreError> {
//! let mut room = Room::new(RoomConfig::new(1, 2, 4))?;
//! let stream = JobStream::generate(JobStreamConfig::new(0.05, 42))?;
//! let mut the_loop = ScheduledLoop::new(stream);
//! let mut scheduler = RoundRobinScheduler::new(SimDuration::from_secs(10));
//! let mut controller = FixedSupplyController::new(Celsius::new(18.0));
//! let stats = the_loop.run(
//!     &mut room,
//!     &mut scheduler,
//!     &mut controller,
//!     SimDuration::from_secs(1),
//!     60,
//! )?;
//! assert_eq!(stats.placed + stats.rejected, stats.sched_assignments);
//! # Ok(())
//! # }
//! ```

use leakctl_power::EmpiricalLeakage;
use leakctl_sim::SimRng;
use leakctl_units::{Celsius, SimDuration, Utilization, Watts};

use crate::control::{RoomController, RoomObservation};
use crate::error::CoreError;
use crate::room::Room;

// ---------------------------------------------------------------------------
// Placement action
// ---------------------------------------------------------------------------

/// A validated, atomically applied workload placement: one utilization
/// fraction per rack, plus (optionally) one power budget per rack —
/// the placement-side twin of
/// [`ControlAction`](crate::control::ControlAction).
///
/// [`Room::apply_placement`] validates the whole action first and only
/// then touches the room, so a rejected placement never leaves it
/// half-placed. Utilizations are carried as raw fractions so
/// validation happens at the commit boundary (finite, within
/// `[0, 1]`, one per rack) instead of silently saturating upstream.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementAction {
    /// Commanded per-rack utilization fractions, rack order.
    pub utilizations: Vec<f64>,
    /// Per-rack power budgets (`None`: hold the room's current
    /// budgets; inner `None`: that rack runs unbudgeted).
    pub power_budgets: Option<Vec<Option<Watts>>>,
}

impl PlacementAction {
    /// Every rack at the same fraction, budgets held.
    #[must_use]
    pub fn uniform(racks: usize, fraction: f64) -> Self {
        Self {
            utilizations: vec![fraction; racks],
            power_budgets: None,
        }
    }

    /// A placement from per-rack fractions, budgets held.
    #[must_use]
    pub fn from_fractions(utilizations: Vec<f64>) -> Self {
        Self {
            utilizations,
            power_budgets: None,
        }
    }

    /// A placement from already-validated utilizations, budgets held.
    #[must_use]
    pub fn from_utilizations(utilizations: &[Utilization]) -> Self {
        Self {
            utilizations: utilizations.iter().map(|u| u.as_fraction()).collect(),
            power_budgets: None,
        }
    }

    /// Attaches per-rack power budgets (see
    /// [`power_budgets`](Self::power_budgets)).
    #[must_use]
    pub fn with_power_budgets(mut self, budgets: Vec<Option<Watts>>) -> Self {
        self.power_budgets = Some(budgets);
        self
    }

    /// Number of racks this placement commands.
    #[must_use]
    pub fn racks(&self) -> usize {
        self.utilizations.len()
    }
}

// ---------------------------------------------------------------------------
// Jobs and job streams
// ---------------------------------------------------------------------------

/// One unit of work: occupies one server slot on whichever rack the
/// scheduler picks, driving that slot at `utilization` from `arrival`
/// for `duration`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Job {
    /// Submission time (simulated, measured on the scheduled loop's
    /// own clock).
    pub arrival: SimDuration,
    /// Run length once placed.
    pub duration: SimDuration,
    /// Per-slot utilization while running.
    pub utilization: Utilization,
}

/// Parameters of the seeded synthetic [`JobStream`] generator:
/// Poisson arrivals (exponential inter-arrival times), exponential
/// service times above a floor, and uniformly distributed per-job
/// utilization — the standard trace shape of cloud scheduling studies.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStreamConfig {
    /// Mean arrival rate, jobs per simulated second.
    pub arrival_rate: f64,
    /// Mean job duration (must exceed
    /// [`min_duration`](Self::min_duration)).
    pub mean_duration: SimDuration,
    /// Shortest possible job.
    pub min_duration: SimDuration,
    /// Per-job utilization is uniform in
    /// `[utilization_lo, utilization_hi]`.
    pub utilization_lo: f64,
    /// Upper utilization bound.
    pub utilization_hi: f64,
    /// Generator seed: the same seed replays the same trace exactly.
    pub seed: u64,
}

impl JobStreamConfig {
    /// A churny default: `arrival_rate` jobs/s, ten-minute mean
    /// duration with a one-minute floor, utilization uniform in
    /// `[0.5, 1.0]`.
    #[must_use]
    pub fn new(arrival_rate: f64, seed: u64) -> Self {
        Self {
            arrival_rate,
            mean_duration: SimDuration::from_mins(10),
            min_duration: SimDuration::from_mins(1),
            utilization_lo: 0.5,
            utilization_hi: 1.0,
            seed,
        }
    }

    fn validate(&self) -> Result<(), CoreError> {
        let invalid = |what: &str| CoreError::Invalid {
            what: what.to_owned(),
        };
        if !(self.arrival_rate.is_finite() && self.arrival_rate > 0.0) {
            return Err(invalid("job arrival rate must be positive"));
        }
        if self.mean_duration <= self.min_duration {
            return Err(invalid("mean job duration must exceed the minimum"));
        }
        let lo = self.utilization_lo;
        let hi = self.utilization_hi;
        if !(lo.is_finite() && hi.is_finite() && (0.0..=1.0).contains(&lo) && lo <= hi && hi <= 1.0)
        {
            return Err(invalid(
                "job utilization range must satisfy 0 <= lo <= hi <= 1",
            ));
        }
        Ok(())
    }
}

#[derive(Debug)]
enum StreamSource {
    /// An explicit trace, consumed front to back.
    Trace(std::vec::IntoIter<Job>),
    /// The seeded synthetic generator.
    Generator {
        config: JobStreamConfig,
        arrivals: SimRng,
        durations: SimRng,
        utilizations: SimRng,
        /// Running arrival clock, seconds.
        clock: f64,
    },
}

/// A trace-driven stream of [`Job`]s in arrival order — either an
/// explicit trace or the seeded deterministic generator
/// ([`JobStreamConfig`]). Pull-based: [`JobStream::pop_arrived`] hands
/// the scheduled loop every job that has arrived by `now`.
#[derive(Debug)]
pub struct JobStream {
    source: StreamSource,
    /// One-job lookahead so arrival checks never consume the source.
    next: Option<Job>,
}

impl JobStream {
    /// A stream replaying `jobs` (sorted by arrival on construction,
    /// stable for equal arrivals).
    #[must_use]
    pub fn from_trace(mut jobs: Vec<Job>) -> Self {
        jobs.sort_by_key(|j| j.arrival);
        let mut source = StreamSource::Trace(jobs.into_iter());
        let next = Self::pull(&mut source);
        Self { source, next }
    }

    /// A seeded synthetic stream (see [`JobStreamConfig`]). The same
    /// config replays the same trace bit-for-bit: arrivals, durations
    /// and utilizations come from independent forked
    /// [`SimRng`] streams with no wall-clock anywhere.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Invalid`] for a non-positive rate, a mean
    /// duration at or below the floor, or a malformed utilization
    /// range.
    pub fn generate(config: JobStreamConfig) -> Result<Self, CoreError> {
        config.validate()?;
        let mut root = SimRng::seed(config.seed);
        let mut source = StreamSource::Generator {
            arrivals: root.fork("jobstream-arrivals"),
            durations: root.fork("jobstream-durations"),
            utilizations: root.fork("jobstream-utilizations"),
            config,
            clock: 0.0,
        };
        let next = Self::pull(&mut source);
        Ok(Self { source, next })
    }

    /// The next job's arrival time, if the stream is not exhausted
    /// (generated streams never are).
    #[must_use]
    pub fn peek_arrival(&self) -> Option<SimDuration> {
        self.next.map(|j| j.arrival)
    }

    /// Moves every job with `arrival <= now` into `out` (appended in
    /// arrival order).
    pub fn pop_arrived(&mut self, now: SimDuration, out: &mut Vec<Job>) {
        while let Some(job) = self.next {
            if job.arrival > now {
                break;
            }
            out.push(job);
            self.next = Self::pull(&mut self.source);
        }
    }

    fn pull(source: &mut StreamSource) -> Option<Job> {
        match source {
            StreamSource::Trace(iter) => iter.next(),
            StreamSource::Generator {
                config,
                arrivals,
                durations,
                utilizations,
                clock,
            } => {
                *clock += arrivals.next_exponential(config.arrival_rate);
                let min_s = config.min_duration.as_secs_f64();
                let extra_mean = config.mean_duration.as_secs_f64() - min_s;
                let duration = min_s + durations.next_exponential(1.0 / extra_mean);
                let span = config.utilization_hi - config.utilization_lo;
                let util = config.utilization_lo + utilizations.next_f64() * span;
                Some(Job {
                    arrival: SimDuration::from_secs_f64(*clock),
                    duration: SimDuration::from_secs_f64(duration),
                    utilization: Utilization::saturating_from_fraction(util),
                })
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Load bookkeeping
// ---------------------------------------------------------------------------

/// The occupancy view a [`RoomScheduler`] places against: per-rack
/// slot counts and resident demand, maintained by the
/// [`ScheduledLoop`] as jobs start and finish.
#[derive(Debug, Clone)]
pub struct RackLoads {
    /// Server slots per rack (uniform across the floor).
    servers_per_rack: usize,
    /// Occupied slots per rack.
    slots: Vec<usize>,
    /// Resident demand per rack, in server-equivalents (the sum of
    /// resident jobs' utilization fractions).
    demand: Vec<f64>,
}

impl RackLoads {
    /// An empty floor of `racks` racks of `servers_per_rack` slots.
    #[must_use]
    pub fn new(racks: usize, servers_per_rack: usize) -> Self {
        Self {
            servers_per_rack,
            slots: vec![0; racks],
            demand: vec![0.0; racks],
        }
    }

    /// Number of racks.
    #[must_use]
    pub fn racks(&self) -> usize {
        self.slots.len()
    }

    /// Server slots per rack.
    #[must_use]
    pub fn servers_per_rack(&self) -> usize {
        self.servers_per_rack
    }

    /// Free slots on rack `rack`.
    #[must_use]
    pub fn free_slots(&self, rack: usize) -> usize {
        self.servers_per_rack.saturating_sub(self.slots[rack])
    }

    /// Occupied slots on rack `rack`.
    #[must_use]
    pub fn used_slots(&self, rack: usize) -> usize {
        self.slots[rack]
    }

    /// Resident demand on rack `rack`, in server-equivalents.
    #[must_use]
    pub fn demand(&self, rack: usize) -> f64 {
        self.demand[rack]
    }

    /// Rack `rack`'s demand as a utilization fraction of its capacity.
    #[must_use]
    pub fn utilization(&self, rack: usize) -> f64 {
        (self.demand[rack] / self.servers_per_rack.max(1) as f64).clamp(0.0, 1.0)
    }

    fn start(&mut self, rack: usize, job: &Job) {
        self.slots[rack] += 1;
        self.demand[rack] += job.utilization.as_fraction();
    }

    fn finish(&mut self, rack: usize, job_utilization: f64) {
        self.slots[rack] = self.slots[rack].saturating_sub(1);
        // Subtractive churn cannot push a rack's demand negative.
        self.demand[rack] = (self.demand[rack] - job_utilization).max(0.0);
    }
}

// ---------------------------------------------------------------------------
// Scheduler traits
// ---------------------------------------------------------------------------

/// Rack-level admission: turns one rack's resident demand into the
/// activity its fleet is commanded to run. The seam where a rack-local
/// policy (fair-share, frequency capping, slot consolidation) plugs in
/// under any room-level placement policy.
pub trait RackScheduler {
    /// Policy name for reports.
    fn name(&self) -> &str;

    /// Commanded activity fraction for a rack holding `demand`
    /// server-equivalents of work across `servers` slots. Must return
    /// a finite fraction in `[0, 1]` — the scheduled loop feeds it
    /// straight into a [`PlacementAction`].
    fn activity(&self, demand: f64, servers: usize) -> f64;
}

/// The default [`RackScheduler`]: demand spread evenly over the
/// rack's servers (every slot runs the rack's mean utilization, the
/// granularity of [`Room`]'s per-rack fleet stepping).
#[derive(Debug, Clone, Copy, Default)]
pub struct FairShareRack;

impl RackScheduler for FairShareRack {
    fn name(&self) -> &str {
        "fair-share"
    }

    fn activity(&self, demand: f64, servers: usize) -> f64 {
        (demand / servers.max(1) as f64).clamp(0.0, 1.0)
    }
}

/// Room-level placement policy: every
/// [`decision_period`](Self::decision_period) the [`ScheduledLoop`]
/// hands it the queue of pending jobs, the current occupancy and a
/// fresh [`RoomObservation`], and it returns one rack assignment (or
/// `None`: stay queued) per pending job.
///
/// The loop re-validates every assignment (rack in range, free slot)
/// and rejects infeasible ones deterministically, so a policy bug
/// cannot oversubscribe a rack.
pub trait RoomScheduler {
    /// Policy name for reports.
    fn name(&self) -> &str;

    /// How often the policy re-plans; between decisions the resident
    /// placement keeps driving the floor.
    fn decision_period(&self) -> SimDuration;

    /// One assignment per entry of `pending`: `Some(rack)` places the
    /// job now, `None` leaves it queued for the next decision.
    fn place(
        &mut self,
        obs: &RoomObservation,
        pending: &[Job],
        loads: &RackLoads,
    ) -> Vec<Option<usize>>;

    /// Clears internal state before a fresh run.
    fn reset(&mut self) {}
}

// ---------------------------------------------------------------------------
// Round-robin baseline
// ---------------------------------------------------------------------------

/// The thermally-blind baseline: each job goes to the next rack in
/// cyclic order with a free slot. Spreads work uniformly — including
/// into the inlet-starved far corners a thermal-aware policy avoids.
#[derive(Debug, Clone)]
pub struct RoundRobinScheduler {
    period: SimDuration,
    cursor: usize,
}

impl RoundRobinScheduler {
    /// A round-robin policy deciding every `period`.
    #[must_use]
    pub fn new(period: SimDuration) -> Self {
        Self { period, cursor: 0 }
    }
}

impl RoomScheduler for RoundRobinScheduler {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn decision_period(&self) -> SimDuration {
        self.period
    }

    fn place(
        &mut self,
        _obs: &RoomObservation,
        pending: &[Job],
        loads: &RackLoads,
    ) -> Vec<Option<usize>> {
        let racks = loads.racks();
        let mut free: Vec<usize> = (0..racks).map(|r| loads.free_slots(r)).collect();
        pending
            .iter()
            .map(|_| {
                for k in 0..racks {
                    let r = (self.cursor + k) % racks;
                    if free[r] > 0 {
                        free[r] -= 1;
                        self.cursor = (r + 1) % racks;
                        return Some(r);
                    }
                }
                None
            })
            .collect()
    }

    fn reset(&mut self) {
        self.cursor = 0;
    }
}

// ---------------------------------------------------------------------------
// Thermal-greedy policy
// ---------------------------------------------------------------------------

/// Tuning for [`ThermalGreedyScheduler`] (shared by
/// [`LocalSearchScheduler`], which refines the same cost model).
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalGreedyConfig {
    /// Decision period.
    pub period: SimDuration,
    /// Projected hottest-die rise per unit of added rack utilization
    /// (°C per fraction) — the first-order thermal response the cost
    /// model plans with. The paper twin rises ≈ 30 °C from idle to
    /// full at the bench fan floor.
    pub die_rise: f64,
    /// Leakage curve the marginal-cost ranking uses.
    pub leakage: EmpiricalLeakage,
    /// Per-rack projected power ceiling (`None`: unbudgeted). A job is
    /// only placed where current rack power plus its projected draw
    /// stays under the ceiling.
    pub power_budget: Option<Watts>,
    /// Projected active power of one full-utilization job, for the
    /// budget headroom check.
    pub job_power: Watts,
    /// Safety margin (°C) kept below the observed
    /// [`die_limit`](crate::control::RoomObservation::die_limit) when
    /// projecting: a job is not placed where it would push the
    /// projected hottest die within this margin of the cap.
    pub margin: f64,
}

impl ThermalGreedyConfig {
    /// Paper-shaped defaults: 15 s decisions, 30 °C full-swing die
    /// rise, the paper's fitted leakage curve, no power budget, a
    /// 230 W per-job projection and a 1 °C planning margin.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            period: SimDuration::from_secs(15),
            die_rise: 30.0,
            leakage: EmpiricalLeakage::paper_fit(),
            power_budget: None,
            job_power: Watts::new(230.0),
            margin: 1.0,
        }
    }
}

/// Coldest-first, leakage-aware greedy placement: each pending job
/// lands on the feasible rack where it adds the least projected
/// leakage power. Because leakage is convex in temperature, the
/// marginal cost of a rack grows as it fills and warms, so the policy
/// self-balances: it packs the coldest (best-supplied) racks first and
/// spills toward warmer ones as projected margins shrink.
///
/// Feasibility per rack: a free slot, projected hottest die at least
/// [`margin`](ThermalGreedyConfig::margin) under the observed cap, and
/// (when budgeted) projected power under the ceiling. Jobs with no
/// feasible rack stay queued.
#[derive(Debug, Clone)]
pub struct ThermalGreedyScheduler {
    config: ThermalGreedyConfig,
}

impl ThermalGreedyScheduler {
    /// A greedy policy with `config`.
    #[must_use]
    pub fn new(config: ThermalGreedyConfig) -> Self {
        Self { config }
    }

    /// The config in force.
    #[must_use]
    pub fn config(&self) -> &ThermalGreedyConfig {
        &self.config
    }
}

/// Per-rack projection state shared by the greedy pass and the
/// local-search refinement.
#[derive(Debug, Clone)]
struct Projection {
    /// Free slots per rack.
    free: Vec<usize>,
    /// Projected hottest die per rack (°C).
    die: Vec<f64>,
    /// Projected IT power per rack (W).
    power: Vec<f64>,
    /// Observed thermal cap (°C).
    die_limit: f64,
}

impl Projection {
    fn new(obs: &RoomObservation, loads: &RackLoads) -> Self {
        let racks = loads.racks();
        Self {
            free: (0..racks).map(|r| loads.free_slots(r)).collect(),
            die: (0..racks)
                .map(|r| obs.rack_die_max.get(r).map_or(0.0, |c| c.degrees()))
                .collect(),
            power: (0..racks)
                .map(|r| obs.rack_it_power.get(r).map_or(0.0, |p| p.value()))
                .collect(),
            die_limit: obs.die_limit.degrees(),
        }
    }

    /// The projected die rise of adding `job` to a rack.
    fn rise(&self, cfg: &ThermalGreedyConfig, loads: &RackLoads, job: &Job) -> f64 {
        cfg.die_rise * job.utilization.as_fraction() / loads.servers_per_rack().max(1) as f64
    }

    fn feasible(&self, cfg: &ThermalGreedyConfig, rack: usize, rise: f64, job: &Job) -> bool {
        if self.free[rack] == 0 {
            return false;
        }
        if self.die[rack] + rise > self.die_limit - cfg.margin {
            return false;
        }
        if let Some(budget) = cfg.power_budget {
            let projected =
                self.power[rack] + job.utilization.as_fraction() * cfg.job_power.value();
            if projected > budget.value() {
                return false;
            }
        }
        true
    }

    /// Marginal leakage (W) of warming a whole rack by `rise` from its
    /// projected die temperature — the greedy ranking key. Convex in
    /// temperature, so warm racks price themselves out.
    fn marginal_leakage(
        &self,
        cfg: &ThermalGreedyConfig,
        loads: &RackLoads,
        rack: usize,
        rise: f64,
    ) -> f64 {
        let spr = loads.servers_per_rack() as f64;
        let before = cfg.leakage.power(Celsius::new(self.die[rack])).value();
        let after = cfg
            .leakage
            .power(Celsius::new(self.die[rack] + rise))
            .value();
        spr * (after - before)
    }

    fn commit(&mut self, cfg: &ThermalGreedyConfig, rack: usize, rise: f64, job: &Job) {
        self.free[rack] -= 1;
        self.die[rack] += rise;
        self.power[rack] += job.utilization.as_fraction() * cfg.job_power.value();
    }

    fn uncommit(&mut self, cfg: &ThermalGreedyConfig, rack: usize, rise: f64, job: &Job) {
        self.free[rack] += 1;
        self.die[rack] -= rise;
        self.power[rack] -= job.utilization.as_fraction() * cfg.job_power.value();
    }
}

fn greedy_place(
    cfg: &ThermalGreedyConfig,
    obs: &RoomObservation,
    pending: &[Job],
    loads: &RackLoads,
) -> (Vec<Option<usize>>, Projection) {
    let mut proj = Projection::new(obs, loads);
    let racks = loads.racks();
    let assignments = pending
        .iter()
        .map(|job| {
            let rise = proj.rise(cfg, loads, job);
            let mut best: Option<(usize, f64)> = None;
            for r in 0..racks {
                if !proj.feasible(cfg, r, rise, job) {
                    continue;
                }
                let cost = proj.marginal_leakage(cfg, loads, r, rise);
                if best.is_none_or(|(_, b)| cost < b) {
                    best = Some((r, cost));
                }
            }
            best.map(|(r, _)| {
                proj.commit(cfg, r, rise, job);
                r
            })
        })
        .collect();
    (assignments, proj)
}

impl RoomScheduler for ThermalGreedyScheduler {
    fn name(&self) -> &str {
        "thermal-greedy"
    }

    fn decision_period(&self) -> SimDuration {
        self.config.period
    }

    fn place(
        &mut self,
        obs: &RoomObservation,
        pending: &[Job],
        loads: &RackLoads,
    ) -> Vec<Option<usize>> {
        greedy_place(&self.config, obs, pending, loads).0
    }
}

// ---------------------------------------------------------------------------
// Local-search metaheuristic
// ---------------------------------------------------------------------------

/// Metaheuristic refinement à la Arroba et al.: seeds from the greedy
/// solution, then runs best-improvement *relocation* local search —
/// each round evaluates moving every newly placed job to every other
/// feasible rack under the projected-leakage cost and applies the
/// single best strictly-improving move, until no move improves or
/// [`max_rounds`](Self::with_max_rounds) is hit.
///
/// The greedy pass is myopic (each job priced at placement time, in
/// queue order); relocation repairs the order-dependence, so the
/// refined solution's projected cost is never worse than the seed's.
/// Fully deterministic: moves are scanned in (job, rack) index order
/// and ties keep the incumbent.
#[derive(Debug, Clone)]
pub struct LocalSearchScheduler {
    config: ThermalGreedyConfig,
    max_rounds: usize,
}

impl LocalSearchScheduler {
    /// A local-search policy refining the greedy seed under `config`,
    /// with at most 32 improvement rounds per decision.
    #[must_use]
    pub fn new(config: ThermalGreedyConfig) -> Self {
        Self {
            config,
            max_rounds: 32,
        }
    }

    /// Caps the improvement rounds per decision.
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// The config in force.
    #[must_use]
    pub fn config(&self) -> &ThermalGreedyConfig {
        &self.config
    }
}

impl RoomScheduler for LocalSearchScheduler {
    fn name(&self) -> &str {
        "local-search"
    }

    fn decision_period(&self) -> SimDuration {
        self.config.period
    }

    fn place(
        &mut self,
        obs: &RoomObservation,
        pending: &[Job],
        loads: &RackLoads,
    ) -> Vec<Option<usize>> {
        let cfg = &self.config;
        let (mut assignments, mut proj) = greedy_place(cfg, obs, pending, loads);
        for _ in 0..self.max_rounds {
            // Best-improvement scan: the single (job, rack) relocation
            // with the largest projected-leakage drop this round.
            let mut best: Option<(usize, usize, f64)> = None;
            for (i, assigned) in assignments.iter().enumerate() {
                let Some(from) = *assigned else { continue };
                let job = &pending[i];
                let rise = proj.rise(cfg, loads, job);
                // Cost released by lifting the job off its rack.
                proj.uncommit(cfg, from, rise, job);
                let released = proj.marginal_leakage(cfg, loads, from, rise);
                for to in 0..loads.racks() {
                    if to == from || !proj.feasible(cfg, to, rise, job) {
                        continue;
                    }
                    let added = proj.marginal_leakage(cfg, loads, to, rise);
                    let delta = added - released;
                    if delta < -1e-9 && best.is_none_or(|(_, _, b)| delta < b) {
                        best = Some((i, to, delta));
                    }
                }
                proj.commit(cfg, from, rise, job);
            }
            let Some((i, to, _)) = best else { break };
            let job = &pending[i];
            let rise = proj.rise(cfg, loads, job);
            let from = assignments[i].unwrap_or(to);
            proj.uncommit(cfg, from, rise, job);
            proj.commit(cfg, to, rise, job);
            assignments[i] = Some(to);
        }
        assignments
    }
}

// ---------------------------------------------------------------------------
// The scheduled loop
// ---------------------------------------------------------------------------

/// Counters from a [`ScheduledLoop`] run (cumulative across chunked
/// [`run`](ScheduledLoop::run) calls).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleStats {
    /// Jobs pulled from the stream.
    pub submitted: u64,
    /// Jobs committed to a rack.
    pub placed: u64,
    /// Scheduler assignments the loop rejected as infeasible (bad rack
    /// index or no free slot at commit time); the jobs stayed queued.
    pub rejected: u64,
    /// Total assignments the scheduler returned (`Some` entries).
    pub sched_assignments: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Scheduler consultations.
    pub sched_decisions: u64,
    /// Controller consultations.
    pub ctrl_decisions: u64,
    /// Controller decisions that commanded a change.
    pub ctrl_applied: u64,
    /// Most jobs ever waiting in the queue after a decision.
    pub peak_pending: usize,
    /// Hottest die seen after any step.
    pub peak_die: Celsius,
}

impl Default for ScheduleStats {
    fn default() -> Self {
        Self {
            submitted: 0,
            placed: 0,
            rejected: 0,
            sched_assignments: 0,
            completed: 0,
            sched_decisions: 0,
            ctrl_decisions: 0,
            ctrl_applied: 0,
            peak_pending: 0,
            peak_die: Celsius::new(f64::NEG_INFINITY),
        }
    }
}

/// A job resident on a rack.
#[derive(Debug, Clone, Copy)]
struct ActiveJob {
    end: SimDuration,
    rack: usize,
    utilization: f64,
}

/// Co-runs a [`RoomScheduler`] and a [`RoomController`] against one
/// [`Room`] in a single deterministic loop — the scheduling equivalent
/// of [`Room::run_controlled`].
///
/// Each step, on the loop's own clock: finished jobs retire, newly
/// arrived jobs join the queue, the scheduler re-plans on its own
/// decision period (assignments are re-validated and committed
/// all-or-nothing per job), the refreshed placement is applied through
/// [`Room::apply_placement`], the controller decides on *its* period
/// exactly as in [`Room::run_controlled`], and the room advances with
/// [`Room::step_placed`]. All decisions happen in the serial section
/// between steps, so the trajectory is bit-identical for any
/// `LEAKCTL_THREADS` plan.
///
/// State (queue, resident jobs, clock, stats) persists across
/// [`run`](Self::run) calls, so a warm-up chunk and a measured chunk
/// compose like chunked [`Room::run_controlled`] calls.
#[derive(Debug)]
pub struct ScheduledLoop {
    stream: JobStream,
    admission: FairShareRack,
    pending: Vec<Job>,
    active: Vec<ActiveJob>,
    loads: Option<RackLoads>,
    now: SimDuration,
    since_sched: Option<SimDuration>,
    since_ctrl: Option<SimDuration>,
    stats: ScheduleStats,
    obs: RoomObservation,
    action: PlacementAction,
}

impl ScheduledLoop {
    /// A loop consuming `stream`, with fair-share rack admission.
    #[must_use]
    pub fn new(stream: JobStream) -> Self {
        Self {
            stream,
            admission: FairShareRack,
            pending: Vec::new(),
            active: Vec::new(),
            loads: None,
            now: SimDuration::ZERO,
            since_sched: None,
            since_ctrl: None,
            stats: ScheduleStats::default(),
            obs: RoomObservation::new(),
            action: PlacementAction::from_fractions(Vec::new()),
        }
    }

    /// Cumulative counters so far.
    #[must_use]
    pub fn stats(&self) -> &ScheduleStats {
        &self.stats
    }

    /// The loop's clock: simulated time scheduled so far (independent
    /// of [`Room::reset_accounting`], so arrival times stay stable
    /// across warm-up/measurement chunking).
    #[must_use]
    pub fn now(&self) -> SimDuration {
        self.now
    }

    /// Jobs currently waiting for a feasible rack.
    #[must_use]
    pub fn pending_jobs(&self) -> usize {
        self.pending.len()
    }

    /// Restarts peak tracking (hottest die, deepest queue) without
    /// touching the queue, the resident jobs or the clock — call
    /// between a warm-up chunk and the measured chunk so the reported
    /// peaks cover exactly the measured phase, the scheduling
    /// counterpart of [`Room::reset_accounting`].
    pub fn reset_peaks(&mut self) {
        self.stats.peak_die = Celsius::new(f64::NEG_INFINITY);
        self.stats.peak_pending = 0;
    }

    /// Jobs currently resident on racks.
    #[must_use]
    pub fn running_jobs(&self) -> usize {
        self.active.len()
    }

    /// Advances `room` by `steps` steps of `dt` under `scheduler` and
    /// `controller` (see the type docs for the per-step sequence).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Invalid`] for a zero `dt`, a scheduler
    /// returning the wrong number of assignments, or a rack-count
    /// change between calls; propagates apply/step failures.
    pub fn run(
        &mut self,
        room: &mut Room,
        scheduler: &mut dyn RoomScheduler,
        controller: &mut dyn RoomController,
        dt: SimDuration,
        steps: u64,
    ) -> Result<ScheduleStats, CoreError> {
        if dt.is_zero() {
            return Err(CoreError::Invalid {
                what: "scheduled runs need a positive step".to_owned(),
            });
        }
        let racks = room.racks();
        let loads = self
            .loads
            .get_or_insert_with(|| RackLoads::new(racks, room.servers() / racks.max(1)));
        if loads.racks() != racks {
            return Err(CoreError::Invalid {
                what: "scheduled loop reused across rooms of different size".to_owned(),
            });
        }
        let sched_period = scheduler.decision_period();
        let ctrl_period = controller.decision_period();
        for _ in 0..steps {
            // ---- retire finished jobs (their demand leaves the floor).
            let now = self.now;
            let loads = self.loads.as_mut().unwrap_or_else(|| unreachable!());
            let mut completed = 0;
            self.active.retain(|job| {
                if job.end <= now {
                    loads.finish(job.rack, job.utilization);
                    completed += 1;
                    false
                } else {
                    true
                }
            });
            self.stats.completed += completed;

            // ---- pull arrivals into the queue.
            let before = self.pending.len();
            self.stream.pop_arrived(now, &mut self.pending);
            self.stats.submitted += (self.pending.len() - before) as u64;

            // ---- scheduler decision on its own cadence (and at t=0).
            if self.since_sched.is_none_or(|s| s >= sched_period) {
                self.since_sched = Some(SimDuration::ZERO);
                self.stats.sched_decisions += 1;
                room.observe_into(&mut self.obs);
                let assignments = scheduler.place(&self.obs, &self.pending, loads);
                if assignments.len() != self.pending.len() {
                    return Err(CoreError::Invalid {
                        what: format!(
                            "scheduler `{}` returned {} assignments for {} pending jobs",
                            scheduler.name(),
                            assignments.len(),
                            self.pending.len()
                        ),
                    });
                }
                // Commit feasible assignments; infeasible ones are
                // rejected deterministically and the job stays queued.
                let mut kept = 0;
                for (i, assignment) in assignments.iter().enumerate() {
                    let job = self.pending[i];
                    match *assignment {
                        Some(rack) if rack < racks && loads.free_slots(rack) > 0 => {
                            self.stats.sched_assignments += 1;
                            self.stats.placed += 1;
                            loads.start(rack, &job);
                            self.active.push(ActiveJob {
                                end: now + job.duration,
                                rack,
                                utilization: job.utilization.as_fraction(),
                            });
                        }
                        Some(_) => {
                            self.stats.sched_assignments += 1;
                            self.stats.rejected += 1;
                            self.pending[kept] = job;
                            kept += 1;
                        }
                        None => {
                            self.pending[kept] = job;
                            kept += 1;
                        }
                    }
                }
                self.pending.truncate(kept);
                self.stats.peak_pending = self.stats.peak_pending.max(self.pending.len());
            }

            // ---- refresh the resident placement from the occupancy
            // (churn between decisions shows up here, not as decisions).
            self.action.utilizations.clear();
            let spr = loads.servers_per_rack();
            self.action.utilizations.extend((0..racks).map(|r| {
                self.admission
                    .activity(loads.demand(r), spr)
                    .clamp(0.0, 1.0)
            }));
            room.apply_placement(&self.action)?;

            // ---- cooling decision on the controller's own cadence.
            if self.since_ctrl.is_none_or(|s| s >= ctrl_period) {
                self.since_ctrl = Some(SimDuration::ZERO);
                self.stats.ctrl_decisions += 1;
                let action = room.decide(controller, &mut self.obs);
                if !action.is_hold() {
                    self.stats.ctrl_applied += 1;
                    room.apply(&action)?;
                }
            }

            // ---- advance.
            room.step_placed(dt)?;
            self.now += dt;
            if let Some(s) = self.since_sched.as_mut() {
                *s += dt;
            }
            if let Some(s) = self.since_ctrl.as_mut() {
                *s += dt;
            }
            self.stats.peak_die = self.stats.peak_die.max(room.max_die_temperature());
        }
        Ok(self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::FixedSupplyController;
    use crate::room::RoomConfig;

    fn job(arrival: u64, duration: u64, util: f64) -> Job {
        Job {
            arrival: SimDuration::from_secs(arrival),
            duration: SimDuration::from_secs(duration),
            utilization: Utilization::saturating_from_fraction(util),
        }
    }

    fn obs_for(racks: usize, die: &[f64]) -> RoomObservation {
        let mut obs = RoomObservation::new();
        obs.die_limit = Celsius::new(85.0);
        obs.rack_die_max = die.iter().map(|&d| Celsius::new(d)).collect();
        obs.rack_it_power = vec![Watts::new(1_000.0); racks];
        obs
    }

    #[test]
    fn generated_streams_replay_bit_identically() {
        let mut a = JobStream::generate(JobStreamConfig::new(0.5, 7)).unwrap();
        let mut b = JobStream::generate(JobStreamConfig::new(0.5, 7)).unwrap();
        let (mut ja, mut jb) = (Vec::new(), Vec::new());
        a.pop_arrived(SimDuration::from_mins(10), &mut ja);
        b.pop_arrived(SimDuration::from_mins(10), &mut jb);
        assert!(!ja.is_empty());
        assert_eq!(ja, jb);
        // Arrival order is monotone.
        assert!(ja.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        // A different seed is a different trace.
        let mut c = JobStream::generate(JobStreamConfig::new(0.5, 8)).unwrap();
        let mut jc = Vec::new();
        c.pop_arrived(SimDuration::from_mins(10), &mut jc);
        assert_ne!(ja, jc);
    }

    #[test]
    fn generator_rejects_malformed_configs() {
        let mut cfg = JobStreamConfig::new(0.0, 1);
        assert!(JobStream::generate(cfg.clone()).is_err());
        cfg.arrival_rate = 1.0;
        cfg.mean_duration = cfg.min_duration;
        assert!(JobStream::generate(cfg.clone()).is_err());
        cfg.mean_duration = SimDuration::from_mins(10);
        cfg.utilization_lo = 0.9;
        cfg.utilization_hi = 0.5;
        assert!(JobStream::generate(cfg).is_err());
    }

    #[test]
    fn trace_streams_sort_and_pop_in_arrival_order() {
        let mut s = JobStream::from_trace(vec![job(30, 60, 1.0), job(10, 60, 0.5)]);
        assert_eq!(s.peek_arrival(), Some(SimDuration::from_secs(10)));
        let mut out = Vec::new();
        s.pop_arrived(SimDuration::from_secs(20), &mut out);
        assert_eq!(out.len(), 1);
        s.pop_arrived(SimDuration::from_secs(40), &mut out);
        assert_eq!(out.len(), 2);
        assert!(s.peek_arrival().is_none());
    }

    #[test]
    fn round_robin_cycles_and_respects_capacity() {
        let mut rr = RoundRobinScheduler::new(SimDuration::from_secs(10));
        let mut loads = RackLoads::new(2, 1);
        let obs = obs_for(2, &[40.0, 40.0]);
        let pending = vec![job(0, 60, 1.0); 3];
        let got = rr.place(&obs, &pending, &loads);
        // Two racks of one slot each: third job has nowhere to go.
        assert_eq!(got, vec![Some(0), Some(1), None]);
        // A full rack is skipped.
        loads.start(0, &pending[0]);
        rr.reset();
        let got = rr.place(&obs, &pending[..1], &loads);
        assert_eq!(got, vec![Some(1)]);
    }

    #[test]
    fn greedy_prefers_the_coldest_rack_and_honors_margins() {
        let cfg = ThermalGreedyConfig::paper_default();
        let mut greedy = ThermalGreedyScheduler::new(cfg);
        let loads = RackLoads::new(3, 4);
        let obs = obs_for(3, &[70.0, 50.0, 60.0]);
        let got = greedy.place(&obs, &[job(0, 60, 1.0)], &loads);
        assert_eq!(got, vec![Some(1)], "coldest rack wins");
        // Every rack projected over the cap: the job stays queued.
        let hot = obs_for(3, &[84.9, 84.8, 84.7]);
        let got = greedy.place(&hot, &[job(0, 60, 1.0)], &loads);
        assert_eq!(got, vec![None]);
    }

    #[test]
    fn greedy_self_balances_as_racks_fill() {
        let cfg = ThermalGreedyConfig::paper_default();
        let mut greedy = ThermalGreedyScheduler::new(cfg);
        let loads = RackLoads::new(2, 2);
        let obs = obs_for(2, &[50.0, 51.0]);
        // Four full-load jobs on 2×2 slots, each warming its rack's
        // projection by 15 °C: placement alternates as the projected
        // temperatures leapfrog, instead of filling one rack first.
        let got = greedy.place(&obs, &[job(0, 60, 1.0); 4], &loads);
        assert_eq!(got, vec![Some(0), Some(1), Some(0), Some(1)]);
    }

    #[test]
    fn greedy_respects_power_budgets() {
        let mut cfg = ThermalGreedyConfig::paper_default();
        cfg.power_budget = Some(Watts::new(1_100.0));
        cfg.job_power = Watts::new(230.0);
        let mut greedy = ThermalGreedyScheduler::new(cfg);
        let loads = RackLoads::new(2, 4);
        // Both racks at 1000 W: one full job projects 1230 W > budget.
        let obs = obs_for(2, &[50.0, 60.0]);
        let got = greedy.place(&obs, &[job(0, 60, 1.0)], &loads);
        assert_eq!(got, vec![None]);
        // A light job (0.4 → 92 W) fits, on the colder rack.
        let got = greedy.place(&obs, &[job(0, 60, 0.4)], &loads);
        assert_eq!(got, vec![Some(0)]);
    }

    #[test]
    fn local_search_never_raises_the_projected_cost_of_the_seed() {
        let cfg = ThermalGreedyConfig::paper_default();
        let loads = RackLoads::new(4, 8);
        let obs = obs_for(4, &[55.0, 48.0, 62.0, 51.0]);
        let pending: Vec<Job> = (0..12)
            .map(|i| job(0, 60, 0.4 + 0.05 * f64::from(i)))
            .collect();
        let (seed_assign, _) = greedy_place(&cfg, &obs, &pending, &loads);
        let mut meta = LocalSearchScheduler::new(cfg.clone());
        let refined = meta.place(&obs, &pending, &loads);
        let cost = |assign: &[Option<usize>]| {
            let mut proj = Projection::new(&obs, &loads);
            let mut total = 0.0;
            for (i, a) in assign.iter().enumerate() {
                if let Some(r) = *a {
                    let rise = proj.rise(&cfg, &loads, &pending[i]);
                    total += proj.marginal_leakage(&cfg, &loads, r, rise);
                    proj.commit(&cfg, r, rise, &pending[i]);
                }
            }
            total
        };
        let placed = |assign: &[Option<usize>]| assign.iter().flatten().count();
        assert_eq!(placed(&refined), placed(&seed_assign));
        assert!(cost(&refined) <= cost(&seed_assign) + 1e-9);
    }

    #[test]
    fn scheduled_loop_places_runs_and_retires_jobs() {
        let mut room = Room::new(RoomConfig::new(1, 2, 4)).unwrap();
        let stream =
            JobStream::from_trace(vec![job(0, 30, 1.0), job(0, 30, 1.0), job(5, 200, 0.5)]);
        let mut the_loop = ScheduledLoop::new(stream);
        let mut sched = RoundRobinScheduler::new(SimDuration::from_secs(5));
        let mut ctrl = FixedSupplyController::new(Celsius::new(18.0));
        let stats = the_loop
            .run(
                &mut room,
                &mut sched,
                &mut ctrl,
                SimDuration::from_secs(1),
                120,
            )
            .unwrap();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.placed, 3);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.completed, 2, "the 30 s jobs retire inside 120 s");
        assert_eq!(the_loop.running_jobs(), 1);
        assert_eq!(the_loop.pending_jobs(), 0);
        assert!(stats.sched_decisions >= 24);
        assert!(room.total_energy().value() > 0.0);
        // The resident placement reflects the surviving 0.5-demand job.
        let placed: f64 = room.placement().iter().map(|u| u.as_fraction()).sum();
        assert!((placed - 0.5 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn scheduled_loop_rejects_zero_dt_and_wrong_assignment_counts() {
        let mut room = Room::new(RoomConfig::new(1, 1, 2)).unwrap();
        let mut the_loop = ScheduledLoop::new(JobStream::from_trace(Vec::new()));
        let mut sched = RoundRobinScheduler::new(SimDuration::from_secs(5));
        let mut ctrl = FixedSupplyController::new(Celsius::new(18.0));
        assert!(the_loop
            .run(&mut room, &mut sched, &mut ctrl, SimDuration::ZERO, 1)
            .is_err());

        struct Broken;
        impl RoomScheduler for Broken {
            fn name(&self) -> &str {
                "broken"
            }
            fn decision_period(&self) -> SimDuration {
                SimDuration::from_secs(1)
            }
            fn place(
                &mut self,
                _obs: &RoomObservation,
                _pending: &[Job],
                _loads: &RackLoads,
            ) -> Vec<Option<usize>> {
                vec![Some(0); 99]
            }
        }
        let stream = JobStream::from_trace(vec![job(0, 10, 1.0)]);
        let mut the_loop = ScheduledLoop::new(stream);
        let err = the_loop
            .run(
                &mut room,
                &mut Broken,
                &mut ctrl,
                SimDuration::from_secs(1),
                1,
            )
            .unwrap_err();
        assert!(err.to_string().contains("broken"));
    }

    #[test]
    fn infeasible_assignments_are_rejected_and_requeued() {
        struct Stubborn;
        impl RoomScheduler for Stubborn {
            fn name(&self) -> &str {
                "stubborn"
            }
            fn decision_period(&self) -> SimDuration {
                SimDuration::from_secs(1)
            }
            fn place(
                &mut self,
                _obs: &RoomObservation,
                pending: &[Job],
                _loads: &RackLoads,
            ) -> Vec<Option<usize>> {
                vec![Some(999); pending.len()]
            }
        }
        let mut room = Room::new(RoomConfig::new(1, 1, 2)).unwrap();
        let stream = JobStream::from_trace(vec![job(0, 10, 1.0)]);
        let mut the_loop = ScheduledLoop::new(stream);
        let mut ctrl = FixedSupplyController::new(Celsius::new(18.0));
        let stats = the_loop
            .run(
                &mut room,
                &mut Stubborn,
                &mut ctrl,
                SimDuration::from_secs(1),
                3,
            )
            .unwrap();
        assert_eq!(stats.placed, 0);
        assert!(stats.rejected >= 3, "re-rejected every decision");
        assert_eq!(the_loop.pending_jobs(), 1);
    }

    #[test]
    fn fair_share_admission_spreads_demand() {
        let fs = FairShareRack;
        assert_eq!(fs.activity(0.0, 8), 0.0);
        assert!((fs.activity(4.0, 8) - 0.5).abs() < 1e-12);
        assert_eq!(fs.activity(9.0, 8), 1.0, "clamped at capacity");
    }
}
