//! Reference values reported by the paper, for side-by-side comparison
//! in EXPERIMENTS.md and the reproduction binaries.

/// Fitted active-power slope, W/%.
pub const K1: f64 = 0.4452;

/// Fitted leakage scale, W.
pub const K2: f64 = 0.3231;

/// Fitted leakage exponent, 1/°C.
pub const K3: f64 = 0.04749;

/// Reported RMS fitting error, W.
pub const FIT_RMSE_W: f64 = 2.243;

/// Reported fitting accuracy, percent.
pub const FIT_ACCURACY_PCT: f64 = 98.0;

/// Ambient temperature of the isolated test environment, °C.
pub const AMBIENT_C: f64 = 24.0;

/// Server critical temperature threshold, °C.
pub const CRITICAL_TEMP_C: f64 = 90.0;

/// Targeted maximum operational temperature, °C.
pub const TARGET_MAX_TEMP_C: f64 = 75.0;

/// Fan speeds explored in the characterization sweep, RPM.
pub const FAN_SPEEDS_RPM: [f64; 5] = [1800.0, 2400.0, 3000.0, 3600.0, 4200.0];

/// Utilization levels explored in the characterization sweep, percent.
pub const UTILIZATION_LEVELS_PCT: [f64; 8] = [10.0, 25.0, 40.0, 50.0, 60.0, 75.0, 90.0, 100.0];

/// Approximate default (vendor) fan speed, RPM.
pub const DEFAULT_RPM: f64 = 3300.0;

/// Fan+leakage optimum temperature reported for 100 % utilization, °C.
pub const OPTIMUM_TEMP_C: f64 = 70.0;

/// Fan speed at the 100 %-utilization optimum, RPM.
pub const OPTIMUM_RPM: f64 = 2400.0;

/// One row of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperTable1Row {
    /// Test index (1–4).
    pub test: u8,
    /// Control scheme name.
    pub scheme: &'static str,
    /// Total energy, kWh.
    pub energy_kwh: f64,
    /// Net savings vs. the default scheme, percent (`None` for the
    /// baseline rows).
    pub net_savings_pct: Option<f64>,
    /// Peak power, W.
    pub peak_power_w: f64,
    /// Maximum temperature, °C.
    pub max_temp_c: f64,
    /// Number of fan speed changes.
    pub fan_changes: u32,
    /// Average fan speed, RPM.
    pub avg_rpm: f64,
}

/// The paper's Table I, verbatim.
pub const TABLE1: [PaperTable1Row; 12] = [
    PaperTable1Row {
        test: 1,
        scheme: "Default",
        energy_kwh: 0.6695,
        net_savings_pct: None,
        peak_power_w: 710.0,
        max_temp_c: 61.0,
        fan_changes: 0,
        avg_rpm: 3300.0,
    },
    PaperTable1Row {
        test: 1,
        scheme: "Bang",
        energy_kwh: 0.6570,
        net_savings_pct: Some(6.8),
        peak_power_w: 715.0,
        max_temp_c: 75.0,
        fan_changes: 6,
        avg_rpm: 2089.0,
    },
    PaperTable1Row {
        test: 1,
        scheme: "LUT",
        energy_kwh: 0.6556,
        net_savings_pct: Some(7.7),
        peak_power_w: 705.0,
        max_temp_c: 73.0,
        fan_changes: 6,
        avg_rpm: 2117.0,
    },
    PaperTable1Row {
        test: 2,
        scheme: "Default",
        energy_kwh: 0.6857,
        net_savings_pct: None,
        peak_power_w: 720.0,
        max_temp_c: 61.0,
        fan_changes: 0,
        avg_rpm: 3300.0,
    },
    PaperTable1Row {
        test: 2,
        scheme: "Bang",
        energy_kwh: 0.6856,
        net_savings_pct: Some(0.05),
        peak_power_w: 722.0,
        max_temp_c: 76.0,
        fan_changes: 10,
        avg_rpm: 2173.0,
    },
    PaperTable1Row {
        test: 2,
        scheme: "LUT",
        energy_kwh: 0.6685,
        net_savings_pct: Some(8.7),
        peak_power_w: 705.0,
        max_temp_c: 75.0,
        fan_changes: 8,
        avg_rpm: 2181.0,
    },
    PaperTable1Row {
        test: 3,
        scheme: "Default",
        energy_kwh: 0.6284,
        net_savings_pct: None,
        peak_power_w: 720.0,
        max_temp_c: 60.0,
        fan_changes: 0,
        avg_rpm: 3300.0,
    },
    PaperTable1Row {
        test: 3,
        scheme: "Bang",
        energy_kwh: 0.6253,
        net_savings_pct: Some(2.0),
        peak_power_w: 722.0,
        max_temp_c: 77.0,
        fan_changes: 14,
        avg_rpm: 2042.0,
    },
    PaperTable1Row {
        test: 3,
        scheme: "LUT",
        energy_kwh: 0.6226,
        net_savings_pct: Some(3.9),
        peak_power_w: 710.0,
        max_temp_c: 69.0,
        fan_changes: 12,
        avg_rpm: 2161.0,
    },
    PaperTable1Row {
        test: 4,
        scheme: "Default",
        energy_kwh: 0.6160,
        net_savings_pct: None,
        peak_power_w: 720.0,
        max_temp_c: 62.0,
        fan_changes: 0,
        avg_rpm: 3300.0,
    },
    PaperTable1Row {
        test: 4,
        scheme: "Bang",
        energy_kwh: 0.6101,
        net_savings_pct: Some(4.7),
        peak_power_w: 722.0,
        max_temp_c: 76.0,
        fan_changes: 10,
        avg_rpm: 1936.0,
    },
    PaperTable1Row {
        test: 4,
        scheme: "LUT",
        energy_kwh: 0.6071,
        net_savings_pct: Some(6.9),
        peak_power_w: 710.0,
        max_temp_c: 74.0,
        fan_changes: 12,
        avg_rpm: 1968.0,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_rows() {
        assert_eq!(TABLE1.len(), 12);
        for test in 1..=4u8 {
            let rows: Vec<_> = TABLE1.iter().filter(|r| r.test == test).collect();
            assert_eq!(rows.len(), 3);
            assert_eq!(rows[0].scheme, "Default");
            assert!(rows[0].net_savings_pct.is_none());
        }
    }

    #[test]
    fn lut_always_beats_bang_in_paper() {
        for test in 1..=4u8 {
            let get = |scheme: &str| {
                TABLE1
                    .iter()
                    .find(|r| r.test == test && r.scheme == scheme)
                    .expect("row exists")
            };
            assert!(get("LUT").energy_kwh <= get("Bang").energy_kwh);
            assert!(get("Bang").energy_kwh <= get("Default").energy_kwh);
        }
    }
}
