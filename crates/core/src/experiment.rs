//! Controller-evaluation runner implementing the paper's experimental
//! protocol.
//!
//! Every experiment follows §IV of the paper: the machine starts from a
//! forced cold state (≥10 minutes idle with fans at 3600 RPM), the
//! controller takes over at `t = 0` with another 5 idle minutes for
//! stabilization, the workload profile runs, and a final idle cooldown
//! lets temperatures decay. Energy, peak power and the Table I metrics
//! are accounted over the profile phase only.
//!
//! Each run drives `Server::step`, which integrates the thermal network
//! through a cached `TransientSolver`: fan flows are constant for long
//! stretches of the protocol, so most steps reduce to an O(n²)
//! back-substitution on a reused factorization. Pick the integrator
//! through [`RunOptions::config`] (`ServerConfig::integrator`).

use leakctl_control::{ControlInputs, FanController};
use leakctl_platform::{Server, ServerConfig};
use leakctl_units::{Celsius, Joules, Rpm, SimDuration, SimInstant, Utilization, Watts};
use leakctl_workload::{LoadGen, Profile, PwmConfig};

use crate::error::CoreError;

/// Options for [`run_experiment`].
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Machine description.
    pub config: ServerConfig,
    /// Simulation step.
    pub step: SimDuration,
    /// Cold-soak idle phase (fans forced to 3600 RPM, not accounted).
    pub warmup: SimDuration,
    /// Controller-engaged idle stabilization (not accounted).
    pub stabilize: SimDuration,
    /// Idle cooldown after the profile (not accounted).
    pub cooldown: SimDuration,
    /// Sample period for the recorded time series.
    pub sample_period: SimDuration,
    /// LoadGen PWM realization.
    pub pwm: PwmConfig,
    /// Record a time series (disable for bulk sweeps).
    pub record: bool,
}

impl Default for RunOptions {
    /// The paper's protocol: 10-minute cold soak, 5-minute
    /// stabilization, 10-minute cooldown, 1-second steps, 10-second
    /// samples.
    fn default() -> Self {
        Self {
            config: ServerConfig::default(),
            step: SimDuration::from_secs(1),
            warmup: SimDuration::from_mins(10),
            stabilize: SimDuration::from_mins(5),
            cooldown: SimDuration::from_mins(10),
            sample_period: SimDuration::from_secs(10),
            pwm: PwmConfig::default(),
            record: true,
        }
    }
}

impl RunOptions {
    /// Shortened phases for unit tests and smoke runs.
    #[must_use]
    pub fn fast() -> Self {
        Self {
            warmup: SimDuration::from_mins(2),
            stabilize: SimDuration::from_mins(1),
            cooldown: SimDuration::from_mins(1),
            ..Self::default()
        }
    }
}

/// One recorded sample of a run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunSample {
    /// Minutes since the controller took over (`t = 0` in the paper's
    /// figures).
    pub minutes: f64,
    /// Target utilization of the profile at this instant.
    pub target_percent: f64,
    /// Mean of the measured CPU temperature sensors, °C.
    pub cpu_temp_measured: f64,
    /// Ground-truth hottest die temperature, °C.
    pub die_temp_true: f64,
    /// Mean actual fan speed, RPM.
    pub rpm: f64,
    /// System (wall) power, W.
    pub system_power: f64,
    /// Fan power, W.
    pub fan_power: f64,
}

/// Table I metrics for one run, accounted over the profile phase.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunMetrics {
    /// Total (system + fan) energy.
    pub total_energy: Joules,
    /// Fan-subsystem energy.
    pub fan_energy: Joules,
    /// Peak instantaneous total power.
    pub peak_power: Watts,
    /// Hottest measured CPU temperature during the profile.
    pub max_temp: Celsius,
    /// Fan speed changes accepted during the profile.
    pub fan_changes: u64,
    /// Time-averaged actual fan speed.
    pub avg_rpm: Rpm,
    /// Profile duration.
    pub duration: SimDuration,
    /// Thermal-failsafe activations during the whole experiment.
    pub failsafe_activations: u32,
}

/// Everything produced by one experiment.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Controller name.
    pub controller: String,
    /// Profile-phase metrics.
    pub metrics: RunMetrics,
    /// Recorded time series (empty when `record` was off); covers
    /// stabilization, profile and cooldown.
    pub samples: Vec<RunSample>,
}

/// Runs one controller over one profile under the paper's protocol.
///
/// # Errors
///
/// Propagates platform failures (thermal solver, telemetry).
pub fn run_experiment(
    options: &RunOptions,
    profile: Profile,
    controller: &mut dyn FanController,
    seed: u64,
) -> Result<RunOutcome, CoreError> {
    let mut server = Server::new(options.config.clone(), seed)?;
    controller.reset();

    // ---- Phase A: forced cold state (fans at 3600 RPM, idle). ------
    server.command_fan_speed(Rpm::new(3600.0));
    run_idle(&mut server, options.step, options.warmup)?;

    // `t = 0` of the paper's figures: controller takes over.
    let t0 = server.now();
    let gen = LoadGen::new(profile, options.pwm);
    let profile_duration = gen.duration();
    let profile_start = t0 + options.stabilize;
    let profile_end = profile_start + profile_duration;
    let experiment_end = profile_end + options.cooldown;

    // Preallocate the recorded series: one sample per period over
    // stabilization + profile + cooldown, plus slack for the endpoints.
    // A zero sample period degenerates to one sample per step, so cap
    // the guess at the step count rather than dividing by zero.
    let mut samples = Vec::with_capacity(if options.record {
        let experiment_secs = (experiment_end - t0).as_secs_f64();
        let per_period = if options.sample_period.is_zero() {
            f64::INFINITY
        } else {
            experiment_secs / options.sample_period.as_secs_f64()
        };
        let per_step = experiment_secs / options.step.as_secs_f64();
        let estimate = per_period.min(per_step);
        if estimate.is_finite() {
            estimate as usize + 2
        } else {
            0
        }
    } else {
        0
    });
    let mut next_sample = t0;
    let mut next_decision = t0;
    let mut fan_changes_at_profile_start = 0;
    let mut rpm_time_integral = 0.0;
    let mut max_temp = Celsius::new(f64::NEG_INFINITY);

    while server.now() < experiment_end {
        let now = server.now();
        let in_profile = now >= profile_start && now < profile_end;

        // Profile-relative activity (idle outside the profile phase).
        let activity = if in_profile {
            let rel = SimInstant::ZERO + (now - profile_start);
            gen.average_over(rel, options.step)
        } else {
            Utilization::IDLE
        };

        // Controller decision at its own cadence, using only
        // telemetry-visible inputs. The reported utilization is the
        // profile target: the real LoadGen duty-cycles at fine (sub-
        // second) granularity, so an OS utilization counter averaged
        // over the 1-second `sar` window reads the duty-cycle average —
        // our coarser PWM period is a thermal-modeling device and must
        // not leak into the counters.
        if now >= next_decision {
            let poll = controller.poll_period();
            let reported = if in_profile {
                let rel = SimInstant::ZERO + (now - profile_start);
                gen.target(rel)
            } else {
                Utilization::IDLE
            };
            let inputs = ControlInputs {
                now,
                utilization: reported,
                max_cpu_temp: server.max_measured_cpu_temp(),
            };
            if let Some(rpm) = controller.decide(&inputs) {
                server.command_fan_speed(rpm);
            }
            next_decision = now + poll;
        }

        // Account profile-phase metrics.
        if now == profile_start {
            server.reset_accounting();
            fan_changes_at_profile_start = server.fan_speed_changes();
        }
        server.step(options.step, activity)?;
        if in_profile {
            rpm_time_integral += server.actual_rpm().value() * options.step.as_secs_f64();
            if let Some(t) = server.max_measured_cpu_temp() {
                max_temp = max_temp.max(t);
            }
        }

        // Time-series recording.
        if options.record && server.now() >= next_sample {
            let minutes = (server.now() - t0).as_mins_f64();
            let rel = if server.now() >= profile_start && server.now() < profile_end {
                Some(SimInstant::ZERO + (server.now() - profile_start))
            } else {
                None
            };
            let target = rel.map_or(0.0, |r| gen.target(r).as_percent());
            // Allocation-free mean over the measured-temperature
            // channel tails (this runs every sample period).
            let (sum_meas, count_meas) = server
                .measured_cpu_temps_iter()
                .fold((0.0, 0usize), |(sum, count), t| {
                    (sum + t.degrees(), count + 1)
                });
            let mean_meas = if count_meas == 0 {
                f64::NAN
            } else {
                sum_meas / count_meas as f64
            };
            samples.push(RunSample {
                minutes,
                target_percent: target,
                cpu_temp_measured: mean_meas,
                die_temp_true: server.max_die_temperature().degrees(),
                rpm: server.actual_rpm().value(),
                system_power: server.system_power().value(),
                fan_power: server.fan_power().value(),
            });
            next_sample += options.sample_period;
        }
    }

    let metrics = RunMetrics {
        total_energy: server.total_energy(),
        fan_energy: server.fan_energy(),
        peak_power: server.peak_power(),
        max_temp,
        fan_changes: server.fan_speed_changes() - fan_changes_at_profile_start,
        avg_rpm: Rpm::new(rpm_time_integral / profile_duration.as_secs_f64()),
        duration: profile_duration,
        failsafe_activations: server.failsafe_activations(),
    };
    Ok(RunOutcome {
        controller: controller.name().to_owned(),
        metrics,
        samples,
    })
}

/// Runs the server idle for `duration`.
fn run_idle(
    server: &mut Server,
    step: SimDuration,
    duration: SimDuration,
) -> Result<(), CoreError> {
    let end = server.now() + duration;
    while server.now() < end {
        server.step(step, Utilization::IDLE)?;
    }
    Ok(())
}

/// Measures the idle power of the machine under its default cooling —
/// the reference the paper subtracts when reporting *net* savings
/// ("we discard the idle server power as that part of the consumption
/// … cannot be influenced by the fan control").
///
/// # Errors
///
/// Propagates platform failures.
pub fn measure_idle_power(config: &ServerConfig, seed: u64) -> Result<Watts, CoreError> {
    let mut server = Server::new(config.clone(), seed)?;
    server.command_fan_speed(config.default_rpm);
    // Settle, then average over a clean window.
    run_idle(
        &mut server,
        SimDuration::from_secs(1),
        SimDuration::from_mins(25),
    )?;
    server.reset_accounting();
    run_idle(
        &mut server,
        SimDuration::from_secs(1),
        SimDuration::from_mins(10),
    )?;
    Ok(server.total_energy().average_power(server.accounted_time()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakctl_control::{FixedSpeedController, LookupTable, LutController};

    fn short_profile(percent: f64, mins: u64) -> Profile {
        Profile::constant(
            Utilization::from_percent(percent).unwrap(),
            SimDuration::from_mins(mins),
        )
        .unwrap()
    }

    fn small_lut() -> LookupTable {
        LookupTable::new(vec![
            (Utilization::from_percent(50.0).unwrap(), Rpm::new(1800.0)),
            (Utilization::from_percent(100.0).unwrap(), Rpm::new(2400.0)),
        ])
        .unwrap()
    }

    #[test]
    fn default_controller_runs_and_accounts() {
        let mut ctl = FixedSpeedController::paper_default();
        let outcome =
            run_experiment(&RunOptions::fast(), short_profile(100.0, 10), &mut ctl, 1).unwrap();
        assert_eq!(outcome.controller, "Default");
        let m = outcome.metrics;
        assert_eq!(m.duration, SimDuration::from_mins(10));
        // ≈500 W for 10 min ≈ 0.083 kWh.
        let kwh = m.total_energy.as_kwh().value();
        assert!((0.06..=0.11).contains(&kwh), "energy {kwh} kWh");
        assert!(m.peak_power.value() > 450.0);
        assert!((3250.0..=3350.0).contains(&m.avg_rpm.value()));
        assert_eq!(m.fan_changes, 0, "default never changes speed mid-run");
        assert_eq!(m.failsafe_activations, 0);
        assert!(!outcome.samples.is_empty());
    }

    #[test]
    fn lut_controller_tracks_load() {
        let mut ctl = LutController::paper_default(small_lut());
        let profile = Profile::builder()
            .hold_percent(10.0, SimDuration::from_mins(5))
            .unwrap()
            .hold_percent(100.0, SimDuration::from_mins(5))
            .unwrap()
            .build();
        let outcome = run_experiment(&RunOptions::fast(), profile, &mut ctl, 2).unwrap();
        // The LUT must have switched between its two speeds.
        assert!(outcome.metrics.fan_changes >= 1);
        // Average RPM strictly below the default baseline.
        assert!(outcome.metrics.avg_rpm < Rpm::new(2600.0));
    }

    #[test]
    fn samples_cover_all_phases() {
        let mut ctl = FixedSpeedController::paper_default();
        let opts = RunOptions::fast();
        let outcome = run_experiment(&opts, short_profile(50.0, 5), &mut ctl, 3).unwrap();
        let last = outcome.samples.last().unwrap();
        // stabilize (1) + profile (5) + cooldown (1) ≈ 7 minutes.
        assert!(last.minutes >= 6.5, "last sample at {} min", last.minutes);
        let first = outcome.samples.first().unwrap();
        assert!(first.minutes <= 0.2);
        // Target percent reflects the profile only inside the window.
        let mid = outcome
            .samples
            .iter()
            .find(|s| s.minutes > 2.0 && s.minutes < 5.0)
            .unwrap();
        assert!((mid.target_percent - 50.0).abs() < 1e-9);
        assert!((first.target_percent - 0.0).abs() < 1e-9);
    }

    #[test]
    fn record_flag_suppresses_samples() {
        let mut ctl = FixedSpeedController::paper_default();
        let mut opts = RunOptions::fast();
        opts.record = false;
        let outcome = run_experiment(&opts, short_profile(50.0, 3), &mut ctl, 4).unwrap();
        assert!(outcome.samples.is_empty());
    }

    #[test]
    fn deterministic_outcomes() {
        let run = |seed| {
            let mut ctl = LutController::paper_default(small_lut());
            run_experiment(&RunOptions::fast(), short_profile(75.0, 5), &mut ctl, seed)
                .unwrap()
                .metrics
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn idle_power_in_calibration_band() {
        let p = measure_idle_power(&ServerConfig::default(), 5).unwrap();
        assert!(
            (440.0..=500.0).contains(&p.value()),
            "idle power {p} outside calibration band"
        );
    }
}
