//! `leakctl` — leakage- and temperature-aware server cooling control.
//!
//! A full reproduction of *"Leakage and Temperature Aware Server Control
//! for Improving Energy Efficiency in Data Centers"* (Zapater et al.,
//! DATE 2013) as a Rust library, running against a calibrated digital
//! twin of the paper's SPARC T3 enterprise server.
//!
//! The crate wires the workspace's substrates into the paper's pipeline:
//!
//! 1. **Characterize** ([`characterize`]) — sweep utilization × fan
//!    speed with the LoadGen stress tool under the paper's experimental
//!    protocol, measuring steady temperatures and powers through
//!    simulated CSTH telemetry.
//! 2. **Fit** ([`fit_models`]) — identify `P_active = k1·U` and
//!    `P_leak = C + k2·e^(k3·T)` from the measurements (Fig. 2).
//! 3. **Build** ([`build_lut_from_characterization`]) — generate the
//!    lookup table of energy-optimal fan speeds per utilization level.
//! 4. **Evaluate** ([`run_experiment`], [`generate_table1`]) — run the
//!    Default, bang-bang and LUT controllers on the four 80-minute test
//!    workloads and reproduce Table I and Figs. 1 & 3 ([`fig1a`],
//!    [`fig3`], …).
//!
//! # Quickstart
//!
//! ```no_run
//! use leakctl::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Characterize the machine and build the optimal-fan-speed table.
//! let data = characterize(&CharacterizeOptions::quick(), 42)?;
//! let fitted = fit_models(&data)?;
//! let lut = build_lut_from_characterization(&data, &fitted)?;
//!
//! // Evaluate the LUT controller on Test-3.
//! let profile = leakctl_workload::suite::test3();
//! let mut controller = LutController::paper_default(lut);
//! let outcome = run_experiment(&RunOptions::default(), profile, &mut controller, 42)?;
//! println!("energy: {:.4} kWh", outcome.metrics.total_energy.as_kwh().value());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod building;
mod characterize;
pub mod control;
pub mod derating;
mod error;
mod experiment;
mod figures;
mod fitting;
pub mod fleet;
mod lut_pipeline;
pub mod paper;
pub mod rack;
pub mod report;
pub mod room;
pub mod scenario;
pub mod schedule;
pub mod supervise;
mod table1;

pub use characterize::{
    characterize, CharacterizationData, CharacterizationPoint, CharacterizeOptions,
};
pub use error::{BuildingError, ControlError, CoreError, PlacementError, RoomError};
pub use experiment::{
    measure_idle_power, run_experiment, RunMetrics, RunOptions, RunOutcome, RunSample,
};
pub use figures::{
    fig1a, fig1b, fig2a, fig2b, fig3, Fig1Data, Fig2Data, Fig2Point, Fig3Data, TempSeries,
};
pub use fitting::{fit_models, FittedModels};
pub use lut_pipeline::{build_lut_from_characterization, default_utilization_bins};
pub use table1::{generate_table1, Table1, Table1Options, Table1Row};

/// Convenient re-exports for application code.
pub mod prelude {
    pub use crate::building::{Building, BuildingCheckpoint, BuildingConfig};
    pub use crate::characterize::{characterize, CharacterizationData, CharacterizeOptions};
    pub use crate::control::{
        ControlAction, FixedSupplyController, LutSetPointController, MpcSetPointController,
        RoomController, RoomObservation, TileFlowBalancer,
    };
    pub use crate::experiment::{
        measure_idle_power, run_experiment, RunMetrics, RunOptions, RunOutcome,
    };
    pub use crate::fitting::{fit_models, FittedModels};
    pub use crate::lut_pipeline::build_lut_from_characterization;
    pub use crate::room::{ControlStats, CopModel, Room, RoomCheckpoint, RoomConfig};
    pub use crate::scenario::{
        BuildingEvent, BuildingOutcome, BuildingScenario, BuildingScenarioRunner, Scenario,
        ScenarioEvent, ScenarioOutcome, ScenarioRunner,
    };
    pub use crate::schedule::{
        FairShareRack, Job, JobStream, JobStreamConfig, LocalSearchScheduler, PlacementAction,
        RackLoads, RackScheduler, RoomScheduler, RoundRobinScheduler, ScheduleStats, ScheduledLoop,
        ThermalGreedyConfig, ThermalGreedyScheduler,
    };
    pub use crate::supervise::{MonitorTrip, Supervisor, SupervisorConfig, TripCounts};
    pub use crate::table1::{generate_table1, Table1, Table1Options};
    pub use leakctl_control::{
        BangBangController, FanController, FixedSpeedController, LookupTable, LutController,
        PidController,
    };
    pub use leakctl_platform::{FanFault, Server, ServerConfig};
    pub use leakctl_units::{
        Celsius, Joules, KilowattHours, Rpm, SimDuration, SimInstant, Utilization, Watts,
    };
    pub use leakctl_workload::{suite, LoadGen, Profile, PwmConfig};
}
