//! A miniature data-center rack: several digital-twin servers sharing
//! an inlet whose temperature drifts with the rack's total heat
//! (exhaust recirculation) — the "real-life data center" setting the
//! paper's conclusion points toward.

use leakctl_platform::{PlatformError, Server, ServerConfig};
use leakctl_units::{Celsius, Joules, Rpm, SimDuration, TempDelta, Utilization, Watts};

use crate::error::CoreError;

/// A rack of identical servers with inlet-temperature coupling:
///
/// ```text
/// T_inlet = T_room + r · P_rack
/// ```
///
/// where `r` (K/W) models how much of the rack's exhaust heat
/// recirculates to the inlet (0 for perfect containment; a few mK/W for
/// a poorly sealed aisle).
///
/// # Example
///
/// ```
/// use leakctl::rack::Rack;
/// use leakctl_platform::ServerConfig;
/// use leakctl_units::{Rpm, SimDuration, Utilization};
///
/// # fn main() -> Result<(), leakctl::CoreError> {
/// let mut rack = Rack::new(ServerConfig::default(), 4, 0.004, 42)?;
/// rack.command_all(Rpm::new(2400.0));
/// for _ in 0..60 {
///     rack.step(SimDuration::from_secs(1), Utilization::FULL)?;
/// }
/// assert!(rack.inlet_temperature().degrees() > 24.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Rack {
    servers: Vec<Server>,
    room: Celsius,
    recirculation_k_per_w: f64,
}

impl Rack {
    /// Builds a rack of `count` servers from a shared config; each
    /// server gets an independent sensor-noise stream derived from
    /// `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Invalid`] for an empty rack or negative
    /// recirculation, and propagates server-construction failures.
    pub fn new(
        config: ServerConfig,
        count: usize,
        recirculation_k_per_w: f64,
        seed: u64,
    ) -> Result<Self, CoreError> {
        if count == 0 {
            return Err(CoreError::Invalid {
                what: "rack needs at least one server".to_owned(),
            });
        }
        if !(recirculation_k_per_w >= 0.0 && recirculation_k_per_w.is_finite()) {
            return Err(CoreError::Invalid {
                what: "recirculation coefficient must be non-negative".to_owned(),
            });
        }
        let servers = (0..count)
            .map(|i| Server::new(config.clone(), seed.wrapping_add(i as u64)))
            .collect::<Result<Vec<_>, PlatformError>>()?;
        Ok(Self {
            room: config.ambient,
            servers,
            recirculation_k_per_w,
        })
    }

    /// Number of servers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// `true` when the rack is empty (construction forbids it).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Commands every server's fans.
    pub fn command_all(&mut self, rpm: Rpm) {
        for server in &mut self.servers {
            server.command_fan_speed(rpm);
        }
    }

    /// Access to an individual server (e.g. to attach per-server
    /// controllers).
    #[must_use]
    pub fn server(&self, index: usize) -> Option<&Server> {
        self.servers.get(index)
    }

    /// Mutable access to an individual server.
    #[must_use]
    pub fn server_mut(&mut self, index: usize) -> Option<&mut Server> {
        self.servers.get_mut(index)
    }

    /// Advances every server by `dt` at the same activity level, then
    /// updates the shared inlet temperature from the rack's total heat.
    ///
    /// # Errors
    ///
    /// Propagates platform failures.
    pub fn step(&mut self, dt: SimDuration, activity: Utilization) -> Result<(), CoreError> {
        let inlet = self.inlet_temperature();
        for server in &mut self.servers {
            server.set_ambient(inlet)?;
            server.step(dt, activity)?;
        }
        Ok(())
    }

    /// The current shared inlet temperature.
    #[must_use]
    pub fn inlet_temperature(&self) -> Celsius {
        let drift = TempDelta::new(self.recirculation_k_per_w * self.total_power().value());
        self.room + drift
    }

    /// Total rack power (system + fans across all servers).
    #[must_use]
    pub fn total_power(&self) -> Watts {
        self.servers.iter().map(Server::total_power).sum()
    }

    /// Total rack energy since construction.
    #[must_use]
    pub fn total_energy(&self) -> Joules {
        self.servers.iter().map(Server::total_energy).sum()
    }

    /// The hottest die anywhere in the rack.
    #[must_use]
    pub fn max_die_temperature(&self) -> Celsius {
        self.servers
            .iter()
            .map(Server::max_die_temperature)
            .fold(Celsius::new(f64::NEG_INFINITY), Celsius::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validated() {
        assert!(matches!(
            Rack::new(ServerConfig::default(), 0, 0.0, 1),
            Err(CoreError::Invalid { .. })
        ));
        assert!(matches!(
            Rack::new(ServerConfig::default(), 2, -1.0, 1),
            Err(CoreError::Invalid { .. })
        ));
        let rack = Rack::new(ServerConfig::default(), 3, 0.001, 1).unwrap();
        assert_eq!(rack.len(), 3);
        assert!(!rack.is_empty());
        assert!(rack.server(0).is_some());
        assert!(rack.server(3).is_none());
    }

    #[test]
    fn recirculation_raises_inlet_and_dies() {
        let run = |k: f64| {
            let mut rack = Rack::new(ServerConfig::default(), 4, k, 7).unwrap();
            rack.command_all(Rpm::new(2400.0));
            for _ in 0..1_800 {
                rack.step(SimDuration::from_secs(1), Utilization::FULL)
                    .unwrap();
            }
            (rack.inlet_temperature(), rack.max_die_temperature())
        };
        let (inlet_sealed, die_sealed) = run(0.0);
        let (inlet_leaky, die_leaky) = run(0.004);
        assert!((inlet_sealed.degrees() - 24.0).abs() < 1e-9);
        assert!(
            inlet_leaky.degrees() > 30.0,
            "4 servers × ~500 W × 4 mK/W ≈ +8 °C, got {inlet_leaky}"
        );
        assert!(die_leaky > die_sealed);
    }

    #[test]
    fn rack_energy_is_sum_of_servers() {
        let mut rack = Rack::new(ServerConfig::default(), 2, 0.0, 3).unwrap();
        rack.command_all(Rpm::new(3000.0));
        for _ in 0..300 {
            rack.step(SimDuration::from_secs(1), Utilization::FULL)
                .unwrap();
        }
        let sum: f64 = (0..2)
            .map(|i| rack.server(i).unwrap().total_energy().value())
            .sum();
        assert!((rack.total_energy().value() - sum).abs() < 1e-9);
        // Different sensor seeds per server, same physics.
        let a = rack.server(0).unwrap().measured_cpu_temps();
        let b = rack.server(1).unwrap().measured_cpu_temps();
        assert_ne!(a, b, "per-server sensor streams must differ");
    }

    #[test]
    fn per_server_control_through_mut_access() {
        let mut rack = Rack::new(ServerConfig::default(), 2, 0.0, 5).unwrap();
        rack.server_mut(0)
            .unwrap()
            .command_fan_speed(Rpm::new(1800.0));
        rack.server_mut(1)
            .unwrap()
            .command_fan_speed(Rpm::new(4200.0));
        for _ in 0..1_200 {
            rack.step(SimDuration::from_secs(1), Utilization::FULL)
                .unwrap();
        }
        let hot = rack.server(0).unwrap().max_die_temperature();
        let cold = rack.server(1).unwrap().max_die_temperature();
        assert!(hot.degrees() - cold.degrees() > 15.0);
    }
}
