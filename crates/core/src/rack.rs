//! Compatibility module: the original `Rack` now lives in
//! [`fleet`](crate::fleet) as [`Fleet`], rebuilt on the
//! shared-factorization batch stepping engine with an unchanged public
//! API and bit-identical trajectories.

pub use crate::fleet::Fleet;

/// The historical name for a [`Fleet`] of servers sharing a
/// recirculation-coupled inlet.
pub type Rack = Fleet;
