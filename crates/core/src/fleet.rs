//! A rack-scale fleet of digital-twin servers stepped through the
//! shared-factorization batch engine.
//!
//! [`Fleet`] supersedes the original scalar `Rack` (which stepped each
//! server's thermal network through its own per-server solve) while
//! preserving its public API — `Rack` remains as a type alias. The
//! physics is unchanged and bit-identical: per-server fan dynamics,
//! failsafe, power models and telemetry run exactly as in
//! `Server::step`; only the thermal integration is hoisted out and
//! solved for all servers at once through one
//! [`BatchSolver`](leakctl_thermal::BatchSolver) factorization per
//! `(dt, flow)` group ([`leakctl_thermal::BatchSolver`] lanes are
//! bit-identical to scalar stepping, so a fleet of one reproduces the
//! single-server trajectory to the last bit).
//!
//! Inlet coupling follows the original model: all servers share one
//! inlet whose temperature drifts with the rack's total heat (exhaust
//! recirculation) — the "real-life data center" setting the paper's
//! conclusion points toward.

use leakctl_platform::{PlatformError, Server, ServerConfig};
use leakctl_thermal::{BatchLane, BatchSolver, Integrator};
use leakctl_units::{Celsius, Joules, Rpm, SimDuration, TempDelta, Utilization, Watts};

use crate::error::CoreError;

/// A rack of identical servers with inlet-temperature coupling:
///
/// ```text
/// T_inlet = T_room + r · P_rack
/// ```
///
/// where `r` (K/W) models how much of the rack's exhaust heat
/// recirculates to the inlet (0 for perfect containment; a few mK/W for
/// a poorly sealed aisle).
///
/// With the default backward-Euler integrator, every step batches the
/// whole fleet's thermal solves through shared factorizations; other
/// integrators fall back to per-server stepping (there is no
/// factorization to share).
///
/// # Example
///
/// ```
/// use leakctl::fleet::Fleet;
/// use leakctl_platform::ServerConfig;
/// use leakctl_units::{Rpm, SimDuration, Utilization};
///
/// # fn main() -> Result<(), leakctl::CoreError> {
/// let mut fleet = Fleet::new(ServerConfig::default(), 4, 0.004, 42)?;
/// fleet.command_all(Rpm::new(2400.0));
/// for _ in 0..60 {
///     fleet.step(SimDuration::from_secs(1), Utilization::FULL)?;
/// }
/// assert!(fleet.inlet_temperature().degrees() > 24.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Fleet {
    servers: Vec<Server>,
    room: Celsius,
    recirculation_k_per_w: f64,
    batch: BatchSolver,
}

impl Fleet {
    /// Builds a fleet of `count` servers from a shared config; each
    /// server gets an independent sensor-noise stream derived from
    /// `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Invalid`] for an empty fleet or negative
    /// recirculation, and propagates server-construction failures.
    pub fn new(
        config: ServerConfig,
        count: usize,
        recirculation_k_per_w: f64,
        seed: u64,
    ) -> Result<Self, CoreError> {
        if count == 0 {
            return Err(CoreError::Invalid {
                what: "fleet needs at least one server".to_owned(),
            });
        }
        if !(recirculation_k_per_w >= 0.0 && recirculation_k_per_w.is_finite()) {
            return Err(CoreError::Invalid {
                what: "recirculation coefficient must be non-negative".to_owned(),
            });
        }
        let servers = (0..count)
            .map(|i| Server::new(config.clone(), seed.wrapping_add(i as u64)))
            .collect::<Result<Vec<_>, PlatformError>>()?;
        let batch = BatchSolver::new(servers[0].thermal_network());
        Ok(Self {
            room: config.ambient,
            servers,
            recirculation_k_per_w,
            batch,
        })
    }

    /// Number of servers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// `true` when the fleet is empty (construction forbids it).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Commands every server's fans.
    pub fn command_all(&mut self, rpm: Rpm) {
        for server in &mut self.servers {
            server.command_fan_speed(rpm);
        }
    }

    /// Access to an individual server (e.g. to attach per-server
    /// controllers).
    #[must_use]
    pub fn server(&self, index: usize) -> Option<&Server> {
        self.servers.get(index)
    }

    /// Mutable access to an individual server.
    #[must_use]
    pub fn server_mut(&mut self, index: usize) -> Option<&mut Server> {
        self.servers.get_mut(index)
    }

    /// Number of shared factorizations currently live in the batch
    /// engine (1 while the whole fleet runs one `(dt, flow)` operating
    /// point; one per distinct per-server fan speed otherwise).
    #[must_use]
    pub fn batch_group_count(&self) -> usize {
        self.batch.group_count()
    }

    /// Advances every server by `dt` at the same activity level, then
    /// updates the shared inlet temperature from the fleet's total heat.
    ///
    /// # Errors
    ///
    /// Propagates platform failures.
    pub fn step(&mut self, dt: SimDuration, activity: Utilization) -> Result<(), CoreError> {
        let inlet = self.inlet_temperature();
        if self.servers[0].config().integrator == Integrator::BackwardEuler {
            // Batched path: per-server dynamics, one shared thermal
            // solve per (dt, flow) group across the fleet.
            for server in &mut self.servers {
                server.set_ambient(inlet)?;
                server.begin_step(dt, activity)?;
            }
            {
                let mut lanes: Vec<BatchLane<'_>> = self
                    .servers
                    .iter_mut()
                    .map(|server| {
                        let (net, state) = server.split_thermal();
                        BatchLane { net, state }
                    })
                    .collect();
                self.batch
                    .step(&mut lanes, dt)
                    .map_err(PlatformError::from)?;
            }
            for server in &mut self.servers {
                server.finish_step(dt)?;
            }
        } else {
            // Explicit integrators have no factorization to share.
            for server in &mut self.servers {
                server.set_ambient(inlet)?;
                server.step(dt, activity)?;
            }
        }
        Ok(())
    }

    /// The current shared inlet temperature.
    #[must_use]
    pub fn inlet_temperature(&self) -> Celsius {
        let drift = TempDelta::new(self.recirculation_k_per_w * self.total_power().value());
        self.room + drift
    }

    /// Total fleet power (system + fans across all servers).
    #[must_use]
    pub fn total_power(&self) -> Watts {
        self.servers.iter().map(Server::total_power).sum()
    }

    /// Total fleet energy since construction.
    #[must_use]
    pub fn total_energy(&self) -> Joules {
        self.servers.iter().map(Server::total_energy).sum()
    }

    /// The hottest die anywhere in the fleet.
    #[must_use]
    pub fn max_die_temperature(&self) -> Celsius {
        self.servers
            .iter()
            .map(Server::max_die_temperature)
            .fold(Celsius::new(f64::NEG_INFINITY), Celsius::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validated() {
        assert!(matches!(
            Fleet::new(ServerConfig::default(), 0, 0.0, 1),
            Err(CoreError::Invalid { .. })
        ));
        assert!(matches!(
            Fleet::new(ServerConfig::default(), 2, -1.0, 1),
            Err(CoreError::Invalid { .. })
        ));
        let fleet = Fleet::new(ServerConfig::default(), 3, 0.001, 1).unwrap();
        assert_eq!(fleet.len(), 3);
        assert!(!fleet.is_empty());
        assert!(fleet.server(0).is_some());
        assert!(fleet.server(3).is_none());
    }

    #[test]
    fn recirculation_raises_inlet_and_dies() {
        let run = |k: f64| {
            let mut fleet = Fleet::new(ServerConfig::default(), 4, k, 7).unwrap();
            fleet.command_all(Rpm::new(2400.0));
            for _ in 0..1_800 {
                fleet
                    .step(SimDuration::from_secs(1), Utilization::FULL)
                    .unwrap();
            }
            (fleet.inlet_temperature(), fleet.max_die_temperature())
        };
        let (inlet_sealed, die_sealed) = run(0.0);
        let (inlet_leaky, die_leaky) = run(0.004);
        assert!((inlet_sealed.degrees() - 24.0).abs() < 1e-9);
        assert!(
            inlet_leaky.degrees() > 30.0,
            "4 servers × ~500 W × 4 mK/W ≈ +8 °C, got {inlet_leaky}"
        );
        assert!(die_leaky > die_sealed);
    }

    #[test]
    fn fleet_energy_is_sum_of_servers() {
        let mut fleet = Fleet::new(ServerConfig::default(), 2, 0.0, 3).unwrap();
        fleet.command_all(Rpm::new(3000.0));
        for _ in 0..300 {
            fleet
                .step(SimDuration::from_secs(1), Utilization::FULL)
                .unwrap();
        }
        let sum: f64 = (0..2)
            .map(|i| fleet.server(i).unwrap().total_energy().value())
            .sum();
        assert!((fleet.total_energy().value() - sum).abs() < 1e-9);
        // Different sensor seeds per server, same physics.
        let a = fleet.server(0).unwrap().measured_cpu_temps();
        let b = fleet.server(1).unwrap().measured_cpu_temps();
        assert_ne!(a, b, "per-server sensor streams must differ");
    }

    #[test]
    fn per_server_control_through_mut_access() {
        let mut fleet = Fleet::new(ServerConfig::default(), 2, 0.0, 5).unwrap();
        fleet
            .server_mut(0)
            .unwrap()
            .command_fan_speed(Rpm::new(1800.0));
        fleet
            .server_mut(1)
            .unwrap()
            .command_fan_speed(Rpm::new(4200.0));
        for _ in 0..1_200 {
            fleet
                .step(SimDuration::from_secs(1), Utilization::FULL)
                .unwrap();
        }
        // Diverged fan speeds split the batch into (at least) two
        // factorization groups — transient slew signatures may linger
        // in the cache — and still solve correctly.
        assert!(fleet.batch_group_count() >= 2);
        let hot = fleet.server(0).unwrap().max_die_temperature();
        let cold = fleet.server(1).unwrap().max_die_temperature();
        assert!(hot.degrees() - cold.degrees() > 15.0);
    }

    #[test]
    fn batched_fleet_bit_identical_to_scalar_server_loop() {
        // The batch engine must not change the physics: a fleet stepped
        // through shared factorizations reproduces an identically
        // seeded scalar Server::step loop bit for bit — energy,
        // temperatures and telemetry alike.
        let count = 3;
        let k = 0.002;
        let mut fleet = Fleet::new(ServerConfig::default(), count, k, 11).unwrap();
        fleet.command_all(Rpm::new(2700.0));

        let config = ServerConfig::default();
        let mut reference: Vec<Server> = (0..count)
            .map(|i| Server::new(config.clone(), 11 + i as u64).unwrap())
            .collect();
        for server in &mut reference {
            server.command_fan_speed(Rpm::new(2700.0));
        }
        let room = config.ambient;

        let dt = SimDuration::from_secs(1);
        for step in 0..600 {
            let act = if step % 120 < 60 {
                Utilization::FULL
            } else {
                Utilization::IDLE
            };
            fleet.step(dt, act).unwrap();
            // Scalar reference: same inlet model, per-server stepping.
            let total: Watts = reference.iter().map(Server::total_power).sum();
            let inlet = room + TempDelta::new(k * total.value());
            for server in &mut reference {
                server.set_ambient(inlet).unwrap();
                server.step(dt, act).unwrap();
            }
        }
        assert_eq!(fleet.batch_group_count(), 1, "one shared factorization");
        for (i, b) in reference.iter().enumerate() {
            let a = fleet.server(i).unwrap();
            assert_eq!(
                a.max_die_temperature(),
                b.max_die_temperature(),
                "server {i} die temperature"
            );
            assert_eq!(a.total_energy(), b.total_energy(), "server {i} energy");
            assert_eq!(
                a.measured_cpu_temps(),
                b.measured_cpu_temps(),
                "server {i} telemetry"
            );
        }
    }

    #[test]
    fn explicit_integrator_falls_back_to_scalar_path() {
        let config = ServerConfig {
            integrator: Integrator::ExponentialEuler,
            ..ServerConfig::default()
        };
        let mut fleet = Fleet::new(config, 2, 0.0, 9).unwrap();
        for _ in 0..120 {
            fleet
                .step(SimDuration::from_secs(1), Utilization::FULL)
                .unwrap();
        }
        assert_eq!(fleet.batch_group_count(), 0, "batch engine unused");
        assert!(fleet.max_die_temperature().degrees() > 25.0);
    }
}
